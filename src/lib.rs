//! # voltctl — microarchitectural control of voltage emergencies
//!
//! A full reproduction of Joseph, Brooks & Martonosi, *"Control Techniques
//! to Eliminate Voltage Emergencies in High Performance Processors"*
//! (HPCA 2003), as a Rust workspace. This facade crate re-exports the
//! public API of every subsystem:
//!
//! * [`pdn`] — second-order power-delivery-network model, voltage
//!   simulation, emergency detection.
//! * [`isa`] — the Alpha-flavored RISC instruction set and assembler.
//! * [`cpu`] — the cycle-level out-of-order processor simulator.
//! * [`power`] — the Wattch-style structural power/current model.
//! * [`control`] — **the paper's contribution**: threshold sensor,
//!   controller, actuators, threshold solver, and the closed-loop
//!   simulator.
//! * [`workloads`] — the dI/dt stressmark generator and the synthetic
//!   SPEC2000-like benchmark suite.
//! * [`telemetry`] — zero-dependency tracing/counters/export threaded
//!   through the closed loop (see the README's Observability section).
//!
//! See the repository README for a walkthrough, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Quickstart
//!
//! ```
//! use voltctl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A package model at 200% of target impedance.
//! let pdn = PdnModel::paper_default()?;
//!
//! // 2. Simulate a current spike through it.
//! let mut state = pdn.discretize();
//! let v = state.step(40.0);
//! assert!(v < pdn.v_nominal());
//! # Ok(())
//! # }
//! ```

pub use voltctl_core as control;
pub use voltctl_cpu as cpu;
pub use voltctl_isa as isa;
pub use voltctl_pdn as pdn;
pub use voltctl_power as power;
pub use voltctl_telemetry as telemetry;
pub use voltctl_workloads as workloads;

/// Commonly used types, importable with `use voltctl::prelude::*`.
pub mod prelude {
    pub use voltctl_pdn::{PdnModel, PdnState, VoltageMonitor};
    pub use voltctl_telemetry::{MemoryRecorder, NullRecorder, Recorder};
}
