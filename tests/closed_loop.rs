//! End-to-end integration tests of the full control stack:
//! CPU → power → PDN → sensor → controller → actuator → CPU.

use voltctl::control::prelude::*;
use voltctl::cpu::CpuConfig;
use voltctl::pdn::PdnModel;
use voltctl::power::{PowerModel, PowerParams};
use voltctl::workloads::{spec, stressmark};

fn harness(percent: f64) -> (PowerModel, PdnModel) {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, percent).unwrap();
    (power, pdn)
}

fn solve(power: &PowerModel, pdn: &PdnModel, scope: ActuationScope, delay: u32) -> Thresholds {
    let setup = SolveSetup::new(
        pdn,
        power.min_current(),
        power.achievable_peak_current(),
        scope.leverage(power),
        delay,
    );
    solve_thresholds(&setup).expect("configuration is stable")
}

/// The paper's headline claim: the stressmark produces emergencies at 200%
/// of target impedance uncontrolled, and the threshold controller
/// eliminates every single one.
#[test]
fn controller_eliminates_stressmark_emergencies_at_200_percent() {
    let (power, pdn) = harness(2.0);
    let scope = ActuationScope::FuDl1Il1;
    let delay = 2;
    let thresholds = solve(&power, &pdn, scope, delay);
    let (_, wl) = stressmark::tune(pdn.resonant_period_cycles(), &CpuConfig::table1(), &power);

    let mut baseline = ControlLoop::builder(wl.program.clone())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()
        .unwrap();
    baseline.run(wl.warmup_cycles + 120_000);
    let base = baseline.report();
    assert!(
        base.emergencies.emergency_cycles > 1_000,
        "the stressmark must violate the spec uncontrolled, got {}",
        base.emergencies.emergency_cycles
    );

    let mut controlled = ControlLoop::builder(wl.program.clone())
        .power(power)
        .pdn(pdn)
        .thresholds(thresholds)
        .scope(scope)
        .sensor(SensorConfig {
            delay_cycles: delay,
            noise_mv: 0.0,
            seed: 7,
        })
        .build()
        .unwrap();
    controlled.run(wl.warmup_cycles + 120_000);
    let ctrl = controlled.report();

    assert_eq!(
        ctrl.emergencies.emergency_cycles, 0,
        "the controller must eliminate every emergency"
    );
    assert!(ctrl.interventions > 0, "…by actually intervening");
    // And the cost stays in the paper's ballpark (≈10% at this delay,
    // far from free but acceptable for a worst-case program).
    let loss = 1.0 - ctrl.ipc / base.ipc;
    assert!(loss < 0.30, "perf loss {loss} out of the expected range");
}

/// Emergencies at 400% on a SPEC-class workload are likewise eliminated.
#[test]
fn controller_protects_galgel_at_400_percent() {
    let (power, pdn) = harness(4.0);
    // At 400% the FU/DL1 grip is no longer guaranteed-safe (see the
    // design_space example); the full scope still is.
    let scope = ActuationScope::FuDl1Il1;
    let thresholds = solve(&power, &pdn, scope, 1);
    let wl = spec::by_name("galgel").unwrap();

    let mut baseline = ControlLoop::builder(wl.program.clone())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()
        .unwrap();
    baseline.run(wl.warmup_cycles + 200_000);
    assert!(
        baseline.report().emergencies.emergency_cycles > 0,
        "galgel must cross the band at 400%"
    );

    let mut controlled = ControlLoop::builder(wl.program.clone())
        .power(power)
        .pdn(pdn)
        .thresholds(thresholds)
        .scope(scope)
        .sensor(SensorConfig {
            delay_cycles: 1,
            noise_mv: 0.0,
            seed: 7,
        })
        .build()
        .unwrap();
    controlled.run(wl.warmup_cycles + 200_000);
    assert_eq!(controlled.report().emergencies.emergency_cycles, 0);
}

/// §4.4: "none of the actuator mechanisms alter the program correctness".
/// A finite program must produce bit-identical architectural state under
/// aggressive control and no control.
#[test]
fn control_never_alters_program_results() {
    use voltctl::isa::{IntReg, ProgramBuilder};
    let mut b = ProgramBuilder::new("checksum");
    b.lda(IntReg::R4, IntReg::R31, 0x8000);
    b.lda(IntReg::R1, IntReg::R31, 500);
    b.label("top");
    b.mulq(IntReg::R2, IntReg::R1, IntReg::R1);
    b.stq(IntReg::R2, 0, IntReg::R4);
    b.ldq(IntReg::R3, 0, IntReg::R4);
    b.xor(IntReg::R5, IntReg::R5, IntReg::R3);
    b.addq_imm(IntReg::R4, IntReg::R4, 8);
    b.subq_imm(IntReg::R1, IntReg::R1, 1);
    b.bne(IntReg::R1, "top");
    b.halt();
    let program = b.build().unwrap();

    let (power, pdn) = harness(2.0);
    let mut baseline = ControlLoop::builder(program.clone())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()
        .unwrap();
    baseline.run(10_000_000);
    assert!(baseline.done());

    for scope in [
        ActuationScope::Fu,
        ActuationScope::FuDl1,
        ActuationScope::FuDl1Il1,
    ] {
        let mut controlled = ControlLoop::builder(program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            // Pathologically tight thresholds: constant intervention.
            .thresholds(Thresholds {
                v_low: 0.9995,
                v_high: 1.0005,
            })
            .scope(scope)
            .build()
            .unwrap();
        controlled.run(10_000_000);
        assert!(controlled.done(), "{}: must still finish", scope.name());
        assert!(
            controlled.report().interventions > 0,
            "{}: thresholds this tight must trigger",
            scope.name()
        );
        assert_eq!(
            baseline.arch_digest(),
            controlled.arch_digest(),
            "{}: control must not change results",
            scope.name()
        );
    }
}

/// At 100% of target impedance (the paper's definition), no workload can
/// produce an emergency even uncontrolled.
#[test]
fn target_impedance_means_no_emergencies() {
    let (power, pdn) = harness(1.0);
    for name in ["galgel", "gcc", "ammp"] {
        let wl = spec::by_name(name).unwrap();
        let mut sim = ControlLoop::builder(wl.program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .build()
            .unwrap();
        sim.run(wl.warmup_cycles + 100_000);
        assert_eq!(
            sim.report().emergencies.emergency_cycles,
            0,
            "{name} must stay in spec at the target impedance"
        );
    }
}

/// Sensor noise, compensated per the paper, must not cost protection.
#[test]
fn noisy_sensor_still_protects() {
    let (power, pdn) = harness(2.0);
    let scope = ActuationScope::FuDl1Il1;
    let thresholds = solve(&power, &pdn, scope, 1);
    let (_, wl) = stressmark::tune(pdn.resonant_period_cycles(), &CpuConfig::table1(), &power);
    let mut controlled = ControlLoop::builder(wl.program.clone())
        .power(power)
        .pdn(pdn)
        .thresholds(thresholds)
        .scope(scope)
        .sensor(SensorConfig {
            delay_cycles: 1,
            noise_mv: 10.0,
            seed: 99,
        })
        .build()
        .unwrap();
    controlled.run(wl.warmup_cycles + 120_000);
    assert_eq!(controlled.report().emergencies.emergency_cycles, 0);
}
