//! Integration tests of the control-theoretic design flow (Table 3 and
//! the §5.2 stability findings), exercised through the public facade.

use voltctl::control::prelude::*;
use voltctl::pdn::PdnModel;
use voltctl::power::{PowerModel, PowerParams};

fn setup(percent: f64) -> (PowerModel, PdnModel) {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, percent).unwrap();
    (power, pdn)
}

fn solve(
    power: &PowerModel,
    pdn: &PdnModel,
    scope: ActuationScope,
    delay: u32,
) -> Result<Thresholds, ControlError> {
    solve_thresholds(&SolveSetup::new(
        pdn,
        power.min_current(),
        power.achievable_peak_current(),
        scope.leverage(power),
        delay,
    ))
}

/// Table 3's invariant: the safe window shrinks monotonically with sensor
/// delay, driven by a rising low threshold, and stays within the ±5% band.
#[test]
fn table3_window_shape() {
    let (power, pdn) = setup(2.0);
    let mut prev_window = f64::INFINITY;
    let mut prev_low = 0.0;
    for delay in 0..=6 {
        let t = solve(&power, &pdn, ActuationScope::Ideal, delay).unwrap();
        assert!(t.v_low >= 0.95 && t.v_high <= 1.05);
        assert!(t.v_low < 1.0 && t.v_high > 1.0);
        assert!(t.window_mv() <= prev_window + 1e-9, "delay {delay}");
        assert!(t.v_low >= prev_low - 1e-9, "delay {delay}");
        prev_window = t.window_mv();
        prev_low = t.v_low;
    }
    // Delay-0 anchor matches the paper's 94 mV-class window.
    let t0 = solve(&power, &pdn, ActuationScope::Ideal, 0).unwrap();
    assert!(
        (80.0..=100.0).contains(&t0.window_mv()),
        "delay-0 window {} mV",
        t0.window_mv()
    );
}

/// §5.2: FU-only actuation is usable at small delays but becomes unstable
/// at delay 3; the coarser scopes remain stable through the whole range.
#[test]
fn fu_only_stability_boundary() {
    let (power, pdn) = setup(2.0);
    for delay in 0..=2 {
        assert!(
            solve(&power, &pdn, ActuationScope::Fu, delay).is_ok(),
            "FU must be usable at delay {delay}"
        );
    }
    for delay in 3..=6 {
        assert!(
            matches!(
                solve(&power, &pdn, ActuationScope::Fu, delay),
                Err(ControlError::Unstable { .. })
            ),
            "FU must be unstable at delay {delay}"
        );
    }
    for scope in [ActuationScope::FuDl1, ActuationScope::FuDl1Il1] {
        for delay in 0..=6 {
            assert!(
                solve(&power, &pdn, scope, delay).is_ok(),
                "{} must be stable at delay {delay}",
                scope.name()
            );
        }
    }
}

/// Coarser actuation buys a wider guaranteed window at equal delay.
#[test]
fn coarser_scopes_give_wider_windows() {
    let (power, pdn) = setup(2.0);
    for delay in 0..=4 {
        let fu_dl1 = solve(&power, &pdn, ActuationScope::FuDl1, delay).unwrap();
        let full = solve(&power, &pdn, ActuationScope::FuDl1Il1, delay).unwrap();
        assert!(
            full.window_mv() >= fu_dl1.window_mv() - 1e-9,
            "delay {delay}: {} vs {}",
            full.window_mv(),
            fu_dl1.window_mv()
        );
    }
}

/// Cheaper (higher-impedance) networks leave less room: windows shrink as
/// the impedance multiple grows, and eventually even good actuators fail.
#[test]
fn impedance_pressure_narrows_windows() {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let mut prev = f64::INFINITY;
    for percent in [1.5, 2.0, 3.0, 4.0] {
        let (_, pdn) = setup(percent);
        let t = solve(&power, &pdn, ActuationScope::FuDl1Il1, 2);
        match t {
            Ok(t) => {
                assert!(t.window_mv() <= prev + 1e-9, "at {percent}");
                prev = t.window_mv();
            }
            Err(_) => {
                // Acceptable at the high end; once infeasible, stays so.
                prev = 0.0;
            }
        }
    }
}

/// Error compensation composes with solving: tightened thresholds still
/// fit in the band for the paper's error range at moderate delay.
#[test]
fn error_compensation_fits_paper_range() {
    let (power, pdn) = setup(2.0);
    let t = solve(&power, &pdn, ActuationScope::Ideal, 2).unwrap();
    for error_mv in [10.0, 15.0, 20.0, 25.0] {
        let tt = t.tightened(error_mv).unwrap();
        assert!(tt.v_low < tt.v_high);
    }
}
