//! Randomized property tests across the crates, run on the in-tree
//! [`voltctl_check`] property harness. Each suite keeps its historical
//! base seed (`0xA110`, `0x6A7E`, `0x11EA`, `0xA53A`) and case budget:
//! the runner seeds case `k` with `base + k`, and the generators consume
//! the `Rng` exactly like the hand-rolled loops they replaced, so every
//! historical case is still covered — now with shrinking and failure-seed
//! persistence on top.

use voltctl::cpu::{Cpu, CpuConfig, Domain};
use voltctl::isa::{FpReg, IntReg, ProgramBuilder};
use voltctl::pdn::{convolve, PdnModel};
use voltctl::telemetry::Rng;
use voltctl_check::{check, ensure, ensure_eq, from_fn, vec_f64, vec_of, Config, Gen};

/// A recipe for one straight-line instruction.
#[derive(Debug, Clone, PartialEq)]
enum OpRecipe {
    AddImm { rd: u8, ra: u8, imm: i32 },
    Mul { rd: u8, ra: u8, rb: u8 },
    Xor { rd: u8, ra: u8, rb: u8 },
    Store { src: u8, slot: u8 },
    Load { rd: u8, slot: u8 },
    FpMul { fd: u8, fa: u8 },
    Div { rd: u8, ra: u8, rb: u8 },
}

/// Registers restricted to r1..r8 / f1..f4; memory to 32 slots.
fn random_op(rng: &mut Rng) -> OpRecipe {
    let reg = |rng: &mut Rng| rng.range_i64(1, 9) as u8;
    let freg = |rng: &mut Rng| rng.range_i64(1, 5) as u8;
    let slot = |rng: &mut Rng| rng.range_i64(0, 32) as u8;
    match rng.below(7) {
        0 => OpRecipe::AddImm {
            rd: reg(rng),
            ra: reg(rng),
            imm: rng.range_i64(-1000, 1000) as i32,
        },
        1 => OpRecipe::Mul {
            rd: reg(rng),
            ra: reg(rng),
            rb: reg(rng),
        },
        2 => OpRecipe::Xor {
            rd: reg(rng),
            ra: reg(rng),
            rb: reg(rng),
        },
        3 => OpRecipe::Store {
            src: reg(rng),
            slot: slot(rng),
        },
        4 => OpRecipe::Load {
            rd: reg(rng),
            slot: slot(rng),
        },
        5 => OpRecipe::FpMul {
            fd: freg(rng),
            fa: freg(rng),
        },
        _ => OpRecipe::Div {
            rd: reg(rng),
            ra: reg(rng),
            rb: reg(rng),
        },
    }
}

/// `min..max` random ops: same draw order as the old `random_ops`
/// helper (length via `range_i64`, then each op), plus element-dropping
/// shrinks from [`vec_of`] — a failing program gets minimized.
fn ops_gen(min: usize, max: usize) -> impl Gen<Value = Vec<OpRecipe>> {
    vec_of(from_fn(random_op), min, max)
}

fn build_program(ops: &[OpRecipe]) -> voltctl::isa::Program {
    let mut b = ProgramBuilder::new("prop");
    b.data_f64(0x7000, &[1.5, 2.5, 3.5, 4.5]);
    b.lda(IntReg::R4, IntReg::R31, 0x7000);
    // Seed the integer registers with distinct values.
    for r in 1..9 {
        b.lda(IntReg::new(r), IntReg::R31, (r as i64) * 77 + 5);
    }
    for f in 1..5 {
        b.ldt(FpReg::new(f), ((f as i64) % 4) * 8, IntReg::R4);
    }
    for op in ops {
        match *op {
            OpRecipe::AddImm { rd, ra, imm } => {
                b.addq_imm(IntReg::new(rd), IntReg::new(ra), imm as i64);
            }
            OpRecipe::Mul { rd, ra, rb } => {
                b.mulq(IntReg::new(rd), IntReg::new(ra), IntReg::new(rb));
            }
            OpRecipe::Xor { rd, ra, rb } => {
                b.xor(IntReg::new(rd), IntReg::new(ra), IntReg::new(rb));
            }
            OpRecipe::Store { src, slot } => {
                b.stq(IntReg::new(src), 256 + (slot as i64) * 8, IntReg::R4);
            }
            OpRecipe::Load { rd, slot } => {
                b.ldq(IntReg::new(rd), 256 + (slot as i64) * 8, IntReg::R4);
            }
            OpRecipe::FpMul { fd, fa } => {
                b.mult(FpReg::new(fd), FpReg::new(fa), FpReg::new(fa));
            }
            OpRecipe::Div { rd, ra, rb } => {
                b.divq(IntReg::new(rd), IntReg::new(ra), IntReg::new(rb));
            }
        }
    }
    b.halt();
    b.build().expect("generated programs are label-free")
}

/// Architectural results are a function of the program alone:
/// microarchitecture (window sizes, widths, caches) must not change
/// them — the foundation for "control does not alter correctness".
#[test]
fn results_independent_of_microarchitecture() {
    check(
        "properties.uarch-independent",
        &Config::cases(24, 0xA110),
        &ops_gen(1, 200),
        |ops| {
            let program = build_program(ops);
            let mut big = Cpu::new(CpuConfig::table1(), &program).unwrap();
            big.run(1_000_000);
            ensure!(big.done(), "table1 config did not finish");
            let mut small = Cpu::new(CpuConfig::small(), &program).unwrap();
            small.run(2_000_000);
            ensure!(small.done(), "small config did not finish");
            ensure_eq!(big.arch_digest(), small.arch_digest());
            ensure_eq!(big.stats().committed, small.stats().committed);
            Ok(())
        },
    );
}

/// Random gating schedules stall execution but never change results.
#[test]
fn gating_schedules_never_change_results() {
    // Draw order matches the historical loop: the op list first, then
    // the schedule (`below(40)` entries of `(below(3), range_i64(1,16),
    // next_bool())`), so the tuple generator replays the same streams.
    let schedule_gen = from_fn(|rng: &mut Rng| -> Vec<(u8, u8, bool)> {
        (0..rng.below(40))
            .map(|_| {
                (
                    rng.below(3) as u8,
                    rng.range_i64(1, 16) as u8,
                    rng.next_bool(),
                )
            })
            .collect()
    });
    check(
        "properties.gating-preserves-results",
        &Config::cases(24, 0x6A7E),
        &(ops_gen(1, 120), schedule_gen),
        |(ops, schedule)| {
            let program = build_program(ops);
            let mut free = Cpu::new(CpuConfig::table1(), &program).unwrap();
            free.run(1_000_000);
            ensure!(free.done(), "ungated run did not finish");

            let mut gated = Cpu::new(CpuConfig::table1(), &program).unwrap();
            'outer: for &(domain, cycles, phantom) in schedule {
                let d = match domain {
                    0 => Domain::Fu,
                    1 => Domain::Dl1,
                    _ => Domain::Il1,
                };
                if phantom {
                    gated.gating_mut().set_phantom(d, true);
                } else {
                    gated.gating_mut().set_gated(d, true);
                }
                for _ in 0..cycles {
                    if gated.done() {
                        break 'outer;
                    }
                    gated.step();
                }
                gated.gating_mut().release_all();
            }
            gated.gating_mut().release_all();
            gated.run(1_000_000);
            ensure!(gated.done(), "gated run did not finish");
            ensure_eq!(free.arch_digest(), gated.arch_digest());
            Ok(())
        },
    );
}

/// The PDN is linear time-invariant: scaling the current trace scales
/// the deviation, and the state-space path agrees with convolution.
#[test]
fn pdn_linearity_and_equivalence() {
    let model = PdnModel::paper_default().unwrap();
    let kernel = convolve::kernel_for(&model, 1e-9);
    check(
        "properties.pdn-linearity",
        &Config::cases(24, 0x11EA),
        &(vec_f64(16, 300, 0.0, 60.0), voltctl_check::f64_in(0.1, 4.0)),
        |(trace, scale)| {
            let mut s1 = model.discretize();
            let v1: Vec<f64> = trace
                .iter()
                .map(|&i| s1.step(i) - model.v_nominal())
                .collect();

            let scaled: Vec<f64> = trace.iter().map(|&i| i * scale).collect();
            let mut s2 = model.discretize();
            let v2: Vec<f64> = scaled
                .iter()
                .map(|&i| s2.step(i) - model.v_nominal())
                .collect();
            for (t, (a, b)) in v1.iter().zip(&v2).enumerate() {
                ensure!(
                    (a * scale - b).abs() < 1e-9,
                    "linearity broke at cycle {t}: {a} * {scale} vs {b}"
                );
            }

            let conv = convolve::convolve_full(&kernel, trace, 0.0);
            for (t, (a, b)) in v1.iter().zip(&conv).enumerate() {
                ensure!(
                    (a - b).abs() < 1e-7,
                    "state-space vs convolution at cycle {t}: {a} vs {b}"
                );
            }
            Ok(())
        },
    );
}

/// Assembler round-trip: disassembling any generated program and
/// re-assembling it yields the identical instruction stream.
#[test]
fn assembler_roundtrip() {
    check(
        "properties.assembler-roundtrip",
        &Config::cases(24, 0xA53A),
        &ops_gen(1, 150),
        |ops| {
            let program = build_program(ops);
            let text = voltctl::isa::asm::disassemble(&program);
            let back = voltctl::isa::asm::assemble("prop", &text)
                .map_err(|e| format!("re-assemble: {e}"))?;
            ensure_eq!(program.insts(), back.insts());
            Ok(())
        },
    );
}
