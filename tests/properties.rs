//! Property-based integration tests across the crates.

use proptest::prelude::*;
use voltctl::cpu::{Cpu, CpuConfig, Domain};
use voltctl::isa::{FpReg, IntReg, ProgramBuilder};
use voltctl::pdn::{convolve, PdnModel};

/// A recipe for one straight-line instruction, generatable by proptest.
#[derive(Debug, Clone)]
enum OpRecipe {
    AddImm { rd: u8, ra: u8, imm: i32 },
    Mul { rd: u8, ra: u8, rb: u8 },
    Xor { rd: u8, ra: u8, rb: u8 },
    Store { src: u8, slot: u8 },
    Load { rd: u8, slot: u8 },
    FpMul { fd: u8, fa: u8 },
    Div { rd: u8, ra: u8, rb: u8 },
}

fn op_strategy() -> impl Strategy<Value = OpRecipe> {
    // Registers restricted to r1..r8 / f1..f4; memory to 32 slots.
    let reg = 1u8..9;
    let freg = 1u8..5;
    let slot = 0u8..32;
    prop_oneof![
        (reg.clone(), reg.clone(), -1000i32..1000)
            .prop_map(|(rd, ra, imm)| OpRecipe::AddImm { rd, ra, imm }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, ra, rb)| OpRecipe::Mul { rd, ra, rb }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, ra, rb)| OpRecipe::Xor { rd, ra, rb }),
        (reg.clone(), slot.clone()).prop_map(|(src, slot)| OpRecipe::Store { src, slot }),
        (reg.clone(), slot).prop_map(|(rd, slot)| OpRecipe::Load { rd, slot }),
        (freg.clone(), freg).prop_map(|(fd, fa)| OpRecipe::FpMul { fd, fa }),
        (reg.clone(), reg.clone(), reg).prop_map(|(rd, ra, rb)| OpRecipe::Div { rd, ra, rb }),
    ]
}

fn build_program(ops: &[OpRecipe]) -> voltctl::isa::Program {
    let mut b = ProgramBuilder::new("prop");
    b.data_f64(0x7000, &[1.5, 2.5, 3.5, 4.5]);
    b.lda(IntReg::R4, IntReg::R31, 0x7000);
    // Seed the integer registers with distinct values.
    for r in 1..9 {
        b.lda(IntReg::new(r), IntReg::R31, (r as i64) * 77 + 5);
    }
    for f in 1..5 {
        b.ldt(FpReg::new(f), ((f as i64) % 4) * 8, IntReg::R4);
    }
    for op in ops {
        match *op {
            OpRecipe::AddImm { rd, ra, imm } => {
                b.addq_imm(IntReg::new(rd), IntReg::new(ra), imm as i64);
            }
            OpRecipe::Mul { rd, ra, rb } => {
                b.mulq(IntReg::new(rd), IntReg::new(ra), IntReg::new(rb));
            }
            OpRecipe::Xor { rd, ra, rb } => {
                b.xor(IntReg::new(rd), IntReg::new(ra), IntReg::new(rb));
            }
            OpRecipe::Store { src, slot } => {
                b.stq(IntReg::new(src), 256 + (slot as i64) * 8, IntReg::R4);
            }
            OpRecipe::Load { rd, slot } => {
                b.ldq(IntReg::new(rd), 256 + (slot as i64) * 8, IntReg::R4);
            }
            OpRecipe::FpMul { fd, fa } => {
                b.mult(FpReg::new(fd), FpReg::new(fa), FpReg::new(fa));
            }
            OpRecipe::Div { rd, ra, rb } => {
                b.divq(IntReg::new(rd), IntReg::new(ra), IntReg::new(rb));
            }
        }
    }
    b.halt();
    b.build().expect("generated programs are label-free")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Architectural results are a function of the program alone:
    /// microarchitecture (window sizes, widths, caches) must not change
    /// them — the foundation for "control does not alter correctness".
    #[test]
    fn results_independent_of_microarchitecture(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let program = build_program(&ops);
        let mut big = Cpu::new(CpuConfig::table1(), &program).unwrap();
        big.run(1_000_000);
        prop_assert!(big.done());
        let mut small = Cpu::new(CpuConfig::small(), &program).unwrap();
        small.run(2_000_000);
        prop_assert!(small.done());
        prop_assert_eq!(big.arch_digest(), small.arch_digest());
        prop_assert_eq!(big.stats().committed, small.stats().committed);
    }

    /// Random gating schedules stall execution but never change results.
    #[test]
    fn gating_schedules_never_change_results(
        ops in prop::collection::vec(op_strategy(), 1..120),
        schedule in prop::collection::vec((0u8..3, 1u8..16, any::<bool>()), 0..40),
    ) {
        let program = build_program(&ops);
        let mut free = Cpu::new(CpuConfig::table1(), &program).unwrap();
        free.run(1_000_000);
        prop_assert!(free.done());

        let mut gated = Cpu::new(CpuConfig::table1(), &program).unwrap();
        let mut step = 0usize;
        'outer: for &(domain, cycles, phantom) in &schedule {
            let d = match domain {
                0 => Domain::Fu,
                1 => Domain::Dl1,
                _ => Domain::Il1,
            };
            if phantom {
                gated.gating_mut().set_phantom(d, true);
            } else {
                gated.gating_mut().set_gated(d, true);
            }
            for _ in 0..cycles {
                if gated.done() {
                    break 'outer;
                }
                gated.step();
                step += 1;
            }
            gated.gating_mut().release_all();
        }
        let _ = step;
        gated.gating_mut().release_all();
        gated.run(1_000_000);
        prop_assert!(gated.done());
        prop_assert_eq!(free.arch_digest(), gated.arch_digest());
    }

    /// The PDN is linear time-invariant: scaling the current trace scales
    /// the deviation, and the state-space path agrees with convolution.
    #[test]
    fn pdn_linearity_and_equivalence(
        trace in prop::collection::vec(0.0f64..60.0, 16..300),
        scale in 0.1f64..4.0,
    ) {
        let model = PdnModel::paper_default().unwrap();

        let mut s1 = model.discretize();
        let v1: Vec<f64> = trace.iter().map(|&i| s1.step(i) - model.v_nominal()).collect();

        let scaled: Vec<f64> = trace.iter().map(|&i| i * scale).collect();
        let mut s2 = model.discretize();
        let v2: Vec<f64> = scaled.iter().map(|&i| s2.step(i) - model.v_nominal()).collect();
        for (a, b) in v1.iter().zip(&v2) {
            prop_assert!((a * scale - b).abs() < 1e-9);
        }

        let kernel = convolve::kernel_for(&model, 1e-9);
        let conv = convolve::convolve_full(&kernel, &trace, 0.0);
        for (a, b) in v1.iter().zip(&conv) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    /// Assembler round-trip: disassembling any generated program and
    /// re-assembling it yields the identical instruction stream.
    #[test]
    fn assembler_roundtrip(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let program = build_program(&ops);
        let text = voltctl::isa::asm::disassemble(&program);
        let back = voltctl::isa::asm::assemble("prop", &text).expect("disassembly re-assembles");
        prop_assert_eq!(program.insts(), back.insts());
    }
}
