//! Integration tests for the telemetry layer as seen through the public
//! facade: a recorded closed-loop run must export counters that agree
//! exactly with the loop's own report.

use voltctl::control::analysis::{evaluate_program_recorded, EvalSetup};
use voltctl::control::prelude::*;
use voltctl::cpu::CpuConfig;
use voltctl::isa::{IntReg, Program, ProgramBuilder};
use voltctl::pdn::PdnModel;
use voltctl::power::{PowerModel, PowerParams};
use voltctl::telemetry::{MemoryRecorder, Snapshot};

fn spin() -> Program {
    let mut b = ProgramBuilder::new("spin");
    b.label("top");
    b.addq_imm(IntReg::R1, IntReg::R1, 1);
    b.mulq(IntReg::R2, IntReg::R1, IntReg::R1);
    b.br("top");
    b.build().unwrap()
}

fn setup(thresholds: Thresholds) -> EvalSetup {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 2.0).unwrap();
    EvalSetup {
        cpu_config: CpuConfig::table1(),
        power,
        pdn,
        thresholds,
        sensor: SensorConfig::default(),
        scope: ActuationScope::FuDl1,
    }
}

fn recorded_run(thresholds: Thresholds, cycles: u64) -> (LoopReport, Snapshot) {
    let s = setup(thresholds);
    let (evaluation, rec) =
        evaluate_program_recorded(&spin(), &s, 500, cycles, MemoryRecorder::new()).unwrap();
    (evaluation.controlled, rec.snapshot())
}

/// The paper's central bookkeeping invariant: every cycle the controller
/// is in exactly one band, so the three band counters partition the run.
#[test]
fn band_cycles_partition_the_run() {
    for thresholds in [
        // Wide window: the controller never leaves Normal.
        Thresholds {
            v_low: 0.955,
            v_high: 1.045,
        },
        // Tight window: Low/High bands are actually visited.
        Thresholds {
            v_low: 0.9995,
            v_high: 1.0005,
        },
    ] {
        let (report, snap) = recorded_run(thresholds, 8_000);
        let low = snap.counter("loop.cycles_in_low").unwrap();
        let normal = snap.counter("loop.cycles_in_normal").unwrap();
        let high = snap.counter("loop.cycles_in_high").unwrap();
        let total = snap.counter("loop.cycles").unwrap();
        assert_eq!(low + normal + high, total, "band counters must partition");
        assert_eq!(total, report.cycles);
        assert_eq!(low, report.cycles_in_low);
        assert_eq!(normal, report.cycles_in_normal);
        assert_eq!(high, report.cycles_in_high);
    }
}

/// The exported emergency count is the EmergencyReport's, verbatim.
#[test]
fn emergency_counter_matches_report() {
    let (report, snap) = recorded_run(
        Thresholds {
            v_low: 0.9995,
            v_high: 1.0005,
        },
        8_000,
    );
    assert_eq!(
        snap.counter("pdn.emergency_cycles").unwrap(),
        report.emergencies.emergency_cycles
    );
    assert_eq!(
        snap.counter("pdn.observed_cycles").unwrap(),
        report.emergencies.total_cycles
    );
    assert_eq!(
        snap.counter("loop.reduce_cycles").unwrap(),
        report.reduce_cycles
    );
    assert_eq!(
        snap.counter("loop.interventions").unwrap(),
        report.interventions
    );
    // Gating duty is exported and consistent with the counters.
    let duty = snap.value("loop.gating_duty").unwrap().mean();
    assert!((duty - report.gating_duty()).abs() < 1e-12);
}

/// Sub-step wall-clock timers stride-sample the run: one span per
/// [`TIMER_SAMPLE_STRIDE`] cycles, uniformly across all four sub-steps.
///
/// [`TIMER_SAMPLE_STRIDE`]: voltctl::control::loopsim::TIMER_SAMPLE_STRIDE
#[test]
fn sub_step_timers_cover_the_run() {
    use voltctl::control::loopsim::TIMER_SAMPLE_STRIDE;
    let (report, snap) = recorded_run(
        Thresholds {
            v_low: 0.955,
            v_high: 1.045,
        },
        4_000,
    );
    let sampled = report.cycles.div_ceil(TIMER_SAMPLE_STRIDE);
    for name in [
        "loop.step.cpu_ns",
        "loop.step.power_ns",
        "loop.step.pdn_ns",
        "loop.step.control_ns",
    ] {
        let t = snap.timer(name).unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(t.count, sampled, "{name} samples the run uniformly");
        assert!(t.count > 0, "{name} must observe the run");
    }
}

/// The exported run parses back out of the JSONL/CSV forms: every line
/// is one object, and the headline counters survive the round trip.
#[test]
fn export_round_trips_headline_counters() {
    use voltctl::telemetry::export;
    let (report, snap) = recorded_run(
        Thresholds {
            v_low: 0.9995,
            v_high: 1.0005,
        },
        4_000,
    );
    let jsonl = export::to_jsonl(&snap);
    let needle = format!(
        "{{\"kind\":\"counter\",\"name\":\"loop.cycles\",\"value\":{}}}",
        report.cycles
    );
    assert!(jsonl.lines().any(|l| l == needle), "exact counter line");
    let csv = export::to_csv(&snap);
    let header_arity = csv.lines().next().unwrap().split(',').count();
    for line in csv.lines() {
        assert_eq!(line.split(',').count(), header_arity);
    }
}
