//! Model-based testing of the set-associative cache against a trivially
//! correct reference implementation (per-set recency list).

use proptest::prelude::*;
use voltctl_cpu::cache::Cache;
use voltctl_cpu::CacheConfig;

/// The obviously-correct reference: each set is a vector of (tag, dirty)
/// ordered most-recent-first, truncated to the associativity.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(config: &CacheConfig) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); config.sets()],
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (config.sets() - 1) as u64,
        }
    }

    /// Returns (hit, writeback).
    fn access(&mut self, addr: u64, write: bool) -> (bool, bool) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&(t, _)| t == tag) {
            let (t, d) = entries.remove(pos);
            entries.insert(0, (t, d || write));
            return (true, false);
        }
        entries.insert(0, (tag, write));
        let mut writeback = false;
        if entries.len() > self.ways {
            let (_, dirty) = entries.pop().expect("just exceeded capacity");
            writeback = dirty;
        }
        (false, writeback)
    }
}

fn small_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 8 * 64, // 4 sets x 2 ways
        ways: 2,
        line_bytes: 64,
        hit_latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every access sequence produces identical hit/writeback behavior in
    /// the real cache and the reference model.
    #[test]
    fn cache_matches_reference_model(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..400),
    ) {
        let config = small_config();
        let mut cache = Cache::new(&config);
        let mut reference = RefCache::new(&config);
        let mut hits = 0u64;
        let mut writebacks = 0u64;
        for &(line_idx, write) in &accesses {
            let addr = line_idx * 64 + (line_idx % 64); // arbitrary offset
            let got = cache.access(addr, write);
            let (want_hit, want_wb) = reference.access(addr, write);
            prop_assert_eq!(got.hit, want_hit, "addr {:#x} write {}", addr, write);
            prop_assert_eq!(got.writeback, want_wb, "addr {:#x} write {}", addr, write);
            if got.hit {
                hits += 1;
            }
            if got.writeback {
                writebacks += 1;
            }
        }
        prop_assert_eq!(cache.accesses(), accesses.len() as u64);
        prop_assert_eq!(cache.misses(), accesses.len() as u64 - hits);
        prop_assert_eq!(cache.writebacks(), writebacks);
    }

    /// Probing never changes state: interleaving probes is invisible.
    #[test]
    fn probe_is_side_effect_free(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        let config = small_config();
        let mut plain = Cache::new(&config);
        let mut probed = Cache::new(&config);
        for &(line_idx, write) in &accesses {
            let addr = line_idx * 64;
            // Probe a few unrelated addresses first.
            for p in 0..3u64 {
                let _ = probed.probe(p * 4096 + addr);
            }
            let a = plain.access(addr, write);
            let b = probed.access(addr, write);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(plain.misses(), probed.misses());
    }
}
