//! Model-based testing of the set-associative cache against a trivially
//! correct reference implementation (per-set recency list), driven by the
//! workspace's deterministic RNG (seeded generation replaces proptest —
//! the build environment has no registry access).

use voltctl_cpu::cache::Cache;
use voltctl_cpu::CacheConfig;
use voltctl_telemetry::Rng;

/// The obviously-correct reference: each set is a vector of (tag, dirty)
/// ordered most-recent-first, truncated to the associativity.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(config: &CacheConfig) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); config.sets()],
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (config.sets() - 1) as u64,
        }
    }

    /// Returns (hit, writeback).
    fn access(&mut self, addr: u64, write: bool) -> (bool, bool) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&(t, _)| t == tag) {
            let (t, d) = entries.remove(pos);
            entries.insert(0, (t, d || write));
            return (true, false);
        }
        entries.insert(0, (tag, write));
        let mut writeback = false;
        if entries.len() > self.ways {
            let (_, dirty) = entries.pop().expect("just exceeded capacity");
            writeback = dirty;
        }
        (false, writeback)
    }
}

fn small_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 8 * 64, // 4 sets x 2 ways
        ways: 2,
        line_bytes: 64,
        hit_latency: 1,
    }
}

fn random_accesses(rng: &mut Rng, min: usize, max: usize) -> Vec<(u64, bool)> {
    let n = rng.range_i64(min as i64, max as i64) as usize;
    (0..n).map(|_| (rng.below(64), rng.next_bool())).collect()
}

/// Every access sequence produces identical hit/writeback behavior in
/// the real cache and the reference model.
#[test]
fn cache_matches_reference_model() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0xCAC4E + seed);
        let accesses = random_accesses(&mut rng, 1, 400);
        let config = small_config();
        let mut cache = Cache::new(&config);
        let mut reference = RefCache::new(&config);
        let mut hits = 0u64;
        let mut writebacks = 0u64;
        for &(line_idx, write) in &accesses {
            let addr = line_idx * 64 + (line_idx % 64); // arbitrary offset
            let got = cache.access(addr, write);
            let (want_hit, want_wb) = reference.access(addr, write);
            assert_eq!(
                got.hit, want_hit,
                "seed {seed} addr {addr:#x} write {write}"
            );
            assert_eq!(
                got.writeback, want_wb,
                "seed {seed} addr {addr:#x} write {write}"
            );
            if got.hit {
                hits += 1;
            }
            if got.writeback {
                writebacks += 1;
            }
        }
        assert_eq!(cache.accesses(), accesses.len() as u64, "seed {seed}");
        assert_eq!(cache.misses(), accesses.len() as u64 - hits, "seed {seed}");
        assert_eq!(cache.writebacks(), writebacks, "seed {seed}");
    }
}

/// Probing never changes state: interleaving probes is invisible.
#[test]
fn probe_is_side_effect_free() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x9206E + seed);
        let accesses = random_accesses(&mut rng, 1, 200);
        let config = small_config();
        let mut plain = Cache::new(&config);
        let mut probed = Cache::new(&config);
        for &(line_idx, write) in &accesses {
            let addr = line_idx * 64;
            // Probe a few unrelated addresses first.
            for p in 0..3u64 {
                let _ = probed.probe(p * 4096 + addr);
            }
            let a = plain.access(addr, write);
            let b = probed.access(addr, write);
            assert_eq!(a, b, "seed {seed}");
        }
        assert_eq!(plain.misses(), probed.misses(), "seed {seed}");
    }
}
