//! Subroutine call/return behavior: functional correctness and
//! return-address-stack prediction.

use voltctl_cpu::{Cpu, CpuConfig};
use voltctl_isa::builder::ProgramBuilder;
use voltctl_isa::reg::IntReg;

fn link() -> IntReg {
    IntReg::new(26)
}

fn run(program: &voltctl_isa::Program) -> Cpu {
    let mut cpu = Cpu::new(CpuConfig::table1(), program).unwrap();
    cpu.run(5_000_000);
    assert!(cpu.done(), "program must finish");
    cpu
}

/// A simple call: the subroutine runs exactly once per call and control
/// returns to the instruction after the `jsr`.
#[test]
fn call_and_return_are_functionally_correct() {
    let mut b = ProgramBuilder::new("t");
    b.lda(IntReg::R1, IntReg::R31, 100);
    b.label("top");
    b.jsr(link(), "double");
    b.subq_imm(IntReg::R1, IntReg::R1, 1);
    b.bne(IntReg::R1, "top");
    b.halt();
    // Subroutine: r2 += 2.
    b.label("double");
    b.addq_imm(IntReg::R2, IntReg::R2, 2);
    b.ret(link());
    let cpu = run(&b.build().unwrap());
    assert_eq!(cpu.reg(IntReg::R2.into()), 200);
}

/// Nested calls: the RAS depth handles caller-of-caller correctly.
#[test]
fn nested_calls_return_in_order() {
    let mut b = ProgramBuilder::new("t");
    let link2 = IntReg::new(27);
    b.lda(IntReg::R1, IntReg::R31, 50);
    b.label("top");
    b.jsr(link(), "outer");
    b.subq_imm(IntReg::R1, IntReg::R1, 1);
    b.bne(IntReg::R1, "top");
    b.halt();
    b.label("outer");
    b.addq_imm(IntReg::R2, IntReg::R2, 1);
    b.jsr(link2, "inner");
    b.addq_imm(IntReg::R3, IntReg::R3, 1);
    b.ret(link());
    b.label("inner");
    b.addq_imm(IntReg::R5, IntReg::R5, 1);
    b.ret(link2);
    let cpu = run(&b.build().unwrap());
    assert_eq!(cpu.reg(IntReg::R2.into()), 50);
    assert_eq!(cpu.reg(IntReg::R3.into()), 50);
    assert_eq!(cpu.reg(IntReg::R5.into()), 50);
}

/// The RAS predicts returns: a call-heavy loop sustains a near-zero
/// misprediction rate once warm.
#[test]
fn ras_predicts_returns() {
    let mut b = ProgramBuilder::new("t");
    b.lda(IntReg::R1, IntReg::R31, 3000);
    b.label("top");
    b.jsr(link(), "work");
    b.subq_imm(IntReg::R1, IntReg::R1, 1);
    b.bne(IntReg::R1, "top");
    b.halt();
    b.label("work");
    b.addq_imm(IntReg::R2, IntReg::R2, 1);
    b.xor(IntReg::R3, IntReg::R2, IntReg::R2);
    b.ret(link());
    let cpu = run(&b.build().unwrap());
    assert!(
        cpu.stats().mispredict_rate() < 0.01,
        "calls/returns must predict: rate {}",
        cpu.stats().mispredict_rate()
    );
    // 3 branch-class instructions per iteration (jsr, ret, bne).
    assert!(cpu.stats().branches >= 9000);
}

/// A return through a *clobbered* link register goes where the register
/// says (functional correctness over prediction).
#[test]
fn ret_follows_the_register_not_the_stack() {
    let mut b = ProgramBuilder::new("t");
    b.jsr(link(), "sub");
    // jsr returns here (index 1): this `br end` is skipped by the hack below.
    b.br("end");
    b.label("after"); // index 2
    b.addq_imm(IntReg::R2, IntReg::R2, 7);
    b.label("end");
    b.halt();
    b.label("sub");
    // Overwrite the link register to point at `after` instead.
    b.lda(link(), IntReg::R31, 2);
    b.ret(link());
    let cpu = run(&b.build().unwrap());
    assert_eq!(cpu.reg(IntReg::R2.into()), 7, "must land on `after`");
    assert!(cpu.stats().mispredicts >= 1, "the RAS must mispredict this");
}

/// Assembler round-trip for call instructions.
#[test]
fn jsr_ret_roundtrip_through_asm() {
    let src = "top:\n    jsr r26, fnc\n    halt\nfnc:\n    addq r2, r2, #1\n    ret r26\n";
    let p = voltctl_isa::asm::assemble("t", src).unwrap();
    let text = voltctl_isa::asm::disassemble(&p);
    let p2 = voltctl_isa::asm::assemble("t", &text).unwrap();
    assert_eq!(p.insts(), p2.insts());
    let cpu = run(&p);
    assert_eq!(cpu.reg(IntReg::new(2).into()), 1);
}
