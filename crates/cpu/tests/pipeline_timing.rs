//! Timing-behavior integration tests of the pipeline: these verify that
//! the microarchitectural mechanisms the dI/dt workloads rely on actually
//! produce their documented latencies and stalls.

use voltctl_cpu::{Cpu, CpuConfig};
use voltctl_isa::builder::ProgramBuilder;
use voltctl_isa::reg::{FpReg, IntReg};

fn run(program: &voltctl_isa::Program) -> Cpu {
    let mut cpu = Cpu::new(CpuConfig::table1(), program).unwrap();
    let ran = cpu.run(5_000_000);
    assert!(cpu.done(), "did not finish in {ran} cycles");
    cpu
}

/// An unpredictable branch costs roughly the configured 10-cycle refill
/// per misprediction compared against the same loop with the branch
/// direction fixed.
#[test]
fn mispredict_penalty_is_visible_in_cycle_counts() {
    let build = |random: bool| {
        let mut b = ProgramBuilder::new("b");
        b.lda(IntReg::new(9), IntReg::R31, 0x12345 | 1);
        b.lda(IntReg::R1, IntReg::R31, 3000);
        b.label("top");
        // xorshift; take the branch on a pseudo-random (or constant) bit.
        b.sll_imm(IntReg::new(10), IntReg::new(9), 13);
        b.xor(IntReg::new(9), IntReg::new(9), IntReg::new(10));
        b.srl_imm(IntReg::new(10), IntReg::new(9), 7);
        b.xor(IntReg::new(9), IntReg::new(9), IntReg::new(10));
        if random {
            b.and_imm(IntReg::new(10), IntReg::new(9), 1);
        } else {
            b.and_imm(IntReg::new(10), IntReg::new(9), 0); // always zero
        }
        b.beq(IntReg::new(10), "skip");
        b.addq_imm(IntReg::new(11), IntReg::new(11), 1);
        b.label("skip");
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        b.build().unwrap()
    };
    let predictable = run(&build(false));
    let random = run(&build(true));
    let extra_mispredicts =
        random.stats().mispredicts as i64 - predictable.stats().mispredicts as i64;
    assert!(
        extra_mispredicts > 1000,
        "the random branch must mispredict heavily: {extra_mispredicts}"
    );
    let extra_cycles = random.stats().cycles as i64 - predictable.stats().cycles as i64;
    let per_mispredict = extra_cycles as f64 / extra_mispredicts as f64;
    assert!(
        (6.0..20.0).contains(&per_mispredict),
        "each mispredict should cost about the 10-cycle refill, got {per_mispredict:.1}"
    );
}

/// A load must wait for an incomplete older store to the same address:
/// delaying the store's data (behind a divide) delays the load's
/// dependents by a comparable amount.
#[test]
fn load_waits_for_older_store_data() {
    let build = |through_divide: bool| {
        let mut b = ProgramBuilder::new("b");
        b.data_f64(0x4000, &[9.0, 3.0]);
        b.lda(IntReg::R4, IntReg::R31, 0x4000);
        b.ldt(FpReg::F1, 0, IntReg::R4);
        b.ldt(FpReg::F2, 8, IntReg::R4);
        b.lda(IntReg::R1, IntReg::R31, 500);
        b.label("top");
        if through_divide {
            // Store data comes from a fresh 18-cycle divide each iteration.
            b.divt(FpReg::F3, FpReg::F1, FpReg::F2);
            b.stt(FpReg::F3, 16, IntReg::R4);
        } else {
            b.stt(FpReg::F1, 16, IntReg::R4);
        }
        b.ldq(IntReg::R7, 16, IntReg::R4); // must wait for the store
        b.cmoveq(IntReg::R3, IntReg::R31, IntReg::R7);
        b.stq(IntReg::R3, 24, IntReg::R4);
        b.ldq(IntReg::R5, 24, IntReg::R4);
        b.cmoveq(IntReg::R6, IntReg::R31, IntReg::R5);
        // Serialize the loop on the chain's end so iterations can't overlap.
        b.stq(IntReg::R6, 0, IntReg::R4);
        b.ldl(IntReg::new(12), 0, IntReg::R4);
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        b.build().unwrap()
    };
    let fast = run(&build(false));
    let slow = run(&build(true));
    let delta = slow.stats().cycles as f64 - fast.stats().cycles as f64;
    let per_iter = delta / 500.0;
    // The divide's 18-cycle latency must show through the store-load pair
    // (adjacent iterations' divides overlap on the two FP units, so the
    // steady-state exposure is roughly latency/2).
    assert!(
        (5.0..25.0).contains(&per_iter),
        "the divide must serialize through the store-load pair: {per_iter:.1} extra cycles/iter"
    );
}

/// Integer divides are unpipelined: independent divides serialize once
/// both divider units are occupied, at the 20-cycle occupancy.
#[test]
fn unpipelined_divider_throughput() {
    const ITERS: i64 = 50;
    let build = |n: usize| {
        let mut b = ProgramBuilder::new("b");
        for r in 1..8 {
            b.lda(IntReg::new(r), IntReg::R31, 1000 + r as i64);
        }
        b.lda(IntReg::R8, IntReg::R31, ITERS);
        b.label("top");
        for k in 0..n {
            // All independent: different destinations, constant sources.
            b.divq(
                IntReg::new(10 + (k % 6) as u8),
                IntReg::new(1 + (k % 6) as u8),
                IntReg::new(2),
            );
        }
        b.subq_imm(IntReg::R8, IntReg::R8, 1);
        b.bne(IntReg::R8, "top");
        b.halt();
        b.build().unwrap()
    };
    let few = run(&build(2)).stats().cycles;
    let many = run(&build(12)).stats().cycles;
    // Per iteration: 12 divides on 2 unpipelined 20-cycle units take
    // ~120 cycles vs ~20 for 2 divides — about 100 extra per iteration,
    // in steady state with the code I-cache resident.
    let per_iter = (many as f64 - few as f64) / ITERS as f64;
    assert!(
        (80.0..130.0).contains(&per_iter),
        "divider occupancy should dominate: {per_iter:.1} extra cycles/iter"
    );
}

/// Gating the FU domain mid-flight never loses issued work: a divide that
/// started before the gate completes and the program finishes.
#[test]
fn gating_does_not_cancel_inflight_work() {
    let mut b = ProgramBuilder::new("b");
    b.data_f64(0x4000, &[8.0, 2.0]);
    b.lda(IntReg::R4, IntReg::R31, 0x4000);
    b.ldt(FpReg::F1, 0, IntReg::R4);
    b.ldt(FpReg::F2, 8, IntReg::R4);
    b.divt(FpReg::F3, FpReg::F1, FpReg::F2);
    b.stt(FpReg::F3, 16, IntReg::R4);
    b.halt();
    let program = b.build().unwrap();

    let mut cpu = Cpu::new(CpuConfig::table1(), &program).unwrap();
    // Let the divide issue, then slam the gate shut for a while.
    for _ in 0..8 {
        cpu.step();
    }
    cpu.gating_mut().gate_fu = true;
    cpu.gating_mut().gate_dl1 = true;
    for _ in 0..100 {
        cpu.step();
    }
    cpu.gating_mut().release_all();
    cpu.run(100_000);
    assert!(cpu.done());
    assert_eq!(cpu.memory().read_f64(0x4010), 4.0);
}

/// The branch predictor actually helps: a loop's steady-state throughput
/// beats the mispredict-every-iteration bound by a wide margin.
#[test]
fn predictor_learns_loop_branches() {
    let mut b = ProgramBuilder::new("b");
    b.lda(IntReg::R1, IntReg::R31, 5000);
    b.label("top");
    b.addq_imm(IntReg::R2, IntReg::R2, 1);
    b.subq_imm(IntReg::R1, IntReg::R1, 1);
    b.bne(IntReg::R1, "top");
    b.halt();
    let cpu = run(&b.build().unwrap());
    assert!(
        cpu.stats().mispredict_rate() < 0.01,
        "loop branch must be learned: rate {}",
        cpu.stats().mispredict_rate()
    );
    // 3 instructions per iteration at <2 cycles per iteration.
    assert!(cpu.stats().ipc() > 1.5, "ipc {}", cpu.stats().ipc());
}
