//! Set-associative caches and the two-level hierarchy.
//!
//! Timing-only: data values live in [`crate::mem::Memory`]; the caches
//! track presence, recency, and dirtiness to produce hit/miss latencies and
//! the per-level access counts the power model consumes. Writes allocate
//! (write-allocate, write-back). Misses are modeled as independent latency
//! chains (no MSHR contention), which is the same simplification Wattch's
//! timing substrate makes for bandwidth-light workloads.

use crate::config::{CacheConfig, CpuConfig};

/// One set-associative, LRU, write-back cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`: tag, or `None` when invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamps parallel to `tags` (higher = more recent).
    stamps: Vec<u64>,
    dirty: Vec<bool>,
    tick: u64,
    accesses: u64,
    misses: u64,
    writebacks: u64,
}

/// Result of one cache-level access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty victim was written back.
    pub writeback: bool,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is inconsistent (see
    /// [`CacheConfig::sets`]).
    pub fn new(config: &CacheConfig) -> Cache {
        let sets = config.sets();
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            sets,
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![None; sets * config.ways],
            stamps: vec![0; sets * config.ways],
            dirty: vec![false; sets * config.ways],
            tick: 0,
            accesses: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line as usize) & (self.sets - 1),
            line >> self.sets.trailing_zeros(),
        )
    }

    /// Accesses the line containing `addr`; allocates on miss, evicting the
    /// LRU way. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> LineAccess {
        self.accesses += 1;
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;

        for way in 0..self.ways {
            if self.tags[base + way] == Some(tag) {
                self.stamps[base + way] = self.tick;
                if write {
                    self.dirty[base + way] = true;
                }
                return LineAccess {
                    hit: true,
                    writeback: false,
                };
            }
        }

        self.misses += 1;
        // Choose victim: invalid way first, else LRU.
        let victim = (0..self.ways)
            .find(|&w| self.tags[base + w].is_none())
            .unwrap_or_else(|| {
                (0..self.ways)
                    .min_by_key(|&w| self.stamps[base + w])
                    .expect("ways > 0")
            });
        let writeback = self.tags[base + victim].is_some() && self.dirty[base + victim];
        if writeback {
            self.writebacks += 1;
        }
        self.tags[base + victim] = Some(tag);
        self.stamps[base + victim] = self.tick;
        self.dirty[base + victim] = write;
        LineAccess {
            hit: false,
            writeback,
        }
    }

    /// Whether the line containing `addr` is present (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.tags[base + w] == Some(tag))
    }

    /// Lifetime access count.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime dirty-victim writebacks.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss rate over the cache's lifetime (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl voltctl_snap::Pack for Cache {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_usize(self.sets);
        w.put_usize(self.ways);
        w.put_u32(self.line_shift);
        self.tags.pack(w);
        self.stamps.pack(w);
        self.dirty.pack(w);
        w.put_u64(self.tick);
        w.put_u64(self.accesses);
        w.put_u64(self.misses);
        w.put_u64(self.writebacks);
    }
}

impl voltctl_snap::Unpack for Cache {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let sets = r.get_usize()?;
        let ways = r.get_usize()?;
        let line_shift = r.get_u32()?;
        let tags: Vec<Option<u64>> = voltctl_snap::Unpack::unpack(r)?;
        let stamps: Vec<u64> = voltctl_snap::Unpack::unpack(r)?;
        let dirty: Vec<bool> = voltctl_snap::Unpack::unpack(r)?;
        let tick = r.get_u64()?;
        let accesses = r.get_u64()?;
        let misses = r.get_u64()?;
        let writebacks = r.get_u64()?;
        let lines = sets.checked_mul(ways).ok_or_else(|| {
            voltctl_snap::SnapError::Corrupt(format!(
                "cache geometry {sets} sets x {ways} ways overflows"
            ))
        })?;
        if !sets.is_power_of_two() || ways == 0 {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "invalid cache geometry: {sets} sets x {ways} ways"
            )));
        }
        if tags.len() != lines || stamps.len() != lines || dirty.len() != lines {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "cache arrays ({}, {}, {}) do not match geometry {sets} sets x {ways} ways",
                tags.len(),
                stamps.len(),
                dirty.len()
            )));
        }
        Ok(Cache {
            sets,
            ways,
            line_shift,
            tags,
            stamps,
            dirty,
            tick,
            accesses,
            misses,
            writebacks,
        })
    }
}

/// Per-access counts bubbled up from the hierarchy for the power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierarchyCounts {
    /// L1 (I or D, per call site) accesses.
    pub l1_accesses: u32,
    /// L1 misses.
    pub l1_misses: u32,
    /// L2 accesses.
    pub l2_accesses: u32,
    /// L2 misses (main-memory accesses).
    pub l2_misses: u32,
}

/// The two-level hierarchy: split L1s over a unified L2 over flat memory.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    l1i_hit: u64,
    l1d_hit: u64,
    l2_hit: u64,
    memory_latency: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a machine configuration.
    pub fn new(config: &CpuConfig) -> CacheHierarchy {
        CacheHierarchy {
            l1i: Cache::new(&config.l1i),
            l1d: Cache::new(&config.l1d),
            l2: Cache::new(&config.l2),
            l1i_hit: config.l1i.hit_latency,
            l1d_hit: config.l1d.hit_latency,
            l2_hit: config.l2.hit_latency,
            memory_latency: config.memory_latency,
        }
    }

    /// Instruction fetch for the line containing `addr`: returns total
    /// latency in cycles and the per-level access counts.
    pub fn fetch_instr(&mut self, addr: u64) -> (u64, HierarchyCounts) {
        let mut counts = HierarchyCounts {
            l1_accesses: 1,
            ..Default::default()
        };
        let l1 = self.l1i.access(addr, false);
        if l1.hit {
            return (self.l1i_hit, counts);
        }
        counts.l1_misses = 1;
        counts.l2_accesses = 1;
        let l2 = self.l2.access(addr, false);
        if l2.hit {
            return (self.l1i_hit + self.l2_hit, counts);
        }
        counts.l2_misses = 1;
        (self.l1i_hit + self.l2_hit + self.memory_latency, counts)
    }

    /// Data access (load or store) for the line containing `addr`.
    pub fn access_data(&mut self, addr: u64, write: bool) -> (u64, HierarchyCounts) {
        let mut counts = HierarchyCounts {
            l1_accesses: 1,
            ..Default::default()
        };
        let l1 = self.l1d.access(addr, write);
        if l1.writeback {
            // Dirty victim flows to L2 (timing effect folded into the miss
            // path; counted as an L2 access).
            counts.l2_accesses += 1;
            self.l2.access(addr, true);
        }
        if l1.hit {
            return (self.l1d_hit, counts);
        }
        counts.l1_misses = 1;
        counts.l2_accesses += 1;
        let l2 = self.l2.access(addr, false);
        if l2.hit {
            return (self.l1d_hit + self.l2_hit, counts);
        }
        counts.l2_misses = 1;
        (self.l1d_hit + self.l2_hit + self.memory_latency, counts)
    }
}

impl voltctl_snap::Pack for CacheHierarchy {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.l1i.pack(w);
        self.l1d.pack(w);
        self.l2.pack(w);
        w.put_u64(self.l1i_hit);
        w.put_u64(self.l1d_hit);
        w.put_u64(self.l2_hit);
        w.put_u64(self.memory_latency);
    }
}

impl voltctl_snap::Unpack for CacheHierarchy {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(CacheHierarchy {
            l1i: voltctl_snap::Unpack::unpack(r)?,
            l1d: voltctl_snap::Unpack::unpack(r)?,
            l2: voltctl_snap::Unpack::unpack(r)?,
            l1i_hit: r.get_u64()?,
            l1d_hit: r.get_u64()?,
            l2_hit: r.get_u64()?,
            memory_latency: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    fn small_cache() -> Cache {
        Cache::new(&CacheConfig {
            size_bytes: 4 * 64, // 4 lines
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small_cache();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13f, false).hit); // same 64 B line
        assert!(!c.access(0x140, false).hit); // next line
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(); // 2 sets x 2 ways
                                   // Three lines mapping to set 0 (line addresses 0, 2, 4 in units of 64 B).
        let a = 0x000;
        let b = 0x080;
        let d = 0x100;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        c.access(d, false); // evicts b (LRU)
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache();
        let a = 0x000;
        let b = 0x080;
        let d = 0x100;
        c.access(a, true); // dirty
        c.access(b, false);
        let res = c.access(d, false); // evicts a (LRU, dirty)
        assert!(res.writeback);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small_cache();
        c.access(0x000, false);
        c.access(0x080, false);
        let res = c.access(0x100, false);
        assert!(!res.writeback);
    }

    #[test]
    fn miss_rate_reported() {
        let mut c = small_cache();
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_latency_chain() {
        let mut h = CacheHierarchy::new(&CpuConfig::table1());
        let addr = 0x4_0000;
        // Cold: L1 miss, L2 miss → 1 + 16 + 300.
        let (lat, counts) = h.access_data(addr, false);
        assert_eq!(lat, 317);
        assert_eq!(counts.l1_misses, 1);
        assert_eq!(counts.l2_misses, 1);
        // Warm: L1 hit.
        let (lat, counts) = h.access_data(addr, false);
        assert_eq!(lat, 1);
        assert_eq!(counts.l1_misses, 0);
        // Evict from L1 only → next access is L1 miss, L2 hit: 1 + 16.
        // (Touch enough conflicting lines to evict addr from the 2-way L1
        // but not the 4-way L2.)
        let l1_set_stride = 512 * 64; // sets * line
        for k in 1..=2 {
            h.access_data(addr + k * l1_set_stride as u64, false);
        }
        let (lat, _) = h.access_data(addr, false);
        assert_eq!(lat, 17);
    }

    #[test]
    fn instruction_path_counts_separately() {
        let mut h = CacheHierarchy::new(&CpuConfig::table1());
        let (lat, counts) = h.fetch_instr(0x1_0000);
        assert_eq!(lat, 317);
        assert_eq!(counts.l1_accesses, 1);
        let (lat, _) = h.fetch_instr(0x1_0000);
        assert_eq!(lat, 1);
        assert_eq!(h.l1i.accesses(), 2);
        assert_eq!(h.l1d.accesses(), 0);
    }

    #[test]
    fn l1d_writeback_touches_l2() {
        let mut h = CacheHierarchy::new(&CpuConfig::table1());
        let addr = 0x8_0000u64;
        h.access_data(addr, true); // dirty in L1
        let stride = (512 * 64) as u64;
        // Force eviction of the dirty line from the 2-way L1.
        let (_, c1) = h.access_data(addr + stride, false);
        let (_, c2) = h.access_data(addr + 2 * stride, false);
        // One of the fills must have triggered the dirty writeback.
        assert!(c1.l2_accesses + c2.l2_accesses >= 3);
    }
}
