//! Actuator-facing clock-gating and phantom-firing controls.
//!
//! The dI/dt controller's actuator manipulates three gating **domains**
//! (Section 5.1 of the paper):
//!
//! * **FU** — all functional units (integer and FP pipelines),
//! * **DL1** — the level-one data cache (and with it the memory ports),
//! * **IL1** — the level-one instruction cache (and with it fetch).
//!
//! Each domain can be *gated* (forcibly idled: current drops to the
//! clock-gating floor, pipeline activity in that domain stalls) or
//! *phantom-fired* (driven at full activity to burn current and pull an
//! overshooting supply back down; architecturally a no-op). Gating
//! preserves all state — cache contents are untouched, stalled
//! instructions are not dropped — so program results are unchanged, which
//! the integration tests verify.

/// Gating domains controllable by the actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// All functional units.
    Fu,
    /// Level-one data cache + memory ports.
    Dl1,
    /// Level-one instruction cache + fetch.
    Il1,
}

/// The current actuation state, read by the pipeline every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatingState {
    /// Functional-unit issue is blocked.
    pub gate_fu: bool,
    /// Load/store issue is blocked.
    pub gate_dl1: bool,
    /// Fetch is blocked.
    pub gate_il1: bool,
    /// Functional units burn full power doing no work.
    pub phantom_fu: bool,
    /// The D-cache burns full power doing no work.
    pub phantom_dl1: bool,
    /// The I-cache/fetch path burns full power doing no work.
    pub phantom_il1: bool,
}

impl GatingState {
    /// A state with nothing gated and nothing phantom-fired.
    pub fn new() -> GatingState {
        GatingState::default()
    }

    /// Whether any actuation is active.
    pub fn any_active(&self) -> bool {
        self.gate_fu
            || self.gate_dl1
            || self.gate_il1
            || self.phantom_fu
            || self.phantom_dl1
            || self.phantom_il1
    }

    /// Gates or ungates a domain. Gating a domain cancels any phantom
    /// firing on it (the two are mutually exclusive by construction).
    pub fn set_gated(&mut self, domain: Domain, gated: bool) {
        match domain {
            Domain::Fu => {
                self.gate_fu = gated;
                if gated {
                    self.phantom_fu = false;
                }
            }
            Domain::Dl1 => {
                self.gate_dl1 = gated;
                if gated {
                    self.phantom_dl1 = false;
                }
            }
            Domain::Il1 => {
                self.gate_il1 = gated;
                if gated {
                    self.phantom_il1 = false;
                }
            }
        }
    }

    /// Phantom-fires (or stops firing) a domain. Firing cancels gating.
    pub fn set_phantom(&mut self, domain: Domain, firing: bool) {
        match domain {
            Domain::Fu => {
                self.phantom_fu = firing;
                if firing {
                    self.gate_fu = false;
                }
            }
            Domain::Dl1 => {
                self.phantom_dl1 = firing;
                if firing {
                    self.gate_dl1 = false;
                }
            }
            Domain::Il1 => {
                self.phantom_il1 = firing;
                if firing {
                    self.gate_il1 = false;
                }
            }
        }
    }

    /// Whether a domain is gated.
    pub fn is_gated(&self, domain: Domain) -> bool {
        match domain {
            Domain::Fu => self.gate_fu,
            Domain::Dl1 => self.gate_dl1,
            Domain::Il1 => self.gate_il1,
        }
    }

    /// Whether a domain is phantom-firing.
    pub fn is_phantom(&self, domain: Domain) -> bool {
        match domain {
            Domain::Fu => self.phantom_fu,
            Domain::Dl1 => self.phantom_dl1,
            Domain::Il1 => self.phantom_il1,
        }
    }

    /// Clears all gating and phantom firing.
    pub fn release_all(&mut self) {
        *self = GatingState::default();
    }
}

impl voltctl_snap::Pack for GatingState {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_bool(self.gate_fu);
        w.put_bool(self.gate_dl1);
        w.put_bool(self.gate_il1);
        w.put_bool(self.phantom_fu);
        w.put_bool(self.phantom_dl1);
        w.put_bool(self.phantom_il1);
    }
}

impl voltctl_snap::Unpack for GatingState {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(GatingState {
            gate_fu: r.get_bool()?,
            gate_dl1: r.get_bool()?,
            gate_il1: r.get_bool()?,
            phantom_fu: r.get_bool()?,
            phantom_dl1: r.get_bool()?,
            phantom_il1: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive() {
        assert!(!GatingState::new().any_active());
    }

    #[test]
    fn gate_and_release() {
        let mut g = GatingState::new();
        g.set_gated(Domain::Fu, true);
        assert!(g.gate_fu);
        assert!(g.any_active());
        assert!(g.is_gated(Domain::Fu));
        g.set_gated(Domain::Fu, false);
        assert!(!g.any_active());
    }

    #[test]
    fn gating_cancels_phantom() {
        let mut g = GatingState::new();
        g.set_phantom(Domain::Dl1, true);
        assert!(g.phantom_dl1);
        g.set_gated(Domain::Dl1, true);
        assert!(g.gate_dl1);
        assert!(!g.phantom_dl1);
    }

    #[test]
    fn phantom_cancels_gating() {
        let mut g = GatingState::new();
        g.set_gated(Domain::Il1, true);
        g.set_phantom(Domain::Il1, true);
        assert!(g.phantom_il1);
        assert!(!g.gate_il1);
        assert!(g.is_phantom(Domain::Il1));
    }

    #[test]
    fn release_all_clears_everything() {
        let mut g = GatingState::new();
        g.set_gated(Domain::Fu, true);
        g.set_phantom(Domain::Dl1, true);
        g.release_all();
        assert_eq!(g, GatingState::default());
    }
}
