//! Functional-unit pool with issue-port and occupancy modeling.
//!
//! Each [`FuKind`] has a fixed number of units (Table 1 mix). Pipelined
//! operations occupy a unit for one cycle (its issue slot); unpipelined
//! operations (divides, square root) hold the unit until they complete.
//! The pool also reports, per cycle, how many units of each kind are
//! *busy executing* — the quantity the power model spreads multi-cycle
//! operation energy over (the paper's fix to avoid overestimating current
//! swings from lumpy FP accounting).

use crate::config::FuConfig;
use voltctl_isa::{OpClass, Opcode};

/// The physical functional-unit kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Simple integer ALUs (also resolve branches).
    IntAlu,
    /// Integer multiply/divide units.
    IntMult,
    /// FP adders.
    FpAlu,
    /// FP multiply/divide units.
    FpMult,
    /// Memory (load/store) ports.
    MemPort,
}

impl FuKind {
    /// Number of kinds.
    pub const COUNT: usize = 5;

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMult => 1,
            FuKind::FpAlu => 2,
            FuKind::FpMult => 3,
            FuKind::MemPort => 4,
        }
    }

    /// All kinds, in index order.
    pub fn all() -> [FuKind; FuKind::COUNT] {
        [
            FuKind::IntAlu,
            FuKind::IntMult,
            FuKind::FpAlu,
            FuKind::FpMult,
            FuKind::MemPort,
        ]
    }

    /// The unit an opcode executes on, or `None` for nops/halt.
    pub fn for_opcode(op: Opcode) -> Option<FuKind> {
        Some(match op.class() {
            OpClass::IntAlu | OpClass::Branch => FuKind::IntAlu,
            OpClass::IntMult => FuKind::IntMult,
            OpClass::FpAdd => FuKind::FpAlu,
            OpClass::FpMult | OpClass::FpDiv => FuKind::FpMult,
            OpClass::Load | OpClass::Store => FuKind::MemPort,
            OpClass::Nop => return None,
        })
    }
}

/// Latency/occupancy of one operation on its unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// Cycles until the result is available.
    pub latency: u64,
    /// Cycles the unit is held (1 = fully pipelined).
    pub occupancy: u64,
}

/// Computes the timing of an opcode under a configuration. Memory
/// operations return the port occupancy only — cache latency is added by
/// the pipeline.
pub fn op_timing(op: Opcode, fu: &FuConfig) -> OpTiming {
    use Opcode::*;
    let (latency, occupancy) = match op {
        Mulq => (fu.mulq_latency, 1),
        Divq => (fu.divq_latency, fu.divq_latency),
        Addt | Subt | Cpys | Cvtqt | Cvttq => (fu.fp_add_latency, 1),
        Mult => (fu.fp_mult_latency, 1),
        Divt => (fu.fp_div_latency, fu.fp_div_latency),
        Sqrtt => (fu.fp_sqrt_latency, fu.fp_sqrt_latency),
        // Loads/stores: 1-cycle port occupancy; latency added by the cache.
        Ldq | Ldl | Ldt | Stq | Stl | Stt => (1, 1),
        // Everything else is a single-cycle ALU op (branches resolve in 1).
        _ => (1, 1),
    };
    OpTiming { latency, occupancy }
}

/// The pool of functional units.
#[derive(Debug, Clone)]
pub struct FuPool {
    /// `busy_until[kind][unit]`: first cycle at which the unit is free.
    busy_until: [Vec<u64>; FuKind::COUNT],
    /// `executing_until[kind][unit]`: first cycle at which the unit stops
    /// doing work (for busy-unit power accounting).
    executing_until: [Vec<u64>; FuKind::COUNT],
}

impl FuPool {
    /// Builds the pool from the configured mix.
    pub fn new(fu: &FuConfig) -> FuPool {
        let counts = [fu.int_alu, fu.int_mult, fu.fp_alu, fu.fp_mult, fu.mem_ports];
        FuPool {
            busy_until: counts.map(|n| vec![0u64; n]),
            executing_until: counts.map(|n| vec![0u64; n]),
        }
    }

    /// Number of units of a kind.
    pub fn count(&self, kind: FuKind) -> usize {
        self.busy_until[kind.index()].len()
    }

    /// Attempts to claim a unit of `kind` at `cycle` for an operation that
    /// holds it for `occupancy` cycles and executes for `exec_cycles`.
    /// Returns false when every unit is busy.
    pub fn try_issue(
        &mut self,
        kind: FuKind,
        cycle: u64,
        occupancy: u64,
        exec_cycles: u64,
    ) -> bool {
        let k = kind.index();
        for unit in 0..self.busy_until[k].len() {
            if self.busy_until[k][unit] <= cycle {
                self.busy_until[k][unit] = cycle + occupancy.max(1);
                self.executing_until[k][unit] = cycle + exec_cycles.max(1);
                return true;
            }
        }
        false
    }

    /// How many units of `kind` have an operation in flight at `cycle`
    /// (for per-cycle power spreading of multi-cycle operations).
    pub fn executing(&self, kind: FuKind, cycle: u64) -> u32 {
        self.executing_until[kind.index()]
            .iter()
            .filter(|&&until| until > cycle)
            .count() as u32
    }

    /// How many units of `kind` are free to issue at `cycle`.
    pub fn free(&self, kind: FuKind, cycle: u64) -> usize {
        self.busy_until[kind.index()]
            .iter()
            .filter(|&&until| until <= cycle)
            .count()
    }
}

impl voltctl_snap::Pack for FuKind {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(self.index() as u8);
    }
}

impl voltctl_snap::Unpack for FuKind {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let idx = r.get_u8()? as usize;
        FuKind::all().get(idx).copied().ok_or_else(|| {
            voltctl_snap::SnapError::Corrupt(format!(
                "functional-unit kind {idx} out of range (must be < {})",
                FuKind::COUNT
            ))
        })
    }
}

impl voltctl_snap::Pack for FuPool {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        for k in 0..FuKind::COUNT {
            self.busy_until[k].pack(w);
        }
        for k in 0..FuKind::COUNT {
            self.executing_until[k].pack(w);
        }
    }
}

impl voltctl_snap::Unpack for FuPool {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let mut busy_until: [Vec<u64>; FuKind::COUNT] = Default::default();
        let mut executing_until: [Vec<u64>; FuKind::COUNT] = Default::default();
        for slot in busy_until.iter_mut() {
            *slot = voltctl_snap::Unpack::unpack(r)?;
        }
        for (k, slot) in executing_until.iter_mut().enumerate() {
            *slot = voltctl_snap::Unpack::unpack(r)?;
            if slot.len() != busy_until[k].len() {
                return Err(voltctl_snap::SnapError::Corrupt(format!(
                    "functional-unit pool kind {k}: executing table has {} units, busy table {}",
                    slot.len(),
                    busy_until[k].len()
                )));
            }
        }
        Ok(FuPool {
            busy_until,
            executing_until,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    fn pool() -> FuPool {
        FuPool::new(&CpuConfig::table1().fu)
    }

    #[test]
    fn table1_counts() {
        let p = pool();
        assert_eq!(p.count(FuKind::IntAlu), 8);
        assert_eq!(p.count(FuKind::IntMult), 2);
        assert_eq!(p.count(FuKind::FpAlu), 4);
        assert_eq!(p.count(FuKind::FpMult), 2);
        assert_eq!(p.count(FuKind::MemPort), 4);
    }

    #[test]
    fn opcode_mapping() {
        assert_eq!(FuKind::for_opcode(Opcode::Addq), Some(FuKind::IntAlu));
        assert_eq!(FuKind::for_opcode(Opcode::Bne), Some(FuKind::IntAlu));
        assert_eq!(FuKind::for_opcode(Opcode::Divt), Some(FuKind::FpMult));
        assert_eq!(FuKind::for_opcode(Opcode::Mult), Some(FuKind::FpMult));
        assert_eq!(FuKind::for_opcode(Opcode::Addt), Some(FuKind::FpAlu));
        assert_eq!(FuKind::for_opcode(Opcode::Ldt), Some(FuKind::MemPort));
        assert_eq!(FuKind::for_opcode(Opcode::Nop), None);
    }

    #[test]
    fn pipelined_units_issue_every_cycle() {
        let mut p = pool();
        // 2 FP multipliers, pipelined: two issues per cycle, sustained.
        for cycle in 0..10 {
            assert!(p.try_issue(FuKind::FpMult, cycle, 1, 4));
            assert!(p.try_issue(FuKind::FpMult, cycle, 1, 4));
            assert!(!p.try_issue(FuKind::FpMult, cycle, 1, 4));
        }
    }

    #[test]
    fn unpipelined_divide_blocks_the_unit() {
        let mut p = pool();
        let fu = CpuConfig::table1().fu;
        let t = op_timing(Opcode::Divt, &fu);
        assert_eq!(t.latency, t.occupancy);
        assert!(p.try_issue(FuKind::FpMult, 0, t.occupancy, t.latency));
        assert!(p.try_issue(FuKind::FpMult, 0, t.occupancy, t.latency));
        // Both units occupied until cycle 18.
        assert!(!p.try_issue(FuKind::FpMult, 1, 1, 4));
        assert!(!p.try_issue(FuKind::FpMult, t.occupancy - 1, 1, 4));
        assert!(p.try_issue(FuKind::FpMult, t.occupancy, 1, 4));
    }

    #[test]
    fn executing_counts_in_flight_work() {
        let mut p = pool();
        // A pipelined multiply executes for 4 cycles even though it only
        // occupies the issue slot for 1.
        assert!(p.try_issue(FuKind::FpMult, 0, 1, 4));
        assert_eq!(p.executing(FuKind::FpMult, 0), 1);
        assert_eq!(p.executing(FuKind::FpMult, 3), 1);
        assert_eq!(p.executing(FuKind::FpMult, 4), 0);
    }

    #[test]
    fn free_counts_available_units() {
        let mut p = pool();
        assert_eq!(p.free(FuKind::IntAlu, 0), 8);
        assert!(p.try_issue(FuKind::IntAlu, 0, 1, 1));
        assert_eq!(p.free(FuKind::IntAlu, 0), 7);
        assert_eq!(p.free(FuKind::IntAlu, 1), 8);
    }

    #[test]
    fn timing_table_sanity() {
        let fu = CpuConfig::table1().fu;
        assert_eq!(op_timing(Opcode::Addq, &fu).latency, 1);
        assert_eq!(op_timing(Opcode::Mulq, &fu).latency, 7);
        assert_eq!(op_timing(Opcode::Mulq, &fu).occupancy, 1); // pipelined
        assert_eq!(op_timing(Opcode::Divq, &fu).occupancy, 20); // unpipelined
        assert_eq!(op_timing(Opcode::Sqrtt, &fu).latency, 24);
        assert_eq!(op_timing(Opcode::Ldq, &fu).latency, 1);
    }
}
