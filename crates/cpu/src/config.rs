//! Processor configuration (the paper's Table 1).
//!
//! Defaults reproduce the evaluated machine: a 3 GHz, 8-wide out-of-order
//! core with a 256-entry RUU, 128-entry LSQ, the listed functional-unit
//! mix, a combined branch predictor (64 Kbit chooser, bimodal, and gshare),
//! 64 KB 2-way L1 caches, a 2 MB 4-way L2 with 16-cycle latency, and
//! 300-cycle main memory. A 10-cycle branch-misprediction penalty models
//! the super-pipelined front end the authors added to Wattch.

/// Cache geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in cycles on a hit.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets,
    /// zero sizes).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes > 0 && self.ways > 0 && self.size_bytes > 0);
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        sets
    }
}

/// Functional-unit latencies and counts (Table 1 mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Number of simple integer ALUs (also execute branches).
    pub int_alu: usize,
    /// Number of integer multiply/divide units.
    pub int_mult: usize,
    /// Number of FP adders.
    pub fp_alu: usize,
    /// Number of FP multiply/divide units.
    pub fp_mult: usize,
    /// Number of memory ports.
    pub mem_ports: usize,
    /// Integer multiply latency (pipelined).
    pub mulq_latency: u64,
    /// Integer divide latency (unpipelined: occupies the unit).
    pub divq_latency: u64,
    /// FP add/convert latency (pipelined).
    pub fp_add_latency: u64,
    /// FP multiply latency (pipelined).
    pub fp_mult_latency: u64,
    /// FP divide latency (unpipelined).
    pub fp_div_latency: u64,
    /// FP square-root latency (unpipelined).
    pub fp_sqrt_latency: u64,
}

/// Branch-predictor sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Bimodal table entries (2-bit counters). 32768 = 64 Kbit.
    pub bimodal_entries: usize,
    /// Gshare table entries (2-bit counters). 32768 = 64 Kbit.
    pub gshare_entries: usize,
    /// Chooser table entries (2-bit counters). 32768 = 64 Kbit.
    pub chooser_entries: usize,
    /// Global history bits used by gshare.
    pub history_bits: u32,
    /// Branch target buffer entries (direct-mapped, tagged).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

/// Complete machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Core clock in hertz (3 GHz in the paper).
    pub clock_hz: f64,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (decoded/renamed) per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Fetch-queue depth (decoupling buffer between fetch and dispatch).
    pub fetch_queue: usize,
    /// Register update unit (instruction window / reorder buffer) entries.
    pub ruu_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Branch misprediction penalty in cycles (pipeline refill).
    pub branch_penalty: u64,
    /// Functional-unit mix.
    pub fu: FuConfig,
    /// Branch predictor sizing.
    pub bpred: BpredConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::table1()
    }
}

impl CpuConfig {
    /// The paper's Table 1 configuration.
    pub fn table1() -> CpuConfig {
        CpuConfig {
            clock_hz: 3.0e9,
            fetch_width: 8,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            fetch_queue: 32,
            ruu_size: 256,
            lsq_size: 128,
            branch_penalty: 10,
            fu: FuConfig {
                int_alu: 8,
                int_mult: 2,
                fp_alu: 4,
                fp_mult: 2,
                mem_ports: 4,
                mulq_latency: 7,
                divq_latency: 20,
                fp_add_latency: 4,
                fp_mult_latency: 4,
                fp_div_latency: 18,
                fp_sqrt_latency: 24,
            },
            bpred: BpredConfig {
                bimodal_entries: 32 * 1024,
                gshare_entries: 32 * 1024,
                chooser_entries: 32 * 1024,
                history_bits: 15,
                btb_entries: 1024,
                ras_entries: 64,
            },
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                hit_latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 16,
            },
            memory_latency: 300,
        }
    }

    /// A scaled-down configuration for fast unit tests (narrower machine,
    /// tiny caches). Not used by the experiments.
    pub fn small() -> CpuConfig {
        let mut c = CpuConfig::table1();
        c.fetch_width = 4;
        c.decode_width = 4;
        c.issue_width = 4;
        c.commit_width = 4;
        c.fetch_queue = 8;
        c.ruu_size = 32;
        c.lsq_size = 16;
        c.l1i = CacheConfig {
            size_bytes: 4 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        c.l1d = c.l1i;
        c.l2 = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
            hit_latency: 16,
        };
        c
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.decode_width == 0 || self.issue_width == 0 {
            return Err("pipeline widths must be positive".into());
        }
        if self.ruu_size == 0 || self.lsq_size == 0 {
            return Err("window sizes must be positive".into());
        }
        if self.lsq_size > self.ruu_size {
            return Err("LSQ cannot exceed the RUU".into());
        }
        if self.fu.int_alu == 0 || self.fu.mem_ports == 0 {
            return Err("need at least one ALU and one memory port".into());
        }
        for (name, cache) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            let sets = cache.size_bytes / (cache.ways.max(1) * cache.line_bytes.max(1));
            if sets == 0 || !sets.is_power_of_two() {
                return Err(format!("{name}: set count must be a power of two"));
            }
        }
        if !(self.clock_hz.is_finite() && self.clock_hz > 0.0) {
            return Err("clock must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let c = CpuConfig::table1();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.ruu_size, 256);
        assert_eq!(c.lsq_size, 128);
        assert_eq!(c.branch_penalty, 10);
        assert_eq!(c.fu.int_alu, 8);
        assert_eq!(c.fu.int_mult, 2);
        assert_eq!(c.fu.fp_alu, 4);
        assert_eq!(c.fu.fp_mult, 2);
        assert_eq!(c.fu.mem_ports, 4);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.hit_latency, 16);
        assert_eq!(c.memory_latency, 300);
        assert_eq!(c.bpred.btb_entries, 1024);
        assert_eq!(c.bpred.ras_entries, 64);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bpred_tables_are_64_kbit() {
        let c = CpuConfig::table1();
        // 2-bit counters: 32K entries = 64 Kbit.
        assert_eq!(c.bpred.bimodal_entries * 2, 64 * 1024);
        assert_eq!(c.bpred.gshare_entries * 2, 64 * 1024);
        assert_eq!(c.bpred.chooser_entries * 2, 64 * 1024);
    }

    #[test]
    fn cache_sets_computed() {
        let c = CpuConfig::table1();
        assert_eq!(c.l1d.sets(), 512); // 64K / (2 * 64)
        assert_eq!(c.l2.sets(), 8192); // 2M / (4 * 64)
    }

    #[test]
    fn small_config_is_valid() {
        assert!(CpuConfig::small().validate().is_ok());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = CpuConfig::table1();
        c.lsq_size = c.ruu_size + 1;
        assert!(c.validate().is_err());

        let mut c = CpuConfig::table1();
        c.fetch_width = 0;
        assert!(c.validate().is_err());

        let mut c = CpuConfig::table1();
        c.l1d.size_bytes = 3000; // non-power-of-two sets
        assert!(c.validate().is_err());
    }
}
