//! Cycle-level out-of-order processor simulation for dI/dt research.
//!
//! This crate is the SimpleScalar-class substrate of the `voltctl`
//! reproduction of the HPCA 2003 voltage-emergency paper: an
//! execution-driven, cycle-level model of the paper's Table 1 machine with
//! the clock-gating hooks its microarchitectural dI/dt controller actuates.
//!
//! * [`Cpu`] — the pipeline: fetch → dispatch → issue → writeback → commit,
//!   over a 256-entry RUU and 128-entry LSQ ([`core`]).
//! * [`CpuConfig`] — all machine parameters, defaulting to Table 1
//!   ([`config`]).
//! * [`cache`] — set-associative LRU caches and the L1I/L1D/L2 hierarchy.
//! * [`bpred`] — the combined bimodal/gshare/chooser predictor, BTB, RAS.
//! * [`fu`] — functional-unit pool with pipelined/unpipelined occupancy.
//! * [`mem`] — sparse functional memory.
//! * [`gating`] — the actuator-facing gate/phantom-fire control surface.
//! * [`activity`] — per-cycle activity vectors consumed by the power model.
//!
//! # Example
//!
//! ```
//! use voltctl_cpu::{Cpu, CpuConfig};
//! use voltctl_isa::{builder::ProgramBuilder, reg::IntReg};
//!
//! # fn main() -> Result<(), String> {
//! let mut b = ProgramBuilder::new("sum");
//! b.lda(IntReg::R1, IntReg::R31, 10);
//! b.label("top");
//! b.addq(IntReg::R2, IntReg::R2, IntReg::R1);
//! b.subq_imm(IntReg::R1, IntReg::R1, 1);
//! b.bne(IntReg::R1, "top");
//! b.halt();
//! let program = b.build().expect("labels resolve");
//!
//! let mut cpu = Cpu::new(CpuConfig::table1(), &program)?;
//! cpu.run(100_000);
//! assert!(cpu.done());
//! assert_eq!(cpu.reg(IntReg::R2.into()), 55);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod bpred;
pub mod cache;
pub mod config;
pub mod core;
pub mod fu;
pub mod gating;
pub mod mem;

pub use crate::core::Cpu;
pub use activity::{CycleActivity, Stats};
pub use config::{BpredConfig, CacheConfig, CpuConfig, FuConfig};
pub use fu::FuKind;
pub use gating::{Domain, GatingState};
