//! The combined branch predictor of Table 1.
//!
//! A 64 Kbit bimodal table and a 64 Kbit gshare table are arbitrated by a
//! 64 Kbit chooser (McFarling-style "combining" predictor), with a 1K-entry
//! direct-mapped, tagged BTB for taken-branch targets and a 64-entry
//! return-address stack (present for completeness; the ISA has no
//! call/return, so it is exercised only by unit tests).

use crate::config::BpredConfig;

/// A saturating 2-bit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAK_TAKEN: Counter2 = Counter2(2);

    fn taken(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Prediction outcome for one lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target (from the BTB) when predicted taken. `None` means
    /// the BTB missed — a taken prediction without a target still redirects
    /// late and is treated as a misfetch by the front end.
    pub target: Option<u32>,
}

/// The combined (bimodal + gshare + chooser) predictor with BTB and RAS.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<Counter2>,
    gshare: Vec<Counter2>,
    /// Chooser: counter >= 2 selects gshare, < 2 selects bimodal.
    chooser: Vec<Counter2>,
    history: u64,
    history_mask: u64,
    btb_tags: Vec<Option<u64>>,
    btb_targets: Vec<u32>,
    ras: Vec<u32>,
    ras_top: usize,
    ras_capacity: usize,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Builds a predictor from its configuration.
    ///
    /// # Panics
    ///
    /// Panics unless all table sizes are powers of two.
    pub fn new(config: &BpredConfig) -> BranchPredictor {
        for (name, n) in [
            ("bimodal_entries", config.bimodal_entries),
            ("gshare_entries", config.gshare_entries),
            ("chooser_entries", config.chooser_entries),
            ("btb_entries", config.btb_entries),
        ] {
            assert!(n.is_power_of_two(), "{name} must be a power of two");
        }
        BranchPredictor {
            bimodal: vec![Counter2::WEAK_TAKEN; config.bimodal_entries],
            gshare: vec![Counter2::WEAK_TAKEN; config.gshare_entries],
            chooser: vec![Counter2::WEAK_TAKEN; config.chooser_entries],
            history: 0,
            history_mask: (1u64 << config.history_bits) - 1,
            btb_tags: vec![None; config.btb_entries],
            btb_targets: vec![0; config.btb_entries],
            ras: vec![0; config.ras_entries],
            ras_top: 0,
            ras_capacity: config.ras_entries,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.bimodal.len() - 1)
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.history_mask) as usize & (self.gshare.len() - 1)
    }

    fn chooser_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.chooser.len() - 1)
    }

    fn btb_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.btb_tags.len() - 1)
    }

    /// Looks up a conditional branch at byte address `pc`.
    pub fn predict(&mut self, pc: u64) -> Prediction {
        self.lookups += 1;
        let use_gshare = self.chooser[self.chooser_index(pc)].taken();
        let taken = if use_gshare {
            self.gshare[self.gshare_index(pc)].taken()
        } else {
            self.bimodal[self.bimodal_index(pc)].taken()
        };
        let target = if taken { self.btb_lookup(pc) } else { None };
        Prediction { taken, target }
    }

    /// Looks up an unconditional branch (always predicted taken).
    pub fn predict_unconditional(&mut self, pc: u64) -> Prediction {
        self.lookups += 1;
        Prediction {
            taken: true,
            target: self.btb_lookup(pc),
        }
    }

    fn btb_lookup(&self, pc: u64) -> Option<u32> {
        let idx = self.btb_index(pc);
        if self.btb_tags[idx] == Some(pc) {
            Some(self.btb_targets[idx])
        } else {
            None
        }
    }

    /// Trains the predictor with the resolved outcome of a conditional
    /// branch, records a misprediction when `predicted` disagreed, and
    /// updates the BTB for taken branches.
    pub fn update(&mut self, pc: u64, taken: bool, target: u32, predicted: &Prediction) {
        let bi = self.bimodal_index(pc);
        let gi = self.gshare_index(pc);
        let ci = self.chooser_index(pc);

        let bimodal_correct = self.bimodal[bi].taken() == taken;
        let gshare_correct = self.gshare[gi].taken() == taken;
        // Chooser trains toward the component that was right (only when
        // they disagree).
        if bimodal_correct != gshare_correct {
            self.chooser[ci].update(gshare_correct);
        }
        self.bimodal[bi].update(taken);
        self.gshare[gi].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;

        if taken {
            let idx = self.btb_index(pc);
            self.btb_tags[idx] = Some(pc);
            self.btb_targets[idx] = target;
        }

        let mispredicted = predicted.taken != taken || (taken && predicted.target != Some(target));
        if mispredicted {
            self.mispredicts += 1;
        }
    }

    /// Trains an unconditional branch (direction is always correct; only
    /// the target can misfetch).
    pub fn update_unconditional(&mut self, pc: u64, target: u32, predicted: &Prediction) {
        let idx = self.btb_index(pc);
        self.btb_tags[idx] = Some(pc);
        self.btb_targets[idx] = target;
        if predicted.target != Some(target) {
            self.mispredicts += 1;
        }
    }

    /// Pushes a return address (call instruction).
    pub fn ras_push(&mut self, return_pc: u32) {
        if self.ras_capacity == 0 {
            return;
        }
        self.ras[self.ras_top % self.ras_capacity] = return_pc;
        self.ras_top += 1;
    }

    /// Pops a predicted return address.
    pub fn ras_pop(&mut self) -> Option<u32> {
        if self.ras_capacity == 0 || self.ras_top == 0 {
            return None;
        }
        self.ras_top -= 1;
        Some(self.ras[self.ras_top % self.ras_capacity])
    }

    /// Lifetime lookup count.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lifetime misprediction count (direction or target).
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

impl voltctl_snap::Pack for Counter2 {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(self.0);
    }
}

impl voltctl_snap::Unpack for Counter2 {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let v = r.get_u8()?;
        if v > 3 {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "2-bit counter value {v} out of range"
            )));
        }
        Ok(Counter2(v))
    }
}

impl voltctl_snap::Pack for BranchPredictor {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.bimodal.pack(w);
        self.gshare.pack(w);
        self.chooser.pack(w);
        w.put_u64(self.history);
        w.put_u64(self.history_mask);
        self.btb_tags.pack(w);
        self.btb_targets.pack(w);
        self.ras.pack(w);
        w.put_usize(self.ras_top);
        w.put_usize(self.ras_capacity);
        w.put_u64(self.lookups);
        w.put_u64(self.mispredicts);
    }
}

impl voltctl_snap::Unpack for BranchPredictor {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let bimodal: Vec<Counter2> = voltctl_snap::Unpack::unpack(r)?;
        let gshare: Vec<Counter2> = voltctl_snap::Unpack::unpack(r)?;
        let chooser: Vec<Counter2> = voltctl_snap::Unpack::unpack(r)?;
        let history = r.get_u64()?;
        let history_mask = r.get_u64()?;
        let btb_tags: Vec<Option<u64>> = voltctl_snap::Unpack::unpack(r)?;
        let btb_targets: Vec<u32> = voltctl_snap::Unpack::unpack(r)?;
        let ras: Vec<u32> = voltctl_snap::Unpack::unpack(r)?;
        let ras_top = r.get_usize()?;
        let ras_capacity = r.get_usize()?;
        let lookups = r.get_u64()?;
        let mispredicts = r.get_u64()?;
        for (name, len) in [
            ("bimodal", bimodal.len()),
            ("gshare", gshare.len()),
            ("chooser", chooser.len()),
            ("btb", btb_tags.len()),
        ] {
            if !len.is_power_of_two() {
                return Err(voltctl_snap::SnapError::Corrupt(format!(
                    "{name} table length {len} is not a power of two"
                )));
            }
        }
        if btb_targets.len() != btb_tags.len() {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "BTB target table length {} does not match tag table length {}",
                btb_targets.len(),
                btb_tags.len()
            )));
        }
        if ras.len() != ras_capacity {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "RAS length {} does not match capacity {ras_capacity}",
                ras.len()
            )));
        }
        Ok(BranchPredictor {
            bimodal,
            gshare,
            chooser,
            history,
            history_mask,
            btb_tags,
            btb_targets,
            ras,
            ras_top,
            ras_capacity,
            lookups,
            mispredicts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(&CpuConfig::table1().bpred)
    }

    #[test]
    fn learns_always_taken() {
        let mut p = bp();
        let pc = 0x1000;
        for _ in 0..4 {
            let pred = p.predict(pc);
            p.update(pc, true, 7, &pred);
        }
        let pred = p.predict(pc);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(7));
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = bp();
        let pc = 0x2000;
        for _ in 0..4 {
            let pred = p.predict(pc);
            p.update(pc, false, 0, &pred);
        }
        assert!(!p.predict(pc).taken);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // Bimodal cannot learn T,N,T,N…; gshare + chooser can.
        let mut p = bp();
        let pc = 0x3000;
        let mut correct_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let pred = p.predict(pc);
            if i >= 200 && pred.taken == taken {
                correct_late += 1;
            }
            p.update(pc, taken, 9, &pred);
        }
        assert!(
            correct_late > 190,
            "combined predictor should master alternation, got {correct_late}/200"
        );
    }

    #[test]
    fn mispredicts_counted() {
        let mut p = bp();
        let pc = 0x4000;
        // Train taken, then observe not-taken: must count a mispredict.
        for _ in 0..4 {
            let pred = p.predict(pc);
            p.update(pc, true, 5, &pred);
        }
        let before = p.mispredicts();
        let pred = p.predict(pc);
        p.update(pc, false, 0, &pred);
        assert_eq!(p.mispredicts(), before + 1);
    }

    #[test]
    fn btb_miss_on_cold_taken_branch() {
        let mut p = bp();
        let pred = p.predict_unconditional(0x5000);
        assert!(pred.taken);
        assert_eq!(pred.target, None); // cold BTB
        p.update_unconditional(0x5000, 77, &pred);
        let pred = p.predict_unconditional(0x5000);
        assert_eq!(pred.target, Some(77));
    }

    #[test]
    fn btb_conflict_evicts() {
        let mut p = bp();
        let stride = 1024 * 4; // same BTB index
        let pred = p.predict_unconditional(0x1000);
        p.update_unconditional(0x1000, 1, &pred);
        let pred = p.predict_unconditional(0x1000 + stride);
        p.update_unconditional(0x1000 + stride, 2, &pred);
        // Original entry evicted by the conflicting tag.
        assert_eq!(p.predict_unconditional(0x1000).target, None);
    }

    #[test]
    fn ras_is_lifo() {
        let mut p = bp();
        p.ras_push(10);
        p.ras_push(20);
        assert_eq!(p.ras_pop(), Some(20));
        assert_eq!(p.ras_pop(), Some(10));
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    fn ras_wraps_at_capacity() {
        let mut config = CpuConfig::table1().bpred;
        config.ras_entries = 2;
        let mut p = BranchPredictor::new(&config);
        p.ras_push(1);
        p.ras_push(2);
        p.ras_push(3); // overwrites 1
        assert_eq!(p.ras_pop(), Some(3));
        assert_eq!(p.ras_pop(), Some(2));
        assert_eq!(p.ras_pop(), Some(3)); // wrapped slot, stale value
    }

    #[test]
    fn lookups_counted() {
        let mut p = bp();
        p.predict(0);
        p.predict_unconditional(4);
        assert_eq!(p.lookups(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut config = CpuConfig::table1().bpred;
        config.btb_entries = 1000;
        let _ = BranchPredictor::new(&config);
    }
}
