//! The cycle-level out-of-order pipeline.
//!
//! [`Cpu`] models the Table 1 machine: an 8-wide fetch/decode front end
//! feeding a 256-entry register update unit (RUU — unified reorder buffer
//! and issue window, SimpleScalar style) and a 128-entry load/store queue,
//! issuing to the configured functional-unit mix, with a combined branch
//! predictor and a two-level cache hierarchy.
//!
//! ## Execution model
//!
//! The simulator is *execution-driven with oracle fetch*: instructions are
//! functionally executed, in program order, at fetch time, so operand
//! values, memory addresses, and branch outcomes are always real. Fetch
//! follows the correct path; when the predictor disagrees with the actual
//! outcome the fetch stream stops at the branch and resumes
//! `branch_penalty` cycles after the branch resolves in the execution
//! core — modeling the full mispredict bubble without simulating
//! wrong-path instructions. (Wrong-path activity is not modeled; the
//! paper's own substrate handled refill by adding pipeline stages, which
//! the 10-cycle penalty reproduces.)
//!
//! Timing (dependences, structural hazards, cache misses, store-to-load
//! forwarding) is modeled in the RUU/LSQ machinery, independent of the
//! functional values.
//!
//! ## dI/dt control hooks
//!
//! The per-cycle [`GatingState`] lets an external controller block issue
//! to the FU domain, block memory issue (DL1 domain), block fetch (IL1
//! domain), or phantom-fire any domain. Gating stalls work without
//! discarding it, so architectural results are identical with and without
//! control — verified by `arch_digest`.

use crate::activity::{CycleActivity, Stats};
use crate::bpred::BranchPredictor;
use crate::cache::CacheHierarchy;
use crate::config::CpuConfig;
use crate::fu::{op_timing, FuKind, FuPool};
use crate::gating::GatingState;
use crate::mem::Memory;
use std::collections::VecDeque;
use voltctl_isa::{exec, Inst, OpClass, Opcode, Program, Reg};
use voltctl_snap::{Pack, Unpack};

/// Completion-event ring capacity; must exceed the largest possible
/// operation latency (memory miss chain + occupancy).
const EVENT_RING: usize = 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Ready,
    Issued,
    Complete,
}

/// A functionally executed instruction traveling through the pipeline.
#[derive(Debug, Clone)]
struct FetchedInst {
    inst: Inst,
    seq: u64,
    mem_addr: Option<u64>,
    mem_bytes: usize,
    mispredicted_branch: bool,
}

#[derive(Debug, Clone)]
struct RuuEntry {
    fetched: FetchedInst,
    state: EntryState,
    deps_outstanding: u32,
    dependents: Vec<usize>,
    fu: Option<FuKind>,
}

/// The processor.
///
/// `Clone` is part of the multi-lane execution contract: the simulator is
/// deterministic, so a cloned CPU stepped under the same gating commands
/// produces bit-identical activity — which lets lane groups share one CPU
/// until their controllers diverge and fork copies only at that point.
#[derive(Debug, Clone)]
pub struct Cpu {
    config: CpuConfig,
    program: Program,

    // Functional (architectural) state.
    regs: [u64; 64],
    memory: Memory,
    pc: u32,
    fetch_done: bool,

    // Front end.
    bpred: BranchPredictor,
    fetch_queue: VecDeque<FetchedInst>,
    fetch_stall_until: u64,
    /// Sequence number of an in-flight mispredicted branch that fetch is
    /// blocked on, if any.
    fetch_blocked_on: Option<u64>,

    // Window.
    ruu: Vec<Option<RuuEntry>>,
    ruu_head: usize,
    ruu_count: usize,
    /// Program-ordered slots of in-flight memory operations.
    lsq: VecDeque<usize>,
    reg_producer: [Option<usize>; 64],

    // Execution.
    caches: CacheHierarchy,
    fus: FuPool,
    completions: Vec<Vec<usize>>,

    gating: GatingState,
    cycle: u64,
    next_seq: u64,
    stats: Stats,
    /// Scratch shared between `exec_and_package` and the fetch loop within
    /// a single cycle: whether the most recently executed branch was taken.
    last_branch_taken: bool,
}

impl Cpu {
    /// Builds a processor running `program` under `config`.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error, if any.
    pub fn new(config: CpuConfig, program: &Program) -> Result<Cpu, String> {
        config.validate()?;
        let mut memory = Memory::new();
        for seg in program.data() {
            memory.load(seg.addr, &seg.bytes);
        }
        let bpred = BranchPredictor::new(&config.bpred);
        let caches = CacheHierarchy::new(&config);
        let fus = FuPool::new(&config.fu);
        let ruu_size = config.ruu_size;
        Ok(Cpu {
            pc: program.entry(),
            program: program.clone(),
            regs: [0; 64],
            memory,
            fetch_done: false,
            bpred,
            fetch_queue: VecDeque::with_capacity(config.fetch_queue),
            fetch_stall_until: 0,
            fetch_blocked_on: None,
            ruu: vec![None; ruu_size],
            ruu_head: 0,
            ruu_count: 0,
            lsq: VecDeque::with_capacity(config.lsq_size),
            reg_producer: [None; 64],
            caches,
            fus,
            completions: vec![Vec::new(); EVENT_RING],
            gating: GatingState::default(),
            cycle: 0,
            next_seq: 0,
            stats: Stats::default(),
            last_branch_taken: false,
            config,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the program has fully finished (halt or program end
    /// committed and the pipeline drained). Infinite loops never finish.
    pub fn done(&self) -> bool {
        self.fetch_done && self.fetch_queue.is_empty() && self.ruu_count == 0
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Current gating state (read by the pipeline each cycle).
    pub fn gating(&self) -> GatingState {
        self.gating
    }

    /// Mutable access for the actuator.
    pub fn gating_mut(&mut self) -> &mut GatingState {
        &mut self.gating
    }

    /// An architectural register value (flat index via [`Reg::index`]).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// The functional memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// A digest of all architectural state (registers + memory), used to
    /// verify that dI/dt control does not perturb program results.
    pub fn arch_digest(&self) -> u64 {
        let mut h = self.memory.digest();
        for (i, &v) in self.regs.iter().enumerate() {
            if i == 31 || i == 63 {
                continue; // hardwired zeros
            }
            h ^= v
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left((i % 63) as u32);
        }
        h
    }

    /// Advances one cycle and reports the cycle's structural activity.
    pub fn step(&mut self) -> CycleActivity {
        let mut act = CycleActivity::default();

        self.writeback(&mut act);
        self.commit(&mut act);
        self.issue(&mut act);
        self.dispatch(&mut act);
        self.fetch(&mut act);

        for kind in FuKind::all() {
            act.executing_per_fu[kind.index()] = self.fus.executing(kind, self.cycle);
        }
        act.ruu_occupancy = self.ruu_count as u32;
        act.lsq_occupancy = self.lsq.len() as u32;

        if self.gating.gate_fu {
            self.stats.gated_issue_cycles += 1;
        }
        if self.gating.gate_dl1 {
            self.stats.gated_mem_cycles += 1;
        }
        if self.gating.gate_il1 {
            self.stats.gated_fetch_cycles += 1;
        }

        self.stats.absorb(&act);
        self.cycle += 1;
        act
    }

    /// Runs until `done` or `max_cycles` elapse; returns cycles executed.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        while !self.done() && self.cycle - start < max_cycles {
            self.step();
        }
        self.cycle - start
    }

    // --- pipeline stages -------------------------------------------------

    fn writeback(&mut self, act: &mut CycleActivity) {
        let bucket = (self.cycle as usize) % EVENT_RING;
        let finished = std::mem::take(&mut self.completions[bucket]);
        for slot in finished {
            let (seq, has_dest, dependents) = {
                let entry = self.ruu[slot]
                    .as_mut()
                    .expect("completion event for vacated slot");
                debug_assert_eq!(entry.state, EntryState::Issued);
                entry.state = EntryState::Complete;
                (
                    entry.fetched.seq,
                    entry.fetched.inst.effective_dest().is_some(),
                    std::mem::take(&mut entry.dependents),
                )
            };
            act.completed += 1;
            if has_dest {
                act.regfile_writes += 1;
            }
            for dep_slot in dependents {
                if let Some(dep) = self.ruu[dep_slot].as_mut() {
                    debug_assert!(dep.deps_outstanding > 0);
                    dep.deps_outstanding -= 1;
                    if dep.deps_outstanding == 0 && dep.state == EntryState::Waiting {
                        dep.state = EntryState::Ready;
                    }
                }
            }
            if self.fetch_blocked_on == Some(seq) {
                self.fetch_blocked_on = None;
                self.fetch_stall_until = self.cycle + self.config.branch_penalty;
            }
        }
    }

    fn commit(&mut self, act: &mut CycleActivity) {
        for _ in 0..self.config.commit_width {
            if self.ruu_count == 0 {
                break;
            }
            let head = self.ruu_head;
            let ready = matches!(
                self.ruu[head].as_ref().map(|e| e.state),
                Some(EntryState::Complete)
            );
            if !ready {
                break;
            }
            let entry = self.ruu[head].take().expect("checked above");
            self.ruu_head = (self.ruu_head + 1) % self.ruu.len();
            self.ruu_count -= 1;

            // Clear producer mappings that still point at this slot.
            if let Some(dest) = entry.fetched.inst.effective_dest() {
                if self.reg_producer[dest.index()] == Some(head) {
                    self.reg_producer[dest.index()] = None;
                }
            }
            if entry.fetched.inst.op.is_mem() {
                let front = self.lsq.pop_front();
                debug_assert_eq!(front, Some(head), "LSQ must commit in order");
                if entry.fetched.inst.is_load() {
                    self.stats.loads += 1;
                } else {
                    self.stats.stores += 1;
                }
            }
            act.committed += 1;
        }
    }

    fn issue(&mut self, act: &mut CycleActivity) {
        let mut budget = self.config.issue_width;
        let len = self.ruu.len();
        for i in 0..self.ruu_count {
            if budget == 0 {
                break;
            }
            let slot = (self.ruu_head + i) % len;
            let Some(entry) = self.ruu[slot].as_ref() else {
                continue;
            };
            if entry.state != EntryState::Ready {
                continue;
            }
            let Some(fu_kind) = entry.fu else {
                // Nops complete without a unit, one cycle after dispatch.
                let entry = self.ruu[slot].as_mut().expect("present");
                entry.state = EntryState::Issued;
                self.schedule_completion(slot, 1);
                continue;
            };

            // Gating: the FU domain covers all execution units; the DL1
            // domain covers the memory ports.
            if fu_kind == FuKind::MemPort {
                if self.gating.gate_dl1 {
                    continue;
                }
            } else if self.gating.gate_fu {
                continue;
            }

            // Memory ordering: a load may not issue past an incomplete
            // older store to an overlapping address.
            let mut forward = false;
            if entry.fetched.inst.is_load() {
                match self.load_ordering(slot) {
                    LoadOrder::Blocked => continue,
                    LoadOrder::Forward => forward = true,
                    LoadOrder::CacheAccess => {}
                }
            }

            let timing = op_timing(entry.fetched.inst.op, &self.config.fu);
            let latency = if entry.fetched.inst.op.is_mem() {
                if forward {
                    1
                } else {
                    let addr = entry.fetched.mem_addr.expect("mem op has address");
                    let write = entry.fetched.inst.is_store();
                    let (lat, counts) = self.caches.access_data(addr, write);
                    act.dl1_accesses += counts.l1_accesses;
                    act.dl1_misses += counts.l1_misses;
                    act.l2_accesses += counts.l2_accesses;
                    act.l2_misses += counts.l2_misses;
                    lat
                }
            } else {
                timing.latency
            };
            let exec_cycles = latency.max(timing.occupancy);

            if !self
                .fus
                .try_issue(fu_kind, self.cycle, timing.occupancy, exec_cycles)
            {
                continue;
            }

            let entry = self.ruu[slot].as_mut().expect("present");
            entry.state = EntryState::Issued;
            act.issued += 1;
            act.issued_per_fu[fu_kind.index()] += 1;
            act.regfile_reads += entry.fetched.inst.effective_sources().count() as u32;
            if forward {
                act.lsq_forwards += 1;
                self.stats.lsq_forwards += 1;
            }
            self.schedule_completion(slot, latency);
            budget -= 1;
        }
    }

    fn schedule_completion(&mut self, slot: usize, latency: u64) {
        debug_assert!(
            (latency as usize) < EVENT_RING,
            "latency exceeds event ring"
        );
        let when = ((self.cycle + latency.max(1)) as usize) % EVENT_RING;
        self.completions[when].push(slot);
    }

    fn load_ordering(&self, load_slot: usize) -> LoadOrder {
        let load = self.ruu[load_slot].as_ref().expect("load entry present");
        let (l_addr, l_bytes) = (
            load.fetched.mem_addr.expect("load has address"),
            load.fetched.mem_bytes,
        );
        let l_seq = load.fetched.seq;
        // Scan older LSQ entries (front is oldest); remember the youngest
        // overlapping older store.
        let mut youngest: Option<&RuuEntry> = None;
        for &slot in &self.lsq {
            let Some(e) = self.ruu[slot].as_ref() else {
                continue;
            };
            if e.fetched.seq >= l_seq {
                break;
            }
            if !e.fetched.inst.is_store() {
                continue;
            }
            let s_addr = e.fetched.mem_addr.expect("store has address");
            let s_bytes = e.fetched.mem_bytes;
            let overlap = s_addr < l_addr + l_bytes as u64 && l_addr < s_addr + s_bytes as u64;
            if overlap {
                youngest = Some(e);
            }
        }
        match youngest {
            None => LoadOrder::CacheAccess,
            Some(store) if store.state == EntryState::Complete => LoadOrder::Forward,
            Some(_) => LoadOrder::Blocked,
        }
    }

    fn dispatch(&mut self, act: &mut CycleActivity) {
        for _ in 0..self.config.decode_width {
            if self.fetch_queue.is_empty() || self.ruu_count == self.ruu.len() {
                break;
            }
            let is_mem = self
                .fetch_queue
                .front()
                .map(|f| f.inst.op.is_mem())
                .expect("checked non-empty");
            if is_mem && self.lsq.len() == self.config.lsq_size {
                break;
            }
            let fetched = self.fetch_queue.pop_front().expect("checked non-empty");

            // Allocate the next RUU slot (tail).
            let slot = (self.ruu_head + self.ruu_count) % self.ruu.len();
            debug_assert!(self.ruu[slot].is_none(), "tail slot must be vacant");

            // Resolve dependences against in-flight producers.
            let mut deps = 0u32;
            for src in fetched.inst.effective_sources() {
                if let Some(prod_slot) = self.reg_producer[src.index()] {
                    let producer = self.ruu[prod_slot]
                        .as_mut()
                        .expect("producer mapping must be live");
                    if producer.state != EntryState::Complete {
                        producer.dependents.push(slot);
                        deps += 1;
                    }
                }
            }
            let fu = FuKind::for_opcode(fetched.inst.op);
            let state = if deps == 0 {
                EntryState::Ready
            } else {
                EntryState::Waiting
            };
            if let Some(dest) = fetched.inst.effective_dest() {
                self.reg_producer[dest.index()] = Some(slot);
            }
            if fetched.inst.op.is_mem() {
                self.lsq.push_back(slot);
            }
            self.ruu[slot] = Some(RuuEntry {
                fetched,
                state,
                deps_outstanding: deps,
                dependents: Vec::new(),
                fu,
            });
            self.ruu_count += 1;
            act.dispatched += 1;
        }
    }

    fn fetch(&mut self, act: &mut CycleActivity) {
        if self.fetch_done
            || self.gating.gate_il1
            || self.fetch_blocked_on.is_some()
            || self.cycle < self.fetch_stall_until
        {
            return;
        }
        if self.fetch_queue.len() >= self.config.fetch_queue {
            return;
        }

        // One I-cache access per fetch cycle, at the current PC's line.
        let block_addr = Program::inst_addr(self.pc);
        let (lat, counts) = self.caches.fetch_instr(block_addr);
        act.il1_accesses += counts.l1_accesses;
        act.il1_misses += counts.l1_misses;
        act.l2_accesses += counts.l2_accesses;
        act.l2_misses += counts.l2_misses;
        if counts.l1_misses > 0 {
            self.fetch_stall_until = self.cycle + lat;
            return;
        }

        let line_bytes = self.config.l1i.line_bytes as u64;
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= self.config.fetch_queue {
                break;
            }
            // Stop at I-cache line boundary (next cycle accesses next line).
            if Program::inst_addr(self.pc) / line_bytes != block_addr / line_bytes {
                break;
            }
            let Some(&inst) = self.program.fetch(self.pc) else {
                self.fetch_done = true;
                break;
            };
            if inst.op == Opcode::Halt {
                self.fetch_done = true;
                // Halt still flows through the pipeline so `done` implies a
                // drained machine.
            }

            let fetched = self.exec_and_package(inst, act);
            let mispredicted = fetched.mispredicted_branch;
            let seq = fetched.seq;
            let is_branch = inst.op.is_branch();
            let halt = inst.op == Opcode::Halt;
            self.fetch_queue.push_back(fetched);
            act.fetched += 1;
            if is_branch {
                self.stats.branches += 1;
            }

            if halt {
                break;
            }
            if mispredicted {
                self.stats.mispredicts += 1;
                act.mispredicts += 1;
                self.fetch_blocked_on = Some(seq);
                break;
            }
            if is_branch && self.branch_was_taken(&inst) {
                // Correctly predicted taken branch ends the fetch block.
                break;
            }
        }
    }

    fn branch_was_taken(&self, inst: &Inst) -> bool {
        // Recompute cheaply: for Br always; for conditional, the condition
        // register was read during exec_and_package *before* any younger
        // write, and branches never write registers, so re-reading is safe
        // within the same cycle only for the just-fetched branch. To avoid
        // any subtlety we stash the outcome in `last_branch_taken`.
        let _ = inst;
        self.last_branch_taken
    }

    /// Functionally executes `inst` at the current PC, advances PC along
    /// the *correct* path, consults/updates the branch predictor, and
    /// packages the pipeline record.
    fn exec_and_package(&mut self, inst: Inst, act: &mut CycleActivity) -> FetchedInst {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pc = self.pc;
        let pc_addr = Program::inst_addr(pc);

        let read = |regs: &[u64; 64], r: Option<Reg>| -> u64 {
            match r {
                Some(r) if !r.is_zero() => regs[r.index()],
                _ => 0,
            }
        };

        let mut mem_addr = None;
        let mut mem_bytes = 0usize;
        let mut mispredicted = false;
        let mut next_pc = pc.wrapping_add(1);
        self.last_branch_taken = false;

        match inst.op.class() {
            OpClass::IntAlu
            | OpClass::IntMult
            | OpClass::FpAdd
            | OpClass::FpMult
            | OpClass::FpDiv => {
                let a = read(&self.regs, inst.ra);
                let result = match inst.op {
                    Opcode::Cmovne | Opcode::Cmoveq => {
                        let val = read(&self.regs, inst.rb);
                        let old = read(&self.regs, inst.rc);
                        exec::eval_cmov(inst.op, a, val, old)
                    }
                    _ => {
                        let b = match inst.rb {
                            Some(rb) if !rb.is_zero() => self.regs[rb.index()],
                            Some(_) => 0,
                            None => inst.imm as u64,
                        };
                        exec::eval_alu(inst.op, a, b)
                    }
                };
                if let Some(dest) = inst.effective_dest() {
                    self.regs[dest.index()] = result;
                }
            }
            OpClass::Load => {
                let base = read(&self.regs, inst.ra);
                let addr = exec::effective_address(base, inst.imm);
                mem_addr = Some(addr);
                mem_bytes = inst.op.mem_bytes();
                let value = match inst.op {
                    Opcode::Ldq | Opcode::Ldt => self.memory.read_u64(addr),
                    Opcode::Ldl => u64::from(self.memory.read_u32(addr)),
                    _ => unreachable!("load class"),
                };
                if let Some(dest) = inst.effective_dest() {
                    self.regs[dest.index()] = value;
                }
            }
            OpClass::Store => {
                let base = read(&self.regs, inst.ra);
                let addr = exec::effective_address(base, inst.imm);
                let data = read(&self.regs, inst.rb);
                mem_addr = Some(addr);
                mem_bytes = inst.op.mem_bytes();
                match inst.op {
                    Opcode::Stq | Opcode::Stt => self.memory.write_u64(addr, data),
                    Opcode::Stl => self.memory.write_u32(addr, data as u32),
                    _ => unreachable!("store class"),
                }
            }
            OpClass::Branch => {
                let a = read(&self.regs, inst.ra);
                act.bpred_lookups += 1;
                match inst.op {
                    Opcode::Jsr => {
                        let target = inst.target.expect("jsr targets are static");
                        let return_pc = pc.wrapping_add(1);
                        if let Some(dest) = inst.effective_dest() {
                            self.regs[dest.index()] = u64::from(return_pc);
                        }
                        let pred = self.bpred.predict_unconditional(pc_addr);
                        self.bpred.update_unconditional(pc_addr, target, &pred);
                        self.bpred.ras_push(return_pc);
                        mispredicted = pred.target != Some(target);
                        self.last_branch_taken = true;
                        next_pc = target;
                    }
                    Opcode::Ret => {
                        // The target is dynamic: the link-register value,
                        // predicted by the return-address stack.
                        let target = a as u32;
                        let predicted = self.bpred.ras_pop();
                        mispredicted = predicted != Some(target);
                        self.last_branch_taken = true;
                        next_pc = target;
                    }
                    op if op.is_conditional_branch() => {
                        let taken = exec::branch_taken(op, a);
                        let target = inst.target.expect("built programs resolve targets");
                        self.last_branch_taken = taken;
                        let pred = self.bpred.predict(pc_addr);
                        self.bpred.update(pc_addr, taken, target, &pred);
                        mispredicted =
                            pred.taken != taken || (taken && pred.target != Some(target));
                        if taken {
                            next_pc = target;
                        }
                    }
                    _ => {
                        // Unconditional direct branch.
                        let target = inst.target.expect("built programs resolve targets");
                        self.last_branch_taken = true;
                        let pred = self.bpred.predict_unconditional(pc_addr);
                        self.bpred.update_unconditional(pc_addr, target, &pred);
                        mispredicted = pred.target != Some(target);
                        next_pc = target;
                    }
                }
            }
            OpClass::Nop => {}
        }

        self.pc = next_pc;
        FetchedInst {
            inst,
            seq,
            mem_addr,
            mem_bytes,
            mispredicted_branch: mispredicted,
        }
    }
}

impl voltctl_snap::Pack for EntryState {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(match self {
            EntryState::Waiting => 0,
            EntryState::Ready => 1,
            EntryState::Issued => 2,
            EntryState::Complete => 3,
        });
    }
}

impl voltctl_snap::Unpack for EntryState {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(EntryState::Waiting),
            1 => Ok(EntryState::Ready),
            2 => Ok(EntryState::Issued),
            3 => Ok(EntryState::Complete),
            other => Err(voltctl_snap::SnapError::Corrupt(format!(
                "unknown RUU entry state {other}"
            ))),
        }
    }
}

impl voltctl_snap::Pack for FetchedInst {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.inst.pack(w);
        w.put_u64(self.seq);
        self.mem_addr.pack(w);
        w.put_usize(self.mem_bytes);
        w.put_bool(self.mispredicted_branch);
    }
}

impl voltctl_snap::Unpack for FetchedInst {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let inst = Inst::unpack(r)?;
        let seq = r.get_u64()?;
        let mem_addr: Option<u64> = voltctl_snap::Unpack::unpack(r)?;
        let mem_bytes = r.get_usize()?;
        let mispredicted_branch = r.get_bool()?;
        if inst.op.is_mem() && mem_addr.is_none() {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "in-flight memory instruction (seq {seq}) has no effective address"
            )));
        }
        Ok(FetchedInst {
            inst,
            seq,
            mem_addr,
            mem_bytes,
            mispredicted_branch,
        })
    }
}

impl voltctl_snap::Pack for RuuEntry {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.fetched.pack(w);
        self.state.pack(w);
        w.put_u32(self.deps_outstanding);
        self.dependents.pack(w);
        self.fu.pack(w);
    }
}

impl voltctl_snap::Unpack for RuuEntry {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(RuuEntry {
            fetched: voltctl_snap::Unpack::unpack(r)?,
            state: voltctl_snap::Unpack::unpack(r)?,
            deps_outstanding: r.get_u32()?,
            dependents: voltctl_snap::Unpack::unpack(r)?,
            fu: voltctl_snap::Unpack::unpack(r)?,
        })
    }
}

impl Cpu {
    /// Stable fingerprint of a machine configuration. Snapshots embed it so
    /// a restore under a different configuration is rejected instead of
    /// silently producing a divergent machine.
    pub fn config_fingerprint(config: &CpuConfig) -> u64 {
        voltctl_snap::fnv1a(format!("{config:?}").as_bytes())
    }

    /// Serializes the complete processor state — architectural (registers,
    /// memory, PC) and microarchitectural (predictor, caches, window, LSQ,
    /// functional units, in-flight completions) — so that a restored
    /// machine continues cycle-for-cycle identically.
    ///
    /// The program itself is not embedded; its [`Program::digest`] is, and
    /// [`Cpu::unpack_state`] refuses to restore onto a different program.
    pub fn pack_state(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u64(self.program.digest());
        w.put_u64(Cpu::config_fingerprint(&self.config));
        self.regs.pack(w);
        self.memory.pack(w);
        w.put_u32(self.pc);
        w.put_bool(self.fetch_done);
        self.bpred.pack(w);
        self.fetch_queue.pack(w);
        w.put_u64(self.fetch_stall_until);
        self.fetch_blocked_on.pack(w);
        self.ruu.pack(w);
        w.put_usize(self.ruu_head);
        w.put_usize(self.ruu_count);
        self.lsq.pack(w);
        self.reg_producer.pack(w);
        self.caches.pack(w);
        self.fus.pack(w);
        self.completions.pack(w);
        self.gating.pack(w);
        w.put_u64(self.cycle);
        w.put_u64(self.next_seq);
        self.stats.pack(w);
        w.put_bool(self.last_branch_taken);
    }

    /// Reconstructs a processor from [`Cpu::pack_state`] bytes.
    ///
    /// The caller supplies the configuration and program; both are checked
    /// against the fingerprints embedded in the snapshot. Every structural
    /// index is validated against the window geometry, so corrupt input
    /// yields an error — never a machine that panics later.
    pub fn unpack_state(
        config: CpuConfig,
        program: &Program,
        r: &mut voltctl_snap::ByteReader<'_>,
    ) -> Result<Cpu, voltctl_snap::SnapError> {
        let digest = r.get_u64()?;
        if digest != program.digest() {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "snapshot was taken on a different program (digest {digest:#018x}, \
                 expected {:#018x} for '{}')",
                program.digest(),
                program.name()
            )));
        }
        let config_fp = r.get_u64()?;
        if config_fp != Cpu::config_fingerprint(&config) {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "snapshot was taken under a different machine configuration \
                 (fingerprint {config_fp:#018x}, expected {:#018x})",
                Cpu::config_fingerprint(&config)
            )));
        }
        config
            .validate()
            .map_err(|e| voltctl_snap::SnapError::Corrupt(format!("invalid configuration: {e}")))?;

        let regs: [u64; 64] = voltctl_snap::Unpack::unpack(r)?;
        let memory = Memory::unpack(r)?;
        let pc = r.get_u32()?;
        let fetch_done = r.get_bool()?;
        let bpred = BranchPredictor::unpack(r)?;
        let fetch_queue: VecDeque<FetchedInst> = voltctl_snap::Unpack::unpack(r)?;
        let fetch_stall_until = r.get_u64()?;
        let fetch_blocked_on: Option<u64> = voltctl_snap::Unpack::unpack(r)?;
        let ruu: Vec<Option<RuuEntry>> = voltctl_snap::Unpack::unpack(r)?;
        let ruu_head = r.get_usize()?;
        let ruu_count = r.get_usize()?;
        let lsq: VecDeque<usize> = voltctl_snap::Unpack::unpack(r)?;
        let reg_producer: [Option<usize>; 64] = voltctl_snap::Unpack::unpack(r)?;
        let caches = CacheHierarchy::unpack(r)?;
        let fus = FuPool::unpack(r)?;
        let completions: Vec<Vec<usize>> = voltctl_snap::Unpack::unpack(r)?;
        let gating = GatingState::unpack(r)?;
        let cycle = r.get_u64()?;
        let next_seq = r.get_u64()?;
        let stats = Stats::unpack(r)?;
        let last_branch_taken = r.get_bool()?;

        // Structural validation: every stored index must stay inside the
        // window, and cross-structure references must point at live
        // entries, so the pipeline's internal `expect`s can never fire.
        let len = ruu.len();
        if len != config.ruu_size {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "window has {len} slots, configuration says {}",
                config.ruu_size
            )));
        }
        if ruu_head >= len {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "window head {ruu_head} out of range (size {len})"
            )));
        }
        let occupied = ruu.iter().filter(|e| e.is_some()).count();
        if ruu_count != occupied {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "window count {ruu_count} does not match {occupied} occupied slots"
            )));
        }
        if completions.len() != EVENT_RING {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "completion ring has {} buckets, expected {EVENT_RING}",
                completions.len()
            )));
        }
        let live = |slot: usize| ruu.get(slot).is_some_and(|e| e.is_some());
        for entry in ruu.iter().flatten() {
            if let Some(&bad) = entry.dependents.iter().find(|&&d| d >= len) {
                return Err(voltctl_snap::SnapError::Corrupt(format!(
                    "dependent slot {bad} out of range (window size {len})"
                )));
            }
        }
        for &slot in lsq.iter().chain(completions.iter().flatten()) {
            if !live(slot) {
                return Err(voltctl_snap::SnapError::Corrupt(format!(
                    "LSQ/completion reference to vacant window slot {slot}"
                )));
            }
        }
        for slot in reg_producer.iter().flatten() {
            if !live(*slot) {
                return Err(voltctl_snap::SnapError::Corrupt(format!(
                    "register producer points at vacant window slot {slot}"
                )));
            }
        }

        Ok(Cpu {
            config,
            program: program.clone(),
            regs,
            memory,
            pc,
            fetch_done,
            bpred,
            fetch_queue,
            fetch_stall_until,
            fetch_blocked_on,
            ruu,
            ruu_head,
            ruu_count,
            lsq,
            reg_producer,
            caches,
            fus,
            completions,
            gating,
            cycle,
            next_seq,
            stats,
            last_branch_taken,
        })
    }
}

/// Outcome of the load-vs-older-store ordering check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadOrder {
    /// An older overlapping store has not completed: wait.
    Blocked,
    /// The youngest older overlapping store completed: forward in 1 cycle.
    Forward,
    /// No overlap: access the D-cache.
    CacheAccess,
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltctl_isa::{builder::ProgramBuilder, FpReg, IntReg};

    fn run_to_completion(program: &Program) -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::table1(), program).unwrap();
        let ran = cpu.run(1_000_000);
        assert!(cpu.done(), "program did not finish in {ran} cycles");
        cpu
    }

    #[test]
    fn straightline_arithmetic_computes() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R1, IntReg::R31, 6);
        b.lda(IntReg::R2, IntReg::R31, 7);
        b.mulq(IntReg::R3, IntReg::R1, IntReg::R2);
        b.addq_imm(IntReg::R3, IntReg::R3, 100);
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        assert_eq!(cpu.reg(IntReg::R3.into()), 142);
        assert_eq!(cpu.stats().committed, 5);
    }

    #[test]
    fn loop_executes_correct_trip_count() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R1, IntReg::R31, 100);
        b.lda(IntReg::R2, IntReg::R31, 0);
        b.label("top");
        b.addq_imm(IntReg::R2, IntReg::R2, 1);
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        assert_eq!(cpu.reg(IntReg::R2.into()), 100);
        // 100 iterations x 3 insts + 2 setup + halt
        assert_eq!(cpu.stats().committed, 303);
    }

    #[test]
    fn memory_roundtrip_through_pipeline() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R4, IntReg::R31, 0x2000);
        b.lda(IntReg::R1, IntReg::R31, 1234);
        b.stq(IntReg::R1, 0, IntReg::R4);
        b.ldq(IntReg::R2, 0, IntReg::R4);
        b.addq_imm(IntReg::R2, IntReg::R2, 1);
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        assert_eq!(cpu.reg(IntReg::R2.into()), 1235);
        assert_eq!(cpu.memory().read_u64(0x2000), 1234);
        assert_eq!(cpu.stats().loads, 1);
        assert_eq!(cpu.stats().stores, 1);
    }

    #[test]
    fn store_to_load_forwarding_counted() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R4, IntReg::R31, 0x3000);
        b.lda(IntReg::R1, IntReg::R31, 55);
        // Warm the line so the store is a hit and completes quickly.
        b.ldq(IntReg::R5, 0, IntReg::R4);
        b.stq(IntReg::R1, 0, IntReg::R4);
        b.ldq(IntReg::R2, 0, IntReg::R4);
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        assert_eq!(cpu.reg(IntReg::R2.into()), 55);
        assert!(cpu.stats().lsq_forwards >= 1, "forward expected");
    }

    #[test]
    fn fp_pipeline_computes() {
        let mut b = ProgramBuilder::new("t");
        b.data_f64(0x1000, &[9.0, 2.0]);
        b.lda(IntReg::R4, IntReg::R31, 0x1000);
        b.ldt(FpReg::F1, 0, IntReg::R4);
        b.ldt(FpReg::F2, 8, IntReg::R4);
        b.divt(FpReg::F3, FpReg::F1, FpReg::F2); // 4.5
        b.sqrtt(FpReg::F4, FpReg::F1); // 3.0
        b.addt(FpReg::F5, FpReg::F3, FpReg::F4); // 7.5
        b.stt(FpReg::F5, 16, IntReg::R4);
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        assert_eq!(cpu.memory().read_f64(0x1010), 7.5);
    }

    #[test]
    fn cmov_respects_old_value() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R3, IntReg::R31, 111);
        b.lda(IntReg::R7, IntReg::R31, 222);
        // Condition r31 == 0, so cmovne keeps the old value.
        b.cmovne(IntReg::R3, IntReg::R31, IntReg::R7);
        // Condition r7 != 0, so this one moves.
        b.cmovne(IntReg::R1, IntReg::R7, IntReg::R7);
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        assert_eq!(cpu.reg(IntReg::R3.into()), 111);
        assert_eq!(cpu.reg(IntReg::R1.into()), 222);
    }

    #[test]
    fn ipc_reflects_ilp() {
        // Hot loops (I-cache resident): six parallel dependence chains
        // should sustain far higher IPC than one serial chain.
        let mut wide = ProgramBuilder::new("wide");
        wide.lda(IntReg::R8, IntReg::R31, 2000);
        wide.label("top");
        for k in 1..=6 {
            wide.addq_imm(IntReg::new(k), IntReg::new(k), 1);
        }
        wide.subq_imm(IntReg::R8, IntReg::R8, 1);
        wide.bne(IntReg::R8, "top");
        wide.halt();
        let cpu_wide = run_to_completion(&wide.build().unwrap());

        let mut chain = ProgramBuilder::new("chain");
        chain.lda(IntReg::R8, IntReg::R31, 2000);
        chain.label("top");
        for _ in 0..6 {
            chain.addq_imm(IntReg::R1, IntReg::R1, 1);
        }
        chain.subq_imm(IntReg::R8, IntReg::R8, 1);
        chain.bne(IntReg::R8, "top");
        chain.halt();
        let cpu_chain = run_to_completion(&chain.build().unwrap());

        assert!(
            cpu_wide.stats().ipc() > 2.0 * cpu_chain.stats().ipc(),
            "wide {} vs chain {}",
            cpu_wide.stats().ipc(),
            cpu_chain.stats().ipc()
        );
        assert!(cpu_chain.stats().ipc() <= 1.6);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // A data-dependent unpredictable branch pattern vs a fixed one.
        // Use a pseudo-random sequence via xor-shift in registers.
        let mut predictable = ProgramBuilder::new("pred");
        predictable.lda(IntReg::R1, IntReg::R31, 2000);
        predictable.label("top");
        predictable.subq_imm(IntReg::R1, IntReg::R1, 1);
        predictable.bne(IntReg::R1, "top");
        predictable.halt();
        let cpu_p = run_to_completion(&predictable.build().unwrap());
        // One mispredict-ish event allowed at loop exit / cold start.
        assert!(
            cpu_p.stats().mispredicts <= 4,
            "loop branch should be learned, got {}",
            cpu_p.stats().mispredicts
        );
        assert!(cpu_p.stats().branches >= 2000);
    }

    #[test]
    fn icache_miss_stalls_fetch_on_big_code() {
        // Code footprint larger than the 64 KB L1I: straight-line insts.
        let mut b = ProgramBuilder::new("big");
        for _ in 0..40_000 {
            b.nop();
        }
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        assert!(cpu.stats().il1.1 > 1000, "expected I-cache misses");
    }

    #[test]
    fn dcache_misses_on_streaming() {
        let mut b = ProgramBuilder::new("stream");
        b.lda(IntReg::R4, IntReg::R31, 0x10_0000);
        b.lda(IntReg::R1, IntReg::R31, 4000);
        b.label("top");
        b.ldq(IntReg::R2, 0, IntReg::R4);
        b.addq_imm(IntReg::R4, IntReg::R4, 64); // one line per iteration
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        let cpu = run_to_completion(&b.build().unwrap());
        let (acc, miss) = cpu.stats().dl1;
        assert!(acc >= 4000);
        assert!(
            miss as f64 / acc as f64 > 0.9,
            "strided by line size should miss nearly always: {miss}/{acc}"
        );
    }

    #[test]
    fn gating_fu_stalls_but_preserves_results() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R1, IntReg::R31, 500);
        b.lda(IntReg::R2, IntReg::R31, 0);
        b.label("top");
        b.addq_imm(IntReg::R2, IntReg::R2, 2);
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        let program = b.build().unwrap();

        let mut free = Cpu::new(CpuConfig::table1(), &program).unwrap();
        free.run(1_000_000);
        assert!(free.done());

        let mut gated = Cpu::new(CpuConfig::table1(), &program).unwrap();
        // Gate the FUs every other 20-cycle window.
        while !gated.done() && gated.cycle() < 1_000_000 {
            let on = (gated.cycle() / 20).is_multiple_of(2);
            gated.gating_mut().gate_fu = on;
            gated.step();
        }
        assert!(gated.done());
        assert_eq!(gated.reg(IntReg::R2.into()), 1000);
        assert_eq!(free.arch_digest(), gated.arch_digest());
        assert!(
            gated.stats().cycles > free.stats().cycles,
            "gating must cost time: {} vs {}",
            gated.stats().cycles,
            free.stats().cycles
        );
    }

    #[test]
    fn gating_il1_blocks_fetch() {
        let mut b = ProgramBuilder::new("t");
        for _ in 0..100 {
            b.nop();
        }
        b.halt();
        let program = b.build().unwrap();
        let mut cpu = Cpu::new(CpuConfig::table1(), &program).unwrap();
        cpu.gating_mut().gate_il1 = true;
        for _ in 0..50 {
            let act = cpu.step();
            assert_eq!(act.fetched, 0);
        }
        assert_eq!(cpu.stats().gated_fetch_cycles, 50);
        cpu.gating_mut().gate_il1 = false;
        cpu.run(100_000);
        assert!(cpu.done());
    }

    #[test]
    fn gating_dl1_blocks_memory_issue() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R4, IntReg::R31, 0x2000);
        b.stq(IntReg::R4, 0, IntReg::R4);
        b.halt();
        let program = b.build().unwrap();
        let mut cpu = Cpu::new(CpuConfig::table1(), &program).unwrap();
        cpu.gating_mut().gate_dl1 = true;
        for _ in 0..100 {
            cpu.step();
        }
        assert!(!cpu.done(), "store cannot issue while DL1 gated");
        cpu.gating_mut().gate_dl1 = false;
        cpu.run(100_000);
        assert!(cpu.done());
        assert_eq!(cpu.memory().read_u64(0x2000), 0x2000);
    }

    #[test]
    fn window_occupancy_bounded_by_ruu_size() {
        let mut b = ProgramBuilder::new("t");
        // Each outer iteration: a cold load (317-cycle miss) followed by
        // hundreds of dependents. Once the code is I-cache resident (after
        // the first iteration), the window must fill behind the miss.
        b.lda(IntReg::R4, IntReg::R31, 0x50_0000);
        b.lda(IntReg::R5, IntReg::R31, 3);
        b.label("outer");
        b.ldq(IntReg::R2, 0, IntReg::R4);
        for _ in 0..600 {
            b.addq(IntReg::R3, IntReg::R2, IntReg::R2); // depends on load
        }
        b.addq_imm(IntReg::R4, IntReg::R4, 64); // next line: cold again
        b.subq_imm(IntReg::R5, IntReg::R5, 1);
        b.bne(IntReg::R5, "outer");
        b.halt();
        let program = b.build().unwrap();
        let mut cpu = Cpu::new(CpuConfig::table1(), &program).unwrap();
        let mut max_occ = 0;
        while !cpu.done() && cpu.cycle() < 100_000 {
            let act = cpu.step();
            max_occ = max_occ.max(act.ruu_occupancy);
        }
        assert!(cpu.done());
        assert!(max_occ <= 256);
        assert!(
            max_occ >= 250,
            "window should fill behind the miss, got {max_occ}"
        );
    }

    #[test]
    fn activity_totals_match_stats() {
        let mut b = ProgramBuilder::new("t");
        b.lda(IntReg::R1, IntReg::R31, 50);
        b.label("top");
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        let program = b.build().unwrap();
        let mut cpu = Cpu::new(CpuConfig::table1(), &program).unwrap();
        let mut committed = 0u64;
        let mut fetched = 0u64;
        while !cpu.done() {
            let act = cpu.step();
            committed += u64::from(act.committed);
            fetched += u64::from(act.fetched);
        }
        assert_eq!(committed, cpu.stats().committed);
        assert_eq!(fetched, cpu.stats().fetched);
        assert_eq!(committed, fetched, "oracle fetch never over-fetches");
    }

    #[test]
    fn done_program_stops_progressing() {
        let mut b = ProgramBuilder::new("t");
        b.nop();
        b.halt();
        let program = b.build().unwrap();
        let mut cpu = Cpu::new(CpuConfig::table1(), &program).unwrap();
        cpu.run(10_000);
        assert!(cpu.done());
        let digest = cpu.arch_digest();
        let act = cpu.step();
        assert!(act.is_idle());
        assert_eq!(cpu.arch_digest(), digest);
    }

    #[test]
    fn divide_chain_creates_low_activity_phases() {
        // Two dependent FP divides stall the machine — the stressmark's
        // low-current phase. Check that a majority of cycles are idle-ish.
        let mut b = ProgramBuilder::new("t");
        b.data_f64(0x1000, &[1.0, 3.0]);
        b.lda(IntReg::R4, IntReg::R31, 0x1000);
        b.ldt(FpReg::F1, 0, IntReg::R4);
        b.ldt(FpReg::F2, 8, IntReg::R4);
        b.lda(IntReg::R1, IntReg::R31, 50);
        b.label("top");
        b.divt(FpReg::F3, FpReg::F1, FpReg::F2);
        b.divt(FpReg::F3, FpReg::F3, FpReg::F2);
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        let program = b.build().unwrap();
        let mut cpu = Cpu::new(CpuConfig::table1(), &program).unwrap();
        let mut low_issue_cycles = 0u64;
        let mut total = 0u64;
        while !cpu.done() && cpu.cycle() < 100_000 {
            let act = cpu.step();
            total += 1;
            if act.issued <= 1 {
                low_issue_cycles += 1;
            }
        }
        assert!(cpu.done());
        assert!(
            low_issue_cycles as f64 / total as f64 > 0.6,
            "dependent divides should serialize: {low_issue_cycles}/{total}"
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = CpuConfig::table1();
        config.ruu_size = 0;
        let mut b = ProgramBuilder::new("t");
        b.halt();
        assert!(Cpu::new(config, &b.build().unwrap()).is_err());
    }

    fn busy_program() -> Program {
        let mut b = ProgramBuilder::new("snapshot-target");
        b.data_f64(0x1000, &[9.0, 2.0]);
        b.lda(IntReg::R4, IntReg::R31, 0x1000);
        b.ldt(FpReg::F1, 0, IntReg::R4);
        b.ldt(FpReg::F2, 8, IntReg::R4);
        b.lda(IntReg::R1, IntReg::R31, 300);
        b.label("top");
        b.divt(FpReg::F3, FpReg::F1, FpReg::F2);
        b.ldq(IntReg::R2, 0, IntReg::R4);
        b.stq(IntReg::R2, 64, IntReg::R4);
        b.addq_imm(IntReg::R3, IntReg::R2, 5);
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn snapshot_mid_flight_resumes_cycle_for_cycle() {
        use voltctl_snap::{ByteReader, ByteWriter};
        let program = busy_program();
        let config = CpuConfig::table1();
        let mut reference = Cpu::new(config.clone(), &program).unwrap();

        // Stop mid-pipeline with the window, LSQ, and FUs all busy.
        reference.run(137);
        assert!(!reference.done(), "checkpoint must land mid-flight");

        let mut w = ByteWriter::new();
        reference.pack_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut restored = Cpu::unpack_state(config, &program, &mut r).unwrap();
        assert!(r.finished(), "decoder must consume the whole snapshot");
        assert_eq!(restored.cycle(), reference.cycle());

        // Every subsequent cycle must report identical structural activity.
        while !reference.done() {
            assert_eq!(restored.step(), reference.step());
        }
        assert!(restored.done());
        assert_eq!(restored.arch_digest(), reference.arch_digest());
        assert_eq!(restored.stats(), reference.stats());

        // And re-serializing the restored machine is byte-identical.
        let mut w2 = ByteWriter::new();
        let mut w3 = ByteWriter::new();
        reference.pack_state(&mut w2);
        restored.pack_state(&mut w3);
        assert_eq!(w2.as_bytes(), w3.as_bytes());
    }

    #[test]
    fn snapshot_rejects_wrong_program_and_config() {
        use voltctl_snap::{ByteReader, ByteWriter};
        let program = busy_program();
        let config = CpuConfig::table1();
        let mut cpu = Cpu::new(config.clone(), &program).unwrap();
        cpu.run(50);
        let mut w = ByteWriter::new();
        cpu.pack_state(&mut w);
        let bytes = w.into_bytes();

        let mut b = ProgramBuilder::new("other");
        b.nop();
        b.halt();
        let other = b.build().unwrap();
        let err =
            Cpu::unpack_state(config.clone(), &other, &mut ByteReader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("different program"), "{err}");

        let mut other_config = config;
        other_config.ruu_size = 128;
        let err =
            Cpu::unpack_state(other_config, &program, &mut ByteReader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("different machine"), "{err}");
    }

    #[test]
    fn snapshot_truncations_never_panic() {
        use voltctl_snap::{ByteReader, ByteWriter};
        let program = busy_program();
        let config = CpuConfig::table1();
        let mut cpu = Cpu::new(config.clone(), &program).unwrap();
        cpu.run(137);
        let mut w = ByteWriter::new();
        cpu.pack_state(&mut w);
        let bytes = w.into_bytes();
        // Every proper prefix must fail cleanly with an error.
        for cut in (0..bytes.len()).step_by(97) {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                Cpu::unpack_state(config.clone(), &program, &mut r).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }
}
