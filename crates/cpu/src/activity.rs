//! Per-cycle activity vectors and cumulative run statistics.
//!
//! [`CycleActivity`] is the structural activity sample the power model
//! converts into watts each cycle — the same role Wattch's per-cycle
//! access counts play in the paper's methodology. [`Stats`] accumulates
//! whole-run counters (IPC, miss rates, misprediction rates).

use crate::fu::FuKind;

/// Structural activity during a single cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleActivity {
    /// Instructions fetched.
    pub fetched: u32,
    /// Instructions dispatched into the window.
    pub dispatched: u32,
    /// Instructions issued to functional units.
    pub issued: u32,
    /// Results written back this cycle.
    pub completed: u32,
    /// Instructions committed.
    pub committed: u32,
    /// Issues per functional-unit kind (indexed by [`FuKind::index`]).
    pub issued_per_fu: [u32; FuKind::COUNT],
    /// Units of each kind with an operation in flight (multi-cycle
    /// spreading; indexed by [`FuKind::index`]).
    pub executing_per_fu: [u32; FuKind::COUNT],
    /// L1 I-cache accesses.
    pub il1_accesses: u32,
    /// L1 I-cache misses.
    pub il1_misses: u32,
    /// L1 D-cache accesses.
    pub dl1_accesses: u32,
    /// L1 D-cache misses.
    pub dl1_misses: u32,
    /// L2 accesses.
    pub l2_accesses: u32,
    /// L2 misses (memory accesses).
    pub l2_misses: u32,
    /// Branch-predictor lookups.
    pub bpred_lookups: u32,
    /// Mispredicted branches fetched this cycle (each starts a pipeline
    /// flush/refill bubble).
    pub mispredicts: u32,
    /// Architectural register-file reads (operand fetch at issue).
    pub regfile_reads: u32,
    /// Register-file writes (writeback).
    pub regfile_writes: u32,
    /// Store-to-load forwards served by the LSQ.
    pub lsq_forwards: u32,
    /// Valid RUU entries at end of cycle.
    pub ruu_occupancy: u32,
    /// Valid LSQ entries at end of cycle.
    pub lsq_occupancy: u32,
}

impl CycleActivity {
    /// Total functional-unit issues this cycle.
    pub fn total_fu_issues(&self) -> u32 {
        self.issued_per_fu.iter().sum()
    }

    /// Whether the cycle did no work at all (fully stalled).
    pub fn is_idle(&self) -> bool {
        self.fetched == 0
            && self.dispatched == 0
            && self.issued == 0
            && self.completed == 0
            && self.committed == 0
            && self.executing_per_fu.iter().all(|&x| x == 0)
    }
}

/// Cumulative statistics over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub committed: u64,
    /// Fetched instructions.
    pub fetched: u64,
    /// Conditional + unconditional branches fetched.
    pub branches: u64,
    /// Mispredicted branches (direction or target).
    pub mispredicts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads served by store-to-load forwarding.
    pub lsq_forwards: u64,
    /// L1 I-cache accesses / misses.
    pub il1: (u64, u64),
    /// L1 D-cache accesses / misses.
    pub dl1: (u64, u64),
    /// L2 accesses / misses.
    pub l2: (u64, u64),
    /// Cycles with fetch gated by the actuator (IL1 domain).
    pub gated_fetch_cycles: u64,
    /// Cycles with issue gated by the actuator (FU domain).
    pub gated_issue_cycles: u64,
    /// Cycles with memory issue gated by the actuator (DL1 domain).
    pub gated_mem_cycles: u64,
}

impl Stats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate (0 when no branches).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// D-cache miss rate (0 when never accessed).
    pub fn dl1_miss_rate(&self) -> f64 {
        if self.dl1.0 == 0 {
            0.0
        } else {
            self.dl1.1 as f64 / self.dl1.0 as f64
        }
    }

    /// Dumps the run totals into a telemetry recorder under `cpu.*`
    /// names: one counter per pipeline-stage/structure total, so exported
    /// snapshots carry the per-unit activity behind the power trace.
    pub fn record_telemetry(&self, rec: &mut impl voltctl_telemetry::Recorder) {
        rec.counter("cpu.cycles", self.cycles);
        rec.counter("cpu.committed", self.committed);
        rec.counter("cpu.fetched", self.fetched);
        rec.counter("cpu.branches", self.branches);
        rec.counter("cpu.mispredicts", self.mispredicts);
        rec.counter("cpu.loads", self.loads);
        rec.counter("cpu.stores", self.stores);
        rec.counter("cpu.lsq_forwards", self.lsq_forwards);
        rec.counter("cpu.il1.accesses", self.il1.0);
        rec.counter("cpu.il1.misses", self.il1.1);
        rec.counter("cpu.dl1.accesses", self.dl1.0);
        rec.counter("cpu.dl1.misses", self.dl1.1);
        rec.counter("cpu.l2.accesses", self.l2.0);
        rec.counter("cpu.l2.misses", self.l2.1);
        rec.counter("cpu.gated_fetch_cycles", self.gated_fetch_cycles);
        rec.counter("cpu.gated_issue_cycles", self.gated_issue_cycles);
        rec.counter("cpu.gated_mem_cycles", self.gated_mem_cycles);
        rec.value("cpu.ipc", self.ipc());
    }

    /// Accumulates one cycle's activity into the run totals. The caller is
    /// responsible for not double-counting quantities it also tracks
    /// directly.
    pub fn absorb(&mut self, act: &CycleActivity) {
        self.cycles += 1;
        self.committed += u64::from(act.committed);
        self.fetched += u64::from(act.fetched);
        self.lsq_forwards += u64::from(act.lsq_forwards);
        self.il1.0 += u64::from(act.il1_accesses);
        self.il1.1 += u64::from(act.il1_misses);
        self.dl1.0 += u64::from(act.dl1_accesses);
        self.dl1.1 += u64::from(act.dl1_misses);
        self.l2.0 += u64::from(act.l2_accesses);
        self.l2.1 += u64::from(act.l2_misses);
    }
}

impl voltctl_snap::Pack for Stats {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u64(self.cycles);
        w.put_u64(self.committed);
        w.put_u64(self.fetched);
        w.put_u64(self.branches);
        w.put_u64(self.mispredicts);
        w.put_u64(self.loads);
        w.put_u64(self.stores);
        w.put_u64(self.lsq_forwards);
        self.il1.pack(w);
        self.dl1.pack(w);
        self.l2.pack(w);
        w.put_u64(self.gated_fetch_cycles);
        w.put_u64(self.gated_issue_cycles);
        w.put_u64(self.gated_mem_cycles);
    }
}

impl voltctl_snap::Unpack for Stats {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(Stats {
            cycles: r.get_u64()?,
            committed: r.get_u64()?,
            fetched: r.get_u64()?,
            branches: r.get_u64()?,
            mispredicts: r.get_u64()?,
            loads: r.get_u64()?,
            stores: r.get_u64()?,
            lsq_forwards: r.get_u64()?,
            il1: voltctl_snap::Unpack::unpack(r)?,
            dl1: voltctl_snap::Unpack::unpack(r)?,
            l2: voltctl_snap::Unpack::unpack(r)?,
            gated_fetch_cycles: r.get_u64()?,
            gated_issue_cycles: r.get_u64()?,
            gated_mem_cycles: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_detection() {
        let act = CycleActivity::default();
        assert!(act.is_idle());
        let mut busy = act;
        busy.executing_per_fu[0] = 1;
        assert!(!busy.is_idle());
    }

    #[test]
    fn total_fu_issues_sums() {
        let act = CycleActivity {
            issued_per_fu: [1, 2, 3, 4, 5],
            ..Default::default()
        };
        assert_eq!(act.total_fu_issues(), 15);
    }

    #[test]
    fn ipc_and_rates() {
        let mut s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        s.cycles = 100;
        s.committed = 250;
        s.branches = 10;
        s.mispredicts = 2;
        s.dl1 = (50, 5);
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-12);
        assert!((s.dl1_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates() {
        let mut s = Stats::default();
        let act = CycleActivity {
            committed: 3,
            dl1_accesses: 2,
            dl1_misses: 1,
            ..Default::default()
        };
        s.absorb(&act);
        s.absorb(&act);
        assert_eq!(s.cycles, 2);
        assert_eq!(s.committed, 6);
        assert_eq!(s.dl1, (4, 2));
    }
}
