//! Sparse functional memory.
//!
//! The simulator is execution-driven: programs read and write real values.
//! [`Memory`] is a paged sparse byte store — only touched 4 KiB pages are
//! allocated, so workloads can spread accesses across gigabyte-scale
//! address ranges (to generate cache misses) without host memory cost.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse, byte-addressable memory. Unwritten locations read as zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: whole access within one page.
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + N <= PAGE_SIZE {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&page[offset..offset + N]);
            }
            return out;
        }
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + bytes.len() <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[offset..offset + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes::<4>(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes::<8>(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an IEEE double.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an IEEE double.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Loads a byte image at `addr` (used for program data segments).
    pub fn load(&mut self, addr: u64, bytes: &[u8]) {
        self.write_bytes(addr, bytes);
    }

    /// An order-independent digest of all resident content, for verifying
    /// that two runs produced identical memory (the paper's "control does
    /// not alter program correctness" check). Zero pages that were touched
    /// but never written to a non-zero value hash identically to absent
    /// pages.
    pub fn digest(&self) -> u64 {
        // FNV-1a per page folded with the page number, combined with XOR so
        // iteration order does not matter.
        let mut acc = 0u64;
        for (&pageno, page) in &self.pages {
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ pageno.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for &b in page.iter() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            acc ^= h;
        }
        acc
    }
}

impl voltctl_snap::Pack for Memory {
    /// Serializes every resident page (including all-zero ones, so the
    /// observable `resident_pages()` count survives a round trip) in
    /// ascending page order, making the encoding canonical.
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        let mut pagenos: Vec<u64> = self.pages.keys().copied().collect();
        pagenos.sort_unstable();
        w.put_usize(pagenos.len());
        for pageno in pagenos {
            w.put_u64(pageno);
            w.put_raw(&self.pages[&pageno][..]);
        }
    }
}

impl voltctl_snap::Unpack for Memory {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let n = r.get_count("memory page table")?;
        let mut pages = HashMap::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let pageno = r.get_u64()?;
            if prev.is_some_and(|p| p >= pageno) {
                return Err(voltctl_snap::SnapError::Corrupt(format!(
                    "memory pages out of order or duplicated at page {pageno:#x}"
                )));
            }
            prev = Some(pageno);
            let bytes = r.get_raw(PAGE_SIZE, "memory page")?;
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(bytes);
            pages.insert(pageno, page);
        }
        Ok(Memory { pages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_roundtrip_little_endian() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x0102030405060708);
        assert_eq!(m.read_u64(0x1000), 0x0102030405060708);
        assert_eq!(m.read_u8(0x1000), 0x08);
        assert_eq!(m.read_u8(0x1007), 0x01);
    }

    #[test]
    fn u32_roundtrip() {
        let mut m = Memory::new();
        m.write_u32(0x2004, 0xa1b2c3d4);
        assert_eq!(m.read_u32(0x2004), 0xa1b2c3d4);
        // High half untouched.
        assert_eq!(m.read_u32(0x2008), 0);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = Memory::new();
        m.write_f64(0x3000, -1234.5678);
        assert_eq!(m.read_f64(0x3000), -1234.5678);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1fff; // last byte of a page
        m.write_u64(addr, 0x1122334455667788);
        assert_eq!(m.read_u64(addr), 0x1122334455667788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn sparse_pages() {
        let mut m = Memory::new();
        m.write_u8(0, 1);
        m.write_u8(1 << 40, 2); // a terabyte away
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read_u8(1 << 40), 2);
    }

    #[test]
    fn digest_is_content_sensitive_and_order_free() {
        let mut a = Memory::new();
        a.write_u64(0x1000, 7);
        a.write_u64(0x9000, 9);
        let mut b = Memory::new();
        b.write_u64(0x9000, 9);
        b.write_u64(0x1000, 7);
        assert_eq!(a.digest(), b.digest());
        b.write_u64(0x1000, 8);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_ignores_zero_pages() {
        let mut a = Memory::new();
        a.write_u64(0x5000, 0); // touched but zero
        assert_eq!(a.digest(), Memory::new().digest());
    }

    #[test]
    fn load_places_image() {
        let mut m = Memory::new();
        m.load(0x100, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(0x100), 0x04030201);
    }

    #[test]
    fn wire_round_trip_preserves_pages_including_zero_pages() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, Unpack};
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xdead_beef);
        m.write_u64(0x5000, 0); // touched but zero — must stay resident
        let mut w = ByteWriter::new();
        m.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = Memory::unpack(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back.resident_pages(), 2);
        assert_eq!(back.read_u64(0x1000), 0xdead_beef);
        assert_eq!(back.digest(), m.digest());
    }

    #[test]
    fn wire_decode_rejects_duplicate_pages() {
        use voltctl_snap::{ByteReader, ByteWriter, Unpack};
        let mut w = ByteWriter::new();
        w.put_usize(2);
        for _ in 0..2 {
            w.put_u64(0x7); // same page number twice
            w.put_raw(&[0u8; PAGE_SIZE]);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(Memory::unpack(&mut r).is_err());
    }
}
