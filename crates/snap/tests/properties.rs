//! Property tests for the snapshot container on the workspace's
//! `voltctl-check` harness: random section sets round-trip exactly,
//! and *any* single-byte flip, truncation, or future version is
//! rejected with a descriptive error — never a panic, never a partial
//! parse. Shrinking drives failures toward the smallest corrupt file.

use voltctl_check::{check, ensure, i64_in, usize_in, vec_of, Config};
use voltctl_snap::{
    fnv1a, ByteReader, ByteWriter, SnapError, SnapshotKind, SnapshotReader, SnapshotWriter,
    CONTAINER_VERSION,
};

/// Generated description of one section: tag, version, payload bytes.
type SectionSpec = (usize, usize, Vec<i64>);

/// Builds a snapshot file from generated section specs.
fn build(kind: SnapshotKind, specs: &[SectionSpec]) -> Vec<u8> {
    let mut snap = SnapshotWriter::new(kind);
    for &(tag, version, ref payload) in specs {
        let mut w = ByteWriter::new();
        w.put_raw(&payload.iter().map(|&b| b as u8).collect::<Vec<u8>>());
        snap.section(tag as u16, version as u16, w);
    }
    snap.finish()
}

/// Decodes a generated kind code into all three snapshot kinds.
fn kind(code: i64) -> SnapshotKind {
    match code {
        0 => SnapshotKind::Loop,
        1 => SnapshotKind::Shard,
        _ => SnapshotKind::Replay,
    }
}

fn sections_gen() -> impl voltctl_check::Gen<Value = Vec<SectionSpec>> {
    vec_of(
        (
            usize_in(1, 64),
            usize_in(1, 16),
            vec_of(i64_in(0, 256), 0, 48),
        ),
        0,
        6,
    )
}

/// Any set of sections written through the container parses back with
/// the same kind, tags, versions, and payload bytes, in file order.
#[test]
fn container_round_trips_arbitrary_sections() {
    let gen = (i64_in(0, 3), sections_gen());
    check(
        "snap.container-round-trip",
        &Config::cases(96, 0x5A01),
        &gen,
        |(code, specs)| {
            let bytes = build(kind(*code), specs);
            let r = SnapshotReader::parse(&bytes)
                .map_err(|e| format!("fresh container must parse: {e}"))?;
            ensure!(r.kind() == kind(*code));
            ensure!(r.sections().len() == specs.len());
            for (got, want) in r.sections().iter().zip(specs) {
                ensure!(got.tag == want.0 as u16, "tag mismatch");
                ensure!(got.version == want.1 as u16, "version mismatch");
                let want_bytes: Vec<u8> = want.2.iter().map(|&b| b as u8).collect();
                ensure!(got.payload == want_bytes.as_slice(), "payload mismatch");
            }
            // Re-encoding the same sections is bitwise stable.
            ensure!(
                build(kind(*code), specs) == bytes,
                "encode not deterministic"
            );
            Ok(())
        },
    );
}

/// Flipping any single byte of a valid snapshot (any position, any
/// nonzero mask) must be rejected — the trailing FNV-1a checksum, the
/// magic, or the framing catches it. The error is descriptive, and the
/// parser never panics.
#[test]
fn any_single_byte_flip_is_rejected() {
    let gen = (
        sections_gen(),
        usize_in(0, 1 << 16), // flip position, reduced mod file length
        usize_in(1, 256),     // nonzero xor mask
    );
    check(
        "snap.bitflip-rejected",
        &Config::cases(128, 0x5A02),
        &gen,
        |(specs, pos, mask)| {
            let mut bytes = build(SnapshotKind::Shard, specs);
            let at = pos % bytes.len();
            bytes[at] ^= *mask as u8;
            match SnapshotReader::parse(&bytes) {
                Err(e) => {
                    ensure!(!e.to_string().is_empty(), "error must describe itself");
                    Ok(())
                }
                Ok(_) => Err(format!(
                    "flip at byte {at} (mask {mask:#04x}) of a {}-byte file parsed",
                    bytes.len()
                )),
            }
        },
    );
}

/// Truncating a valid snapshot at any point (including to zero bytes)
/// must be rejected, never read past the end, and never panic.
#[test]
fn any_truncation_is_rejected() {
    let gen = (sections_gen(), usize_in(0, 1 << 16));
    check(
        "snap.truncation-rejected",
        &Config::cases(128, 0x5A03),
        &gen,
        |(specs, cut)| {
            let bytes = build(SnapshotKind::Loop, specs);
            let at = cut % bytes.len();
            match SnapshotReader::parse(&bytes[..at]) {
                Err(_) => Ok(()),
                Ok(_) => Err(format!(
                    "truncation to {at} of {} bytes parsed",
                    bytes.len()
                )),
            }
        },
    );
}

/// A file stamped with any future container version is rejected by
/// name with `UnsupportedVersion` — even when its checksum is valid —
/// so old builds fail loudly instead of misreading newer framing.
#[test]
fn future_container_versions_are_rejected_by_name() {
    let gen = (sections_gen(), usize_in(1, 1 << 20));
    check(
        "snap.future-version-rejected",
        &Config::cases(96, 0x5A04),
        &gen,
        |(specs, bump)| {
            let mut bytes = build(SnapshotKind::Replay, specs);
            let future = CONTAINER_VERSION + *bump as u32;
            bytes[8..12].copy_from_slice(&future.to_le_bytes());
            // Re-stamp the checksum so the version check is what trips.
            let body = bytes.len() - 8;
            let sum = fnv1a(&bytes[..body]);
            bytes[body..].copy_from_slice(&sum.to_le_bytes());
            match SnapshotReader::parse(&bytes) {
                Err(SnapError::UnsupportedVersion {
                    what: "container",
                    found,
                    supported,
                }) => {
                    ensure!(found == future);
                    ensure!(supported == CONTAINER_VERSION);
                    Ok(())
                }
                Err(other) => Err(format!("expected UnsupportedVersion, got {other}")),
                Ok(_) => Err("future container version parsed".into()),
            }
        },
    );
}

/// The checked primitive layer mirrors exactly: every value written is
/// read back bitwise (floats travel as bit patterns), and the reader
/// ends exactly at the end of the stream.
#[test]
fn wire_primitives_round_trip_bitwise() {
    let gen = (
        i64_in(i64::MIN / 2, i64::MAX / 2),
        i64_in(0, 1 << 20),
        vec_of(i64_in(0, 256), 0, 64),
    );
    check(
        "snap.wire-round-trip",
        &Config::cases(128, 0x5A05),
        &gen,
        |(a, bits, raw)| {
            // Drive a float from generated bits so NaNs and subnormals
            // are in play, not just "nice" values.
            let f = f64::from_bits((*bits as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let mut w = ByteWriter::new();
            w.put_i64(*a);
            w.put_f64(f);
            w.put_bool(*a % 2 == 0);
            w.put_str("label");
            w.put_bytes(&bytes);
            let buf = w.into_bytes();

            let mut r = ByteReader::new(&buf);
            ensure!(r.get_i64().map_err(|e| e.to_string())? == *a);
            let back = r.get_f64().map_err(|e| e.to_string())?;
            ensure!(back.to_bits() == f.to_bits(), "f64 must round-trip bitwise");
            ensure!(r.get_bool().map_err(|e| e.to_string())? == (*a % 2 == 0));
            ensure!(r.get_str().map_err(|e| e.to_string())? == "label");
            ensure!(r.get_bytes().map_err(|e| e.to_string())? == bytes);
            r.expect_end("wire round trip").map_err(|e| e.to_string())?;
            Ok(())
        },
    );
}
