//! The error taxonomy for snapshot decoding.
//!
//! Every decode failure is a value of [`SnapError`]; decoding never
//! panics on untrusted bytes and never leaves a partially-applied
//! state behind (callers decode into owned structs first and apply
//! only after the whole container validated).

use std::fmt;

/// Why a snapshot (or one of its sections) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The file does not start with the snapshot magic — not a
    /// snapshot at all (or an unrelated file handed to `--resume`).
    BadMagic {
        /// The bytes actually found where the magic belongs.
        found: Vec<u8>,
    },
    /// The container (or a section) was written by a format version
    /// this build does not understand.
    UnsupportedVersion {
        /// What the snapshot is versioned as ("container" or a
        /// section name).
        what: &'static str,
        /// The version found in the file.
        found: u32,
        /// The newest version this build can read.
        supported: u32,
    },
    /// The byte stream ended before a declared field or section.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// How many bytes the read needed.
        needed: usize,
        /// How many bytes were left.
        available: usize,
    },
    /// The bytes decoded but describe an impossible state (checksum
    /// mismatch, out-of-range enum tag, inconsistent lengths, a
    /// fingerprint that does not match the live configuration, ...).
    Corrupt(String),
    /// Decoding consumed the payload but bytes remain — the file is
    /// longer than its own framing says it should be.
    TrailingBytes {
        /// What was fully decoded when the extra bytes were noticed.
        context: &'static str,
        /// How many bytes remain unconsumed.
        count: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic { found } => {
                write!(f, "not a voltctl snapshot (magic bytes {found:02x?})")
            }
            SnapError::UnsupportedVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "unsupported {what} version {found} (this build reads up to {supported})"
            ),
            SnapError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot while reading {context}: needed {needed} byte(s), {available} left"
            ),
            SnapError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapError::TrailingBytes { context, count } => {
                write!(f, "{count} trailing byte(s) after {context}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Shorthand for `Err(SnapError::Corrupt(format!(...)))` used across
/// the decoders.
#[macro_export]
macro_rules! snap_corrupt {
    ($($arg:tt)*) => {
        return Err($crate::SnapError::Corrupt(format!($($arg)*)))
    };
}
