//! Hand-rolled versioned binary snapshot format for voltctl — the
//! wire layer under checkpoint/restore and sharded resumable runs.
//!
//! Three pieces, std only:
//!
//! * [`wire`] — checked little-endian primitives ([`ByteWriter`],
//!   [`ByteReader`]) and the [`Pack`]/[`Unpack`] traits state structs
//!   implement. Floats travel as bit patterns, so round trips are
//!   bitwise.
//! * [`container`] — the file framing: magic, container version,
//!   snapshot kind, tagged length-prefixed sections, FNV-1a checksum.
//! * [`error`] — [`SnapError`]: every malformed input maps to a
//!   descriptive error; decoding never panics and callers apply
//!   decoded state only after the whole container validated, so a
//!   corrupt file can never leave partial state behind.
//!
//! This crate sits at the bottom of the workspace dependency graph
//! (nothing but `std`) so every layer — telemetry, cpu, pdn, power,
//! core, trace, exp — can serialize its own state structs.

pub mod container;
pub mod error;
pub mod wire;

pub use container::{
    fnv1a, Section, SnapshotKind, SnapshotReader, SnapshotWriter, CONTAINER_VERSION, MAGIC,
};
pub use error::SnapError;
pub use wire::{ByteReader, ByteWriter, Pack, Unpack};
