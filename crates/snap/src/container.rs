//! The snapshot container: magic, container version, snapshot kind,
//! tagged length-prefixed sections, and a trailing checksum.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  b"VCTLSNAP"
//!      8     4  container version (u32, currently 1)
//!     12     2  snapshot kind (u16; loop / shard / replay)
//!     14     4  section count (u32)
//!     18     -  sections, each:
//!                  tag (u16) | section version (u16) |
//!                  payload length (u64) | payload bytes
//!   last     8  FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! Versioning rules: the container version only changes when this
//! framing changes; each section carries its own version so state
//! structs can evolve independently. Readers reject container versions
//! above [`CONTAINER_VERSION`]; section decoders reject section
//! versions they do not know. Unknown *tags* are skipped — a newer
//! writer may add sections an older reader safely ignores.

use crate::error::SnapError;
use crate::wire::{ByteReader, ByteWriter};

/// The eight magic bytes every snapshot file starts with.
pub const MAGIC: [u8; 8] = *b"VCTLSNAP";

/// Newest container framing this build reads and the one it writes.
pub const CONTAINER_VERSION: u32 = 1;

/// What a snapshot file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Full mid-run `ControlLoop` state (save/restore).
    Loop,
    /// Completed shard results awaiting a merge (`run --shards`).
    Shard,
    /// A flight-recorder capture converted into a replayable
    /// checkpoint (time-travel debugging).
    Replay,
}

impl SnapshotKind {
    /// The wire tag for this kind.
    pub fn tag(self) -> u16 {
        match self {
            SnapshotKind::Loop => 1,
            SnapshotKind::Shard => 2,
            SnapshotKind::Replay => 3,
        }
    }

    /// Decodes a wire tag.
    pub fn from_tag(tag: u16) -> Result<SnapshotKind, SnapError> {
        match tag {
            1 => Ok(SnapshotKind::Loop),
            2 => Ok(SnapshotKind::Shard),
            3 => Ok(SnapshotKind::Replay),
            other => Err(SnapError::Corrupt(format!("unknown snapshot kind {other}"))),
        }
    }

    /// Human-readable name (used by `snapshot inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SnapshotKind::Loop => "loop",
            SnapshotKind::Shard => "shard",
            SnapshotKind::Replay => "replay",
        }
    }
}

/// FNV-1a 64-bit hash — the container checksum and the workspace's
/// fingerprint primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds a snapshot file section by section.
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    kind: SnapshotKind,
    sections: Vec<(u16, u16, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty snapshot of the given kind.
    pub fn new(kind: SnapshotKind) -> SnapshotWriter {
        SnapshotWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section with the given tag and section version.
    pub fn section(&mut self, tag: u16, version: u16, payload: ByteWriter) -> &mut Self {
        self.sections.push((tag, version, payload.into_bytes()));
        self
    }

    /// Serializes the container: header, sections, checksum.
    pub fn finish(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(&MAGIC);
        w.put_u32(CONTAINER_VERSION);
        w.put_u16(self.kind.tag());
        w.put_u32(self.sections.len() as u32);
        for (tag, version, payload) in &self.sections {
            w.put_u16(*tag);
            w.put_u16(*version);
            w.put_u64(payload.len() as u64);
            w.put_raw(payload);
        }
        let checksum = fnv1a(w.as_bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }
}

/// One parsed section: tag, version, payload bytes.
#[derive(Debug, Clone)]
pub struct Section<'a> {
    /// The section tag (what state lives here).
    pub tag: u16,
    /// The section's own schema version.
    pub version: u16,
    /// The raw payload.
    pub payload: &'a [u8],
}

impl<'a> Section<'a> {
    /// A reader positioned at the start of the payload.
    pub fn reader(&self) -> ByteReader<'a> {
        ByteReader::new(self.payload)
    }
}

/// A fully validated snapshot container: magic, version, kind,
/// checksum, and section framing all checked before any section
/// payload is decoded.
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    kind: SnapshotKind,
    sections: Vec<Section<'a>>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses and validates the container framing.
    ///
    /// # Errors
    ///
    /// Every malformed input maps to a [`SnapError`]: wrong magic,
    /// newer container version, checksum mismatch, truncated or
    /// over-long section framing, trailing bytes.
    pub fn parse(bytes: &'a [u8]) -> Result<SnapshotReader<'a>, SnapError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic {
                found: bytes[..bytes.len().min(MAGIC.len())].to_vec(),
            });
        }
        if bytes.len() < MAGIC.len() + 8 {
            return Err(SnapError::Truncated {
                context: "container header",
                needed: MAGIC.len() + 8,
                available: bytes.len(),
            });
        }
        let body_len = bytes.len() - 8;
        let declared = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
        let actual = fnv1a(&bytes[..body_len]);
        if declared != actual {
            return Err(SnapError::Corrupt(format!(
                "checksum mismatch: file says {declared:#018x}, bytes hash to {actual:#018x}"
            )));
        }

        let mut r = ByteReader::new(&bytes[MAGIC.len()..body_len]);
        let version = r.get_u32()?;
        if version > CONTAINER_VERSION {
            return Err(SnapError::UnsupportedVersion {
                what: "container",
                found: version,
                supported: CONTAINER_VERSION,
            });
        }
        let kind = SnapshotKind::from_tag(r.get_u16()?)?;
        let count = r.get_u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            let tag = r.get_u16()?;
            let version = r.get_u16()?;
            let len = r.get_usize()?;
            let payload = r.get_raw(len, "section payload")?;
            sections.push(Section {
                tag,
                version,
                payload,
            });
        }
        r.expect_end("section table")?;
        Ok(SnapshotReader { kind, sections })
    }

    /// The snapshot kind.
    pub fn kind(&self) -> SnapshotKind {
        self.kind
    }

    /// All sections in file order (unknown tags included, so
    /// `snapshot inspect` can describe files from newer writers).
    pub fn sections(&self) -> &[Section<'a>] {
        &self.sections
    }

    /// The first section with the given tag, if present.
    pub fn section(&self, tag: u16) -> Option<&Section<'a>> {
        self.sections.iter().find(|s| s.tag == tag)
    }

    /// Like [`section`](Self::section) but failing with a clear error
    /// naming the missing state.
    pub fn require(&self, tag: u16, what: &'static str) -> Result<&Section<'a>, SnapError> {
        self.section(tag)
            .ok_or_else(|| SnapError::Corrupt(format!("missing required section {tag} ({what})")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_u64(42);
        payload.put_str("state");
        let mut snap = SnapshotWriter::new(SnapshotKind::Loop);
        snap.section(7, 1, payload);
        snap.section(9, 3, ByteWriter::new());
        snap.finish()
    }

    #[test]
    fn round_trip_preserves_framing() {
        let bytes = sample();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.kind(), SnapshotKind::Loop);
        assert_eq!(r.sections().len(), 2);
        let s = r.require(7, "answer").unwrap();
        assert_eq!(s.version, 1);
        let mut pr = s.reader();
        assert_eq!(pr.get_u64().unwrap(), 42);
        assert_eq!(pr.get_str().unwrap(), "state");
        pr.expect_end("answer").unwrap();
        assert_eq!(r.section(9).unwrap().payload.len(), 0);
        assert!(r.section(8).is_none());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let good = sample();
        for k in 0..good.len() {
            let mut bad = good.clone();
            bad[k] ^= 0x40;
            assert!(
                SnapshotReader::parse(&bad).is_err(),
                "flip at byte {k} must not parse"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let good = sample();
        for cut in 0..good.len() {
            assert!(
                SnapshotReader::parse(&good[..cut]).is_err(),
                "truncation to {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn newer_container_versions_are_rejected_by_name() {
        let mut bytes = sample();
        // Bump the version field, then re-stamp the checksum so the
        // version check (not the checksum) is what trips.
        bytes[8..12].copy_from_slice(&(CONTAINER_VERSION + 1).to_le_bytes());
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&sum.to_le_bytes());
        match SnapshotReader::parse(&bytes).unwrap_err() {
            SnapError::UnsupportedVersion { found, .. } => {
                assert_eq!(found, CONTAINER_VERSION + 1)
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_not_a_snapshot() {
        assert!(matches!(
            SnapshotReader::parse(b"NOTASNAP????????"),
            Err(SnapError::BadMagic { .. })
        ));
        assert!(matches!(
            SnapshotReader::parse(b""),
            Err(SnapError::BadMagic { .. })
        ));
    }
}
