//! Checked little-endian wire primitives and the [`Pack`]/[`Unpack`]
//! traits every serializable state struct implements.
//!
//! Writes are infallible (they grow a `Vec<u8>`); reads are total
//! functions over arbitrary bytes — every failure is a [`SnapError`],
//! never a panic, out-of-bounds read, or unbounded allocation. Floats
//! travel as IEEE-754 bit patterns so round trips are bitwise even for
//! NaN payloads, which is what the determinism contract needs.

use std::collections::VecDeque;

use crate::error::SnapError;

/// An append-only little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless
    /// of host width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with no length prefix (for fixed-size
    /// payloads whose length the schema already pins down).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A checked cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole slice has been consumed.
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`SnapError::TrailingBytes`] unless the reader is
    /// exactly exhausted — the guard every section decoder ends with.
    pub fn expect_end(&self, context: &'static str) -> Result<(), SnapError> {
        if self.finished() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                context,
                count: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Corrupt(format!(
                "bool byte must be 0 or 1, found {other}"
            ))),
        }
    }

    /// Reads a `usize` (stored as `u64`), rejecting values the host
    /// cannot represent.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("length {v} exceeds host usize")))
    }

    /// Reads a declared element count, additionally rejecting counts
    /// that cannot possibly fit in the remaining bytes (each element
    /// occupies at least one byte) — the guard that keeps corrupted
    /// length prefixes from requesting absurd allocations.
    pub fn get_count(&mut self, context: &'static str) -> Result<usize, SnapError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(SnapError::Corrupt(format!(
                "{context}: declared count {n} exceeds the {} remaining byte(s)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        let n = self.get_count("string")?;
        let bytes = self.take(n, "string bytes")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SnapError::Corrupt(format!("invalid UTF-8 in string: {e}")))
    }

    /// Reads a length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.get_count("bytes")?;
        Ok(self.take(n, "byte payload")?.to_vec())
    }

    /// Reads `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        self.take(n, context)
    }
}

/// Serialize into a [`ByteWriter`]. Implementations must be exact
/// inverses of their [`Unpack`] counterpart.
pub trait Pack {
    /// Appends this value's wire form.
    fn pack(&self, w: &mut ByteWriter);
}

/// Deserialize from a [`ByteReader`] without panicking on any input.
pub trait Unpack: Sized {
    /// Reads one value, consuming exactly the bytes [`Pack`] wrote.
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! impl_pack_primitive {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Pack for $ty {
            fn pack(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
        }
        impl Unpack for $ty {
            fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    };
}

impl_pack_primitive!(u8, put_u8, get_u8);
impl_pack_primitive!(u16, put_u16, get_u16);
impl_pack_primitive!(u32, put_u32, get_u32);
impl_pack_primitive!(u64, put_u64, get_u64);
impl_pack_primitive!(i64, put_i64, get_i64);
impl_pack_primitive!(f64, put_f64, get_f64);
impl_pack_primitive!(bool, put_bool, get_bool);
impl_pack_primitive!(usize, put_usize, get_usize);

impl Pack for String {
    fn pack(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
}

impl Unpack for String {
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        r.get_str()
    }
}

impl<T: Pack> Pack for Option<T> {
    fn pack(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.pack(w);
            }
        }
    }
}

impl<T: Unpack> Unpack for Option<T> {
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(r)?)),
            other => Err(SnapError::Corrupt(format!(
                "Option discriminant must be 0 or 1, found {other}"
            ))),
        }
    }
}

impl<T: Pack> Pack for Vec<T> {
    fn pack(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.pack(w);
        }
    }
}

impl<T: Unpack> Unpack for Vec<T> {
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_count("Vec")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unpack(r)?);
        }
        Ok(out)
    }
}

impl<T: Pack> Pack for VecDeque<T> {
    fn pack(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.pack(w);
        }
    }
}

impl<T: Unpack> Unpack for VecDeque<T> {
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_count("VecDeque")?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::unpack(r)?);
        }
        Ok(out)
    }
}

impl<A: Pack, B: Pack> Pack for (A, B) {
    fn pack(&self, w: &mut ByteWriter) {
        self.0.pack(w);
        self.1.pack(w);
    }
}

impl<A: Unpack, B: Unpack> Unpack for (A, B) {
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unpack(r)?, B::unpack(r)?))
    }
}

impl<A: Pack, B: Pack, C: Pack> Pack for (A, B, C) {
    fn pack(&self, w: &mut ByteWriter) {
        self.0.pack(w);
        self.1.pack(w);
        self.2.pack(w);
    }
}

impl<A: Unpack, B: Unpack, C: Unpack> Unpack for (A, B, C) {
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unpack(r)?, B::unpack(r)?, C::unpack(r)?))
    }
}

impl<T: Pack, const N: usize> Pack for [T; N] {
    fn pack(&self, w: &mut ByteWriter) {
        for v in self {
            v.pack(w);
        }
    }
}

impl<T: Unpack + Copy + Default, const N: usize> Unpack for [T; N] {
    fn unpack(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::unpack(r)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Pack + Unpack + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = ByteWriter::new();
        v.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(T::unpack(&mut r).unwrap(), v);
        assert!(r.finished(), "exact inverse");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(0xbeefu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(1.0625f64);
        round_trip(true);
        round_trip(12345usize);
        round_trip("héllo §".to_string());
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1.5f64, -0.0, f64::INFINITY]);
        round_trip(VecDeque::from(vec![1u32, 2, 3]));
        round_trip((1u64, 2.5f64));
        round_trip([9u64, 8, 7]);
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = ByteWriter::new();
        weird.pack(&mut w);
        let bytes = w.into_bytes();
        let back = f64::unpack(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        vec![1u64, 2, 3].pack(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = Vec::<u64>::unpack(&mut ByteReader::new(&bytes[..cut]));
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_lengths_are_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.put_usize(u64::MAX as usize);
        let err = Vec::<u8>::unpack(&mut ByteReader::new(w.as_bytes())).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)), "{err}");
    }

    #[test]
    fn bad_discriminants_are_corrupt() {
        assert!(matches!(
            bool::unpack(&mut ByteReader::new(&[2])),
            Err(SnapError::Corrupt(_))
        ));
        assert!(matches!(
            Option::<u8>::unpack(&mut ByteReader::new(&[9, 0])),
            Err(SnapError::Corrupt(_))
        ));
    }
}
