//! Workloads for dI/dt research: the paper's stressmark and a synthetic
//! SPEC2000-class suite.
//!
//! The HPCA 2003 paper evaluates its voltage controller on two software
//! populations:
//!
//! 1. a hand-crafted **dI/dt stressmark** (Figure 8) whose current draw
//!    oscillates at the package resonant frequency — the near-worst case;
//! 2. the **SPEC2000** benchmarks — real programs whose current variation
//!    is far milder (Table 2, Figure 10).
//!
//! SPEC binaries cannot ship with an open-source reproduction, so this
//! crate provides *synthetic* kernels — one per SPEC2000 benchmark name —
//! each engineered to exercise the same simulator mechanisms (cache-miss
//! stalls, FP bursts, branch mispredictions, divide serialization) that
//! give the real benchmark its published activity profile. What matters to
//! the controller is the per-cycle current waveform class, not the program
//! semantics; see `DESIGN.md` for the substitution argument.
//!
//! * [`stressmark`] — parameterized Figure 8-style resonant loop plus a
//!   spectrum-guided auto-tuner ([`stressmark::tune`]).
//! * [`spec`] — the 26-kernel suite, including the high-variation
//!   eight-benchmark subset used in the paper's controller studies.
//! * [`trace`] — harness to record per-cycle current traces from any
//!   workload (used by the tuner, the characterization experiments, and
//!   the benches).
//!
//! # Example
//!
//! ```
//! use voltctl_workloads::{spec, trace};
//! use voltctl_cpu::CpuConfig;
//! use voltctl_power::{PowerModel, PowerParams};
//!
//! let wl = spec::by_name("ammp").expect("ammp exists");
//! let model = PowerModel::new(PowerParams::paper_3ghz());
//! let trace = trace::record_current(&wl, &CpuConfig::table1(), &model, 2_000);
//! assert_eq!(trace.len(), 2_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod spec;
pub mod stressmark;
pub mod trace;

use voltctl_isa::Program;

/// A runnable workload: a program plus measurement metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (e.g. `"swim"`, `"stressmark"`).
    pub name: String,
    /// The program. Suite programs loop forever; run them for a fixed
    /// cycle budget.
    pub program: Program,
    /// Cycles to execute before measuring (cache/predictor warm-up).
    pub warmup_cycles: u64,
    /// The behavior class this workload was generated from.
    pub class: Class,
}

/// Behavior classes the synthetic kernels are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Dependent-load pointer chasing: low IPC, very stable current
    /// (`ammp`, `mcf`, `art`).
    PointerChase,
    /// Phase-alternating FP streaming: the widest benign current swings
    /// (`swim`, `galgel`, `mgrid`, …).
    StreamingFp,
    /// Branchy integer code: moderate IPC, mispredict bubbles
    /// (`gcc`, `crafty`, …).
    BranchyInt,
    /// Dense FP compute: steady high current (`mesa`, `wupwise`, …).
    FpCompute,
    /// Mixed stall/burst phases (`facerec`, `sixtrack`, `eon`).
    MixedPhase,
    /// The dI/dt stressmark.
    Stressmark,
}
