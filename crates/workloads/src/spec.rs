//! Synthetic SPEC2000-class kernels.
//!
//! One kernel per SPEC2000 benchmark name, each generated from the
//! behavior class the paper's characterization attributes to it:
//!
//! * **pointer chasers** (`mcf`, `art`, `ammp`) — dependent loads; `ammp`
//!   chases an L1-resident ring (low, *stable* activity — the paper calls
//!   out its exceptionally stable voltage), `mcf`/`art` chase rings far
//!   larger than the L2 (memory-latency bound, low IPC);
//! * **phase-alternating FP streamers** (`swim`, `mgrid`, `galgel`, …) —
//!   bursts of independent FP work separated by serializing stalls, the
//!   widest benign current swings (the paper singles out `swim` and
//!   `galgel` for their broad voltage distributions);
//! * **branchy integer codes** (`gcc`, `crafty`, …) — data-dependent
//!   branches mispredict and carve pipeline bubbles;
//! * **dense FP compute** (`wupwise`, `fma3d`, …) — steady high current;
//! * **mixed stall/burst** (`eon`, `facerec`, `sixtrack`) — divide
//!   serialization alternating with multi-issue bursts.
//!
//! All kernels loop forever; run them for a fixed cycle budget. Generation
//! is deterministic (fixed per-benchmark seeds).

use crate::{Class, Workload};
use voltctl_isa::builder::ProgramBuilder;
use voltctl_isa::reg::{FpReg, IntReg};

/// Base address for each kernel's primary data region.
const REGION: u64 = 0x100_0000;
/// Base address for the L1-conflict stall lines (32 KiB apart = same L1 set).
const CONFLICT: i64 = 0x400_0000;

/// The serializing stall used by streaming/mixed kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    /// A load that misses L1 but hits L2 (~17 cycles): rotates among three
    /// lines that conflict in the 2-way L1.
    L2Load,
    /// A load that always misses to memory (~317 cycles): strides through
    /// an unbounded region.
    MemLoad,
    /// A chain of `n` dependent FP divides (~18 cycles each).
    Divide(usize),
}

/// Emits the canonical infinite-loop prologue: `r1 = 1` so `bne r1, top`
/// is always taken and perfectly predictable.
fn loop_counter(b: &mut ProgramBuilder) {
    b.lda(IntReg::R1, IntReg::R31, 1);
}

/// Emits the serializing stall plus the data-dependence glue that forces
/// the next burst to wait for it (a zero derived from the stall result is
/// folded into the burst's base register `r4`).
fn emit_stall(b: &mut ProgramBuilder, stall: Stall) {
    match stall {
        Stall::L2Load => {
            // r5 rotates over {CONFLICT, +32K, +64K}; r20 = base, r21 = limit.
            b.ldq(IntReg::new(6), 0, IntReg::new(5));
            b.addq_imm(IntReg::new(5), IntReg::new(5), 32 * 1024);
            b.cmplt(IntReg::new(10), IntReg::new(5), IntReg::new(21));
            b.cmoveq(IntReg::new(5), IntReg::new(10), IntReg::new(20));
            // Serialize: r11 = r6 & 0 (depends on the load), r4 += r11.
            b.and_imm(IntReg::new(11), IntReg::new(6), 0);
            b.addq(IntReg::R4, IntReg::R4, IntReg::new(11));
        }
        Stall::MemLoad => {
            b.ldq(IntReg::new(6), 0, IntReg::new(5));
            b.addq_imm(IntReg::new(5), IntReg::new(5), 64);
            b.and_imm(IntReg::new(11), IntReg::new(6), 0);
            b.addq(IntReg::R4, IntReg::R4, IntReg::new(11));
        }
        Stall::Divide(n) => {
            b.ldt(FpReg::F1, 0, IntReg::R4);
            b.divt(FpReg::F3, FpReg::F1, FpReg::F2);
            for _ in 1..n.max(1) {
                b.divt(FpReg::F3, FpReg::F3, FpReg::F2);
            }
            // Hand the result to the integer side and back to memory so the
            // loop-carried dependence serializes iterations.
            b.stt(FpReg::F3, 8, IntReg::R4);
            b.ldq(IntReg::new(7), 8, IntReg::R4);
            b.cmoveq(IntReg::R3, IntReg::R31, IntReg::new(7));
        }
    }
}

/// Emits stall-related setup (registers, seed data).
fn emit_stall_setup(b: &mut ProgramBuilder, stall: Stall) {
    match stall {
        Stall::L2Load => {
            b.lda(IntReg::new(5), IntReg::R31, CONFLICT);
            b.lda(IntReg::new(20), IntReg::R31, CONFLICT);
            b.lda(IntReg::new(21), IntReg::R31, CONFLICT + 96 * 1024);
        }
        Stall::MemLoad => {
            b.lda(IntReg::new(5), IntReg::R31, CONFLICT);
        }
        Stall::Divide(_) => {
            b.data_f64(REGION, &[std::f64::consts::E]);
            b.data_f64(REGION + 16, &[1.0]);
            b.ldt(FpReg::F2, 16, IntReg::R4);
        }
    }
}

fn pointer_chase(name: &str, lines: usize, unroll: usize, seed: u64) -> Workload {
    let mut order: Vec<usize> = (0..lines).collect();
    voltctl_telemetry::Rng::new(seed).shuffle(&mut order);
    let mut buf = vec![0u8; lines * 64];
    for i in 0..lines {
        let from = order[i];
        let to = order[(i + 1) % lines];
        let ptr = REGION + (to as u64) * 64;
        buf[from * 64..from * 64 + 8].copy_from_slice(&ptr.to_le_bytes());
    }
    let mut b = ProgramBuilder::new(name);
    b.data_bytes(REGION, buf);
    b.lda(
        IntReg::R4,
        IntReg::R31,
        (REGION + (order[0] as u64) * 64) as i64,
    );
    loop_counter(&mut b);
    b.label("top");
    for _ in 0..unroll {
        b.ldq(IntReg::R4, 0, IntReg::R4);
    }
    b.bne(IntReg::R1, "top");
    // Small rings need one full traversal to warm; large rings are in
    // steady state (all-miss) immediately.
    let warmup = if lines <= 1024 { 40_000 } else { 3_000 };
    Workload {
        name: name.into(),
        program: b.build().expect("chase labels resolve"),
        warmup_cycles: warmup,
        class: Class::PointerChase,
    }
}

fn streaming_fp(name: &str, fp_burst: usize, int_burst: usize, stall: Stall) -> Workload {
    let mut b = ProgramBuilder::new(name);
    b.data_f64(REGION, &[1.5]);
    b.data_f64(REGION + 16, &[1.0]);
    b.lda(IntReg::R4, IntReg::R31, REGION as i64);
    // Xorshift seed for the aperiodic burst tail (Divide variant only).
    b.lda(
        IntReg::new(25),
        IntReg::R31,
        0x51ca_7e55 ^ fp_burst as i64 | 1,
    );
    emit_stall_setup(&mut b, stall);
    if !matches!(stall, Stall::Divide(_)) {
        b.ldt(FpReg::F2, 16, IntReg::R4);
    }
    loop_counter(&mut b);
    b.label("top");
    emit_stall(&mut b, stall);
    // Burst sources are chosen so the burst *waits for the stall*: the
    // divide variant sources the divide result (f3/r3), the load variants
    // source the stall load (r6) and a value loaded behind the
    // stall-serialized base register r4 (f1).
    let (fp_src, int_src) = if matches!(stall, Stall::Divide(_)) {
        (FpReg::F3, IntReg::R3)
    } else {
        b.ldt(FpReg::F1, 0, IntReg::R4);
        (FpReg::F1, IntReg::new(6))
    };
    let fp_dests = [FpReg::F4, FpReg::F5, FpReg::F6, FpReg::new(7)];
    for k in 0..fp_burst {
        if k % 2 == 0 {
            b.mult(fp_dests[k % 4], fp_src, FpReg::F2);
        } else {
            b.addt(fp_dests[(k + 1) % 4], fp_src, FpReg::F2);
        }
    }
    let int_dests = [
        IntReg::new(12),
        IntReg::new(13),
        IntReg::new(14),
        IntReg::new(15),
    ];
    let emit_int_op = |b: &mut ProgramBuilder, k: usize| match k % 4 {
        0 => {
            b.xor(int_dests[k % 4], int_src, int_src);
        }
        1 => {
            b.addq(int_dests[(k + 1) % 4], int_src, int_src);
        }
        2 => {
            b.stq(int_src, 64 + ((k as i64 * 8) % 56), IntReg::R4);
        }
        _ => {
            b.or(int_dests[(k + 2) % 4], int_src, int_src);
        }
    };
    if matches!(stall, Stall::Divide(_)) {
        // Divide-stalled streamers (galgel) would otherwise repeat with a
        // fixed period near the package resonance. Real phase-y FP codes
        // are irregular: the burst tail (half the FP work and half the
        // integer work) runs only when two xorshift bits agree (p = 1/4),
        // so routine iterations are calm while occasional runs of long
        // iterations produce the rare deep voltage dips of Table 2.
        for k in 0..int_burst / 2 {
            emit_int_op(&mut b, k);
        }
        b.sll_imm(IntReg::new(26), IntReg::new(25), 13);
        b.xor(IntReg::new(25), IntReg::new(25), IntReg::new(26));
        b.srl_imm(IntReg::new(26), IntReg::new(25), 7);
        b.xor(IntReg::new(25), IntReg::new(25), IntReg::new(26));
        b.and_imm(IntReg::new(26), IntReg::new(25), 3);
        b.bne(IntReg::new(26), "skip_tail");
        for k in 0..fp_burst / 2 {
            if k % 2 == 0 {
                b.mult(fp_dests[(k + 2) % 4], fp_src, FpReg::F2);
            } else {
                b.addt(fp_dests[(k + 3) % 4], fp_src, FpReg::F2);
            }
        }
        for k in int_burst / 2..int_burst {
            emit_int_op(&mut b, k);
        }
        b.label("skip_tail");
    } else {
        for k in 0..int_burst {
            emit_int_op(&mut b, k);
        }
    }
    // Fold the burst's results into the next iteration's stall input so
    // the stall cannot start (and hide its latency) under this burst —
    // without this the out-of-order window overlaps the phases and the
    // current waveform flattens.
    match stall {
        Stall::Divide(_) => {
            for dest in int_dests {
                b.xor(IntReg::R3, IntReg::R3, dest);
            }
            b.stq(IntReg::R3, 0, IntReg::R4);
        }
        Stall::L2Load | Stall::MemLoad => {
            b.xor(IntReg::new(19), int_dests[0], int_dests[1]);
            b.xor(IntReg::new(19), IntReg::new(19), int_dests[2]);
            b.xor(IntReg::new(19), IntReg::new(19), int_dests[3]);
            b.and_imm(IntReg::new(19), IntReg::new(19), 0);
            b.addq(IntReg::new(5), IntReg::new(5), IntReg::new(19));
        }
    }
    b.bne(IntReg::R1, "top");
    Workload {
        name: name.into(),
        program: b.build().expect("streaming labels resolve"),
        warmup_cycles: 20_000,
        class: Class::StreamingFp,
    }
}

fn branchy_int(name: &str, burst: usize, seed: u64) -> Workload {
    branchy_int_impl(name, burst, seed, false)
}

/// Call-structured variant: the taken-path burst lives in a subroutine
/// reached via `jsr`/`ret`, exercising the return-address stack the way
/// call-heavy integer codes (chess search, interpreters) do.
fn branchy_calls(name: &str, burst: usize, seed: u64) -> Workload {
    branchy_int_impl(name, burst, seed, true)
}

fn branchy_int_impl(name: &str, burst: usize, seed: u64, calls: bool) -> Workload {
    let mut b = ProgramBuilder::new(name);
    b.lda(IntReg::R4, IntReg::R31, REGION as i64);
    b.lda(IntReg::new(9), IntReg::R31, seed as i64 | 1);
    loop_counter(&mut b);
    b.label("top");
    // xorshift64 on r9: unpredictable low bit.
    b.sll_imm(IntReg::new(10), IntReg::new(9), 13);
    b.xor(IntReg::new(9), IntReg::new(9), IntReg::new(10));
    b.srl_imm(IntReg::new(10), IntReg::new(9), 7);
    b.xor(IntReg::new(9), IntReg::new(9), IntReg::new(10));
    b.sll_imm(IntReg::new(10), IntReg::new(9), 17);
    b.xor(IntReg::new(9), IntReg::new(9), IntReg::new(10));
    b.and_imm(IntReg::new(10), IntReg::new(9), 1);
    b.beq(IntReg::new(10), "skip");
    let emit_burst = |b: &mut ProgramBuilder| {
        // Taken-path burst: integer work plus warm-line memory traffic.
        let dests = [
            IntReg::new(12),
            IntReg::new(13),
            IntReg::new(14),
            IntReg::new(15),
            IntReg::new(16),
        ];
        for k in 0..burst {
            match k % 5 {
                0 => {
                    b.addq(dests[k % 5], IntReg::new(9), IntReg::new(9));
                }
                1 => {
                    b.xor(dests[(k + 1) % 5], IntReg::new(9), IntReg::new(9));
                }
                2 => {
                    b.stq(IntReg::new(9), (k as i64 * 8) % 56, IntReg::R4);
                }
                3 => {
                    b.ldq(dests[(k + 3) % 5], (k as i64 * 8) % 56, IntReg::R4);
                }
                _ => {
                    b.cmplt(dests[(k + 4) % 5], IntReg::new(9), IntReg::new(12));
                }
            }
        }
    };
    if calls {
        // Reach the burst through a subroutine (jsr/ret via the RAS).
        b.jsr(IntReg::new(26), "burst_fn");
    } else {
        emit_burst(&mut b);
    }
    b.label("skip");
    // Common work keeps baseline IPC moderate.
    b.addq_imm(IntReg::new(17), IntReg::new(17), 1);
    b.subq(IntReg::new(18), IntReg::new(17), IntReg::new(9));
    b.bne(IntReg::R1, "top");
    if calls {
        // Subroutine body, placed after the loop (never falls through
        // because the loop branch above is always taken).
        b.label("burst_fn");
        emit_burst(&mut b);
        b.ret(IntReg::new(26));
    }
    Workload {
        name: name.into(),
        program: b.build().expect("branchy labels resolve"),
        warmup_cycles: 20_000,
        class: Class::BranchyInt,
    }
}

fn fp_compute(name: &str, unroll: usize) -> Workload {
    let mut b = ProgramBuilder::new(name);
    b.data_f64(REGION, &[1.25, 0.75]);
    b.lda(IntReg::R4, IntReg::R31, REGION as i64);
    b.ldt(FpReg::F1, 0, IntReg::R4);
    b.ldt(FpReg::F2, 8, IntReg::R4);
    loop_counter(&mut b);
    b.label("top");
    let dests = [
        FpReg::F4,
        FpReg::F5,
        FpReg::F6,
        FpReg::new(7),
        FpReg::new(8),
    ];
    for k in 0..unroll {
        match k % 4 {
            0 => {
                b.mult(dests[k % 5], FpReg::F1, FpReg::F2);
            }
            1 => {
                b.addt(dests[(k + 1) % 5], FpReg::F1, FpReg::F2);
            }
            2 => {
                b.ldt(FpReg::new(9), 16, IntReg::R4);
            }
            _ => {
                b.subt(dests[(k + 3) % 5], FpReg::F2, FpReg::F1);
            }
        }
    }
    b.addq_imm(IntReg::new(12), IntReg::new(12), 1);
    b.bne(IntReg::R1, "top");
    Workload {
        name: name.into(),
        program: b.build().expect("fp labels resolve"),
        warmup_cycles: 12_000,
        class: Class::FpCompute,
    }
}

fn mixed_phase(name: &str, divide_chain: usize, burst: usize) -> Workload {
    let mut b = ProgramBuilder::new(name);
    b.lda(IntReg::R4, IntReg::R31, REGION as i64);
    emit_stall_setup(&mut b, Stall::Divide(divide_chain));
    // Seed the xorshift register that aperiodically varies the burst
    // length (real programs are not metronomes; without this, the loop
    // period parks on the package resonance and pumps it coherently).
    b.lda(IntReg::new(25), IntReg::R31, 0x1234_5677 ^ burst as i64 | 1);
    loop_counter(&mut b);
    b.label("top");
    emit_stall(&mut b, Stall::Divide(divide_chain));
    let dests = [
        IntReg::new(12),
        IntReg::new(13),
        IntReg::new(14),
        IntReg::new(15),
        IntReg::new(16),
        IntReg::new(17),
    ];
    let emit_burst_op = |b: &mut ProgramBuilder, k: usize| match k % 6 {
        0 => {
            b.addq(dests[k % 6], IntReg::R3, IntReg::R3);
        }
        1 => {
            b.xor(dests[(k + 1) % 6], IntReg::R3, IntReg::R3);
        }
        2 => {
            b.mult(FpReg::F4, FpReg::F3, FpReg::F3);
        }
        3 => {
            b.stq(IntReg::R3, 64 + ((k as i64 * 8) % 56), IntReg::R4);
        }
        4 => {
            b.or(dests[(k + 4) % 6], IntReg::R3, IntReg::R3);
        }
        _ => {
            b.addt(FpReg::F5, FpReg::F3, FpReg::F3);
        }
    };
    // Two fifths of the burst always runs.
    let always = burst * 2 / 5;
    for k in 0..always {
        emit_burst_op(&mut b, k);
    }
    // The tail runs only when two xorshift bits agree (p = 1/4): routine
    // iterations stay calm, occasional runs of long iterations produce
    // the rare deep dips that cross specification at 400% impedance.
    b.sll_imm(IntReg::new(26), IntReg::new(25), 13);
    b.xor(IntReg::new(25), IntReg::new(25), IntReg::new(26));
    b.srl_imm(IntReg::new(26), IntReg::new(25), 7);
    b.xor(IntReg::new(25), IntReg::new(25), IntReg::new(26));
    b.and_imm(IntReg::new(26), IntReg::new(25), 3);
    b.bne(IntReg::new(26), "skip_tail");
    for k in always..burst {
        emit_burst_op(&mut b, k);
    }
    b.label("skip_tail");
    for dest in dests {
        b.xor(IntReg::R3, IntReg::R3, dest);
    }
    b.stq(IntReg::R3, 0, IntReg::R4);
    b.bne(IntReg::R1, "top");
    Workload {
        name: name.into(),
        program: b.build().expect("mixed labels resolve"),
        warmup_cycles: 20_000,
        class: Class::MixedPhase,
    }
}

/// Number of kernels in the synthetic suite.
pub const SUITE_LEN: usize = 26;

/// All 26 SPEC2000 benchmark names, in **suite order** (CINT2000 in
/// published order, then CFP2000 in published order).
///
/// This ordering is the canonical report order: every experiment that
/// prints per-benchmark rows (Table 2, Figure 10, …) emits them in
/// exactly this sequence, so successive runs diff cleanly. Use
/// [`position`] to sort results that were produced out of order (e.g.
/// by parallel workers).
pub fn names() -> [&'static str; 26] {
    [
        // CINT2000
        "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
        "twolf", // CFP2000
        "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art", "equake", "facerec", "ammp",
        "lucas", "fma3d", "sixtrack", "apsi",
    ]
}

/// Builds the synthetic kernel for one benchmark name.
pub fn by_name(name: &str) -> Option<Workload> {
    Some(match name {
        // --- CINT2000 ----------------------------------------------------
        "gzip" => branchy_int("gzip", 20, 0x67a1),
        "vpr" => branchy_int("vpr", 27, 0x11c3),
        "gcc" => branchy_int("gcc", 36, 0x9d05),
        "mcf" => pointer_chase("mcf", 128 * 1024, 8, 0x2001),
        "crafty" => branchy_calls("crafty", 28, 0x5e1f),
        "parser" => branchy_int("parser", 26, 0x77aa),
        "eon" => mixed_phase("eon", 1, 90),
        "perlbmk" => branchy_calls("perlbmk", 34, 0x31f9),
        "gap" => branchy_int("gap", 22, 0x8ee1),
        "vortex" => branchy_int("vortex", 28, 0x40d7),
        "bzip2" => branchy_int("bzip2", 18, 0xbc2b),
        "twolf" => branchy_int("twolf", 28, 0x9981),
        // --- CFP2000 -----------------------------------------------------
        "wupwise" => fp_compute("wupwise", 24),
        "swim" => streaming_fp("swim", 90, 40, Stall::L2Load),
        "mgrid" => streaming_fp("mgrid", 70, 30, Stall::L2Load),
        "applu" => streaming_fp("applu", 60, 20, Stall::MemLoad),
        "mesa" => streaming_fp("mesa", 110, 20, Stall::L2Load),
        "galgel" => streaming_fp("galgel", 55, 40, Stall::Divide(1)),
        "art" => pointer_chase("art", 64 * 1024, 8, 0x0a47),
        "equake" => streaming_fp("equake", 50, 16, Stall::MemLoad),
        "facerec" => mixed_phase("facerec", 1, 95),
        "ammp" => pointer_chase("ammp", 64, 8, 0xa332),
        "lucas" => streaming_fp("lucas", 80, 24, Stall::L2Load),
        "fma3d" => fp_compute("fma3d", 28),
        "sixtrack" => mixed_phase("sixtrack", 1, 100),
        "apsi" => fp_compute("apsi", 20),
        _ => return None,
    })
}

/// The suite-order index of a benchmark name (`None` for non-members).
pub fn position(name: &str) -> Option<usize> {
    names().iter().position(|&n| n == name)
}

/// Builds the kernel at a given suite-order index (see [`names`]).
///
/// # Panics
///
/// Panics when `index >= SUITE_LEN`.
pub fn by_index(index: usize) -> Workload {
    let name = names()[index];
    by_name(name).expect("every listed name builds")
}

/// Iterates the full suite lazily in suite order. Prefer this over
/// [`all`] when kernels are consumed one at a time (e.g. one grid cell
/// per benchmark): each kernel is built on demand, so parallel workers
/// don't pay for the whole suite up front.
pub fn iter() -> impl Iterator<Item = Workload> {
    (0..SUITE_LEN).map(by_index)
}

/// The full 26-kernel suite, in suite order.
pub fn all() -> Vec<Workload> {
    iter().collect()
}

/// The paper's high-voltage-variation subset used in the controller
/// studies. Section 4.4 names seven (swim, mgrid, gcc, galgel, facerec,
/// sixtrack, eon) while saying "eight"; we include `mesa` as the eighth.
pub fn variable_eight() -> Vec<Workload> {
    [
        "swim", "mgrid", "gcc", "galgel", "facerec", "sixtrack", "eon", "mesa",
    ]
    .iter()
    .map(|n| by_name(n).expect("subset names build"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;
    use voltctl_cpu::CpuConfig;
    use voltctl_power::{PowerModel, PowerParams};

    fn harness() -> (CpuConfig, PowerModel) {
        (
            CpuConfig::table1(),
            PowerModel::new(PowerParams::paper_3ghz()),
        )
    }

    #[test]
    fn every_name_builds_and_is_unique() {
        let mut seen = std::collections::HashSet::new();
        for name in names() {
            let wl = by_name(name).expect(name);
            assert_eq!(wl.name, name);
            assert!(seen.insert(wl.name.clone()));
        }
        assert_eq!(seen.len(), 26);
        assert!(by_name("notabenchmark").is_none());
    }

    #[test]
    fn suite_has_26_members_and_subset_8() {
        assert_eq!(all().len(), 26);
        assert_eq!(all().len(), SUITE_LEN);
        assert_eq!(variable_eight().len(), 8);
    }

    #[test]
    fn iteration_helpers_follow_suite_order() {
        for (k, name) in names().iter().enumerate() {
            assert_eq!(position(name), Some(k));
            assert_eq!(by_index(k).name, *name);
        }
        assert_eq!(position("notabenchmark"), None);
        let lazy: Vec<String> = iter().map(|w| w.name).collect();
        let eager: Vec<String> = all().into_iter().map(|w| w.name).collect();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn kernels_loop_forever() {
        let (config, _) = harness();
        for name in ["gzip", "swim", "ammp", "wupwise", "eon"] {
            let wl = by_name(name).unwrap();
            let cpu = trace::run_for(&wl, &config, 10_000);
            assert!(!cpu.done(), "{name} must not terminate");
            assert!(cpu.stats().committed > 0, "{name} must make progress");
        }
    }

    #[test]
    fn pointer_chasers_have_low_ipc() {
        let (config, _) = harness();
        let mcf = trace::run_for(&by_name("mcf").unwrap(), &config, 50_000);
        assert!(
            mcf.stats().ipc() < 0.3,
            "mcf is memory bound, ipc {}",
            mcf.stats().ipc()
        );
        let wup = trace::run_for(&by_name("wupwise").unwrap(), &config, 50_000);
        assert!(
            wup.stats().ipc() > 1.5,
            "wupwise is compute bound, ipc {}",
            wup.stats().ipc()
        );
    }

    #[test]
    fn branchy_kernels_mispredict() {
        let (config, _) = harness();
        let gcc = trace::run_for(&by_name("gcc").unwrap(), &config, 50_000);
        assert!(
            gcc.stats().mispredict_rate() > 0.05,
            "gcc mispredict rate {}",
            gcc.stats().mispredict_rate()
        );
    }

    #[test]
    fn ammp_is_stable_galgel_is_not() {
        let (config, power) = harness();
        let spread = |name: &str| {
            let wl = by_name(name).unwrap();
            let t = trace::record_current(&wl, &config, &power, 20_000);
            let mean = t.iter().sum::<f64>() / t.len() as f64;
            (t.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / t.len() as f64).sqrt()
        };
        let ammp = spread("ammp");
        let galgel = spread("galgel");
        assert!(
            galgel > 3.0 * ammp,
            "galgel current must vary far more than ammp: {galgel} vs {ammp}"
        );
    }

    #[test]
    fn l2_stall_kernels_miss_l1_but_not_memory() {
        let (config, _) = harness();
        let swim = trace::run_for(&by_name("swim").unwrap(), &config, 60_000);
        let (dl1_acc, dl1_miss) = swim.stats().dl1;
        assert!(dl1_miss > 100, "swim must miss L1: {dl1_miss}/{dl1_acc}");
        let (l2_acc, l2_miss) = swim.stats().l2;
        assert!(
            (l2_miss as f64) < 0.2 * l2_acc as f64,
            "swim stalls should be L2 hits: {l2_miss}/{l2_acc}"
        );
    }

    #[test]
    fn mem_stall_kernels_reach_memory() {
        let (config, _) = harness();
        let applu = trace::run_for(&by_name("applu").unwrap(), &config, 60_000);
        assert!(applu.stats().l2.1 > 50, "applu must miss L2");
    }
}
