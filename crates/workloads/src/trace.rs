//! Current-trace recording harness.
//!
//! Runs a [`Workload`] on the cycle-level simulator with the structural
//! power model attached and records the per-cycle current draw — the input
//! the PDN model convolves into a voltage trace. This is the uncontrolled
//! (open-loop) measurement path used by the characterization experiments
//! (Table 2, Figures 9 and 10) and by the stressmark tuner; the closed
//! control loop lives in `voltctl-core`.

use crate::Workload;
use voltctl_cpu::{Cpu, CpuConfig};
use voltctl_power::PowerModel;

/// Records `cycles` cycles of current (amps) after the workload's warm-up,
/// running uncontrolled (no gating).
///
/// # Panics
///
/// Panics if the workload's program fails configuration validation
/// (programmer error in the generator), or finishes before warm-up plus
/// measurement complete (suite programs are infinite loops; finite
/// programs must be long enough).
pub fn record_current(
    workload: &Workload,
    config: &CpuConfig,
    power: &PowerModel,
    cycles: usize,
) -> Vec<f64> {
    let mut cpu =
        Cpu::new(config.clone(), &workload.program).expect("workload configuration must validate");
    for _ in 0..workload.warmup_cycles {
        if cpu.done() {
            panic!(
                "workload `{}` finished during warm-up ({} cycles)",
                workload.name, workload.warmup_cycles
            );
        }
        cpu.step();
    }
    let gating = cpu.gating();
    let mut out = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        if cpu.done() {
            panic!("workload `{}` finished during measurement", workload.name);
        }
        let act = cpu.step();
        out.push(power.cycle_current(&act, &gating));
    }
    out
}

/// Runs the workload for `cycles` cycles (after warm-up) and returns the
/// final simulator, for callers that need statistics rather than traces.
pub fn run_for(workload: &Workload, config: &CpuConfig, cycles: u64) -> Cpu {
    let mut cpu =
        Cpu::new(config.clone(), &workload.program).expect("workload configuration must validate");
    cpu.run(workload.warmup_cycles + cycles);
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Class;
    use voltctl_isa::builder::ProgramBuilder;
    use voltctl_isa::reg::IntReg;
    use voltctl_power::{PowerModel, PowerParams};

    fn looping_workload() -> Workload {
        let mut b = ProgramBuilder::new("loop");
        b.label("top");
        b.addq_imm(IntReg::R1, IntReg::R1, 1);
        b.br("top");
        Workload {
            name: "loop".into(),
            program: b.build().unwrap(),
            warmup_cycles: 100,
            class: Class::BranchyInt,
        }
    }

    #[test]
    fn records_requested_length() {
        let wl = looping_workload();
        let model = PowerModel::new(PowerParams::paper_3ghz());
        let t = record_current(&wl, &CpuConfig::table1(), &model, 500);
        assert_eq!(t.len(), 500);
        // All samples within the physical range.
        for &i in &t {
            assert!(i >= model.min_current() - 1e-9);
            assert!(i <= model.peak_current() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "finished during")]
    fn finite_program_too_short_panics() {
        let mut b = ProgramBuilder::new("tiny");
        b.nop();
        b.halt();
        let wl = Workload {
            name: "tiny".into(),
            program: b.build().unwrap(),
            warmup_cycles: 1000,
            class: Class::BranchyInt,
        };
        let model = PowerModel::new(PowerParams::paper_3ghz());
        let _ = record_current(&wl, &CpuConfig::table1(), &model, 10);
    }

    #[test]
    fn run_for_returns_simulator_with_stats() {
        let wl = looping_workload();
        let cpu = run_for(&wl, &CpuConfig::table1(), 1000);
        assert!(cpu.stats().committed > 0);
        assert!(!cpu.done());
    }
}
