//! The dI/dt stressmark (the paper's Figure 8, generated and auto-tuned).
//!
//! The stressmark is a loop whose current draw approximates a square wave
//! at the package resonant frequency:
//!
//! * a **low phase** — a chain of dependent FP divides serializes the
//!   machine (nothing else can issue because everything downstream depends
//!   on the chain through memory);
//! * a **high phase** — a burst of independent integer, FP, and store
//!   operations, all released at once when the divide result lands,
//!   saturating the issue width;
//! * **loop-carried serialization through memory** — the burst's final
//!   store writes the location the next iteration's first load reads
//!   (exactly the dotted-arrow dependence in the paper's listing), so the
//!   out-of-order window cannot overlap iterations and flatten the square
//!   wave.
//!
//! Loop timing is hardware-dependent, so [`tune`] searches the generator's
//! two knobs (divide-chain length, burst size) for the candidate whose
//! measured current spectrum has the most energy at the target resonant
//! frequency — automating the paper's "crafted with significant knowledge
//! of the processor" step.

use crate::{trace, Class, Workload};
use voltctl_cpu::CpuConfig;
use voltctl_isa::builder::ProgramBuilder;
use voltctl_isa::reg::{FpReg, IntReg};
use voltctl_pdn::spectrum;
use voltctl_power::PowerModel;

/// Buffer base address used by the stressmark loop.
const BUF: i64 = 0x20_0000;

/// Generator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressmarkParams {
    /// Number of dependent FP divides in the low phase.
    pub divide_chain: usize,
    /// Number of operations in the high-activity burst.
    pub burst_ops: usize,
    /// Loop iterations; `None` loops forever.
    pub iterations: Option<u64>,
}

impl Default for StressmarkParams {
    fn default() -> Self {
        StressmarkParams {
            divide_chain: 1,
            burst_ops: 220,
            iterations: None,
        }
    }
}

/// Builds the stressmark program from explicit parameters.
///
/// # Panics
///
/// Panics if `divide_chain` is zero or `burst_ops` is zero.
pub fn build(params: &StressmarkParams) -> Workload {
    assert!(params.divide_chain > 0, "need at least one divide");
    assert!(params.burst_ops > 0, "need a non-empty burst");
    let mut b = ProgramBuilder::new("stressmark");

    // Data: f1 seed at BUF+0, divisor 1.0 at BUF+16 (keeps values stable
    // across unbounded iterations; FP timing is data-independent).
    b.data_f64(BUF as u64, &[std::f64::consts::PI]);
    b.data_f64(BUF as u64 + 16, &[1.0]);

    b.lda(IntReg::R4, IntReg::R31, BUF);
    b.ldt(FpReg::F2, 16, IntReg::R4);
    match params.iterations {
        Some(n) => {
            b.lda(IntReg::R1, IntReg::R31, n as i64);
        }
        None => {
            b.lda(IntReg::R1, IntReg::R31, 1);
        }
    }

    b.label("loop");
    // Low phase: load feeds a dependent divide chain.
    b.ldt(FpReg::F1, 0, IntReg::R4);
    b.divt(FpReg::F3, FpReg::F1, FpReg::F2);
    for _ in 1..params.divide_chain {
        b.divt(FpReg::F3, FpReg::F3, FpReg::F2);
    }
    // Hand the FP result to the integer side through memory (stt → ldq →
    // cmov), as in the paper's listing.
    b.stt(FpReg::F3, 8, IntReg::R4);
    b.ldq(IntReg::R7, 8, IntReg::R4);
    b.cmoveq(IntReg::R3, IntReg::R31, IntReg::R7);

    // High phase: a burst of mutually independent ops, all gated on r3/f3.
    // Pattern per 8 ops: 4 integer ALU, 2 FP, 2 stores — respects the
    // 4-port memory limit while saturating the 8-wide issue.
    let int_dests = [
        IntReg::R8,
        IntReg::new(9),
        IntReg::new(10),
        IntReg::new(11),
        IntReg::new(12),
        IntReg::new(13),
    ];
    let fp_dests = [FpReg::F4, FpReg::F5, FpReg::F6];
    let mut store_off = 64i64;
    let store = |b: &mut ProgramBuilder, off: &mut i64| {
        b.stq(IntReg::R3, *off, IntReg::R4);
        *off = 64 + (*off - 64 + 8) % 64; // stay in one warm line
    };
    // Per 8 ops: 3 integer ALU, 2 FP, 3 stores — saturates the 8-wide
    // issue while keeping 3 of the 4 memory ports and both FP pipes hot,
    // maximizing the high-phase power.
    for k in 0..params.burst_ops.saturating_sub(1) {
        match k % 8 {
            0 => {
                b.xor(int_dests[k % 6], IntReg::R3, IntReg::R3);
            }
            1 => {
                b.addq(int_dests[(k + 1) % 6], IntReg::R3, IntReg::R3);
            }
            2 => {
                b.mult(fp_dests[k % 3], FpReg::F3, FpReg::F3);
            }
            3 => store(&mut b, &mut store_off),
            4 => {
                b.or(int_dests[(k + 2) % 6], IntReg::R3, IntReg::R3);
            }
            5 => {
                b.addt(fp_dests[(k + 1) % 3], FpReg::F3, FpReg::F3);
            }
            6 => store(&mut b, &mut store_off),
            _ => store(&mut b, &mut store_off),
        }
    }
    // Fold the burst's integer results back into r3 so the loop-closing
    // store — and through it the next iteration's divide chain — waits for
    // the whole burst. Without this the window overlaps the next low phase
    // with this high phase and the square wave flattens out.
    for dest in int_dests {
        b.xor(IntReg::R3, IntReg::R3, dest);
    }
    // Final burst op: close the loop-carried memory dependence.
    b.stq(IntReg::R3, 0, IntReg::R4);

    if params.iterations.is_some() {
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "loop");
        b.halt();
    } else {
        b.bne(IntReg::R1, "loop"); // r1 == 1 forever: always taken
    }

    Workload {
        name: "stressmark".into(),
        program: b.build().expect("stressmark labels resolve"),
        warmup_cycles: 12_000,
        class: Class::Stressmark,
    }
}

/// Spectral score: energy of the workload's current trace in a narrow band
/// around the target period (loop-timing jitter spreads the fundamental
/// across neighboring bins), measured on the real simulator.
fn score(workload: &Workload, config: &CpuConfig, power: &PowerModel, period: usize) -> f64 {
    let trace = trace::record_current(workload, config, power, 8192);
    let center = 1.0 / period as f64;
    [-0.06, -0.03, 0.0, 0.03, 0.06]
        .iter()
        .map(|off| spectrum::goertzel(&trace, center * (1.0 + off)))
        .sum()
}

/// Searches the generator knobs for the loop with the most current energy
/// at `target_period` cycles, returning the winning parameters and
/// workload.
///
/// # Panics
///
/// Panics if `target_period < 8` (no feasible loop that short).
pub fn tune(
    target_period: usize,
    config: &CpuConfig,
    power: &PowerModel,
) -> (StressmarkParams, Workload) {
    assert!(target_period >= 8, "target period too short for any loop");
    let mut best: Option<(f64, StressmarkParams, Workload)> = None;
    for divide_chain in 1..=3 {
        // Rough sizing: the burst must fill the remainder of the period at
        // ~8 ops/cycle; search around that estimate.
        let low_cycles = 4 + divide_chain * config.fu.fp_div_latency as usize;
        if low_cycles + 4 > target_period {
            continue;
        }
        let est = (target_period - low_cycles) * 8;
        for mult in [40usize, 55, 70, 85, 100, 115, 130, 150] {
            let burst_ops = (est * mult / 100).max(8);
            let params = StressmarkParams {
                divide_chain,
                burst_ops,
                iterations: None,
            };
            let wl = build(&params);
            let s = score(&wl, config, power, target_period);
            if best.as_ref().is_none_or(|(b, _, _)| s > *b) {
                best = Some((s, params, wl));
            }
        }
    }
    let (_, params, wl) = best.expect("at least one candidate is feasible");
    (params, wl)
}

/// The measured dominant period (cycles) of a current trace, if any.
pub fn measured_period(trace: &[f64]) -> Option<f64> {
    spectrum::dominant_frequency(trace).map(|f| 1.0 / f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltctl_power::PowerParams;

    fn harness() -> (CpuConfig, PowerModel) {
        (
            CpuConfig::table1(),
            PowerModel::new(PowerParams::paper_3ghz()),
        )
    }

    #[test]
    fn default_stressmark_oscillates() {
        let (config, power) = harness();
        let wl = build(&StressmarkParams::default());
        let t = trace::record_current(&wl, &config, &power, 4096);
        let period = measured_period(&t).expect("oscillation expected");
        assert!(
            (20.0..400.0).contains(&period),
            "period {period} out of plausible range"
        );
        // Swing must be tens of amps.
        let max = t.iter().cloned().fold(f64::MIN, f64::max);
        let min = t.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 20.0, "swing {} too small", max - min);
    }

    #[test]
    fn finite_stressmark_terminates() {
        let params = StressmarkParams {
            divide_chain: 1,
            burst_ops: 64,
            iterations: Some(10),
        };
        let wl = build(&params);
        let cpu = trace::run_for(&wl, &CpuConfig::table1(), 0);
        // run_for only ran warmup; run to completion manually.
        let mut cpu = cpu;
        cpu.run(1_000_000);
        assert!(cpu.done());
    }

    #[test]
    fn longer_burst_means_longer_period() {
        let (config, power) = harness();
        let short = build(&StressmarkParams {
            burst_ops: 60,
            ..Default::default()
        });
        let long = build(&StressmarkParams {
            burst_ops: 600,
            ..Default::default()
        });
        let ps = measured_period(&trace::record_current(&short, &config, &power, 4096)).unwrap();
        let pl = measured_period(&trace::record_current(&long, &config, &power, 4096)).unwrap();
        assert!(pl > ps * 1.3, "short {ps} vs long {pl}");
    }

    #[test]
    fn tuner_hits_the_resonant_period() {
        let (config, power) = harness();
        let target = 60;
        let (params, wl) = tune(target, &config, &power);
        let t = trace::record_current(&wl, &config, &power, 8192);
        let period = measured_period(&t).expect("tuned loop oscillates");
        assert!(
            (period - target as f64).abs() <= 12.0,
            "tuned period {period} vs target {target} (params {params:?})"
        );
        // And the tuned loop concentrates real energy at the target bin.
        let energy = spectrum::goertzel(&t, 1.0 / target as f64);
        assert!(energy > 0.0);
    }

    #[test]
    fn listing_matches_figure8_flavor() {
        let wl = build(&StressmarkParams::default());
        let text = voltctl_isa::asm::disassemble(&wl.program);
        assert!(text.contains("divt"));
        assert!(text.contains("stt"));
        assert!(text.contains("cmoveq"));
        assert!(text.contains("stq"));
        assert!(text.contains("ldt"));
    }

    #[test]
    #[should_panic(expected = "at least one divide")]
    fn zero_divide_chain_rejected() {
        let _ = build(&StressmarkParams {
            divide_chain: 0,
            ..Default::default()
        });
    }
}
