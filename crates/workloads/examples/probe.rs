use voltctl_cpu::CpuConfig;
use voltctl_pdn::PdnModel;
use voltctl_power::{PowerModel, PowerParams};
use voltctl_workloads::{spec, trace};

fn main() {
    let config = CpuConfig::table1();
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let delta = power.achievable_peak_current() - power.min_current();
    let target = PdnModel::paper_default()
        .unwrap()
        .calibrated_target(delta)
        .unwrap();
    println!(
        "{:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "bench", "dV@200", "dV@300", "dV@400", "<0.976", "<0.981", "<0.986"
    );
    for name in [
        "swim", "mgrid", "gcc", "galgel", "facerec", "sixtrack", "eon", "mesa", "vpr", "vortex",
        "crafty",
    ] {
        let wl = spec::by_name(name).unwrap();
        let t = trace::record_current(&wl, &config, &power, 250_000);
        let imin = t.iter().cloned().fold(f64::MAX, f64::min);
        let mut devs = vec![];
        let mut frac = [0usize; 3];
        for pc in [2.0, 3.0, 4.0] {
            let pdn = target.scaled(pc).unwrap();
            let mut st = pdn.discretize();
            st.set_reference_current(imin);
            let mut dev = 0.0f64;
            for &i in &t {
                let v = st.step(i);
                dev = dev.max((v - 1.0).abs());
                if pc == 2.0 {
                    if v < 0.976 {
                        frac[0] += 1
                    }
                    if v < 0.981 {
                        frac[1] += 1
                    }
                    if v < 0.986 {
                        frac[2] += 1
                    }
                }
            }
            devs.push(dev * 1e3);
        }
        println!(
            "{:>9} {:>8.1} {:>8.1} {:>8.1}  | {:>7.3}% {:>7.3}% {:>7.3}%",
            name,
            devs[0],
            devs[1],
            devs[2],
            frac[0] as f64 / t.len() as f64 * 100.0,
            frac[1] as f64 / t.len() as f64 * 100.0,
            frac[2] as f64 / t.len() as f64 * 100.0
        );
    }
}
