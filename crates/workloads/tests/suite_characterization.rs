//! Characterization tests over the synthetic SPEC2000 suite: each behavior
//! class must actually exhibit the microarchitectural signature it was
//! generated for (the properties Table 2 and Figure 10 depend on).

use voltctl_cpu::CpuConfig;
use voltctl_power::{PowerModel, PowerParams};
use voltctl_workloads::{spec, trace, Class};

fn power() -> PowerModel {
    PowerModel::new(PowerParams::paper_3ghz())
}

#[test]
fn suite_is_complete_and_classified() {
    let suite = spec::all();
    assert_eq!(suite.len(), 26);
    use std::collections::HashMap;
    let mut by_class: HashMap<_, usize> = HashMap::new();
    for wl in &suite {
        *by_class.entry(wl.class).or_default() += 1;
    }
    assert_eq!(by_class[&Class::PointerChase], 3, "mcf, art, ammp");
    assert!(by_class[&Class::BranchyInt] >= 10);
    assert!(by_class[&Class::StreamingFp] >= 6);
    assert!(by_class[&Class::FpCompute] >= 3);
    assert!(by_class[&Class::MixedPhase] >= 3);
}

#[test]
fn class_signatures_hold() {
    let config = CpuConfig::table1();
    // One representative per class, kept small for test time.
    let chase = trace::run_for(&spec::by_name("art").unwrap(), &config, 40_000);
    assert!(chase.stats().ipc() < 0.3, "art ipc {}", chase.stats().ipc());

    let fp = trace::run_for(&spec::by_name("fma3d").unwrap(), &config, 40_000);
    assert!(fp.stats().ipc() > 1.5, "fma3d ipc {}", fp.stats().ipc());

    let branchy = trace::run_for(&spec::by_name("twolf").unwrap(), &config, 40_000);
    assert!(
        branchy.stats().mispredict_rate() > 0.05,
        "twolf mispredicts {}",
        branchy.stats().mispredict_rate()
    );

    // Call-structured kernels execute real call/return pairs.
    let crafty = trace::run_for(&spec::by_name("crafty").unwrap(), &config, 40_000);
    assert!(
        crafty.stats().branches > 3 * branchy.stats().cycles / 100,
        "crafty must be branch/call dense"
    );
}

#[test]
fn current_spread_ordering_matches_figure_10() {
    let config = CpuConfig::table1();
    let p = power();
    let spread = |name: &str| {
        let wl = spec::by_name(name).unwrap();
        let t = trace::record_current(&wl, &config, &p, 20_000);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        (t.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / t.len() as f64).sqrt()
    };
    let ammp = spread("ammp");
    let wupwise = spread("wupwise");
    let galgel = spread("galgel");
    let sixtrack = spread("sixtrack");
    // Stable kernels sit far below the variable ones.
    assert!(galgel > 3.0 * ammp, "galgel {galgel} vs ammp {ammp}");
    assert!(
        sixtrack > 3.0 * wupwise,
        "sixtrack {sixtrack} vs wupwise {wupwise}"
    );
}

#[test]
fn every_kernel_runs_deterministically() {
    let config = CpuConfig::table1();
    for name in ["gzip", "swim", "galgel", "crafty", "mcf"] {
        let wl = spec::by_name(name).unwrap();
        let a = trace::run_for(&wl, &config, 15_000);
        let b = trace::run_for(&wl, &config, 15_000);
        assert_eq!(
            a.stats().committed,
            b.stats().committed,
            "{name} must be deterministic"
        );
        assert_eq!(a.arch_digest(), b.arch_digest(), "{name} state must match");
    }
}
