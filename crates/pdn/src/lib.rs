//! Power-delivery-network (PDN) modeling for microarchitectural dI/dt studies.
//!
//! This crate implements the linear-systems substrate of Joseph, Brooks &
//! Martonosi, *"Control Techniques to Eliminate Voltage Emergencies in High
//! Performance Processors"* (HPCA 2003): a second-order (RLC) model of a
//! microprocessor power supply network, discretized to the CPU clock so that
//! a per-cycle current trace can be turned into a per-cycle supply-voltage
//! trace.
//!
//! The central type is [`PdnModel`], which captures the DC resistance,
//! resonant frequency, and peak impedance of the network. From a model you
//! can obtain:
//!
//! * analytic frequency-domain quantities ([`PdnModel::impedance_at`],
//!   [`PdnModel::q_factor`], …),
//! * an exact zero-order-hold discretization ([`PdnModel::discretize`])
//!   yielding a streaming per-cycle simulator ([`state_space::PdnState`]),
//! * impulse/step responses and their metrics ([`response`]),
//! * a reference FIR convolution engine ([`convolve`]) that is
//!   property-tested to agree with the state-space path.
//!
//! Supporting modules provide the current-waveform builders used by the
//! paper's intuition figures ([`waveform`]), supply-voltage emergency
//! detection and histograms ([`emergency`]), spectrum analysis used by the
//! dI/dt stressmark auto-tuner ([`spectrum`]), the ITRS-2001 impedance-trend
//! data behind the paper's Figure 1 ([`itrs`]), a process-wide memoization
//! of derived convolution kernels ([`cache`]), and a multi-quadrant
//! extension of the model ([`grid`]).
//!
//! # Example
//!
//! ```
//! use voltctl_pdn::{PdnModel, waveform};
//!
//! # fn main() -> Result<(), voltctl_pdn::PdnError> {
//! // A 3 GHz / 1.0 V processor package: 0.5 mOhm DC resistance,
//! // 50 MHz resonance, 2 mOhm peak impedance.
//! let model = PdnModel::builder()
//!     .r_dc(0.5e-3)
//!     .resonant_freq_hz(50.0e6)
//!     .peak_impedance(2.0e-3)
//!     .clock_hz(3.0e9)
//!     .build()?;
//!
//! // Simulate the response to a 10-cycle, 40 A current spike.
//! let trace = waveform::spike(0.0, 40.0, 20, 10, 400);
//! let mut state = model.discretize();
//! let volts: Vec<f64> = trace.iter().map(|&i| state.step(i)).collect();
//! assert!(volts.iter().cloned().fold(f64::MAX, f64::min) < model.v_nominal());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod convolve;
pub mod emergency;
pub mod grid;
pub mod itrs;
pub mod ladder;
mod mat2;
mod matn;
pub mod response;
pub mod second_order;
pub mod spectrum;
pub mod state_space;
pub mod supply;
pub mod waveform;

pub use cache::{cached_kernel_for, kernel_cache_stats, CacheStats, ShardedLru};
pub use emergency::{EmergencyReport, VoltageHistogram, VoltageMonitor};
pub use response::{FrequencyResponse, ResponseMetrics, StepResponse};
pub use second_order::{PdnError, PdnModel, PdnModelBuilder};
pub use state_space::{PdnLanes, PdnState};
pub use supply::Supply;

/// Default nominal supply voltage used throughout the paper (volts).
pub const V_NOMINAL: f64 = 1.0;

/// Default CPU clock frequency used throughout the paper (hertz).
pub const CLOCK_HZ: f64 = 3.0e9;

/// Default allowed supply deviation: +/-5% of nominal.
pub const TOLERANCE: f64 = 0.05;

/// Default package resonant frequency (hertz): mid-band 50 MHz.
pub const RESONANT_HZ: f64 = 50.0e6;

/// Default package DC resistance (ohms).
pub const R_DC: f64 = 0.5e-3;
