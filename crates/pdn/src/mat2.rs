//! Minimal 2x2 matrix arithmetic used by the exact zero-order-hold
//! discretization of the second-order PDN model.
//!
//! The module is internal: the public API exposes only the discretized
//! stepper, never raw matrices.

/// A dense 2x2 matrix of `f64`, stored row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Mat2 {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

/// A 2-element column vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Mat2 {
    pub const IDENTITY: Mat2 = Mat2 {
        a: 1.0,
        b: 0.0,
        c: 0.0,
        d: 1.0,
    };

    #[cfg(test)]
    pub const ZERO: Mat2 = Mat2 {
        a: 0.0,
        b: 0.0,
        c: 0.0,
        d: 0.0,
    };

    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        Mat2 { a, b, c, d }
    }

    pub fn mul(&self, o: &Mat2) -> Mat2 {
        Mat2 {
            a: self.a * o.a + self.b * o.c,
            b: self.a * o.b + self.b * o.d,
            c: self.c * o.a + self.d * o.c,
            d: self.c * o.b + self.d * o.d,
        }
    }

    pub fn add(&self, o: &Mat2) -> Mat2 {
        Mat2 {
            a: self.a + o.a,
            b: self.b + o.b,
            c: self.c + o.c,
            d: self.d + o.d,
        }
    }

    pub fn scale(&self, s: f64) -> Mat2 {
        Mat2 {
            a: self.a * s,
            b: self.b * s,
            c: self.c * s,
            d: self.d * s,
        }
    }

    pub fn mul_vec(&self, v: Vec2) -> Vec2 {
        Vec2 {
            x: self.a * v.x + self.b * v.y,
            y: self.c * v.x + self.d * v.y,
        }
    }

    pub fn det(&self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Matrix inverse. Returns `None` when the matrix is singular.
    pub fn inverse(&self) -> Option<Mat2> {
        let det = self.det();
        if det == 0.0 || !det.is_finite() {
            return None;
        }
        let inv = 1.0 / det;
        Some(Mat2 {
            a: self.d * inv,
            b: -self.b * inv,
            c: -self.c * inv,
            d: self.a * inv,
        })
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let r0 = self.a.abs() + self.b.abs();
        let r1 = self.c.abs() + self.d.abs();
        r0.max(r1)
    }

    /// Matrix exponential `e^M` via scaling-and-squaring with a Taylor
    /// series. Accurate to near machine precision for the well-conditioned
    /// matrices produced by `A * dt` with sub-cycle time steps.
    pub fn expm(&self) -> Mat2 {
        // Scale so the norm is small, exponentiate a Taylor series, then
        // square back up.
        let norm = self.norm_inf();
        let squarings = if norm > 0.5 {
            (norm / 0.5).log2().ceil().max(0.0) as u32
        } else {
            0
        };
        let scaled = self.scale(1.0 / f64::from(1u32 << squarings.min(31)));

        let mut term = Mat2::IDENTITY;
        let mut sum = Mat2::IDENTITY;
        // 18 terms of the Taylor series: far below f64 epsilon for norm <= 0.5.
        for k in 1..=18 {
            term = term.mul(&scaled).scale(1.0 / k as f64);
            sum = sum.add(&term);
        }
        let mut result = sum;
        for _ in 0..squarings.min(31) {
            result = result.mul(&result);
        }
        result
    }
}

impl voltctl_snap::Pack for Mat2 {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.a);
        w.put_f64(self.b);
        w.put_f64(self.c);
        w.put_f64(self.d);
    }
}

impl voltctl_snap::Unpack for Mat2 {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(Mat2 {
            a: r.get_f64()?,
            b: r.get_f64()?,
            c: r.get_f64()?,
            d: r.get_f64()?,
        })
    }
}

impl voltctl_snap::Pack for Vec2 {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.x);
        w.put_f64(self.y);
    }
}

impl voltctl_snap::Unpack for Vec2 {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(Vec2 {
            x: r.get_f64()?,
            y: r.get_f64()?,
        })
    }
}

impl Vec2 {
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    pub fn add(self, o: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + o.x,
            y: self.y + o.y,
        }
    }

    pub fn scale(self, s: f64) -> Vec2 {
        Vec2 {
            x: self.x * s,
            y: self.y * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.mul(&Mat2::IDENTITY), m);
        assert_eq!(Mat2::IDENTITY.mul(&m), m);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat2::new(4.0, 7.0, 2.0, 6.0);
        let inv = m.inverse().expect("invertible");
        let prod = m.mul(&inv);
        assert!(approx(prod.a, 1.0, 1e-12));
        assert!(approx(prod.b, 0.0, 1e-12));
        assert!(approx(prod.c, 0.0, 1e-12));
        assert!(approx(prod.d, 1.0, 1e-12));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat2::new(1.0, 2.0, 2.0, 4.0);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn expm_of_zero_is_identity() {
        assert_eq!(Mat2::ZERO.expm(), Mat2::IDENTITY);
    }

    #[test]
    fn expm_diagonal_matches_scalar_exponential() {
        let m = Mat2::new(0.3, 0.0, 0.0, -1.2);
        let e = m.expm();
        assert!(approx(e.a, 0.3f64.exp(), 1e-12));
        assert!(approx(e.d, (-1.2f64).exp(), 1e-12));
        assert!(e.b.abs() < 1e-14 && e.c.abs() < 1e-14);
    }

    #[test]
    fn expm_rotation_matches_trig() {
        // A = [[0, -w], [w, 0]] has e^A = rotation by w.
        let w = 0.7;
        let m = Mat2::new(0.0, -w, w, 0.0);
        let e = m.expm();
        assert!(approx(e.a, w.cos(), 1e-12));
        assert!(approx(e.b, -w.sin(), 1e-12));
        assert!(approx(e.c, w.sin(), 1e-12));
        assert!(approx(e.d, w.cos(), 1e-12));
    }

    #[test]
    fn expm_large_norm_uses_squaring() {
        // e^(A) for A = diag(5, -5): well outside the raw Taylor radius.
        let m = Mat2::new(5.0, 0.0, 0.0, -5.0);
        let e = m.expm();
        assert!(approx(e.a, 5.0f64.exp(), 1e-10));
        assert!(approx(e.d, (-5.0f64).exp(), 1e-10));
    }

    #[test]
    fn expm_semigroup_property() {
        // e^(A) * e^(A) == e^(2A) for commuting (same) matrices.
        let m = Mat2::new(0.1, 0.4, -0.2, 0.05);
        let double = m.scale(2.0).expm();
        let squared = m.expm().mul(&m.expm());
        assert!(approx(double.a, squared.a, 1e-11));
        assert!(approx(double.b, squared.b, 1e-11));
        assert!(approx(double.c, squared.c, 1e-11));
        assert!(approx(double.d, squared.d, 1e-11));
    }

    #[test]
    fn mul_vec_applies_linear_map() {
        let m = Mat2::new(2.0, 0.0, 0.0, 3.0);
        let v = m.mul_vec(Vec2::new(1.0, 1.0));
        assert_eq!(v, Vec2::new(2.0, 3.0));
    }
}
