//! Multi-quadrant ("localized dI/dt") extension of the PDN model.
//!
//! The paper's Section 6 identifies localized supply swings in different
//! chip quadrants as future work. This module implements that extension: a
//! 2x2 grid of die quadrants, each with its own series-RL supply path and
//! local decoupling capacitance, resistively coupled to its neighbors
//! through the on-die power grid. A burst in one quadrant droops its local
//! supply harder than the chip-wide average — the effect a global model
//! cannot see.
//!
//! Integration uses classic RK4 with sub-cycle steps (the coupled system no
//! longer has a convenient closed-form discretization). The per-quadrant
//! parameters derive from a base [`PdnModel`] by splitting its current
//! capacity four ways: each quadrant gets `4L`, `C/4`, `4R`, preserving the
//! per-quadrant resonant frequency and the parallel-combined chip-level
//! impedance.

use crate::second_order::PdnModel;

/// Number of quadrants in the grid.
pub const QUADRANTS: usize = 4;

/// A 2x2 grid of resistively coupled PDN quadrants.
///
/// # Example
///
/// ```
/// use voltctl_pdn::{PdnModel, grid::GridPdn};
///
/// # fn main() -> Result<(), voltctl_pdn::PdnError> {
/// let base = PdnModel::paper_default()?;
/// let mut grid = GridPdn::new(&base, 2.0e-3);
/// // Draw 40 A in quadrant 0 only.
/// let v = grid.step([40.0, 0.0, 0.0, 0.0]);
/// assert!(v[0] <= v[3]); // local droop is at least as bad as remote
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridPdn {
    r: f64,
    l: f64,
    c: f64,
    g_couple: f64,
    dt: f64,
    substeps: usize,
    v_nominal: f64,
    i_ref: [f64; QUADRANTS],
    /// State: per-quadrant (voltage deviation, inductor current deviation).
    v: [f64; QUADRANTS],
    il: [f64; QUADRANTS],
}

/// Neighbor pairs of the 2x2 grid (quadrants laid out 0 1 / 2 3).
const EDGES: [(usize, usize); 4] = [(0, 1), (0, 2), (1, 3), (2, 3)];

impl GridPdn {
    /// Builds the grid from a chip-level `base` model and an inter-quadrant
    /// coupling resistance `coupling_ohms` (smaller = stiffer grid; the
    /// limit 0 recovers the global model exactly).
    ///
    /// # Panics
    ///
    /// Panics if `coupling_ohms` is negative or not finite.
    pub fn new(base: &PdnModel, coupling_ohms: f64) -> Self {
        assert!(
            coupling_ohms.is_finite() && coupling_ohms >= 0.0,
            "coupling resistance must be finite and non-negative"
        );
        let n = QUADRANTS as f64;
        GridPdn {
            r: base.r_dc() * n,
            l: base.inductance() * n,
            c: base.capacitance() / n,
            g_couple: if coupling_ohms == 0.0 {
                f64::INFINITY
            } else {
                1.0 / coupling_ohms
            },
            dt: 1.0 / base.clock_hz(),
            substeps: 8,
            v_nominal: base.v_nominal(),
            i_ref: [0.0; QUADRANTS],
            v: [0.0; QUADRANTS],
            il: [0.0; QUADRANTS],
        }
    }

    /// Sets per-quadrant regulation-point currents (amps) and resets state.
    pub fn set_reference_currents(&mut self, amps: [f64; QUADRANTS]) {
        self.i_ref = amps;
        self.reset();
    }

    /// Clears transient state.
    pub fn reset(&mut self) {
        self.v = [0.0; QUADRANTS];
        self.il = [0.0; QUADRANTS];
    }

    /// Current per-quadrant voltages (volts), without advancing time.
    pub fn voltages(&self) -> [f64; QUADRANTS] {
        self.v.map(|dev| self.v_nominal + dev)
    }

    /// Advances one CPU cycle with the given per-quadrant load currents
    /// (amps, zero-order hold), returning end-of-cycle quadrant voltages.
    pub fn step(&mut self, i_load: [f64; QUADRANTS]) -> [f64; QUADRANTS] {
        let mut u = [0.0; QUADRANTS];
        for q in 0..QUADRANTS {
            u[q] = i_load[q] - self.i_ref[q];
        }
        let h = self.dt / self.substeps as f64;
        for _ in 0..self.substeps {
            self.rk4_substep(h, &u);
        }
        self.voltages()
    }

    fn derivatives(
        &self,
        v: &[f64; QUADRANTS],
        il: &[f64; QUADRANTS],
        u: &[f64; QUADRANTS],
    ) -> ([f64; QUADRANTS], [f64; QUADRANTS]) {
        let mut dv = [0.0; QUADRANTS];
        let mut dil = [0.0; QUADRANTS];
        for q in 0..QUADRANTS {
            dv[q] = (il[q] - u[q]) / self.c;
            dil[q] = (-v[q] - self.r * il[q]) / self.l;
        }
        if self.g_couple.is_finite() {
            for &(a, b) in &EDGES {
                let flow = (v[b] - v[a]) * self.g_couple;
                dv[a] += flow / self.c;
                dv[b] -= flow / self.c;
            }
        } else {
            // Infinite conductance: force the common-mode solution by
            // averaging the derivative (the voltages are slaved together).
            let mean_dv = dv.iter().sum::<f64>() / QUADRANTS as f64;
            dv = [mean_dv; QUADRANTS];
        }
        (dv, dil)
    }

    fn rk4_substep(&mut self, h: f64, u: &[f64; QUADRANTS]) {
        let (v0, il0) = (self.v, self.il);
        let (k1v, k1i) = self.derivatives(&v0, &il0, u);
        let (v1, il1) = advance(&v0, &il0, &k1v, &k1i, h / 2.0);
        let (k2v, k2i) = self.derivatives(&v1, &il1, u);
        let (v2, il2) = advance(&v0, &il0, &k2v, &k2i, h / 2.0);
        let (k3v, k3i) = self.derivatives(&v2, &il2, u);
        let (v3, il3) = advance(&v0, &il0, &k3v, &k3i, h);
        let (k4v, k4i) = self.derivatives(&v3, &il3, u);
        for q in 0..QUADRANTS {
            self.v[q] = v0[q] + h / 6.0 * (k1v[q] + 2.0 * k2v[q] + 2.0 * k3v[q] + k4v[q]);
            self.il[q] = il0[q] + h / 6.0 * (k1i[q] + 2.0 * k2i[q] + 2.0 * k3i[q] + k4i[q]);
        }
    }

    /// Worst (lowest) quadrant voltage right now.
    pub fn min_voltage(&self) -> f64 {
        self.voltages().iter().cloned().fold(f64::MAX, f64::min)
    }
}

fn advance(
    v: &[f64; QUADRANTS],
    il: &[f64; QUADRANTS],
    dv: &[f64; QUADRANTS],
    dil: &[f64; QUADRANTS],
    h: f64,
) -> ([f64; QUADRANTS], [f64; QUADRANTS]) {
    let mut nv = [0.0; QUADRANTS];
    let mut nil = [0.0; QUADRANTS];
    for q in 0..QUADRANTS {
        nv[q] = v[q] + h * dv[q];
        nil[q] = il[q] + h * dil[q];
    }
    (nv, nil)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::second_order::PdnModel;

    fn base() -> PdnModel {
        PdnModel::paper_default().unwrap()
    }

    #[test]
    fn uniform_load_matches_global_model() {
        // Equal per-quadrant currents with any coupling must reproduce the
        // global model's response to the summed current.
        let m = base();
        let mut grid = GridPdn::new(&m, 2.0e-3);
        let mut global = m.discretize();
        for k in 0..1200 {
            let i_total = if k % 60 < 30 { 40.0 } else { 4.0 };
            let per_quadrant = i_total / 4.0;
            let gv = grid.step([per_quadrant; 4]);
            let sv = global.step(i_total);
            for (q, &g) in gv.iter().enumerate() {
                assert!(
                    (g - sv).abs() < 2e-4,
                    "cycle {k} quadrant {q}: grid {g} vs global {sv}"
                );
            }
        }
    }

    #[test]
    fn local_burst_droops_locally() {
        let m = base();
        let mut grid = GridPdn::new(&m, 5.0e-3);
        let mut worst_local = f64::MAX;
        let mut worst_remote = f64::MAX;
        for k in 0..600 {
            let i0 = if k % 60 < 30 { 30.0 } else { 0.0 };
            let v = grid.step([i0, 0.0, 0.0, 0.0]);
            worst_local = worst_local.min(v[0]);
            worst_remote = worst_remote.min(v[3]);
        }
        assert!(
            worst_local < worst_remote - 1e-4,
            "local {worst_local} must droop below remote {worst_remote}"
        );
    }

    #[test]
    fn tighter_coupling_reduces_locality() {
        let m = base();
        let spread = |coupling: f64| -> f64 {
            let mut grid = GridPdn::new(&m, coupling);
            let mut max_spread = 0.0f64;
            for k in 0..600 {
                let i0 = if k % 60 < 30 { 30.0 } else { 0.0 };
                let v = grid.step([i0, 0.0, 0.0, 0.0]);
                let hi = v.iter().cloned().fold(f64::MIN, f64::max);
                let lo = v.iter().cloned().fold(f64::MAX, f64::min);
                max_spread = max_spread.max(hi - lo);
            }
            max_spread
        };
        assert!(spread(0.5e-3) < spread(8.0e-3));
    }

    #[test]
    fn zero_coupling_resistance_slaves_quadrants() {
        let m = base();
        let mut grid = GridPdn::new(&m, 0.0);
        for k in 0..300 {
            let i0 = if k % 60 < 30 { 30.0 } else { 0.0 };
            let v = grid.step([i0, 0.0, 0.0, 0.0]);
            let hi = v.iter().cloned().fold(f64::MIN, f64::max);
            let lo = v.iter().cloned().fold(f64::MAX, f64::min);
            assert!(hi - lo < 1e-9, "quadrants must move together");
        }
    }

    #[test]
    fn reference_currents_center_the_operating_point() {
        let m = base();
        let mut grid = GridPdn::new(&m, 2.0e-3);
        grid.set_reference_currents([5.0; 4]);
        let mut v = [0.0; 4];
        for _ in 0..30_000 {
            v = grid.step([5.0; 4]);
        }
        for &vq in &v {
            assert!((vq - m.v_nominal()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coupling_rejected() {
        let _ = GridPdn::new(&base(), -1.0);
    }
}
