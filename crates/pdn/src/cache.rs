//! Process-wide derivation cache for expensive per-model computations.
//!
//! Parallel experiment grids instantiate the *same* handful of
//! [`PdnModel`]s in every cell (the calibrated network at each impedance
//! percent), and each cell that takes the convolution path re-derives the
//! same truncated kernel — hundreds of state-space steps plus tail scans
//! per derivation. [`cached_kernel_for`] memoizes those kernels behind a
//! [`OnceLock`], keyed by the model's *quantized* physical parameters, so
//! a grid runner derives each distinct kernel exactly once per process.
//!
//! # Key quantization
//!
//! Models arrive from calibration bisections, so two logically identical
//! models can differ in the last few mantissa bits. The cache key drops
//! the low 8 mantissa bits of each parameter (a ~2^-44 relative
//! quantum — far below any physically meaningful difference, far above
//! bisection jitter), folding such twins onto one entry. The kernel
//! returned is the one derived for the first model seen in the class;
//! within the quantum the responses are indistinguishable at the cached
//! tolerances.

use crate::convolve::kernel_for;
use crate::second_order::PdnModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A quantized cache key: the bit patterns of every parameter the kernel
/// derivation depends on, low mantissa bits masked.
type Key = [u64; 6];

/// Drops the low 8 mantissa bits: values within ~2^-44 relative distance
/// share a key.
///
/// Operates on the raw bit pattern, so every `f64` — NaNs, infinities,
/// subnormals, both zeros — maps to *some* key without panicking, and the
/// sign bit always survives (so `+0.0` and `-0.0`, or `±x` twins from a
/// sign error upstream, never fold onto one cache entry). Public so the
/// edge-case property suite can pin this contract down directly.
pub fn quantize(x: f64) -> u64 {
    x.to_bits() & !0xFF
}

fn key_for(model: &PdnModel, rel_tol: f64) -> Key {
    [
        quantize(model.r_dc()),
        quantize(model.inductance()),
        quantize(model.capacitance()),
        quantize(model.clock_hz()),
        quantize(model.v_nominal()),
        quantize(rel_tol),
    ]
}

fn cache() -> &'static Mutex<HashMap<Key, Arc<Vec<f64>>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Vec<f64>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// [`kernel_for`], memoized per process. The first call for a given
/// (quantized model, tolerance) pair derives the kernel; later calls —
/// from any thread — clone an [`Arc`] of the cached taps.
///
/// Derivation happens while holding the cache lock: concurrent first
/// requests for the same model block behind one derivation instead of
/// redundantly re-deriving (the same policy as the experiment harness's
/// calibration cache — on a saturated machine redundant work costs more
/// than the wait).
///
/// # Panics
///
/// Panics if `rel_tol` is not a positive finite number (as
/// [`kernel_for`] does).
pub fn cached_kernel_for(model: &PdnModel, rel_tol: f64) -> Arc<Vec<f64>> {
    assert!(
        rel_tol.is_finite() && rel_tol > 0.0,
        "rel_tol must be positive and finite"
    );
    let key = key_for(model, rel_tol);
    let mut map = cache().lock().expect("kernel cache poisoned");
    if let Some(hit) = map.get(&key) {
        return Arc::clone(hit);
    }
    let kernel = Arc::new(kernel_for(model, rel_tol));
    map.insert(key, Arc::clone(&kernel));
    kernel
}

/// Number of distinct kernels currently cached (diagnostics / tests).
pub fn cached_kernel_count() -> usize {
    cache().lock().expect("kernel cache poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_identical_kernel_and_dedupes() {
        let m = PdnModel::paper_default().unwrap();
        let a = cached_kernel_for(&m, 1e-6);
        let b = cached_kernel_for(&m, 1e-6);
        // Same allocation, not merely equal contents.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, kernel_for(&m, 1e-6));
    }

    #[test]
    fn distinct_tolerances_get_distinct_entries() {
        let m = PdnModel::paper_default().unwrap();
        let coarse = cached_kernel_for(&m, 1e-3);
        let fine = cached_kernel_for(&m, 1e-9);
        assert!(fine.len() >= coarse.len());
        assert!(!Arc::ptr_eq(&coarse, &fine));
    }

    #[test]
    fn quantization_folds_bisection_jitter() {
        let m = PdnModel::paper_default().unwrap();
        let a = cached_kernel_for(&m, 1e-6);
        // Perturb L and C in the last mantissa bit: physically the same
        // model, numerically a different f64.
        let jittered = PdnModel::from_rlc(
            m.r_dc(),
            f64::from_bits(m.inductance().to_bits() ^ 1),
            f64::from_bits(m.capacitance().to_bits() ^ 1),
            m.clock_hz(),
        )
        .unwrap();
        let b = cached_kernel_for(&jittered, 1e-6);
        assert!(Arc::ptr_eq(&a, &b), "last-bit jitter must share the entry");
    }

    #[test]
    fn distinct_models_do_not_collide() {
        let m = PdnModel::paper_default().unwrap();
        let scaled = m.scaled(3.0).unwrap();
        let a = cached_kernel_for(&m, 1e-6);
        let b = cached_kernel_for(&scaled, 1e-6);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(*a, *b);
        assert!(cached_kernel_count() >= 2);
    }
}
