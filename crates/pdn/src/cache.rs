//! Process-wide derivation caches for expensive per-model computations.
//!
//! Parallel experiment grids instantiate the *same* handful of
//! [`PdnModel`]s in every cell (the calibrated network at each impedance
//! percent), and each cell that takes the convolution path re-derives the
//! same truncated kernel — hundreds of state-space steps plus tail scans
//! per derivation. [`cached_kernel_for`] memoizes those kernels in a
//! [`ShardedLru`], keyed by the model's *quantized* physical parameters,
//! so a grid runner derives each distinct kernel exactly once while the
//! entry stays resident.
//!
//! # Why a bounded LRU and not a grow-forever map
//!
//! The original memo was an unbounded `HashMap` behind one global mutex.
//! Fine for a batch CLI that exits after one grid; wrong for a
//! long-running daemon (`voltctl-serve`) where every distinct
//! `(model, tolerance)` a client ever submits would pin a multi-kilobyte
//! kernel for the life of the process, and every lookup from every worker
//! would contend on the same lock. [`ShardedLru`] bounds residency
//! (least-recently-used entries are evicted once a shard fills) and
//! spreads lock contention across shards keyed by hash.
//!
//! # Key quantization
//!
//! Models arrive from calibration bisections, so two logically identical
//! models can differ in the last few mantissa bits. The cache key drops
//! the low 8 mantissa bits of each parameter (a ~2^-44 relative
//! quantum — far below any physically meaningful difference, far above
//! bisection jitter), folding such twins onto one entry. The kernel
//! returned is the one derived for the first model seen in the class;
//! within the quantum the responses are indistinguishable at the cached
//! tolerances.

use crate::convolve::kernel_for;
use crate::second_order::PdnModel;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// One shard: a mutex-guarded MRU-ordered entry list.
type Shard<K, V> = Mutex<Vec<(K, V)>>;

/// A point-in-time view of one cache's effectiveness, for `/metrics`
/// and `/stats?verbose=1` on the serve daemon.
///
/// Counters are monotone over the process lifetime; `len` is a
/// diagnostic sum over shards, not a synchronized snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that had to derive (or found nothing, for plain `get`).
    pub misses: u64,
    /// Entries dropped because a shard exceeded its bound.
    pub evictions: u64,
    /// Resident entries right now.
    pub len: usize,
    /// Maximum resident entries (`shards * per_shard`).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// A bounded, sharded, mutex-protected LRU map for memoizing expensive
/// derivations across threads.
///
/// Keys hash to one of `shards` independent [`Mutex`]-protected shards;
/// each shard holds at most `per_shard` entries in most-recently-used
/// order and evicts its least-recently-used entry on overflow. Shard
/// selection uses [`std::collections::hash_map::DefaultHasher`] seeded
/// identically every process, so the key→shard mapping (and therefore
/// eviction behaviour under a deterministic access sequence) is itself
/// deterministic.
///
/// [`get_or_insert_with`](ShardedLru::get_or_insert_with) computes the
/// missing value *while holding the shard lock*: concurrent first
/// requests for the same key block behind one derivation instead of
/// redundantly re-deriving (on a saturated machine redundant work costs
/// more than the wait). Requests for keys on other shards proceed
/// unblocked.
pub struct ShardedLru<K, V> {
    shards: Box<[Shard<K, V>]>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .finish()
    }
}

/// Locks a shard, tolerating poisoning: a worker that panicked inside
/// `derive` (before the entry list was touched) must not wedge later
/// lookups — or `/metrics` stats collection — forever. The entry list
/// is only mutated after `derive` returns, so a poisoned shard's data
/// is always structurally valid.
fn lock_shard<K, V>(shard: &Shard<K, V>) -> MutexGuard<'_, Vec<(K, V)>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<K: Eq + Hash, V: Clone> ShardedLru<K, V> {
    /// A cache with `shards` independent locks, each bounded to
    /// `per_shard` entries. Total capacity is `shards * per_shard`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(shards: usize, per_shard: usize) -> Self {
        assert!(shards > 0, "ShardedLru needs at least one shard");
        assert!(per_shard > 0, "ShardedLru shards need capacity >= 1");
        let shards = (0..shards)
            .map(|_| Mutex::new(Vec::with_capacity(per_shard)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedLru {
            shards,
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard
    }

    /// Current number of resident entries (sums every shard; a
    /// diagnostic, not a synchronized snapshot). Poison-tolerant: a
    /// panicked worker never wedges stats collection.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// Hit/miss/eviction counters plus current residency and capacity.
    /// Poison-tolerant for the same reason as [`len`](ShardedLru::len).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity(),
        }
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, key: &K) -> &Mutex<Vec<(K, V)>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key`, promoting a hit to most-recently-used. Returns a
    /// clone of the cached value.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut entries = lock_shard(self.shard_for(key));
        let Some(idx) = entries.iter().position(|(k, _)| k == key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        let entry = entries.remove(idx);
        let value = entry.1.clone();
        entries.insert(0, entry);
        Some(value)
    }

    /// Returns the cached value for `key`, deriving it with `derive`
    /// (under the shard lock) on a miss. The entry becomes
    /// most-recently-used; if the shard exceeds its bound, its
    /// least-recently-used entry is evicted.
    pub fn get_or_insert_with(&self, key: &K, derive: impl FnOnce() -> V) -> V
    where
        K: Clone,
    {
        let mut entries = lock_shard(self.shard_for(key));
        if let Some(idx) = entries.iter().position(|(k, _)| k == key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let entry = entries.remove(idx);
            let value = entry.1.clone();
            entries.insert(0, entry);
            return value;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = derive();
        entries.insert(0, (key.clone(), value.clone()));
        if entries.len() > self.per_shard {
            let evicted = entries.len() - self.per_shard;
            entries.truncate(self.per_shard);
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        value
    }

    /// Drops every entry in every shard.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            lock_shard(shard).clear();
        }
    }
}

/// A quantized cache key: the bit patterns of every parameter the kernel
/// derivation depends on, low mantissa bits masked.
type Key = [u64; 6];

/// Drops the low 8 mantissa bits: values within ~2^-44 relative distance
/// share a key.
///
/// Operates on the raw bit pattern, so every `f64` — NaNs, infinities,
/// subnormals, both zeros — maps to *some* key without panicking, and the
/// sign bit always survives (so `+0.0` and `-0.0`, or `±x` twins from a
/// sign error upstream, never fold onto one cache entry). Public so the
/// edge-case property suite can pin this contract down directly.
pub fn quantize(x: f64) -> u64 {
    x.to_bits() & !0xFF
}

fn key_for(model: &PdnModel, rel_tol: f64) -> Key {
    [
        quantize(model.r_dc()),
        quantize(model.inductance()),
        quantize(model.capacitance()),
        quantize(model.clock_hz()),
        quantize(model.v_nominal()),
        quantize(rel_tol),
    ]
}

/// Shard count for the process-wide kernel cache. Eight shards keeps
/// worst-case convoy length (every daemon worker asking for kernels on
/// one shard) short without scattering the handful of hot entries.
const KERNEL_CACHE_SHARDS: usize = 8;
/// Per-shard bound. A grid run touches a few models × a few tolerances;
/// 16 entries per shard (128 total) is an order of magnitude of headroom
/// while still bounding a daemon fed adversarial model diversity.
const KERNEL_CACHE_PER_SHARD: usize = 16;

fn cache() -> &'static ShardedLru<Key, Arc<Vec<f64>>> {
    static CACHE: OnceLock<ShardedLru<Key, Arc<Vec<f64>>>> = OnceLock::new();
    CACHE.get_or_init(|| ShardedLru::new(KERNEL_CACHE_SHARDS, KERNEL_CACHE_PER_SHARD))
}

/// [`kernel_for`], memoized per process in a bounded [`ShardedLru`]. The
/// first call for a given (quantized model, tolerance) pair derives the
/// kernel; later calls — from any thread — clone an [`Arc`] of the
/// cached taps while the entry stays resident. Evicted entries are
/// simply re-derived on next use.
///
/// # Panics
///
/// Panics if `rel_tol` is not a positive finite number (as
/// [`kernel_for`] does).
pub fn cached_kernel_for(model: &PdnModel, rel_tol: f64) -> Arc<Vec<f64>> {
    assert!(
        rel_tol.is_finite() && rel_tol > 0.0,
        "rel_tol must be positive and finite"
    );
    let key = key_for(model, rel_tol);
    cache().get_or_insert_with(&key, || Arc::new(kernel_for(model, rel_tol)))
}

/// Number of distinct kernels currently cached (diagnostics / tests).
pub fn cached_kernel_count() -> usize {
    cache().len()
}

/// Live hit/miss/eviction/residency stats for the process-wide kernel
/// cache (the serve daemon surfaces these at `/metrics`).
pub fn kernel_cache_stats() -> CacheStats {
    cache().stats()
}

/// Upper bound on resident kernels; [`cached_kernel_count`] never
/// exceeds this.
pub fn kernel_cache_capacity() -> usize {
    cache().capacity()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_identical_kernel_and_dedupes() {
        let m = PdnModel::paper_default().unwrap();
        let a = cached_kernel_for(&m, 1e-6);
        let b = cached_kernel_for(&m, 1e-6);
        // Same allocation, not merely equal contents.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, kernel_for(&m, 1e-6));
    }

    #[test]
    fn distinct_tolerances_get_distinct_entries() {
        let m = PdnModel::paper_default().unwrap();
        let coarse = cached_kernel_for(&m, 1e-3);
        let fine = cached_kernel_for(&m, 1e-9);
        assert!(fine.len() >= coarse.len());
        assert!(!Arc::ptr_eq(&coarse, &fine));
    }

    #[test]
    fn quantization_folds_bisection_jitter() {
        let m = PdnModel::paper_default().unwrap();
        let a = cached_kernel_for(&m, 1e-6);
        // Perturb L and C in the last mantissa bit: physically the same
        // model, numerically a different f64.
        let jittered = PdnModel::from_rlc(
            m.r_dc(),
            f64::from_bits(m.inductance().to_bits() ^ 1),
            f64::from_bits(m.capacitance().to_bits() ^ 1),
            m.clock_hz(),
        )
        .unwrap();
        let b = cached_kernel_for(&jittered, 1e-6);
        assert!(Arc::ptr_eq(&a, &b), "last-bit jitter must share the entry");
    }

    #[test]
    fn distinct_models_do_not_collide() {
        let m = PdnModel::paper_default().unwrap();
        let scaled = m.scaled(3.0).unwrap();
        let a = cached_kernel_for(&m, 1e-6);
        let b = cached_kernel_for(&scaled, 1e-6);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(*a, *b);
        assert!(cached_kernel_count() >= 2);
        assert!(cached_kernel_count() <= kernel_cache_capacity());
    }

    #[test]
    fn lru_evicts_only_beyond_bound() {
        let lru: ShardedLru<u64, u64> = ShardedLru::new(1, 3);
        for k in 0..3 {
            lru.get_or_insert_with(&k, || k * 10);
        }
        assert_eq!(lru.len(), 3);
        // Touch 0 so it becomes MRU; inserting a 4th evicts the LRU (1).
        assert_eq!(lru.get(&0), Some(0));
        lru.get_or_insert_with(&3, || 30);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&1), None, "LRU entry must be the one evicted");
        assert_eq!(lru.get(&0), Some(0));
        assert_eq!(lru.get(&2), Some(20));
        assert_eq!(lru.get(&3), Some(30));
    }

    #[test]
    fn lru_len_never_exceeds_capacity() {
        let lru: ShardedLru<u64, u64> = ShardedLru::new(4, 2);
        assert_eq!(lru.capacity(), 8);
        for k in 0..100 {
            lru.get_or_insert_with(&k, || k);
            assert!(lru.len() <= lru.capacity());
        }
        lru.clear();
        assert!(lru.is_empty());
    }

    #[test]
    fn stats_track_hits_misses_and_evictions() {
        let lru: ShardedLru<u64, u64> = ShardedLru::new(1, 2);
        assert_eq!(
            lru.stats(),
            CacheStats {
                capacity: 2,
                ..CacheStats::default()
            }
        );
        assert!(lru.stats().hit_rate().is_none());
        lru.get_or_insert_with(&1, || 10); // miss
        lru.get_or_insert_with(&1, || 10); // hit
        lru.get_or_insert_with(&2, || 20); // miss
        lru.get_or_insert_with(&3, || 30); // miss, evicts 1
        assert_eq!(lru.get(&1), None); // miss (evicted)
        assert_eq!(lru.get(&3), Some(30)); // hit
        let stats = lru.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.hit_rate(), Some(2.0 / 6.0));
    }

    #[test]
    fn poisoned_shard_does_not_wedge_stats_or_lookups() {
        let lru: std::sync::Arc<ShardedLru<u64, u64>> = std::sync::Arc::new(ShardedLru::new(1, 4));
        lru.get_or_insert_with(&1, || 10);
        // Panic inside `derive` while holding the only shard's lock.
        let poisoner = std::sync::Arc::clone(&lru);
        let result = std::thread::spawn(move || {
            poisoner.get_or_insert_with(&2, || panic!("worker died mid-derive"));
        })
        .join();
        assert!(result.is_err(), "the derive panic must propagate");
        // The cache keeps serving: stats, len, lookups, inserts.
        assert_eq!(lru.stats().len, 1);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get_or_insert_with(&2, || 20), 20);
    }

    #[test]
    fn lru_rederives_after_eviction_with_same_value() {
        let lru: ShardedLru<u64, u64> = ShardedLru::new(1, 1);
        assert_eq!(lru.get_or_insert_with(&1, || 11), 11);
        assert_eq!(lru.get_or_insert_with(&2, || 22), 22);
        // 1 was evicted; the derive closure runs again.
        let mut derived = false;
        assert_eq!(
            lru.get_or_insert_with(&1, || {
                derived = true;
                11
            }),
            11
        );
        assert!(derived);
    }
}
