//! Frequency and transient response characterization (the paper's Figure 2).
//!
//! [`FrequencyResponse`] sweeps `|Z(jw)|` over a log-spaced frequency grid;
//! [`StepResponse`] simulates the voltage reaction to a step increase in
//! load current and summarizes it with the classic second-order metrics
//! (peak deviation, overshoot ratio, settling time, ringing period).

use crate::second_order::PdnModel;

/// A swept magnitude-vs-frequency curve for a PDN model.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyResponse {
    points: Vec<(f64, f64)>,
}

impl FrequencyResponse {
    /// Sweeps `n` log-spaced points of `|Z|` between `f_lo` and `f_hi` hertz.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive with `f_lo < f_hi`, or `n < 2`.
    pub fn sweep(model: &PdnModel, f_lo: f64, f_hi: f64, n: usize) -> Self {
        assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
        assert!(n >= 2, "need at least two sweep points");
        let log_lo = f_lo.ln();
        let step = (f_hi.ln() - log_lo) / (n - 1) as f64;
        let points = (0..n)
            .map(|i| {
                let f = (log_lo + step * i as f64).exp();
                (f, model.impedance_at(f))
            })
            .collect();
        FrequencyResponse { points }
    }

    /// `(frequency_hz, |Z| ohms)` samples in ascending frequency order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The sampled maximum `(frequency_hz, |Z|)`.
    pub fn peak(&self) -> (f64, f64) {
        self.points.iter().copied().fold(
            (0.0, f64::MIN),
            |best, p| if p.1 > best.1 { p } else { best },
        )
    }
}

/// Summary metrics of a second-order transient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseMetrics {
    /// Largest absolute deviation from nominal, in volts.
    pub peak_deviation: f64,
    /// Cycle index at which the peak deviation occurs.
    pub peak_cycle: usize,
    /// Ratio of the peak deviation to the final (steady-state) deviation.
    /// Greater than 1 for an underdamped system.
    pub overshoot_ratio: f64,
    /// First cycle after which the response stays within 2% of its final
    /// value, or `None` when it never settles inside the simulated window.
    pub settling_cycle: Option<usize>,
    /// Measured ringing period in cycles (distance between successive
    /// deviation minima), or `None` when fewer than two minima exist.
    pub ringing_period: Option<usize>,
}

/// The simulated step response of a PDN model.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResponse {
    volts: Vec<f64>,
    v_nominal: f64,
    step_amps: f64,
    r_dc: f64,
}

impl StepResponse {
    /// Simulates `cycles` cycles of the response to a current step of
    /// `step_amps` amps applied at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or `step_amps` is not finite.
    pub fn simulate(model: &PdnModel, step_amps: f64, cycles: usize) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        assert!(step_amps.is_finite(), "step_amps must be finite");
        let mut state = model.discretize();
        let volts = (0..cycles).map(|_| state.step(step_amps)).collect();
        StepResponse {
            volts,
            v_nominal: model.v_nominal(),
            step_amps,
            r_dc: model.r_dc(),
        }
    }

    /// Per-cycle voltage samples in volts.
    pub fn volts(&self) -> &[f64] {
        &self.volts
    }

    /// The theoretical steady-state voltage (`v_nominal - R * I`).
    pub fn final_value(&self) -> f64 {
        self.v_nominal - self.r_dc * self.step_amps
    }

    /// Computes the summary metrics of this response.
    pub fn metrics(&self) -> ResponseMetrics {
        let final_dev = self.final_value() - self.v_nominal;
        let mut peak_deviation = 0.0f64;
        let mut peak_cycle = 0usize;
        for (k, &v) in self.volts.iter().enumerate() {
            let dev = (v - self.v_nominal).abs();
            if dev > peak_deviation {
                peak_deviation = dev;
                peak_cycle = k;
            }
        }
        let overshoot_ratio = if final_dev.abs() > 0.0 {
            peak_deviation / final_dev.abs()
        } else {
            f64::INFINITY
        };

        // 2% settling band around the final value.
        let band = 0.02 * final_dev.abs().max(1e-12);
        let final_v = self.final_value();
        let mut settling_cycle = None;
        for k in (0..self.volts.len()).rev() {
            if (self.volts[k] - final_v).abs() > band {
                if k + 1 < self.volts.len() {
                    settling_cycle = Some(k + 1);
                }
                break;
            }
            if k == 0 {
                settling_cycle = Some(0);
            }
        }

        // Ringing period from successive voltage minima.
        let mut minima = Vec::new();
        for k in 1..self.volts.len().saturating_sub(1) {
            if self.volts[k] < self.volts[k - 1] && self.volts[k] < self.volts[k + 1] {
                minima.push(k);
            }
        }
        let ringing_period = if minima.len() >= 2 {
            Some(minima[1] - minima[0])
        } else {
            None
        };

        ResponseMetrics {
            peak_deviation,
            peak_cycle,
            overshoot_ratio,
            settling_cycle,
            ringing_period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::second_order::PdnModel;

    fn model() -> PdnModel {
        PdnModel::paper_default().unwrap()
    }

    #[test]
    fn sweep_peak_is_near_resonance() {
        let m = model();
        let fr = FrequencyResponse::sweep(&m, 1.0e6, 1.0e9, 600);
        let (f_pk, z_pk) = fr.peak();
        assert!(
            (f_pk - m.resonant_freq_hz()).abs() / m.resonant_freq_hz() < 0.15,
            "peak at {f_pk}"
        );
        assert!((z_pk - m.peak_impedance()).abs() / m.peak_impedance() < 0.01);
    }

    #[test]
    fn sweep_is_sorted_and_sized() {
        let m = model();
        let fr = FrequencyResponse::sweep(&m, 1.0e6, 1.0e9, 64);
        assert_eq!(fr.points().len(), 64);
        assert!(fr.points().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[should_panic(expected = "f_lo < f_hi")]
    fn sweep_rejects_bad_bounds() {
        let m = model();
        let _ = FrequencyResponse::sweep(&m, 1.0e9, 1.0e6, 10);
    }

    #[test]
    fn step_response_overshoots_and_settles() {
        let m = model();
        let sr = StepResponse::simulate(&m, 40.0, 4000);
        let metrics = sr.metrics();
        assert!(metrics.overshoot_ratio > 1.0, "underdamped ⇒ overshoot");
        assert!(metrics.settling_cycle.is_some());
        assert!(metrics.settling_cycle.unwrap() < 3000);
        let period = metrics.ringing_period.expect("ringing expected");
        let expected = m.resonant_period_cycles();
        assert!((period as i64 - expected as i64).abs() <= 2);
    }

    #[test]
    fn peak_deviation_scales_with_step() {
        let m = model();
        let m1 = StepResponse::simulate(&m, 10.0, 2000).metrics();
        let m2 = StepResponse::simulate(&m, 20.0, 2000).metrics();
        assert!((m2.peak_deviation - 2.0 * m1.peak_deviation).abs() / m1.peak_deviation < 1e-9);
    }

    #[test]
    fn final_value_is_ir_drop() {
        let m = model();
        let sr = StepResponse::simulate(&m, 25.0, 10);
        assert!((sr.final_value() - (m.v_nominal() - 25.0 * m.r_dc())).abs() < 1e-15);
    }

    #[test]
    fn never_settling_window_reports_none() {
        let m = model();
        // 5 cycles is far too short for a 60-cycle ringing period to settle.
        let sr = StepResponse::simulate(&m, 40.0, 5);
        assert_eq!(sr.metrics().settling_cycle, None);
    }
}
