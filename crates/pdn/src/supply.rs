//! The [`Supply`] abstraction: anything that turns a per-cycle load
//! current into a per-cycle die voltage.
//!
//! The second-order stepper ([`crate::PdnState`]), the detailed ladder
//! network ([`crate::ladder::LadderState`]), and the reference convolver
//! ([`crate::convolve::Convolver`]) all implement it, so controllers and
//! replay harnesses can be written once and validated against every level
//! of supply-network detail.

use crate::convolve::Convolver;
use crate::ladder::LadderState;
use crate::state_space::PdnState;

/// A per-cycle current → voltage supply network.
pub trait Supply {
    /// Advances one CPU cycle with `i_load` amps; returns the die voltage.
    fn step_supply(&mut self, i_load: f64) -> f64;
    /// The nominal supply voltage in volts.
    fn nominal(&self) -> f64;
}

impl Supply for PdnState {
    fn step_supply(&mut self, i_load: f64) -> f64 {
        self.step(i_load)
    }

    fn nominal(&self) -> f64 {
        self.voltage_nominal()
    }
}

impl Supply for LadderState {
    fn step_supply(&mut self, i_load: f64) -> f64 {
        self.step(i_load)
    }

    fn nominal(&self) -> f64 {
        self.voltage_nominal()
    }
}

impl Supply for Convolver {
    fn step_supply(&mut self, i_load: f64) -> f64 {
        self.step(i_load)
    }

    fn nominal(&self) -> f64 {
        self.voltage_nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolve::kernel_for;
    use crate::ladder::LadderModel;
    use crate::PdnModel;

    fn drive<S: Supply>(mut s: S, n: usize) -> f64 {
        let mut min = f64::MAX;
        for k in 0..n {
            let i = if k % 60 < 30 { 40.0 } else { 0.0 };
            min = min.min(s.step_supply(i));
        }
        min
    }

    #[test]
    fn all_supplies_are_drivable_through_the_trait() {
        let m = PdnModel::paper_default().unwrap();
        let ss = drive(m.discretize(), 600);
        let conv = drive(Convolver::new(kernel_for(&m, 1e-9), m.v_nominal()), 600);
        assert!(
            (ss - conv).abs() < 1e-6,
            "state-space {ss} vs convolver {conv}"
        );

        let ladder = LadderModel::typical_three_stage();
        let lv = drive(ladder.discretize(), 600);
        assert!(lv < ladder.v_nominal(), "ladder must droop under load");
    }

    #[test]
    fn nominal_is_exposed() {
        let m = PdnModel::paper_default().unwrap();
        assert_eq!(m.discretize().nominal(), m.v_nominal());
        let l = LadderModel::typical_three_stage();
        assert_eq!(l.discretize().nominal(), l.v_nominal());
    }
}
