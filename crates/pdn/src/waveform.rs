//! Builders for the characteristic current waveforms of Section 2.3.
//!
//! These generate the per-cycle current traces behind the paper's intuition
//! figures: the narrow spike that the network tolerates (Fig. 3), the wide
//! spike that causes an emergency (Fig. 4), the notched spike that models a
//! controller backing off (Fig. 5), and the resonant pulse train that is the
//! analytic worst case (Fig. 6).

/// A constant current trace of `len` cycles at `amps`.
pub fn constant(amps: f64, len: usize) -> Vec<f64> {
    vec![amps; len]
}

/// A single rectangular current spike.
///
/// Base current `base` amps everywhere; `base + amplitude` for
/// `width` cycles starting at cycle `start`. Total length `len` cycles.
///
/// # Panics
///
/// Panics if the spike does not fit inside `len` cycles.
pub fn spike(base: f64, amplitude: f64, start: usize, width: usize, len: usize) -> Vec<f64> {
    assert!(
        start + width <= len,
        "spike [{start}, {}) must fit in {len} cycles",
        start + width
    );
    let mut trace = vec![base; len];
    for sample in &mut trace[start..start + width] {
        *sample += amplitude;
    }
    trace
}

/// A wide spike with a notch cut out of its middle: current rises at
/// `start`, dips back to `base` for `notch_width` cycles beginning
/// `notch_offset` cycles into the spike, then resumes until `width` cycles
/// have elapsed. Models a controller that briefly throttles a sustained
/// burst (Fig. 5).
///
/// # Panics
///
/// Panics if the notch does not fit inside the spike, or the spike inside
/// the trace.
pub fn notched_spike(
    base: f64,
    amplitude: f64,
    start: usize,
    width: usize,
    notch_offset: usize,
    notch_width: usize,
    len: usize,
) -> Vec<f64> {
    assert!(
        notch_offset + notch_width <= width,
        "notch [{notch_offset}, {}) must fit in spike width {width}",
        notch_offset + notch_width
    );
    let mut trace = spike(base, amplitude, start, width, len);
    for sample in &mut trace[start + notch_offset..start + notch_offset + notch_width] {
        *sample -= amplitude;
    }
    trace
}

/// A train of rectangular pulses: `n_pulses` pulses of `pulse_width` cycles
/// at `base + amplitude`, repeating every `period` cycles, starting at
/// `start`. The trace is padded to `len` cycles at `base`.
///
/// With `period` equal to the package resonant period this is the paper's
/// worst-case "dI/dt stressmark" input (Fig. 6).
///
/// # Panics
///
/// Panics if the pulse is wider than the period or the train overruns `len`.
pub fn pulse_train(
    base: f64,
    amplitude: f64,
    start: usize,
    pulse_width: usize,
    period: usize,
    n_pulses: usize,
    len: usize,
) -> Vec<f64> {
    assert!(pulse_width <= period, "pulse wider than its period");
    assert!(
        start + n_pulses.saturating_sub(1) * period + pulse_width <= len || n_pulses == 0,
        "pulse train overruns the trace"
    );
    let mut trace = vec![base; len];
    for p in 0..n_pulses {
        let s = start + p * period;
        for sample in &mut trace[s..s + pulse_width] {
            *sample += amplitude;
        }
    }
    trace
}

/// A square wave alternating between `low` and `high` amps with 50% duty at
/// the given `period`, for `len` cycles (starting in the high phase).
pub fn square_wave(low: f64, high: f64, period: usize, len: usize) -> Vec<f64> {
    assert!(period >= 2, "period must be at least 2 cycles");
    let half = period / 2;
    (0..len)
        .map(|k| if k % period < half { high } else { low })
        .collect()
}

/// Summary statistics of a current trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Minimum sample (amps).
    pub min: f64,
    /// Maximum sample (amps).
    pub max: f64,
    /// Arithmetic mean (amps).
    pub mean: f64,
    /// Largest single-cycle change `|i[n] - i[n-1]|` (amps/cycle) — the
    /// literal "dI/dt" of the trace.
    pub max_step: f64,
}

/// Computes [`TraceStats`] for a current trace. Returns `None` for an empty
/// trace.
pub fn stats(trace: &[f64]) -> Option<TraceStats> {
    if trace.is_empty() {
        return None;
    }
    let mut min = f64::MAX;
    let mut max = f64::MIN;
    let mut sum = 0.0;
    let mut max_step = 0.0f64;
    let mut prev = trace[0];
    for &x in trace {
        min = min.min(x);
        max = max.max(x);
        sum += x;
        max_step = max_step.max((x - prev).abs());
        prev = x;
    }
    Some(TraceStats {
        min,
        max,
        mean: sum / trace.len() as f64,
        max_step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_shape() {
        let t = spike(5.0, 40.0, 9, 5, 30);
        assert_eq!(t.len(), 30);
        assert_eq!(t[8], 5.0);
        assert_eq!(t[9], 45.0);
        assert_eq!(t[13], 45.0);
        assert_eq!(t[14], 5.0);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn spike_bounds_checked() {
        let _ = spike(0.0, 1.0, 28, 5, 30);
    }

    #[test]
    fn notched_spike_shape() {
        let t = notched_spike(0.0, 10.0, 5, 20, 8, 4, 40);
        assert_eq!(t[5], 10.0);
        assert_eq!(t[12], 10.0);
        assert_eq!(t[13], 0.0); // notch begins
        assert_eq!(t[16], 0.0); // notch ends
        assert_eq!(t[17], 10.0);
        assert_eq!(t[24], 10.0);
        assert_eq!(t[25], 0.0);
    }

    #[test]
    fn pulse_train_period() {
        let t = pulse_train(0.0, 1.0, 0, 30, 60, 3, 200);
        assert_eq!(t[0], 1.0);
        assert_eq!(t[29], 1.0);
        assert_eq!(t[30], 0.0);
        assert_eq!(t[60], 1.0);
        assert_eq!(t[120], 1.0);
        assert_eq!(t[150], 0.0);
        assert_eq!(t[199], 0.0);
    }

    #[test]
    fn square_wave_duty_cycle() {
        let t = square_wave(1.0, 3.0, 60, 600);
        let highs = t.iter().filter(|&&x| x == 3.0).count();
        assert_eq!(highs, 300);
        assert_eq!(t[0], 3.0);
        assert_eq!(t[30], 1.0);
        assert_eq!(t[60], 3.0);
    }

    #[test]
    fn stats_computes_extremes_and_didt() {
        let t = vec![1.0, 5.0, 5.0, 2.0];
        let s = stats(&t).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.max_step, 4.0);
    }

    #[test]
    fn stats_of_empty_is_none() {
        assert!(stats(&[]).is_none());
    }

    #[test]
    fn constant_is_flat() {
        let t = constant(7.5, 10);
        assert!(t.iter().all(|&x| x == 7.5));
        assert_eq!(stats(&t).unwrap().max_step, 0.0);
    }
}
