//! Convolution-based voltage computation (the paper's reference method).
//!
//! The paper (following Grochowski et al.) computes the supply voltage by
//! convolving the per-cycle current trace with the network's impulse
//! response. This module provides that reference path:
//!
//! * [`convolve_full`] — batch convolution of a whole trace,
//! * [`Convolver`] — a streaming ring-buffer convolver for cycle-by-cycle
//!   use,
//! * [`kernel_for`] — extraction of a truncated convolution kernel from a
//!   [`PdnModel`].
//!
//! Because the kernel is the model's exact zero-order-hold pulse response,
//! the convolution output matches [`crate::state_space::PdnState`] to within
//! truncation error — a property-tested invariant. The state-space stepper
//! is O(1) per cycle and is the recommended fast path; convolution is kept
//! as an independent cross-check and for experimenting with measured
//! (non-analytic) kernels.

use crate::second_order::PdnModel;
use crate::state_space::pulse_response;

/// Extracts a truncated convolution kernel (volts per amp per cycle) from
/// `model`, long enough that the discarded tail is below `rel_tol` of the
/// kernel's peak magnitude. A `rel_tol` of `1e-6` is a good default.
///
/// # Panics
///
/// Panics if `rel_tol` is not a positive finite number.
pub fn kernel_for(model: &PdnModel, rel_tol: f64) -> Vec<f64> {
    assert!(
        rel_tol.is_finite() && rel_tol > 0.0,
        "rel_tol must be positive and finite"
    );
    // Grow in blocks of one resonant period until the tail is negligible.
    let period = model.resonant_period_cycles().max(2);
    let mut n = period * 8;
    loop {
        let h = pulse_response(model, n);
        let peak = h.iter().map(|x| x.abs()).fold(0.0, f64::max);
        let tail = h[n - period..].iter().map(|x| x.abs()).fold(0.0, f64::max);
        if tail <= rel_tol * peak || n > period * 4096 {
            return h;
        }
        n *= 2;
    }
}

/// Batch convolution: `v[n] = v_nominal + sum_k h[k] * i[n-k]`.
///
/// Returns one voltage sample per current sample (the "same-length" leading
/// part of the full convolution, matching what a streaming simulator sees).
pub fn convolve_full(kernel: &[f64], currents: &[f64], v_nominal: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(currents.len());
    for n in 0..currents.len() {
        let mut acc = 0.0;
        let kmax = kernel.len().min(n + 1);
        for k in 0..kmax {
            acc += kernel[k] * currents[n - k];
        }
        out.push(v_nominal + acc);
    }
    out
}

/// Streaming convolver with a ring buffer of past current samples.
///
/// Functionally identical to [`convolve_full`] but usable one cycle at a
/// time inside a closed simulation loop.
///
/// # Example
///
/// ```
/// use voltctl_pdn::{PdnModel, convolve::{kernel_for, Convolver}};
///
/// # fn main() -> Result<(), voltctl_pdn::PdnError> {
/// let model = PdnModel::paper_default()?;
/// let mut conv = Convolver::new(kernel_for(&model, 1e-6), model.v_nominal());
/// let v = conv.step(25.0);
/// assert!(v < model.v_nominal()); // current draw dips the supply
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Convolver {
    kernel: Vec<f64>,
    history: Vec<f64>,
    head: usize,
    v_nominal: f64,
}

impl Convolver {
    /// Creates a convolver from a kernel (volts/amp) and nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty.
    pub fn new(kernel: Vec<f64>, v_nominal: f64) -> Self {
        assert!(!kernel.is_empty(), "convolution kernel must be non-empty");
        let len = kernel.len();
        Convolver {
            kernel,
            history: vec![0.0; len],
            head: 0,
            v_nominal,
        }
    }

    /// Number of taps in the kernel.
    pub fn len(&self) -> usize {
        self.kernel.len()
    }

    /// Always false: the constructor rejects empty kernels.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Pushes this cycle's current sample (amps) and returns the voltage.
    pub fn step(&mut self, i_load: f64) -> f64 {
        self.history[self.head] = i_load;
        let n = self.kernel.len();
        let mut acc = 0.0;
        // history[head] is i[n], history[head-1] is i[n-1], ...
        let mut idx = self.head;
        for &h in &self.kernel {
            acc += h * self.history[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.head = (self.head + 1) % n;
        self.v_nominal + acc
    }

    /// The nominal supply voltage added to the convolution output.
    pub fn voltage_nominal(&self) -> f64 {
        self.v_nominal
    }

    /// Clears the current history.
    pub fn reset(&mut self) {
        self.history.fill(0.0);
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::second_order::PdnModel;

    fn model() -> PdnModel {
        PdnModel::paper_default().unwrap()
    }

    #[test]
    fn kernel_tail_is_negligible() {
        let m = model();
        let h = kernel_for(&m, 1e-6);
        let peak = h.iter().map(|x| x.abs()).fold(0.0, f64::max);
        let tail = h[h.len() - 10..]
            .iter()
            .map(|x| x.abs())
            .fold(0.0, f64::max);
        assert!(tail <= 1e-5 * peak);
    }

    #[test]
    fn batch_matches_streaming() {
        let m = model();
        let kernel = kernel_for(&m, 1e-9);
        let trace: Vec<f64> = (0..500)
            .map(|k| if (k / 30) % 2 == 0 { 40.0 } else { 5.0 })
            .collect();
        let batch = convolve_full(&kernel, &trace, m.v_nominal());
        let mut conv = Convolver::new(kernel, m.v_nominal());
        let streaming: Vec<f64> = trace.iter().map(|&i| conv.step(i)).collect();
        for (a, b) in batch.iter().zip(&streaming) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_matches_state_space() {
        let m = model();
        let kernel = kernel_for(&m, 1e-10);
        let trace: Vec<f64> = (0..2000)
            .map(|k| match k % 97 {
                0..=20 => 45.0,
                21..=50 => 10.0,
                _ => 25.0,
            })
            .collect();
        let conv = convolve_full(&kernel, &trace, m.v_nominal());
        let mut ss = m.discretize();
        for (n, &i) in trace.iter().enumerate() {
            let v_ss = ss.step(i);
            assert!(
                (conv[n] - v_ss).abs() < 1e-7,
                "cycle {n}: convolution {} vs state-space {v_ss}",
                conv[n]
            );
        }
    }

    #[test]
    fn reset_clears_history() {
        let m = model();
        let kernel = kernel_for(&m, 1e-6);
        let mut conv = Convolver::new(kernel, m.v_nominal());
        for _ in 0..100 {
            conv.step(40.0);
        }
        conv.reset();
        let v = conv.step(0.0);
        assert!((v - m.v_nominal()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_kernel_panics() {
        let _ = Convolver::new(Vec::new(), 1.0);
    }

    #[test]
    fn superposition_holds() {
        // LTI sanity: conv(a + b) == conv(a) + conv(b) - v_nominal.
        let m = model();
        let kernel = kernel_for(&m, 1e-8);
        let a: Vec<f64> = (0..300).map(|k| (k % 13) as f64).collect();
        let b: Vec<f64> = (0..300).map(|k| ((k * 7) % 11) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let va = convolve_full(&kernel, &a, 0.0);
        let vb = convolve_full(&kernel, &b, 0.0);
        let vs = convolve_full(&kernel, &sum, 0.0);
        for n in 0..300 {
            assert!((vs[n] - (va[n] + vb[n])).abs() < 1e-12);
        }
    }
}
