//! Convolution-based voltage computation (the paper's reference method).
//!
//! The paper (following Grochowski et al.) computes the supply voltage by
//! convolving the per-cycle current trace with the network's impulse
//! response. This module provides that reference path:
//!
//! * [`convolve_full`] — direct batch convolution of a whole trace,
//!   O(N·K) for N samples and K taps,
//! * [`convolve_full_fft`] — the same result via overlap-save FFT
//!   convolution, O(N log K); the fast path for batch replay with long
//!   kernels,
//! * [`Convolver`] — a branch-free streaming ring-buffer convolver for
//!   cycle-by-cycle use,
//! * [`kernel_for`] — extraction of a truncated convolution kernel from a
//!   [`PdnModel`].
//!
//! Because the kernel is the model's exact zero-order-hold pulse response,
//! the convolution output matches [`crate::state_space::PdnState`] to within
//! truncation error — a property-tested invariant. The state-space stepper
//! is O(1) per cycle and is the recommended fast path for closed-loop
//! simulation; convolution is kept as an independent cross-check and for
//! experimenting with measured (non-analytic) kernels, where the FFT path
//! makes long-kernel batch replay cheap.

use crate::second_order::PdnModel;
use crate::spectrum::{fft, ifft, Complex};
use crate::state_space::PdnState;

/// Extracts a truncated convolution kernel (volts per amp per cycle) from
/// `model`, long enough that the discarded tail is below `rel_tol` of the
/// kernel's peak magnitude. A `rel_tol` of `1e-6` is a good default.
///
/// The pulse response is grown *incrementally*: the stepper that produced
/// the first `n` samples keeps running when the tail test demands a longer
/// kernel, so each doubling costs only the new samples (the zero-order-hold
/// stepper is deterministic, making the result identical to recomputing the
/// whole prefix from scratch — a regression-tested property).
///
/// # Panics
///
/// Panics if `rel_tol` is not a positive finite number.
pub fn kernel_for(model: &PdnModel, rel_tol: f64) -> Vec<f64> {
    assert!(
        rel_tol.is_finite() && rel_tol > 0.0,
        "rel_tol must be positive and finite"
    );
    // Grow in blocks of one resonant period until the tail is negligible.
    let period = model.resonant_period_cycles().max(2);
    let mut state = model.discretize();
    let mut h = Vec::new();
    let mut n = period * 8;
    loop {
        extend_pulse_response(&mut state, &mut h, n);
        let peak = h.iter().map(|x| x.abs()).fold(0.0, f64::max);
        let tail = h[n - period..].iter().map(|x| x.abs()).fold(0.0, f64::max);
        if tail <= rel_tol * peak || n > period * 4096 {
            return h;
        }
        n *= 2;
    }
}

/// Appends pulse-response samples to `h` until it holds `n`, continuing
/// from wherever `state` left off. The 1 A probe is applied only on the
/// very first sample; every later cycle steps with zero load.
fn extend_pulse_response(state: &mut PdnState, h: &mut Vec<f64>, n: usize) {
    let v_nom = state.voltage_nominal();
    h.reserve(n.saturating_sub(h.len()));
    while h.len() < n {
        let i = if h.is_empty() { 1.0 } else { 0.0 };
        h.push(state.step(i) - v_nom);
    }
}

/// Batch convolution: `v[n] = v_nominal + sum_k h[k] * i[n-k]`.
///
/// Returns one voltage sample per current sample (the "same-length" leading
/// part of the full convolution, matching what a streaming simulator sees).
///
/// This is the direct O(N·K) reference; [`convolve_full_fft`] computes the
/// same samples in O(N log K) and is preferred for batch replay with
/// long kernels.
pub fn convolve_full(kernel: &[f64], currents: &[f64], v_nominal: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(currents.len());
    for n in 0..currents.len() {
        let mut acc = 0.0;
        let kmax = kernel.len().min(n + 1);
        for k in 0..kmax {
            acc += kernel[k] * currents[n - k];
        }
        out.push(v_nominal + acc);
    }
    out
}

/// Overlap-save FFT convolution: the same samples as [`convolve_full`]
/// (within floating-point rounding, property-tested to 1e-9 relative
/// tolerance) in O(N log K) instead of O(N·K).
///
/// The kernel's spectrum is computed once at an FFT length of at least
/// four times the tap count; the trace is then processed in blocks of
/// `fft_len - K + 1` fresh samples, each block FFT-multiplied against the
/// kernel spectrum and inverse-transformed, keeping only the alias-free
/// tail (the standard overlap-save construction). Leading samples see the
/// same implicit zero history as the direct path.
pub fn convolve_full_fft(kernel: &[f64], currents: &[f64], v_nominal: f64) -> Vec<f64> {
    let n = currents.len();
    if n == 0 {
        return Vec::new();
    }
    if kernel.is_empty() {
        return vec![v_nominal; n];
    }
    let k = kernel.len();
    // 4x padding keeps the useful fraction of each block >= 3/4 while the
    // per-sample FFT cost grows only logarithmically; 64 floors the tiny
    // cases where butterflies would be all overhead.
    let fft_len = (4 * k).next_power_of_two().max(64);
    let block = fft_len - (k - 1);

    let mut kernel_f = vec![Complex::default(); fft_len];
    for (slot, &h) in kernel_f.iter_mut().zip(kernel) {
        slot.re = h;
    }
    fft(&mut kernel_f);

    let mut out = Vec::with_capacity(n);
    let mut buf = vec![Complex::default(); fft_len];
    let mut start = 0usize;
    while start < n {
        // The block's input spans currents[start - (K-1) .. start + block):
        // K-1 samples of history (zeros before the trace begins) plus up to
        // `block` fresh samples (zeros past the end are discarded below).
        let first = start as i64 - (k as i64 - 1);
        for (j, slot) in buf.iter_mut().enumerate() {
            let idx = first + j as i64;
            slot.re = if idx >= 0 && (idx as usize) < n {
                currents[idx as usize]
            } else {
                0.0
            };
            slot.im = 0.0;
        }
        fft(&mut buf);
        for (slot, h) in buf.iter_mut().zip(&kernel_f) {
            *slot = *slot * *h;
        }
        ifft(&mut buf);
        let take = block.min(n - start);
        out.extend(buf[k - 1..k - 1 + take].iter().map(|c| v_nominal + c.re));
        start += take;
    }
    out
}

/// Streaming convolver with a branch-free ring buffer of past current
/// samples.
///
/// Functionally identical to [`convolve_full`] but usable one cycle at a
/// time inside a closed simulation loop. The ring is padded to a power of
/// two and every sample is written twice (`i` and `i + capacity`), so the
/// most recent K samples are always one contiguous slice: the per-cycle
/// dot product runs without a wrap-around branch per tap, chunk-unrolled
/// four wide.
///
/// # Example
///
/// ```
/// use voltctl_pdn::{PdnModel, convolve::{kernel_for, Convolver}};
///
/// # fn main() -> Result<(), voltctl_pdn::PdnError> {
/// let model = PdnModel::paper_default()?;
/// let mut conv = Convolver::new(kernel_for(&model, 1e-6), model.v_nominal());
/// let v = conv.step(25.0);
/// assert!(v < model.v_nominal()); // current draw dips the supply
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Convolver {
    /// The kernel reversed (`rev_kernel[j] = kernel[K-1-j]`), so the dot
    /// product against the oldest-first history window is a straight scan.
    rev_kernel: Vec<f64>,
    /// Double-write ring: `2 * cap` samples, `history[i] == history[i + cap]`.
    history: Vec<f64>,
    /// Ring capacity: kernel length rounded up to a power of two.
    cap: usize,
    /// Index of the most recent sample, in `[0, cap)`.
    head: usize,
    v_nominal: f64,
}

impl Convolver {
    /// Creates a convolver from a kernel (volts/amp) and nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty.
    pub fn new(kernel: Vec<f64>, v_nominal: f64) -> Self {
        assert!(!kernel.is_empty(), "convolution kernel must be non-empty");
        let cap = kernel.len().next_power_of_two();
        let mut rev_kernel = kernel;
        rev_kernel.reverse();
        Convolver {
            rev_kernel,
            history: vec![0.0; 2 * cap],
            cap,
            head: cap - 1,
            v_nominal,
        }
    }

    /// Number of taps in the kernel.
    pub fn len(&self) -> usize {
        self.rev_kernel.len()
    }

    /// Whether the kernel has no taps. Always false in practice — the
    /// constructor rejects empty kernels — but implemented honestly from
    /// the kernel length.
    pub fn is_empty(&self) -> bool {
        self.rev_kernel.is_empty()
    }

    /// Pushes this cycle's current sample (amps) and returns the voltage.
    pub fn step(&mut self, i_load: f64) -> f64 {
        self.head = (self.head + 1) & (self.cap - 1);
        self.history[self.head] = i_load;
        self.history[self.head + self.cap] = i_load;
        // The K most recent samples, oldest first, are contiguous ending at
        // head + cap thanks to the double write.
        let end = self.head + self.cap + 1;
        let window = &self.history[end - self.rev_kernel.len()..end];
        self.v_nominal + dot(&self.rev_kernel, window)
    }

    /// The nominal supply voltage added to the convolution output.
    pub fn voltage_nominal(&self) -> f64 {
        self.v_nominal
    }

    /// Clears the current history.
    pub fn reset(&mut self) {
        self.history.fill(0.0);
        self.head = self.cap - 1;
    }
}

/// W streaming convolvers sharing one kernel, advanced in lockstep.
///
/// The history ring is lane-interleaved (`history[slot * width + lane]`)
/// with the same double-write trick as [`Convolver`], so one cycle of all
/// W lanes is a tap-major scan whose inner loop runs `width` independent
/// multiply-adds over contiguous memory — the layout the compiler
/// autovectorizes. All lanes share the ring head because they step
/// together.
///
/// Each lane computes the same dot product a standalone [`Convolver`]
/// would, but the accumulation order differs (tap-serial here vs. the
/// scalar path's four-way unroll), so lane outputs agree to rounding —
/// not bitwise. This path backs batch *replay* sweeps (one trace, many
/// kernels); the closed control loop batches over [`PdnLanes`], which is
/// bitwise.
///
/// [`PdnLanes`]: crate::state_space::PdnLanes
#[derive(Debug, Clone)]
pub struct LaneConvolver {
    /// Kernel reversed, as in [`Convolver`].
    rev_kernel: Vec<f64>,
    /// Lane-interleaved double-write ring: `2 * cap * width` samples.
    history: Vec<f64>,
    cap: usize,
    width: usize,
    head: usize,
    v_nominal: f64,
}

impl LaneConvolver {
    /// Creates a `width`-lane convolver from a kernel and nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty or `width` is zero.
    pub fn new(kernel: Vec<f64>, v_nominal: f64, width: usize) -> Self {
        assert!(!kernel.is_empty(), "convolution kernel must be non-empty");
        assert!(width > 0, "lane width must be positive");
        let cap = kernel.len().next_power_of_two();
        let mut rev_kernel = kernel;
        rev_kernel.reverse();
        LaneConvolver {
            rev_kernel,
            history: vec![0.0; 2 * cap * width],
            cap,
            width,
            head: cap - 1,
            v_nominal,
        }
    }

    /// Number of taps in the shared kernel.
    pub fn taps(&self) -> usize {
        self.rev_kernel.len()
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pushes one cycle of per-lane currents (amps) and writes the
    /// per-lane voltages into `out`.
    ///
    /// # Panics
    ///
    /// Panics unless `i_loads` and `out` both hold exactly `width`
    /// samples.
    pub fn step(&mut self, i_loads: &[f64], out: &mut [f64]) {
        let w = self.width;
        assert_eq!(i_loads.len(), w, "one current per lane");
        assert_eq!(out.len(), w, "one output slot per lane");
        self.head = (self.head + 1) & (self.cap - 1);
        let row = self.head * w;
        let wrap = (self.head + self.cap) * w;
        self.history[row..row + w].copy_from_slice(i_loads);
        self.history[wrap..wrap + w].copy_from_slice(i_loads);

        out.fill(0.0);
        let k = self.rev_kernel.len();
        // Oldest-first window of K rows ending at the double-write slot.
        let end_row = self.head + self.cap + 1;
        let window = &self.history[(end_row - k) * w..end_row * w];
        for (j, lanes) in window.chunks_exact(w).enumerate() {
            let h = self.rev_kernel[j];
            for (o, &i) in out.iter_mut().zip(lanes) {
                *o += h * i;
            }
        }
        for o in out.iter_mut() {
            *o += self.v_nominal;
        }
    }

    /// Clears every lane's history.
    pub fn reset(&mut self) {
        self.history.fill(0.0);
        self.head = self.cap - 1;
    }
}

/// Chunk-unrolled dot product: four independent accumulators hide the
/// floating-point add latency; the remainder folds in serially.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let split = a.len() & !3;
    for (ca, cb) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        sum += x * y;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::second_order::PdnModel;
    use crate::state_space::pulse_response;

    fn model() -> PdnModel {
        PdnModel::paper_default().unwrap()
    }

    #[test]
    fn kernel_tail_is_negligible() {
        let m = model();
        let h = kernel_for(&m, 1e-6);
        let peak = h.iter().map(|x| x.abs()).fold(0.0, f64::max);
        let tail = h[h.len() - 10..]
            .iter()
            .map(|x| x.abs())
            .fold(0.0, f64::max);
        assert!(tail <= 1e-5 * peak);
    }

    /// The incremental growth must reproduce the old recompute-from-scratch
    /// algorithm bit for bit (same stepper, same operation sequence).
    #[test]
    fn incremental_kernel_matches_recompute_from_scratch() {
        let models = [
            model(),
            model().scaled(3.0).unwrap(),
            PdnModel::from_rlc(0.8e-3, 8.0e-12, 1.2e-6, 3.0e9).unwrap(),
        ];
        for m in &models {
            for rel_tol in [1e-3, 1e-6, 1e-9] {
                // Reference: the pre-incremental algorithm.
                let reference = {
                    let period = m.resonant_period_cycles().max(2);
                    let mut n = period * 8;
                    loop {
                        let h = pulse_response(m, n);
                        let peak = h.iter().map(|x| x.abs()).fold(0.0, f64::max);
                        let tail = h[n - period..].iter().map(|x| x.abs()).fold(0.0, f64::max);
                        if tail <= rel_tol * peak || n > period * 4096 {
                            break h;
                        }
                        n *= 2;
                    }
                };
                assert_eq!(kernel_for(m, rel_tol), reference, "rel_tol {rel_tol}");
            }
        }
    }

    #[test]
    fn batch_matches_streaming() {
        let m = model();
        let kernel = kernel_for(&m, 1e-9);
        let trace: Vec<f64> = (0..500)
            .map(|k| if (k / 30) % 2 == 0 { 40.0 } else { 5.0 })
            .collect();
        let batch = convolve_full(&kernel, &trace, m.v_nominal());
        let mut conv = Convolver::new(kernel, m.v_nominal());
        let streaming: Vec<f64> = trace.iter().map(|&i| conv.step(i)).collect();
        for (a, b) in batch.iter().zip(&streaming) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_direct_on_square_wave() {
        let m = model();
        let kernel = kernel_for(&m, 1e-9);
        let trace: Vec<f64> = (0..2000)
            .map(|k| if (k / 30) % 2 == 0 { 40.0 } else { 5.0 })
            .collect();
        let direct = convolve_full(&kernel, &trace, m.v_nominal());
        let fast = convolve_full_fft(&kernel, &trace, m.v_nominal());
        assert_eq!(direct.len(), fast.len());
        for (n, (a, b)) in direct.iter().zip(&fast).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "cycle {n}: direct {a} vs fft {b}"
            );
        }
    }

    #[test]
    fn fft_handles_degenerate_inputs() {
        assert!(convolve_full_fft(&[1.0, 0.5], &[], 1.0).is_empty());
        assert_eq!(convolve_full_fft(&[], &[3.0, 4.0], 1.0), vec![1.0, 1.0]);
        // Single-tap kernel: pure scaling.
        let out = convolve_full_fft(&[2.0], &[1.0, -1.0, 0.5], 0.0);
        for (a, b) in out.iter().zip(&[2.0, -2.0, 1.0]) {
            assert!((a - b).abs() < 1e-12);
        }
        // Trace shorter than the kernel.
        let kernel = vec![0.25; 16];
        let trace = vec![1.0, 2.0, 3.0];
        let direct = convolve_full(&kernel, &trace, 5.0);
        let fast = convolve_full_fft(&kernel, &trace, 5.0);
        for (a, b) in direct.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_matches_state_space() {
        let m = model();
        let kernel = kernel_for(&m, 1e-10);
        let trace: Vec<f64> = (0..2000)
            .map(|k| match k % 97 {
                0..=20 => 45.0,
                21..=50 => 10.0,
                _ => 25.0,
            })
            .collect();
        let conv = convolve_full(&kernel, &trace, m.v_nominal());
        let fast = convolve_full_fft(&kernel, &trace, m.v_nominal());
        let mut ss = m.discretize();
        for (n, &i) in trace.iter().enumerate() {
            let v_ss = ss.step(i);
            assert!(
                (conv[n] - v_ss).abs() < 1e-7,
                "cycle {n}: convolution {} vs state-space {v_ss}",
                conv[n]
            );
            assert!(
                (fast[n] - v_ss).abs() < 1e-7,
                "cycle {n}: fft convolution {} vs state-space {v_ss}",
                fast[n]
            );
        }
    }

    #[test]
    fn reset_clears_history() {
        let m = model();
        let kernel = kernel_for(&m, 1e-6);
        let mut conv = Convolver::new(kernel, m.v_nominal());
        for _ in 0..100 {
            conv.step(40.0);
        }
        conv.reset();
        let v = conv.step(0.0);
        assert!((v - m.v_nominal()).abs() < 1e-15);
    }

    #[test]
    fn streaming_survives_many_wraparounds() {
        // Non-power-of-two kernel: the ring is padded, and the window must
        // stay correct long after the head wraps repeatedly.
        let kernel: Vec<f64> = (0..7).map(|k| 1.0 / (k + 1) as f64).collect();
        let trace: Vec<f64> = (0..300).map(|k| ((k * 31) % 17) as f64 - 8.0).collect();
        let batch = convolve_full(&kernel, &trace, 2.0);
        let mut conv = Convolver::new(kernel, 2.0);
        for (n, &i) in trace.iter().enumerate() {
            let v = conv.step(i);
            assert!((v - batch[n]).abs() < 1e-12, "cycle {n}");
        }
    }

    #[test]
    fn len_and_is_empty_are_consistent() {
        let conv = Convolver::new(vec![1.0, 2.0, 3.0], 1.0);
        assert_eq!(conv.len(), 3);
        assert!(!conv.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_kernel_panics() {
        let _ = Convolver::new(Vec::new(), 1.0);
    }

    #[test]
    fn lane_convolver_matches_independent_scalars() {
        let m = model();
        let kernel = kernel_for(&m, 1e-8);
        for width in [1usize, 3, 4, 8] {
            let mut lanes = LaneConvolver::new(kernel.clone(), m.v_nominal(), width);
            assert_eq!(lanes.width(), width);
            assert_eq!(lanes.taps(), kernel.len());
            let mut scalars: Vec<Convolver> = (0..width)
                .map(|_| Convolver::new(kernel.clone(), m.v_nominal()))
                .collect();
            let mut i_loads = vec![0.0; width];
            let mut out = vec![0.0; width];
            for cycle in 0..700u64 {
                for (l, slot) in i_loads.iter_mut().enumerate() {
                    *slot = ((cycle * 13 + l as u64 * 7) % 37) as f64;
                }
                lanes.step(&i_loads, &mut out);
                for (l, conv) in scalars.iter_mut().enumerate() {
                    let v = conv.step(i_loads[l]);
                    assert!(
                        (out[l] - v).abs() <= 1e-12 * v.abs().max(1.0),
                        "lane {l} cycle {cycle}: {} vs {v}",
                        out[l]
                    );
                }
            }
        }
    }

    #[test]
    fn lane_convolver_reset_clears_all_lanes() {
        let m = model();
        let kernel = kernel_for(&m, 1e-6);
        let mut lanes = LaneConvolver::new(kernel, m.v_nominal(), 4);
        let mut out = vec![0.0; 4];
        for _ in 0..50 {
            lanes.step(&[40.0, 30.0, 20.0, 10.0], &mut out);
        }
        lanes.reset();
        lanes.step(&[0.0; 4], &mut out);
        for &v in &out {
            assert!((v - m.v_nominal()).abs() < 1e-15);
        }
    }

    #[test]
    fn superposition_holds() {
        // LTI sanity: conv(a + b) == conv(a) + conv(b) - v_nominal.
        let m = model();
        let kernel = kernel_for(&m, 1e-8);
        let a: Vec<f64> = (0..300).map(|k| (k % 13) as f64).collect();
        let b: Vec<f64> = (0..300).map(|k| ((k * 7) % 11) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let va = convolve_full(&kernel, &a, 0.0);
        let vb = convolve_full(&kernel, &b, 0.0);
        let vs = convolve_full(&kernel, &sum, 0.0);
        for n in 0..300 {
            assert!((vs[n] - (va[n] + vb[n])).abs() < 1e-12);
        }
    }
}
