//! Voltage-emergency detection, counting, and distribution histograms.
//!
//! The paper defines a **voltage emergency** as any excursion of the supply
//! beyond +/-5% of nominal (Section 3.3). [`VoltageMonitor`] consumes a
//! per-cycle voltage stream and tallies emergencies both as discrete
//! *events* (each entry into the forbidden band counts once) and as
//! *cycle counts* (how long the supply stays out of specification), which is
//! what Table 2's "emergency frequency" reports. [`VoltageHistogram`] builds
//! the voltage-distribution curves of Figure 10.

/// Classification of a single voltage sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoltageBand {
    /// Below `v_nominal * (1 - tolerance)` — an undervoltage emergency.
    UnderEmergency,
    /// Within specification.
    Safe,
    /// Above `v_nominal * (1 + tolerance)` — an overvoltage emergency.
    OverEmergency,
}

/// Streaming detector/counter for voltage emergencies.
///
/// # Example
///
/// ```
/// use voltctl_pdn::VoltageMonitor;
///
/// let mut mon = VoltageMonitor::new(1.0, 0.05);
/// for &v in &[1.0, 0.97, 0.94, 0.94, 0.98, 1.06] {
///     mon.observe(v);
/// }
/// let report = mon.report();
/// assert_eq!(report.under_events, 1);
/// assert_eq!(report.over_events, 1);
/// assert_eq!(report.emergency_cycles, 3);
/// assert_eq!(report.total_cycles, 6);
/// ```
#[derive(Debug, Clone)]
pub struct VoltageMonitor {
    v_nominal: f64,
    tolerance: f64,
    total_cycles: u64,
    under_cycles: u64,
    over_cycles: u64,
    under_events: u64,
    over_events: u64,
    min_v: f64,
    max_v: f64,
    last_band: VoltageBand,
}

impl VoltageMonitor {
    /// Creates a monitor for `v_nominal` volts with relative `tolerance`
    /// (0.05 = +/-5%).
    ///
    /// # Panics
    ///
    /// Panics unless `v_nominal > 0` and `0 < tolerance < 1`.
    pub fn new(v_nominal: f64, tolerance: f64) -> Self {
        assert!(v_nominal > 0.0, "v_nominal must be positive");
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must be in (0, 1)"
        );
        VoltageMonitor {
            v_nominal,
            tolerance,
            total_cycles: 0,
            under_cycles: 0,
            over_cycles: 0,
            under_events: 0,
            over_events: 0,
            min_v: f64::MAX,
            max_v: f64::MIN,
            last_band: VoltageBand::Safe,
        }
    }

    /// The lower emergency threshold in volts.
    pub fn v_low(&self) -> f64 {
        self.v_nominal * (1.0 - self.tolerance)
    }

    /// The upper emergency threshold in volts.
    pub fn v_high(&self) -> f64 {
        self.v_nominal * (1.0 + self.tolerance)
    }

    /// Classifies a voltage without recording it.
    pub fn classify(&self, volts: f64) -> VoltageBand {
        if volts < self.v_low() {
            VoltageBand::UnderEmergency
        } else if volts > self.v_high() {
            VoltageBand::OverEmergency
        } else {
            VoltageBand::Safe
        }
    }

    /// Records one per-cycle voltage sample and returns its band.
    pub fn observe(&mut self, volts: f64) -> VoltageBand {
        let band = self.classify(volts);
        self.total_cycles += 1;
        self.min_v = self.min_v.min(volts);
        self.max_v = self.max_v.max(volts);
        match band {
            VoltageBand::UnderEmergency => {
                self.under_cycles += 1;
                if self.last_band != VoltageBand::UnderEmergency {
                    self.under_events += 1;
                }
            }
            VoltageBand::OverEmergency => {
                self.over_cycles += 1;
                if self.last_band != VoltageBand::OverEmergency {
                    self.over_events += 1;
                }
            }
            VoltageBand::Safe => {}
        }
        self.last_band = band;
        band
    }

    /// Records an entire voltage trace.
    pub fn observe_all(&mut self, volts: &[f64]) {
        for &v in volts {
            self.observe(v);
        }
    }

    /// Produces the accumulated report.
    pub fn report(&self) -> EmergencyReport {
        EmergencyReport {
            total_cycles: self.total_cycles,
            emergency_cycles: self.under_cycles + self.over_cycles,
            under_cycles: self.under_cycles,
            over_cycles: self.over_cycles,
            under_events: self.under_events,
            over_events: self.over_events,
            min_v: if self.total_cycles == 0 {
                f64::NAN
            } else {
                self.min_v
            },
            max_v: if self.total_cycles == 0 {
                f64::NAN
            } else {
                self.max_v
            },
        }
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = VoltageMonitor::new(self.v_nominal, self.tolerance);
    }
}

impl voltctl_snap::Pack for VoltageBand {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(match self {
            VoltageBand::UnderEmergency => 0,
            VoltageBand::Safe => 1,
            VoltageBand::OverEmergency => 2,
        });
    }
}

impl voltctl_snap::Unpack for VoltageBand {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(VoltageBand::UnderEmergency),
            1 => Ok(VoltageBand::Safe),
            2 => Ok(VoltageBand::OverEmergency),
            other => Err(voltctl_snap::SnapError::Corrupt(format!(
                "unknown voltage band {other}"
            ))),
        }
    }
}

impl voltctl_snap::Pack for VoltageMonitor {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.v_nominal);
        w.put_f64(self.tolerance);
        w.put_u64(self.total_cycles);
        w.put_u64(self.under_cycles);
        w.put_u64(self.over_cycles);
        w.put_u64(self.under_events);
        w.put_u64(self.over_events);
        w.put_f64(self.min_v);
        w.put_f64(self.max_v);
        self.last_band.pack(w);
    }
}

impl voltctl_snap::Unpack for VoltageMonitor {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let v_nominal = r.get_f64()?;
        let tolerance = r.get_f64()?;
        if v_nominal.is_nan()
            || v_nominal <= 0.0
            || tolerance.is_nan()
            || tolerance <= 0.0
            || tolerance >= 1.0
        {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "voltage monitor parameters out of range: nominal {v_nominal}, \
                 tolerance {tolerance}"
            )));
        }
        Ok(VoltageMonitor {
            v_nominal,
            tolerance,
            total_cycles: r.get_u64()?,
            under_cycles: r.get_u64()?,
            over_cycles: r.get_u64()?,
            under_events: r.get_u64()?,
            over_events: r.get_u64()?,
            min_v: r.get_f64()?,
            max_v: r.get_f64()?,
            last_band: voltctl_snap::Unpack::unpack(r)?,
        })
    }
}

/// Accumulated emergency statistics for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmergencyReport {
    /// Number of observed cycles.
    pub total_cycles: u64,
    /// Cycles spent outside specification (under + over).
    pub emergency_cycles: u64,
    /// Cycles under the low threshold.
    pub under_cycles: u64,
    /// Cycles over the high threshold.
    pub over_cycles: u64,
    /// Discrete undervoltage events (entries into the low band).
    pub under_events: u64,
    /// Discrete overvoltage events (entries into the high band).
    pub over_events: u64,
    /// Minimum voltage seen (NaN when no samples).
    pub min_v: f64,
    /// Maximum voltage seen (NaN when no samples).
    pub max_v: f64,
}

impl EmergencyReport {
    /// Total discrete emergency events.
    pub fn events(&self) -> u64 {
        self.under_events + self.over_events
    }

    /// Whether any emergency occurred.
    pub fn any(&self) -> bool {
        self.emergency_cycles > 0
    }

    /// Fraction of cycles out of specification — Table 2's "emergency
    /// frequency". Zero when no cycles were observed.
    pub fn frequency(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.emergency_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Dumps the report into a telemetry recorder under `pdn.*` names.
    pub fn record_telemetry(&self, rec: &mut impl voltctl_telemetry::Recorder) {
        rec.counter("pdn.observed_cycles", self.total_cycles);
        rec.counter("pdn.emergency_cycles", self.emergency_cycles);
        rec.counter("pdn.under_cycles", self.under_cycles);
        rec.counter("pdn.over_cycles", self.over_cycles);
        rec.counter("pdn.under_events", self.under_events);
        rec.counter("pdn.over_events", self.over_events);
        if self.min_v.is_finite() {
            rec.value("pdn.min_v", self.min_v);
        }
        if self.max_v.is_finite() {
            rec.value("pdn.max_v", self.max_v);
        }
    }
}

/// A fixed-bin histogram of supply-voltage samples (Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageHistogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl VoltageHistogram {
    /// Creates a histogram spanning `[lo, hi)` volts with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "need at least one bin");
        VoltageHistogram {
            lo,
            hi,
            bins: vec![0; bins],
            below: 0,
            above: 0,
            total: 0,
        }
    }

    /// A convenient default for 1.0 V nominal: [0.90, 1.10) V, 100 bins
    /// (2 mV resolution).
    pub fn for_nominal_1v() -> Self {
        VoltageHistogram::new(0.90, 1.10, 100)
    }

    /// Records a sample.
    pub fn record(&mut self, volts: f64) {
        self.total += 1;
        if volts < self.lo {
            self.below += 1;
        } else if volts >= self.hi {
            self.above += 1;
        } else {
            let frac = (volts - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records every sample of a trace.
    pub fn record_all(&mut self, volts: &[f64]) {
        for &v in volts {
            self.record(v);
        }
    }

    /// Raw bin counts (ascending voltage).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// The `[lo, hi)` voltage range the bins span.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Converts into the telemetry crate's plain-data histogram form.
    pub fn to_histogram_data(&self) -> voltctl_telemetry::HistogramData {
        voltctl_telemetry::HistogramData {
            lo: self.lo,
            hi: self.hi,
            counts: self.bins.clone(),
            under: self.below,
            over: self.above,
        }
    }

    /// Stores the histogram into a telemetry recorder under `name`.
    pub fn record_telemetry(&self, rec: &mut impl voltctl_telemetry::Recorder, name: &'static str) {
        rec.histogram(name, self.to_histogram_data());
    }

    /// `(bin_center_volts, fraction_of_samples)` pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total = self.total.max(1) as f64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c as f64 / total))
            .collect()
    }

    /// Total recorded samples (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below/above the histogram range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// The standard deviation of the recorded in-range samples,
    /// approximated from bin centers. A measure of how "wide" a benchmark's
    /// voltage distribution is (ammp narrow, galgel wide in Fig. 10).
    pub fn spread(&self) -> f64 {
        let pts = self.normalized();
        let mean: f64 = pts.iter().map(|(v, p)| v * p).sum();
        let var: f64 = pts.iter().map(|(v, p)| (v - mean).powi(2) * p).sum();
        var.sqrt()
    }
}

impl voltctl_snap::Pack for VoltageHistogram {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.lo);
        w.put_f64(self.hi);
        self.bins.pack(w);
        w.put_u64(self.below);
        w.put_u64(self.above);
        w.put_u64(self.total);
    }
}

impl voltctl_snap::Unpack for VoltageHistogram {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let lo = r.get_f64()?;
        let hi = r.get_f64()?;
        let bins: Vec<u64> = voltctl_snap::Unpack::unpack(r)?;
        let below = r.get_u64()?;
        let above = r.get_u64()?;
        let total = r.get_u64()?;
        if !lo.is_finite() || !hi.is_finite() || lo >= hi || bins.is_empty() {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "voltage histogram geometry invalid: range [{lo}, {hi}), {} bins",
                bins.len()
            )));
        }
        Ok(VoltageHistogram {
            lo,
            hi,
            bins,
            below,
            above,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_bands() {
        let mon = VoltageMonitor::new(1.0, 0.05);
        assert_eq!(mon.classify(1.0), VoltageBand::Safe);
        assert_eq!(mon.classify(0.951), VoltageBand::Safe);
        assert_eq!(mon.classify(0.949), VoltageBand::UnderEmergency);
        assert_eq!(mon.classify(1.049), VoltageBand::Safe);
        assert_eq!(mon.classify(1.051), VoltageBand::OverEmergency);
    }

    #[test]
    fn events_count_entries_not_cycles() {
        let mut mon = VoltageMonitor::new(1.0, 0.05);
        mon.observe_all(&[0.94, 0.94, 0.94, 1.0, 0.94, 1.0]);
        let r = mon.report();
        assert_eq!(r.under_events, 2);
        assert_eq!(r.under_cycles, 4);
        assert_eq!(r.over_events, 0);
    }

    #[test]
    fn transition_under_to_over_counts_both() {
        let mut mon = VoltageMonitor::new(1.0, 0.05);
        mon.observe_all(&[0.90, 1.10]);
        let r = mon.report();
        assert_eq!(r.under_events, 1);
        assert_eq!(r.over_events, 1);
        assert_eq!(r.events(), 2);
    }

    #[test]
    fn frequency_is_fraction_of_cycles() {
        let mut mon = VoltageMonitor::new(1.0, 0.05);
        mon.observe_all(&[1.0, 1.0, 0.90, 1.0]);
        assert!((mon.report().frequency() - 0.25).abs() < 1e-12);
        assert!(mon.report().any());
    }

    #[test]
    fn empty_report_is_clean() {
        let mon = VoltageMonitor::new(1.0, 0.05);
        let r = mon.report();
        assert_eq!(r.frequency(), 0.0);
        assert!(!r.any());
        assert!(r.min_v.is_nan() && r.max_v.is_nan());
    }

    #[test]
    fn reset_clears_counters() {
        let mut mon = VoltageMonitor::new(1.0, 0.05);
        mon.observe(0.9);
        mon.reset();
        assert_eq!(mon.report().total_cycles, 0);
        assert_eq!(mon.report().events(), 0);
    }

    #[test]
    fn min_max_tracked() {
        let mut mon = VoltageMonitor::new(1.0, 0.05);
        mon.observe_all(&[0.98, 1.03, 0.96]);
        let r = mon.report();
        assert_eq!(r.min_v, 0.96);
        assert_eq!(r.max_v, 1.03);
    }

    #[test]
    fn histogram_bins_and_normalization() {
        let mut h = VoltageHistogram::new(0.9, 1.1, 20);
        h.record_all(&[0.95, 0.95, 1.05, 0.85, 1.15]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.out_of_range(), (1, 1));
        let sum: f64 = h.normalized().iter().map(|(_, p)| p).sum();
        assert!((sum - 3.0 / 5.0).abs() < 1e-12); // 3 in-range of 5
    }

    #[test]
    fn histogram_spread_orders_stable_vs_variable() {
        let mut narrow = VoltageHistogram::for_nominal_1v();
        let mut wide = VoltageHistogram::for_nominal_1v();
        for k in 0..1000 {
            narrow.record(1.0 + 0.001 * ((k % 3) as f64 - 1.0));
            wide.record(1.0 + 0.03 * (((k % 7) as f64 - 3.0) / 3.0));
        }
        assert!(wide.spread() > 3.0 * narrow.spread());
    }

    #[test]
    fn histogram_edge_sample_goes_to_last_bin() {
        let mut h = VoltageHistogram::new(0.0, 1.0, 10);
        h.record(0.999_999_9);
        assert_eq!(h.counts()[9], 1);
        h.record(1.0);
        assert_eq!(h.out_of_range().1, 1);
    }
}
