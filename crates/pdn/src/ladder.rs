//! Multi-stage RLC ladder model of the full power-delivery path.
//!
//! The paper's §6 notes that its second-order model "is somewhat more
//! abstract than the more detailed circuit models that packaging engineers
//! typically rely on" and calls cross-level validation important. This
//! module provides that next level of detail: an N-stage ladder —
//! regulator → board (bulk capacitors) → package → die — where each stage
//! contributes a series R-L path and a shunt capacitance, and the load is
//! drawn at the die node.
//!
//! [`LadderModel::fit_second_order`] extracts the equivalent [`PdnModel`]
//! (same DC resistance, die-level resonant frequency, and peak impedance),
//! and the `ablation_ladder` experiment compares the two across the
//! paper's characteristic inputs — quantifying how much the second-order
//! abstraction gives up (at mid frequencies: very little, which is the
//! paper's justification for using it).

use crate::matn::MatN;
use crate::second_order::{PdnError, PdnModel};

/// One ladder stage: a series R-L path into a shunt capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderStage {
    /// Series resistance (ohms) — includes the capacitor bank's ESR.
    pub r: f64,
    /// Series inductance (henries).
    pub l: f64,
    /// Shunt capacitance at the stage's output node (farads).
    pub c: f64,
}

/// The N-stage ladder network.
#[derive(Debug, Clone)]
pub struct LadderModel {
    stages: Vec<LadderStage>,
    clock_hz: f64,
    v_nominal: f64,
}

/// Streaming per-cycle simulator for a [`LadderModel`] (exact ZOH
/// discretization, like [`crate::PdnState`]).
#[derive(Debug, Clone)]
pub struct LadderState {
    ad: MatN,
    bd: Vec<f64>,
    x: Vec<f64>,
    v_nominal: f64,
    i_ref: f64,
    die_index: usize,
}

impl LadderModel {
    /// Builds a ladder from stages ordered regulator → die.
    ///
    /// # Errors
    ///
    /// Rejects empty ladders and non-positive element values.
    pub fn new(
        stages: Vec<LadderStage>,
        clock_hz: f64,
        v_nominal: f64,
    ) -> Result<LadderModel, PdnError> {
        if stages.is_empty() {
            return Err(PdnError::InvalidParameter("stages"));
        }
        for s in &stages {
            if !(s.r.is_finite() && s.r > 0.0) {
                return Err(PdnError::InvalidParameter("stage r"));
            }
            if !(s.l.is_finite() && s.l > 0.0) {
                return Err(PdnError::InvalidParameter("stage l"));
            }
            if !(s.c.is_finite() && s.c > 0.0) {
                return Err(PdnError::InvalidParameter("stage c"));
            }
        }
        if !(clock_hz.is_finite() && clock_hz > 0.0) {
            return Err(PdnError::InvalidParameter("clock_hz"));
        }
        if !(v_nominal.is_finite() && v_nominal > 0.0) {
            return Err(PdnError::InvalidParameter("v_nominal"));
        }
        Ok(LadderModel {
            stages,
            clock_hz,
            v_nominal,
        })
    }

    /// A representative three-stage path (board bulk capacitance, package,
    /// die) whose die-level resonance sits at the paper's 50 MHz with a
    /// comparable quality factor. ESRs are folded into the stage
    /// resistances.
    ///
    /// # Panics
    ///
    /// Never panics (the constants are valid).
    pub fn typical_three_stage() -> LadderModel {
        LadderModel::new(
            vec![
                // VRM → board: bulk electrolytics.
                LadderStage {
                    r: 0.25e-3,
                    l: 20.0e-9,
                    c: 500.0e-6,
                },
                // Board → package: ceramic banks.
                LadderStage {
                    r: 0.15e-3,
                    l: 60.0e-12,
                    c: 30.0e-6,
                },
                // Package → die: on-die decap with its ESR.
                LadderStage {
                    r: 0.45e-3,
                    l: 5.1e-12,
                    c: 2.0e-6,
                },
            ],
            3.0e9,
            1.0,
        )
        .expect("constants are valid")
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Total DC (series) resistance, ohms.
    pub fn r_dc(&self) -> f64 {
        self.stages.iter().map(|s| s.r).sum()
    }

    /// Nominal voltage, volts.
    pub fn v_nominal(&self) -> f64 {
        self.v_nominal
    }

    /// CPU clock, hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// The continuous-time state matrices. State layout:
    /// `[v_1..v_N, i_1..i_N]`; input = die load current; output = `v_N`.
    fn system(&self) -> (MatN, Vec<f64>) {
        let n = self.stages.len();
        let dim = 2 * n;
        let mut a = MatN::zeros(dim);
        // C_k dv_k/dt = i_k - i_{k+1} - u*[k == N]
        for k in 0..n {
            let c = self.stages[k].c;
            a.add_to(k, n + k, 1.0 / c);
            if k + 1 < n {
                a.add_to(k, n + k + 1, -1.0 / c);
            }
        }
        // L_k di_k/dt = v_{k-1} - v_k - R_k i_k   (v_0 = regulator = 0 dev)
        for k in 0..n {
            let s = self.stages[k];
            if k > 0 {
                a.add_to(n + k, k - 1, 1.0 / s.l);
            }
            a.add_to(n + k, k, -1.0 / s.l);
            a.add_to(n + k, n + k, -s.r / s.l);
        }
        let mut b = vec![0.0; dim];
        b[n - 1] = -1.0 / self.stages[n - 1].c;
        (a, b)
    }

    /// Exact zero-order-hold discretization at one CPU cycle per step.
    pub fn discretize(&self) -> LadderState {
        let (a, b) = self.system();
        let dt = 1.0 / self.clock_hz;
        let ad = a.scale(dt).expm();
        // Bd = A^-1 (Ad - I) B.
        let identity = MatN::identity(a.n());
        let rhs_mat = ad.add(&identity.scale(-1.0));
        let a_inv_rhs = a
            .solve(&rhs_mat)
            .expect("ladder state matrix is invertible");
        let bd = a_inv_rhs.mul_vec(&b);
        LadderState {
            ad,
            bd,
            x: vec![0.0; b.len()],
            v_nominal: self.v_nominal,
            i_ref: 0.0,
            die_index: self.stages.len() - 1,
        }
    }

    /// `|Z|` at the die node for frequency `f_hz`, measured in the time
    /// domain: drive a unit sinusoid and read the steady amplitude.
    pub fn impedance_at(&self, f_hz: f64) -> f64 {
        assert!(
            f_hz > 0.0 && f_hz < self.clock_hz / 2.0,
            "frequency out of range"
        );
        let mut state = self.discretize();
        let period_cycles = (self.clock_hz / f_hz).max(2.0);
        let warm = (30.0 * period_cycles) as usize;
        let measure = (10.0 * period_cycles) as usize;
        let w = 2.0 * std::f64::consts::PI * f_hz / self.clock_hz;
        let mut amp = 0.0f64;
        for t in 0..(warm + measure) {
            let i = (w * t as f64).sin();
            let v = state.step(i);
            if t >= warm {
                amp = amp.max((v - self.v_nominal).abs());
            }
        }
        amp
    }

    /// Numerically locates the die-level (mid-frequency) impedance peak in
    /// `[f_lo, f_hi]` hertz, returning `(f_peak, z_peak)`.
    pub fn mid_frequency_peak(&self, f_lo: f64, f_hi: f64) -> (f64, f64) {
        assert!(f_lo > 0.0 && f_hi > f_lo);
        let n = 40;
        let log_lo = f_lo.ln();
        let step = (f_hi.ln() - log_lo) / n as f64;
        let mut best = (f_lo, 0.0f64);
        for k in 0..=n {
            let f = (log_lo + step * k as f64).exp();
            let z = self.impedance_at(f);
            if z > best.1 {
                best = (f, z);
            }
        }
        best
    }

    /// Fits the equivalent second-order [`PdnModel`]: same DC resistance
    /// and the ladder's measured mid-frequency resonance and peak.
    ///
    /// # Errors
    ///
    /// Propagates fit errors (e.g. the measured peak not exceeding the DC
    /// resistance).
    pub fn fit_second_order(&self, f_lo: f64, f_hi: f64) -> Result<PdnModel, PdnError> {
        let (f0, z_pk) = self.mid_frequency_peak(f_lo, f_hi);
        PdnModel::builder()
            .r_dc(self.r_dc())
            .resonant_freq_hz(f0)
            .peak_impedance(z_pk)
            .clock_hz(self.clock_hz)
            .v_nominal(self.v_nominal)
            .build()
    }
}

impl LadderState {
    /// Sets the regulation-point current (amps) and resets transients.
    pub fn set_reference_current(&mut self, amps: f64) {
        self.i_ref = amps;
        self.reset();
    }

    /// Clears transient state.
    pub fn reset(&mut self) {
        self.x.fill(0.0);
    }

    /// Advances one cycle with die load `i_load` (amps); returns the die
    /// voltage (volts).
    pub fn step(&mut self, i_load: f64) -> f64 {
        let u = i_load - self.i_ref;
        let mut next = self.ad.mul_vec(&self.x);
        for (n, b) in next.iter_mut().zip(&self.bd) {
            *n += b * u;
        }
        self.x = next;
        self.v_nominal + self.x[self.die_index]
    }

    /// The die voltage right now.
    pub fn voltage(&self) -> f64 {
        self.v_nominal + self.x[self.die_index]
    }

    /// The nominal supply voltage this stepper regulates around.
    pub fn voltage_nominal(&self) -> f64 {
        self.v_nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> LadderModel {
        LadderModel::typical_three_stage()
    }

    #[test]
    fn dc_behavior_is_total_ir_drop() {
        let m = ladder();
        let mut s = m.discretize();
        let mut v = 0.0;
        // Drive well past the die/package transients; the board pole is
        // slow, so allow a generous settle.
        for _ in 0..3_000_000 {
            v = s.step(20.0);
        }
        let expected = m.v_nominal() - 20.0 * m.r_dc();
        assert!((v - expected).abs() < 1.0e-3, "v={v} expected≈{expected}");
    }

    #[test]
    fn die_resonance_sits_near_50mhz() {
        let m = ladder();
        let (f0, z_pk) = m.mid_frequency_peak(10.0e6, 300.0e6);
        assert!((30.0e6..90.0e6).contains(&f0), "die resonance at {f0}");
        assert!(z_pk > m.r_dc(), "peak {z_pk} must exceed DC {}", m.r_dc());
    }

    #[test]
    fn fit_matches_ladder_at_the_peak() {
        let m = ladder();
        let fit = m.fit_second_order(10.0e6, 300.0e6).unwrap();
        let (f0, z_pk) = m.mid_frequency_peak(10.0e6, 300.0e6);
        assert!((fit.resonant_freq_hz() - f0).abs() / f0 < 0.05);
        assert!((fit.peak_impedance() - z_pk).abs() / z_pk < 0.05);
        assert!((fit.r_dc() - m.r_dc()).abs() < 1e-12);
    }

    #[test]
    fn second_order_abstraction_tracks_resonant_train() {
        // The paper's justification: at mid frequencies the 2nd-order model
        // is an adequate stand-in for the detailed network.
        let m = ladder();
        let fit = m.fit_second_order(10.0e6, 300.0e6).unwrap();
        let period = fit.resonant_period_cycles();
        let mut ls = m.discretize();
        let mut fs = fit.discretize();
        let mut worst_ladder = 0.0f64;
        let mut worst_fit = 0.0f64;
        for t in 0..20 * period {
            let i = if t % period < period / 2 { 40.0 } else { 0.0 };
            worst_ladder = worst_ladder.max((ls.step(i) - 1.0).abs());
            worst_fit = worst_fit.max((fs.step(i) - 1.0).abs());
        }
        let rel = (worst_ladder - worst_fit).abs() / worst_ladder;
        assert!(
            rel < 0.30,
            "2nd-order fit should track the ladder at resonance: ladder {worst_ladder:.4} vs fit {worst_fit:.4}"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LadderModel::new(vec![], 3e9, 1.0).is_err());
        let bad = LadderStage {
            r: 0.0,
            l: 1e-9,
            c: 1e-6,
        };
        assert!(LadderModel::new(vec![bad], 3e9, 1.0).is_err());
    }

    #[test]
    fn reference_current_centers_voltage() {
        let m = ladder();
        let mut s = m.discretize();
        s.set_reference_current(15.0);
        let mut v = 0.0;
        for _ in 0..3_000_000 {
            v = s.step(15.0);
        }
        assert!((v - m.v_nominal()).abs() < 1e-6);
    }

    #[test]
    fn quiet_input_stays_nominal() {
        let m = ladder();
        let mut s = m.discretize();
        for _ in 0..1000 {
            let v = s.step(0.0);
            assert!((v - m.v_nominal()).abs() < 1e-12);
        }
        assert_eq!(s.voltage(), m.v_nominal());
    }
}
