//! The second-order linear model of a processor power supply network.
//!
//! The model follows the early-design-stage methodology the paper adopts
//! from Herrell & Beker: the network seen by the die is a series R-L supply
//! path (regulator to die) decoupled by a lumped on-die/package capacitance.
//! The load (the processor) draws a time-varying current `i(t)`; the die
//! voltage `v(t)` rings according to the underdamped second-order dynamics
//!
//! ```text
//!   Z(s) = (R + sL) / (s^2 LC + s RC + 1)
//! ```
//!
//! Three externally meaningful parameters pin the model down:
//!
//! * **DC resistance** `R` — the IR-drop slope (0.5 mOhm in the paper),
//! * **resonant frequency** `f0 = 1/(2 pi sqrt(LC))` — the mid-frequency
//!   package resonance (50 MHz in the paper),
//! * **peak impedance** `Z_pk = max_w |Z(jw)|` — the quantity the "target
//!   impedance" design rule constrains.
//!
//! [`PdnModel`] fits `L` and `C` from those three numbers, exposes the
//! analytic frequency-domain quantities, and produces the exact
//! zero-order-hold discretization used for per-cycle simulation.

use crate::state_space::PdnState;
use crate::{CLOCK_HZ, RESONANT_HZ, R_DC, TOLERANCE, V_NOMINAL};
use std::fmt;

/// Errors produced when constructing or calibrating a [`PdnModel`].
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// A physical parameter was non-positive, NaN, or otherwise outside its
    /// meaningful domain. The payload names the parameter.
    InvalidParameter(&'static str),
    /// The requested peak impedance is not achievable: it must strictly
    /// exceed the DC resistance for an underdamped fit to exist.
    PeakBelowDc {
        /// Requested peak impedance (ohms).
        peak: f64,
        /// DC resistance (ohms).
        r_dc: f64,
    },
    /// The numeric fit failed to converge (pathological parameters).
    FitFailed,
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::InvalidParameter(name) => {
                write!(f, "invalid model parameter: {name}")
            }
            PdnError::PeakBelowDc { peak, r_dc } => write!(
                f,
                "peak impedance {peak:.3e} ohm must exceed DC resistance {r_dc:.3e} ohm"
            ),
            PdnError::FitFailed => write!(f, "model fit failed to converge"),
        }
    }
}

impl std::error::Error for PdnError {}

/// A calibrated second-order model of a power delivery network.
///
/// Construct with [`PdnModel::builder`] (fit from R/f0/Z_pk) or
/// [`PdnModel::from_rlc`] (explicit element values). All getters are cheap;
/// the discretization is computed once per call to
/// [`discretize`](PdnModel::discretize).
///
/// # Example
///
/// ```
/// use voltctl_pdn::PdnModel;
///
/// # fn main() -> Result<(), voltctl_pdn::PdnError> {
/// let m = PdnModel::paper_default()?;
/// assert!((m.resonant_freq_hz() - 50.0e6).abs() / 50.0e6 < 1e-6);
/// assert!(m.q_factor() > 1.0); // underdamped: ringing is real
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PdnModel {
    r: f64,
    l: f64,
    c: f64,
    clock_hz: f64,
    v_nominal: f64,
    tolerance: f64,
}

/// Builder for [`PdnModel`]. See [`PdnModel::builder`].
#[derive(Debug, Clone)]
pub struct PdnModelBuilder {
    r_dc: f64,
    resonant_freq_hz: f64,
    peak_impedance: f64,
    clock_hz: f64,
    v_nominal: f64,
    tolerance: f64,
}

impl Default for PdnModelBuilder {
    fn default() -> Self {
        PdnModelBuilder {
            r_dc: R_DC,
            resonant_freq_hz: RESONANT_HZ,
            peak_impedance: 2.0e-3,
            clock_hz: CLOCK_HZ,
            v_nominal: V_NOMINAL,
            tolerance: TOLERANCE,
        }
    }
}

impl PdnModelBuilder {
    /// Sets the DC (series) resistance in ohms.
    pub fn r_dc(&mut self, ohms: f64) -> &mut Self {
        self.r_dc = ohms;
        self
    }

    /// Sets the package resonant frequency in hertz.
    pub fn resonant_freq_hz(&mut self, hz: f64) -> &mut Self {
        self.resonant_freq_hz = hz;
        self
    }

    /// Sets the peak impedance `max |Z(jw)|` in ohms.
    pub fn peak_impedance(&mut self, ohms: f64) -> &mut Self {
        self.peak_impedance = ohms;
        self
    }

    /// Sets the CPU clock in hertz (the discretization step is one cycle).
    pub fn clock_hz(&mut self, hz: f64) -> &mut Self {
        self.clock_hz = hz;
        self
    }

    /// Sets the nominal supply voltage in volts.
    pub fn v_nominal(&mut self, volts: f64) -> &mut Self {
        self.v_nominal = volts;
        self
    }

    /// Sets the allowed relative supply deviation (0.05 = +/-5%).
    pub fn tolerance(&mut self, fraction: f64) -> &mut Self {
        self.tolerance = fraction;
        self
    }

    /// Fits element values and builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for non-positive inputs and
    /// [`PdnError::PeakBelowDc`] when the requested peak impedance does not
    /// exceed the DC resistance.
    pub fn build(&self) -> Result<PdnModel, PdnError> {
        if !(self.r_dc.is_finite() && self.r_dc > 0.0) {
            return Err(PdnError::InvalidParameter("r_dc"));
        }
        if !(self.resonant_freq_hz.is_finite() && self.resonant_freq_hz > 0.0) {
            return Err(PdnError::InvalidParameter("resonant_freq_hz"));
        }
        if !(self.peak_impedance.is_finite() && self.peak_impedance > 0.0) {
            return Err(PdnError::InvalidParameter("peak_impedance"));
        }
        if !(self.clock_hz.is_finite() && self.clock_hz > 2.0 * self.resonant_freq_hz) {
            return Err(PdnError::InvalidParameter("clock_hz"));
        }
        if !(self.v_nominal.is_finite() && self.v_nominal > 0.0) {
            return Err(PdnError::InvalidParameter("v_nominal"));
        }
        if !(self.tolerance.is_finite() && self.tolerance > 0.0 && self.tolerance < 1.0) {
            return Err(PdnError::InvalidParameter("tolerance"));
        }
        if self.peak_impedance <= self.r_dc {
            return Err(PdnError::PeakBelowDc {
                peak: self.peak_impedance,
                r_dc: self.r_dc,
            });
        }

        let omega0 = 2.0 * std::f64::consts::PI * self.resonant_freq_hz;
        // Parameterize by the characteristic impedance X = sqrt(L/C), which
        // fixes L = X / w0 and C = 1 / (X w0). Peak impedance is strictly
        // increasing in X, so bisection converges.
        let peak_for = |x: f64| -> f64 {
            let l = x / omega0;
            let c = 1.0 / (x * omega0);
            peak_impedance_numeric(self.r_dc, l, c, omega0)
        };

        let mut lo = self.r_dc * 1e-3;
        let mut hi = self.r_dc;
        // Grow hi until it brackets the requested peak.
        let mut guard = 0;
        while peak_for(hi) < self.peak_impedance {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(PdnError::FitFailed);
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if peak_for(mid) < self.peak_impedance {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let x = 0.5 * (lo + hi);
        let l = x / omega0;
        let c = 1.0 / (x * omega0);

        let fitted = peak_for(x);
        if !fitted.is_finite() || (fitted - self.peak_impedance).abs() / self.peak_impedance > 1e-6
        {
            return Err(PdnError::FitFailed);
        }

        Ok(PdnModel {
            r: self.r_dc,
            l,
            c,
            clock_hz: self.clock_hz,
            v_nominal: self.v_nominal,
            tolerance: self.tolerance,
        })
    }
}

/// Numerically locates `max_w |Z(jw)|` by dense log scan plus parabolic
/// refinement around the best sample.
fn peak_impedance_numeric(r: f64, l: f64, c: f64, omega_hint: f64) -> f64 {
    let mag = |w: f64| impedance_magnitude(r, l, c, w);
    let lo = omega_hint * 0.05;
    let hi = omega_hint * 5.0;
    let n = 4000;
    let log_lo = lo.ln();
    let step = (hi.ln() - log_lo) / n as f64;
    let mut best_w = lo;
    let mut best = mag(lo);
    for i in 0..=n {
        let w = (log_lo + step * i as f64).exp();
        let m = mag(w);
        if m > best {
            best = m;
            best_w = w;
        }
    }
    // Golden-section refinement around the best grid point.
    let mut a = best_w * (-2.0 * step).exp();
    let mut b = best_w * (2.0 * step).exp();
    let phi = 0.618_033_988_749_894_8;
    let mut c1 = b - phi * (b - a);
    let mut c2 = a + phi * (b - a);
    let mut f1 = mag(c1);
    let mut f2 = mag(c2);
    for _ in 0..120 {
        if f1 < f2 {
            a = c1;
            c1 = c2;
            f1 = f2;
            c2 = a + phi * (b - a);
            f2 = mag(c2);
        } else {
            b = c2;
            c2 = c1;
            f2 = f1;
            c1 = b - phi * (b - a);
            f1 = mag(c1);
        }
    }
    mag(0.5 * (a + b)).max(best)
}

/// `|Z(jw)|` for the series-RL / shunt-C network.
fn impedance_magnitude(r: f64, l: f64, c: f64, w: f64) -> f64 {
    // Z = (R + jwL) / ((1 - w^2 LC) + jwRC)
    let num_re = r;
    let num_im = w * l;
    let den_re = 1.0 - w * w * l * c;
    let den_im = w * r * c;
    ((num_re * num_re + num_im * num_im) / (den_re * den_re + den_im * den_im)).sqrt()
}

impl PdnModel {
    /// Starts building a model from (R, f0, Z_pk) design parameters.
    pub fn builder() -> PdnModelBuilder {
        PdnModelBuilder::default()
    }

    /// Constructs a model directly from element values.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] when any element value or the
    /// clock is non-positive, or the clock undersamples the resonance.
    pub fn from_rlc(r: f64, l: f64, c: f64, clock_hz: f64) -> Result<PdnModel, PdnError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(PdnError::InvalidParameter("r"));
        }
        if !(l.is_finite() && l > 0.0) {
            return Err(PdnError::InvalidParameter("l"));
        }
        if !(c.is_finite() && c > 0.0) {
            return Err(PdnError::InvalidParameter("c"));
        }
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        if !(clock_hz.is_finite() && clock_hz > 2.0 * f0) {
            return Err(PdnError::InvalidParameter("clock_hz"));
        }
        Ok(PdnModel {
            r,
            l,
            c,
            clock_hz,
            v_nominal: V_NOMINAL,
            tolerance: TOLERANCE,
        })
    }

    /// The paper's reference package: 0.5 mOhm DC resistance, 50 MHz
    /// resonance, 2 mOhm peak impedance, 3 GHz clock, 1.0 V nominal, 5%
    /// tolerance.
    ///
    /// # Errors
    ///
    /// Propagates fit errors (none for these constants in practice).
    pub fn paper_default() -> Result<PdnModel, PdnError> {
        PdnModel::builder().build()
    }

    /// DC (series) resistance in ohms.
    pub fn r_dc(&self) -> f64 {
        self.r
    }

    /// Fitted inductance in henries.
    pub fn inductance(&self) -> f64 {
        self.l
    }

    /// Fitted capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.c
    }

    /// CPU clock in hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Nominal supply voltage in volts.
    pub fn v_nominal(&self) -> f64 {
        self.v_nominal
    }

    /// Allowed relative deviation from nominal (e.g. 0.05 for +/-5%).
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Allowed absolute deviation from nominal in volts.
    pub fn tolerance_volts(&self) -> f64 {
        self.tolerance * self.v_nominal
    }

    /// Resonant frequency `1 / (2 pi sqrt(LC))` in hertz.
    pub fn resonant_freq_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (self.l * self.c).sqrt())
    }

    /// Resonant period expressed in CPU clock cycles (60 cycles for the
    /// paper's 50 MHz resonance at 3 GHz).
    pub fn resonant_period_cycles(&self) -> usize {
        (self.clock_hz / self.resonant_freq_hz()).round() as usize
    }

    /// Characteristic impedance `sqrt(L/C)` in ohms.
    pub fn char_impedance(&self) -> f64 {
        (self.l / self.c).sqrt()
    }

    /// Quality factor `Q = sqrt(L/C) / R`.
    pub fn q_factor(&self) -> f64 {
        self.char_impedance() / self.r
    }

    /// Damping ratio `zeta = 1 / (2 Q)`; underdamped when < 1.
    pub fn damping_ratio(&self) -> f64 {
        1.0 / (2.0 * self.q_factor())
    }

    /// `|Z(j 2 pi f)|` in ohms at frequency `f_hz`.
    pub fn impedance_at(&self, f_hz: f64) -> f64 {
        impedance_magnitude(self.r, self.l, self.c, 2.0 * std::f64::consts::PI * f_hz)
    }

    /// Numerically computed peak impedance `max_f |Z|` in ohms.
    pub fn peak_impedance(&self) -> f64 {
        peak_impedance_numeric(
            self.r,
            self.l,
            self.c,
            2.0 * std::f64::consts::PI * self.resonant_freq_hz(),
        )
    }

    /// Returns a copy with the peak impedance scaled by `factor`,
    /// re-fitting L and C while preserving R, f0, clock, and voltage
    /// parameters. This is how the paper's "percent of target impedance"
    /// sweep (Table 2) is realized.
    ///
    /// # Errors
    ///
    /// Returns the underlying fit error when the scaled peak is infeasible
    /// (e.g. `factor` so small the peak falls below the DC resistance).
    pub fn scaled(&self, factor: f64) -> Result<PdnModel, PdnError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(PdnError::InvalidParameter("factor"));
        }
        PdnModel::builder()
            .r_dc(self.r)
            .resonant_freq_hz(self.resonant_freq_hz())
            .peak_impedance(self.peak_impedance() * factor)
            .clock_hz(self.clock_hz)
            .v_nominal(self.v_nominal)
            .tolerance(self.tolerance)
            .build()
    }

    /// Exact zero-order-hold discretization at one CPU cycle per step.
    ///
    /// The returned [`PdnState`] reports voltage relative to the regulation
    /// point: stepping it with a constant reference current yields exactly
    /// `v_nominal` in steady state.
    pub fn discretize(&self) -> PdnState {
        PdnState::new(self)
    }

    /// Steady-state worst-case voltage deviation (volts, absolute) under a
    /// full-swing square-wave current train of amplitude `delta_i` amps at
    /// the resonant frequency — the analytic worst case of Section 2.3.
    ///
    /// The train alternates between 0 and `delta_i` with 50% duty at the
    /// resonant period and is simulated until the per-period deviation
    /// envelope converges (or 400 periods).
    pub fn worst_case_deviation(&self, delta_i: f64) -> f64 {
        let period = self.resonant_period_cycles().max(2);
        let half = period / 2;
        let mut state = self.discretize();
        let mut worst = 0.0f64;
        let mut prev_period_worst = -1.0f64;
        for _period_idx in 0..400 {
            let mut this_period = 0.0f64;
            for k in 0..period {
                let i = if k < half { delta_i } else { 0.0 };
                let v = state.step(i);
                let dev = (v - self.v_nominal).abs();
                this_period = this_period.max(dev);
            }
            worst = worst.max(this_period);
            if (this_period - prev_period_worst).abs() < 1e-9 * self.v_nominal {
                break;
            }
            prev_period_worst = this_period;
        }
        worst
    }

    /// Calibrates a model to the paper's definition of **target impedance**:
    /// the peak impedance at which the analytic worst-case current swing of
    /// `delta_i` amps produces exactly the allowed deviation
    /// (`tolerance * v_nominal`). Emergencies are impossible at or below
    /// this impedance *by construction* (Table 2, leftmost column).
    ///
    /// # Errors
    ///
    /// Propagates construction errors; returns [`PdnError::FitFailed`] when
    /// no feasible peak exists for the given swing.
    pub fn calibrated_target(&self, delta_i: f64) -> Result<PdnModel, PdnError> {
        if !(delta_i.is_finite() && delta_i > 0.0) {
            return Err(PdnError::InvalidParameter("delta_i"));
        }
        let allowed = self.tolerance_volts();
        // The DC-only deviation already consumes R * delta_i; if that alone
        // exceeds the allowance no peak impedance works.
        if self.r * delta_i >= allowed {
            return Err(PdnError::FitFailed);
        }
        let dev_for = |z_pk: f64| -> Result<f64, PdnError> {
            let m = PdnModel::builder()
                .r_dc(self.r)
                .resonant_freq_hz(self.resonant_freq_hz())
                .peak_impedance(z_pk)
                .clock_hz(self.clock_hz)
                .v_nominal(self.v_nominal)
                .tolerance(self.tolerance)
                .build()?;
            Ok(m.worst_case_deviation(delta_i))
        };
        let mut lo = self.r * 1.001;
        let mut hi = self.r * 2.0;
        let mut guard = 0;
        while dev_for(hi)? < allowed {
            hi *= 2.0;
            guard += 1;
            if guard > 60 {
                return Err(PdnError::FitFailed);
            }
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if dev_for(mid)? < allowed {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let z = 0.5 * (lo + hi);
        PdnModel::builder()
            .r_dc(self.r)
            .resonant_freq_hz(self.resonant_freq_hz())
            .peak_impedance(z)
            .clock_hz(self.clock_hz)
            .v_nominal(self.v_nominal)
            .tolerance(self.tolerance)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_spec() {
        let m = PdnModel::paper_default().unwrap();
        assert!((m.r_dc() - 0.5e-3).abs() < 1e-12);
        assert!((m.resonant_freq_hz() - 50.0e6).abs() / 50.0e6 < 1e-9);
        assert!((m.peak_impedance() - 2.0e-3).abs() / 2.0e-3 < 1e-5);
        assert_eq!(m.resonant_period_cycles(), 60);
    }

    #[test]
    fn dc_impedance_equals_r() {
        let m = PdnModel::paper_default().unwrap();
        assert!((m.impedance_at(1.0) - m.r_dc()).abs() / m.r_dc() < 1e-6);
    }

    #[test]
    fn impedance_peaks_near_resonance() {
        let m = PdnModel::paper_default().unwrap();
        let at_res = m.impedance_at(m.resonant_freq_hz());
        let peak = m.peak_impedance();
        // The peak of this transfer function sits close to (slightly off) f0.
        assert!(at_res > 0.8 * peak);
        assert!(m.impedance_at(m.resonant_freq_hz() * 10.0) < 0.5 * peak);
        assert!(m.impedance_at(m.resonant_freq_hz() * 0.1) < 0.5 * peak);
    }

    #[test]
    fn underdamped_for_paper_parameters() {
        let m = PdnModel::paper_default().unwrap();
        assert!(m.damping_ratio() < 1.0);
        assert!(m.q_factor() > 1.0);
    }

    #[test]
    fn scaled_doubles_peak() {
        let m = PdnModel::paper_default().unwrap();
        let m2 = m.scaled(2.0).unwrap();
        assert!((m2.peak_impedance() - 2.0 * m.peak_impedance()).abs() / m.peak_impedance() < 1e-4);
        // R and f0 preserved.
        assert!((m2.r_dc() - m.r_dc()).abs() < 1e-15);
        assert!((m2.resonant_freq_hz() - m.resonant_freq_hz()).abs() / m.resonant_freq_hz() < 1e-6);
    }

    #[test]
    fn rejects_peak_below_dc() {
        let err = PdnModel::builder()
            .r_dc(1e-3)
            .peak_impedance(0.5e-3)
            .build()
            .unwrap_err();
        assert!(matches!(err, PdnError::PeakBelowDc { .. }));
    }

    #[test]
    fn rejects_nonpositive_parameters() {
        assert!(PdnModel::builder().r_dc(0.0).build().is_err());
        assert!(PdnModel::builder().resonant_freq_hz(-1.0).build().is_err());
        assert!(PdnModel::builder().clock_hz(1.0).build().is_err());
        assert!(PdnModel::from_rlc(0.0, 1e-9, 1e-6, 3e9).is_err());
    }

    #[test]
    fn worst_case_deviation_scales_linearly() {
        let m = PdnModel::paper_default().unwrap();
        let d1 = m.worst_case_deviation(10.0);
        let d2 = m.worst_case_deviation(20.0);
        assert!(
            (d2 - 2.0 * d1).abs() / d1 < 1e-6,
            "LTI system must be linear"
        );
    }

    #[test]
    fn worst_case_exceeds_single_step() {
        // Resonance build-up: the sustained train must be worse than the
        // response to one isolated step of the same height.
        let m = PdnModel::paper_default().unwrap();
        let delta_i = 30.0;
        let mut state = m.discretize();
        let mut single_worst = 0.0f64;
        for k in 0..2000 {
            let i = if k < 30 { delta_i } else { 0.0 };
            let v = state.step(i);
            single_worst = single_worst.max((v - m.v_nominal()).abs());
        }
        assert!(m.worst_case_deviation(delta_i) > single_worst * 1.05);
    }

    #[test]
    fn calibrated_target_hits_tolerance() {
        let m = PdnModel::paper_default().unwrap();
        let delta_i = 45.0;
        let cal = m.calibrated_target(delta_i).unwrap();
        let dev = cal.worst_case_deviation(delta_i);
        let allowed = cal.tolerance_volts();
        assert!(
            (dev - allowed).abs() / allowed < 1e-3,
            "worst case {dev} vs allowed {allowed}"
        );
    }

    #[test]
    fn calibration_fails_when_ir_drop_alone_exceeds_budget() {
        let m = PdnModel::builder()
            .r_dc(2.0e-3)
            .peak_impedance(4.0e-3)
            .build()
            .unwrap();
        // 2 mOhm * 40 A = 80 mV > 50 mV allowance.
        assert_eq!(m.calibrated_target(40.0).unwrap_err(), PdnError::FitFailed);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = PdnError::PeakBelowDc {
            peak: 1e-4,
            r_dc: 5e-4,
        };
        let msg = format!("{e}");
        assert!(msg.contains("peak impedance"));
        assert!(!format!("{:?}", PdnError::FitFailed).is_empty());
    }
}
