//! ITRS-2001 power-supply impedance trend data (the paper's Figure 1).
//!
//! The 2001 International Technology Roadmap for Semiconductors projects
//! supply voltage and maximum device current per technology generation; the
//! implied **target impedance** `Z = (tolerance * Vdd) / Imax` falls roughly
//! 2x every 3-5 years. The paper plots this relative to the 2001 value for
//! the cost-performance and high-performance market segments, observing
//! both the rapid decline and the narrowing gap between segments.
//!
//! The tables below encode the roadmap's projected `Vdd` and `Imax` per
//! year; relative impedances are derived, not hard-coded, so the derivation
//! is testable.

/// ITRS market segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Cost-performance (desktop-class) systems.
    CostPerformance,
    /// High-performance (server-class) systems.
    HighPerformance,
}

/// One roadmap generation: projected supply and maximum current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Generation {
    /// Roadmap year.
    pub year: u32,
    /// Projected supply voltage (volts).
    pub vdd: f64,
    /// Projected maximum device current (amps).
    pub i_max: f64,
}

/// ITRS-2001 projections for the cost-performance segment.
pub const COST_PERFORMANCE: &[Generation] = &[
    Generation {
        year: 2001,
        vdd: 1.1,
        i_max: 61.0,
    },
    Generation {
        year: 2002,
        vdd: 1.0,
        i_max: 71.0,
    },
    Generation {
        year: 2003,
        vdd: 1.0,
        i_max: 81.0,
    },
    Generation {
        year: 2004,
        vdd: 1.0,
        i_max: 92.0,
    },
    Generation {
        year: 2005,
        vdd: 0.9,
        i_max: 103.0,
    },
    Generation {
        year: 2006,
        vdd: 0.9,
        i_max: 112.0,
    },
    Generation {
        year: 2007,
        vdd: 0.7,
        i_max: 132.0,
    },
    Generation {
        year: 2010,
        vdd: 0.6,
        i_max: 160.0,
    },
    Generation {
        year: 2013,
        vdd: 0.5,
        i_max: 186.0,
    },
    Generation {
        year: 2016,
        vdd: 0.4,
        i_max: 214.0,
    },
];

/// ITRS-2001 projections for the high-performance segment.
pub const HIGH_PERFORMANCE: &[Generation] = &[
    Generation {
        year: 2001,
        vdd: 1.1,
        i_max: 118.0,
    },
    Generation {
        year: 2002,
        vdd: 1.0,
        i_max: 139.0,
    },
    Generation {
        year: 2003,
        vdd: 1.0,
        i_max: 149.0,
    },
    Generation {
        year: 2004,
        vdd: 1.0,
        i_max: 158.0,
    },
    Generation {
        year: 2005,
        vdd: 0.9,
        i_max: 170.0,
    },
    Generation {
        year: 2006,
        vdd: 0.9,
        i_max: 180.0,
    },
    Generation {
        year: 2007,
        vdd: 0.7,
        i_max: 218.0,
    },
    Generation {
        year: 2010,
        vdd: 0.6,
        i_max: 251.0,
    },
    Generation {
        year: 2013,
        vdd: 0.5,
        i_max: 288.0,
    },
    Generation {
        year: 2016,
        vdd: 0.4,
        i_max: 310.0,
    },
];

/// The generations table for a segment.
pub fn generations(segment: Segment) -> &'static [Generation] {
    match segment {
        Segment::CostPerformance => COST_PERFORMANCE,
        Segment::HighPerformance => HIGH_PERFORMANCE,
    }
}

/// Absolute target impedance `(tolerance * vdd) / i_max` in ohms for one
/// generation, at the paper's +/-5% tolerance.
pub fn target_impedance(g: &Generation) -> f64 {
    0.05 * g.vdd / g.i_max
}

/// The Figure 1 series: `(year, impedance relative to the segment's 2001
/// value)`, descending toward zero as the roadmap progresses.
pub fn relative_impedance(segment: Segment) -> Vec<(u32, f64)> {
    let gens = generations(segment);
    let base = target_impedance(&gens[0]);
    gens.iter()
        .map(|g| (g.year, target_impedance(g) / base))
        .collect()
}

/// Ratio of cost-performance to high-performance target impedance per year:
/// the paper's observation that the two curves converge (ratio shrinks
/// toward 1) over the roadmap.
pub fn segment_gap() -> Vec<(u32, f64)> {
    COST_PERFORMANCE
        .iter()
        .zip(HIGH_PERFORMANCE)
        .map(|(cp, hp)| {
            debug_assert_eq!(cp.year, hp.year);
            (cp.year, target_impedance(cp) / target_impedance(hp))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_parallel_and_chronological() {
        assert_eq!(COST_PERFORMANCE.len(), HIGH_PERFORMANCE.len());
        for pair in COST_PERFORMANCE.windows(2) {
            assert!(pair[0].year < pair[1].year);
        }
        for (cp, hp) in COST_PERFORMANCE.iter().zip(HIGH_PERFORMANCE) {
            assert_eq!(cp.year, hp.year);
        }
    }

    #[test]
    fn relative_impedance_starts_at_one_and_falls() {
        for seg in [Segment::CostPerformance, Segment::HighPerformance] {
            let series = relative_impedance(seg);
            assert!((series[0].1 - 1.0).abs() < 1e-12);
            for pair in series.windows(2) {
                assert!(
                    pair[1].1 < pair[0].1,
                    "{seg:?}: impedance must fall monotonically"
                );
            }
            assert!(series.last().unwrap().1 < 0.25, "2x every 3-5 years");
        }
    }

    #[test]
    fn high_performance_is_stricter() {
        for (cp, hp) in COST_PERFORMANCE.iter().zip(HIGH_PERFORMANCE) {
            assert!(target_impedance(hp) < target_impedance(cp));
        }
    }

    #[test]
    fn segment_gap_narrows() {
        let gap = segment_gap();
        assert!(gap.first().unwrap().1 > gap.last().unwrap().1);
        for (_, ratio) in gap {
            assert!(ratio > 1.0, "cost-performance is always the looser target");
        }
    }

    #[test]
    fn halving_cadence_is_three_to_five_years() {
        // Find when relative impedance first drops below 0.5: should be
        // within 3-5 years of 2001.
        let series = relative_impedance(Segment::HighPerformance);
        let half_year = series
            .iter()
            .find(|(_, z)| *z < 0.5)
            .map(|(y, _)| *y)
            .unwrap();
        assert!((2004..=2007).contains(&half_year), "halved by {half_year}");
    }
}
