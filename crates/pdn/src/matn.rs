//! Small dense matrix arithmetic for the multi-stage ladder model.
//!
//! The second-order model needs only 2x2 algebra ([`crate::mat2`]); the
//! N-stage ladder network of [`crate::ladder`] needs general small dense
//! matrices (a 4-stage ladder is 8x8). Sizes stay in the tens, so simple
//! O(n^3) routines with partial pivoting are exact enough and fast enough.

/// A small dense square matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MatN {
    n: usize,
    data: Vec<f64>,
}

impl MatN {
    pub fn zeros(n: usize) -> MatN {
        MatN {
            n,
            data: vec![0.0; n * n],
        }
    }

    pub fn identity(n: usize) -> MatN {
        let mut m = MatN::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    pub fn mul(&self, o: &MatN) -> MatN {
        assert_eq!(self.n, o.n);
        let n = self.n;
        let mut out = MatN::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += a * o.data[k * n + j];
                }
            }
        }
        out
    }

    pub fn add(&self, o: &MatN) -> MatN {
        assert_eq!(self.n, o.n);
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&o.data) {
            *a += b;
        }
        out
    }

    pub fn scale(&self, s: f64) -> MatN {
        let mut out = self.clone();
        for a in &mut out.data {
            *a *= s;
        }
        out
    }

    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n);
        let n = self.n;
        let mut out = vec![0.0; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += self.data[i * n + j] * vj;
            }
            *slot = acc;
        }
        out
    }

    pub fn norm_inf(&self) -> f64 {
        let n = self.n;
        (0..n)
            .map(|i| (0..n).map(|j| self.get(i, j).abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Solves `self * X = B` via Gaussian elimination with partial
    /// pivoting. Returns `None` for (numerically) singular matrices.
    pub fn solve(&self, b: &MatN) -> Option<MatN> {
        assert_eq!(self.n, b.n);
        let n = self.n;
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Pivot.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, a.get(r, col).abs()))
                .max_by(|p, q| p.1.partial_cmp(&q.1).expect("no NaNs in PDN matrices"))?;
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let t = a.get(col, j);
                    a.set(col, j, a.get(pivot_row, j));
                    a.set(pivot_row, j, t);
                    let t = x.get(col, j);
                    x.set(col, j, x.get(pivot_row, j));
                    x.set(pivot_row, j, t);
                }
            }
            let inv = 1.0 / a.get(col, col);
            for j in 0..n {
                a.set(col, j, a.get(col, j) * inv);
                x.set(col, j, x.get(col, j) * inv);
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.get(r, col);
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a.add_to(r, j, -f * a.get(col, j));
                    x.add_to(r, j, -f * x.get(col, j));
                }
            }
        }
        Some(x)
    }

    /// Matrix exponential via scaling-and-squaring with a Taylor series —
    /// the same scheme as the 2x2 case, adequate for the well-conditioned
    /// `A * dt` matrices the ladder produces.
    pub fn expm(&self) -> MatN {
        let norm = self.norm_inf();
        let squarings = if norm > 0.5 {
            (norm / 0.5).log2().ceil().max(0.0) as u32
        } else {
            0
        };
        let squarings = squarings.min(40);
        let scaled = if squarings > 0 {
            self.scale(1.0 / 2f64.powi(squarings as i32))
        } else {
            self.clone()
        };

        let mut term = MatN::identity(self.n);
        let mut sum = MatN::identity(self.n);
        for k in 1..=20 {
            term = term.mul(&scaled).scale(1.0 / k as f64);
            sum = sum.add(&term);
        }
        let mut result = sum;
        for _ in 0..squarings {
            result = result.mul(&result);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_and_mul() {
        let i = MatN::identity(4);
        let mut m = MatN::zeros(4);
        for r in 0..4 {
            for c in 0..4 {
                m.set(r, c, (r * 4 + c) as f64);
            }
        }
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn solve_recovers_inverse() {
        let mut m = MatN::zeros(3);
        let vals = [[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
        for (r, row) in vals.iter().enumerate() {
            for (c, &x) in row.iter().enumerate() {
                m.set(r, c, x);
            }
        }
        let inv = m.solve(&MatN::identity(3)).expect("invertible");
        let prod = m.mul(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!(approx(prod.get(r, c), want, 1e-12), "({r},{c})");
            }
        }
    }

    #[test]
    fn singular_solve_is_none() {
        let mut m = MatN::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        assert!(m.solve(&MatN::identity(2)).is_none());
    }

    #[test]
    fn expm_matches_2x2_rotation() {
        let w = 0.45;
        let mut m = MatN::zeros(2);
        m.set(0, 1, -w);
        m.set(1, 0, w);
        let e = m.expm();
        assert!(approx(e.get(0, 0), w.cos(), 1e-12));
        assert!(approx(e.get(0, 1), -w.sin(), 1e-12));
        assert!(approx(e.get(1, 0), w.sin(), 1e-12));
        assert!(approx(e.get(1, 1), w.cos(), 1e-12));
    }

    #[test]
    fn expm_diagonal_large_norm() {
        let mut m = MatN::zeros(3);
        for (i, v) in [4.0, -3.0, 0.5].iter().enumerate() {
            m.set(i, i, *v);
        }
        let e = m.expm();
        for (i, v) in [4.0f64, -3.0, 0.5].iter().enumerate() {
            assert!(approx(e.get(i, i), v.exp(), 1e-9), "diag {i}");
        }
    }

    #[test]
    fn mul_vec_matches_mul() {
        let mut m = MatN::zeros(3);
        for r in 0..3 {
            for c in 0..3 {
                m.set(r, c, ((r + 1) * (c + 2)) as f64);
            }
        }
        let v = vec![1.0, -2.0, 3.0];
        for (r, &g) in m.mul_vec(&v).iter().enumerate() {
            let want: f64 = (0..3).map(|c| m.get(r, c) * v[c]).sum();
            assert_eq!(g, want);
        }
    }
}
