//! Exact per-cycle discretization of the second-order PDN model.
//!
//! [`PdnState`] advances the network one CPU clock cycle at a time under a
//! zero-order-hold assumption: the load current is constant within a cycle.
//! The discrete update matrices come from the analytic matrix exponential,
//! so stepping is *exact* for piecewise-constant current (no integration
//! error accumulates), and costs a handful of multiply-adds per cycle —
//! the fast path for multi-million-cycle closed-loop simulations.
//!
//! Voltages are reported relative to a *regulation point*: a reference
//! current at which the regulator holds the supply exactly at nominal
//! (the paper assumes the regulator maintains 1.0 V at the processor's
//! minimum power level).

use crate::mat2::{Mat2, Vec2};
use crate::second_order::PdnModel;

/// Streaming per-cycle simulator for a [`PdnModel`].
///
/// Created by [`PdnModel::discretize`]. Feed the per-cycle load current
/// (amps) to [`step`](PdnState::step) and read back the die voltage (volts).
///
/// # Example
///
/// ```
/// use voltctl_pdn::PdnModel;
///
/// # fn main() -> Result<(), voltctl_pdn::PdnError> {
/// let model = PdnModel::paper_default()?;
/// let mut state = model.discretize();
/// // A sustained 20 A draw settles to nominal minus the IR drop.
/// let mut v = 0.0;
/// for _ in 0..20_000 {
///     v = state.step(20.0);
/// }
/// assert!((v - (model.v_nominal() - 20.0 * model.r_dc())).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PdnState {
    ad: Mat2,
    bd: Vec2,
    x: Vec2,
    v_nominal: f64,
    i_ref: f64,
}

impl PdnState {
    /// Builds the discrete stepper for `model`. Equivalent to
    /// [`PdnModel::discretize`].
    pub fn new(model: &PdnModel) -> Self {
        let r = model.r_dc();
        let l = model.inductance();
        let c = model.capacitance();
        let dt = 1.0 / model.clock_hz();

        // Deviation dynamics around the regulation point:
        //   d/dt [v; iL] = A [v; iL] + B u,   u = i_load - i_ref
        let a = Mat2::new(0.0, 1.0 / c, -1.0 / l, -r / l);
        let b = Vec2::new(-1.0 / c, 0.0);

        let ad = a.scale(dt).expm();
        // Bd = A^-1 (Ad - I) B; A is invertible since det(A) = 1/(LC) != 0.
        let a_inv = a
            .inverse()
            .expect("second-order PDN state matrix is invertible");
        let bd = a_inv.mul(&ad.add(&Mat2::IDENTITY.scale(-1.0))).mul_vec(b);

        PdnState {
            ad,
            bd,
            x: Vec2::default(),
            v_nominal: model.v_nominal(),
            i_ref: 0.0,
        }
    }

    /// Sets the regulation point: the load current (amps) at which the
    /// regulator holds the supply exactly at nominal. The paper pins this
    /// to the processor's minimum power level. Also resets transient state.
    pub fn set_reference_current(&mut self, amps: f64) {
        self.i_ref = amps;
        self.reset();
    }

    /// The configured regulation-point current in amps.
    pub fn reference_current(&self) -> f64 {
        self.i_ref
    }

    /// Clears all transient state (voltage returns to nominal).
    pub fn reset(&mut self) {
        self.x = Vec2::default();
    }

    /// Advances one CPU cycle with load current `i_load` (amps) held for the
    /// whole cycle, returning the die voltage (volts) at the end of the
    /// cycle.
    #[inline]
    pub fn step(&mut self, i_load: f64) -> f64 {
        let u = i_load - self.i_ref;
        self.x = self.ad.mul_vec(self.x).add(self.bd.scale(u));
        self.v_nominal + self.x.x
    }

    /// The die voltage (volts) right now, without advancing time.
    pub fn voltage(&self) -> f64 {
        self.v_nominal + self.x.x
    }

    /// The nominal supply voltage this stepper regulates around.
    pub fn voltage_nominal(&self) -> f64 {
        self.v_nominal
    }

    /// The voltage deviation from nominal (volts) right now.
    pub fn deviation(&self) -> f64 {
        self.x.x
    }

    /// Simulates an entire current trace, returning the voltage trace.
    /// Leaves the internal state at the end of the trace.
    pub fn run(&mut self, currents: &[f64]) -> Vec<f64> {
        currents.iter().map(|&i| self.step(i)).collect()
    }

    /// Rebuilds a stepper from two consecutive *observed* voltage
    /// deviations and the load current applied between them.
    ///
    /// The network state is two-dimensional (die voltage and inductor
    /// current) but only the voltage is observable, so external captures —
    /// e.g. the flight recorder's emergency windows, which log voltages and
    /// currents per cycle — cannot store the full state directly. Given
    /// `dev_prev` (deviation from nominal at cycle *t*), `dev_now` (at
    /// *t + 1*), and `i_load` held over that cycle, the hidden component is
    /// recovered by inverting one row of the discrete update, positioning
    /// the returned stepper exactly at cycle *t + 1*. This is what turns a
    /// recorded emergency capture back into a replayable checkpoint.
    ///
    /// Returns `None` when the model's discretization makes the hidden
    /// state unobservable (degenerate `ad.b`), which does not happen for
    /// physical RLC parameters.
    pub fn reconstruct(
        model: &PdnModel,
        dev_prev: f64,
        dev_now: f64,
        i_load: f64,
        i_ref: f64,
    ) -> Option<PdnState> {
        let mut state = PdnState::new(model);
        state.i_ref = i_ref;
        let (ad, bd) = (state.ad, state.bd);
        if ad.b == 0.0 || !ad.b.is_finite() {
            return None;
        }
        let u = i_load - i_ref;
        // Invert the voltage row of x_{t+1} = Ad x_t + Bd u for the hidden
        // component, then advance the full state one cycle.
        let y_prev = (dev_now - ad.a * dev_prev - bd.x * u) / ad.b;
        let y_now = ad.c * dev_prev + ad.d * y_prev + bd.y * u;
        state.x = Vec2::new(dev_now, y_now);
        Some(state)
    }
}

/// Structure-of-arrays stepper for W supply networks advanced in lockstep.
///
/// Built by [`PdnLanes::gather`] from per-lane [`PdnState`]s and scattered
/// back with [`PdnLanes::scatter`]. Each lane's update is the *identical*
/// floating-point expression [`PdnState::step`] evaluates — same operations,
/// same association — so a lane's voltage sequence is bit-for-bit the
/// sequence the scalar stepper would produce. The per-field layout
/// (coefficients, state components, and reference currents each contiguous)
/// lets [`step_lane`](PdnLanes::step_lane) inline into a branch-free
/// multi-lane pass.
#[derive(Debug, Clone, Default)]
pub struct PdnLanes {
    ad_a: Vec<f64>,
    ad_b: Vec<f64>,
    ad_c: Vec<f64>,
    ad_d: Vec<f64>,
    bd_x: Vec<f64>,
    bd_y: Vec<f64>,
    x_x: Vec<f64>,
    x_y: Vec<f64>,
    v_nominal: Vec<f64>,
    i_ref: Vec<f64>,
}

impl PdnLanes {
    /// Transposes per-lane steppers into the lane layout.
    pub fn gather(states: &[PdnState]) -> PdnLanes {
        PdnLanes {
            ad_a: states.iter().map(|s| s.ad.a).collect(),
            ad_b: states.iter().map(|s| s.ad.b).collect(),
            ad_c: states.iter().map(|s| s.ad.c).collect(),
            ad_d: states.iter().map(|s| s.ad.d).collect(),
            bd_x: states.iter().map(|s| s.bd.x).collect(),
            bd_y: states.iter().map(|s| s.bd.y).collect(),
            x_x: states.iter().map(|s| s.x.x).collect(),
            x_y: states.iter().map(|s| s.x.y).collect(),
            v_nominal: states.iter().map(|s| s.v_nominal).collect(),
            i_ref: states.iter().map(|s| s.i_ref).collect(),
        }
    }

    /// The number of lanes.
    pub fn width(&self) -> usize {
        self.x_x.len()
    }

    /// Lane `lane`'s nominal supply voltage.
    pub fn v_nominal(&self, lane: usize) -> f64 {
        self.v_nominal[lane]
    }

    /// Reconstructs lane `lane` as a standalone [`PdnState`] carrying the
    /// exact bit patterns the lane currently holds.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn scatter(&self, lane: usize) -> PdnState {
        PdnState {
            ad: Mat2 {
                a: self.ad_a[lane],
                b: self.ad_b[lane],
                c: self.ad_c[lane],
                d: self.ad_d[lane],
            },
            bd: Vec2::new(self.bd_x[lane], self.bd_y[lane]),
            x: Vec2::new(self.x_x[lane], self.x_y[lane]),
            v_nominal: self.v_nominal[lane],
            i_ref: self.i_ref[lane],
        }
    }

    /// Advances lane `lane` one cycle under load current `i_load`,
    /// returning the die voltage — the same expression as
    /// [`PdnState::step`], term for term.
    #[inline]
    pub fn step_lane(&mut self, lane: usize, i_load: f64) -> f64 {
        let u = i_load - self.i_ref[lane];
        let (xx, xy) = (self.x_x[lane], self.x_y[lane]);
        let nx = self.ad_a[lane] * xx + self.ad_b[lane] * xy + self.bd_x[lane] * u;
        let ny = self.ad_c[lane] * xx + self.ad_d[lane] * xy + self.bd_y[lane] * u;
        self.x_x[lane] = nx;
        self.x_y[lane] = ny;
        self.v_nominal[lane] + nx
    }
}

impl voltctl_snap::Pack for PdnState {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.ad.pack(w);
        self.bd.pack(w);
        self.x.pack(w);
        w.put_f64(self.v_nominal);
        w.put_f64(self.i_ref);
    }
}

impl voltctl_snap::Unpack for PdnState {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(PdnState {
            ad: voltctl_snap::Unpack::unpack(r)?,
            bd: voltctl_snap::Unpack::unpack(r)?,
            x: voltctl_snap::Unpack::unpack(r)?,
            v_nominal: r.get_f64()?,
            i_ref: r.get_f64()?,
        })
    }
}

/// The model's *pulse response*: the voltage-deviation sequence produced by
/// a 1 A load pulse held for exactly one cycle. Under zero-order hold this
/// is the convolution kernel that reproduces the state-space output exactly
/// (see [`crate::convolve`]).
///
/// Returns `n` samples in volts-per-amp (ohms).
pub fn pulse_response(model: &PdnModel, n: usize) -> Vec<f64> {
    let mut state = model.discretize();
    let mut h = Vec::with_capacity(n);
    for k in 0..n {
        let i = if k == 0 { 1.0 } else { 0.0 };
        h.push(state.step(i) - model.v_nominal());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::second_order::PdnModel;

    fn model() -> PdnModel {
        PdnModel::paper_default().unwrap()
    }

    #[test]
    fn settles_to_ir_drop_under_constant_current() {
        let m = model();
        let mut s = m.discretize();
        let mut v = 0.0;
        for _ in 0..50_000 {
            v = s.step(30.0);
        }
        let expected = m.v_nominal() - 30.0 * m.r_dc();
        assert!((v - expected).abs() < 1e-6, "v={v} expected={expected}");
    }

    #[test]
    fn reference_current_shifts_operating_point() {
        let m = model();
        let mut s = m.discretize();
        s.set_reference_current(15.0);
        let mut v = 0.0;
        for _ in 0..50_000 {
            v = s.step(15.0);
        }
        assert!((v - m.v_nominal()).abs() < 1e-9);
    }

    #[test]
    fn zero_current_stays_at_nominal() {
        let m = model();
        let mut s = m.discretize();
        for _ in 0..1000 {
            let v = s.step(0.0);
            assert!((v - m.v_nominal()).abs() < 1e-12);
        }
    }

    #[test]
    fn step_response_rings_at_resonant_period() {
        let m = model();
        let mut s = m.discretize();
        let trace: Vec<f64> = (0..600).map(|_| s.step(40.0) - m.v_nominal()).collect();
        // Find successive local minima of the ringing; their spacing should
        // be close to the resonant period (60 cycles).
        let mut minima = Vec::new();
        for k in 1..trace.len() - 1 {
            if trace[k] < trace[k - 1] && trace[k] < trace[k + 1] {
                minima.push(k);
            }
        }
        assert!(minima.len() >= 3, "ringing expected, got {minima:?}");
        let gap = (minima[1] - minima[0]) as f64;
        let period = m.resonant_period_cycles() as f64;
        assert!(
            (gap - period).abs() <= 2.0,
            "ringing period {gap} vs resonant period {period}"
        );
    }

    #[test]
    fn step_response_overshoots_for_underdamped_system() {
        let m = model();
        let mut s = m.discretize();
        let final_value = -40.0 * m.r_dc();
        let mut worst = 0.0f64;
        for _ in 0..10_000 {
            let dev = s.step(40.0) - m.v_nominal();
            worst = worst.min(dev);
        }
        assert!(
            worst < 1.2 * final_value,
            "undershoot {worst} should exceed final {final_value}"
        );
    }

    #[test]
    fn pulse_response_decays() {
        let m = model();
        let h = pulse_response(&m, 4000);
        let head: f64 = h[..100].iter().map(|x| x.abs()).fold(0.0, f64::max);
        let tail: f64 = h[3900..].iter().map(|x| x.abs()).fold(0.0, f64::max);
        assert!(head > 0.0);
        assert!(
            tail < head * 1e-3,
            "pulse response must decay: {tail} vs {head}"
        );
    }

    #[test]
    fn reset_restores_nominal() {
        let m = model();
        let mut s = m.discretize();
        for _ in 0..100 {
            s.step(40.0);
        }
        assert!((s.voltage() - m.v_nominal()).abs() > 1e-6);
        s.reset();
        assert!((s.voltage() - m.v_nominal()).abs() < 1e-15);
        assert_eq!(s.deviation(), 0.0);
    }

    #[test]
    fn run_matches_step_by_step() {
        let m = model();
        let trace: Vec<f64> = (0..500)
            .map(|k| if k % 60 < 30 { 40.0 } else { 5.0 })
            .collect();
        let mut s1 = m.discretize();
        let mut s2 = m.discretize();
        let v1 = s1.run(&trace);
        let v2: Vec<f64> = trace.iter().map(|&i| s2.step(i)).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn wire_round_trip_resumes_bitwise() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, Unpack};
        let m = model();
        let mut s = m.discretize();
        s.set_reference_current(12.0);
        for k in 0..500 {
            s.step(if k % 60 < 30 { 40.0 } else { 5.0 });
        }
        let mut w = ByteWriter::new();
        s.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut back = PdnState::unpack(&mut r).unwrap();
        assert!(r.finished());
        for k in 0..500 {
            let i = if k % 7 == 0 { 35.0 } else { 8.0 };
            // Bitwise: both steppers run the same float operations on the
            // same bit patterns.
            assert_eq!(back.step(i).to_bits(), s.step(i).to_bits());
        }
    }

    #[test]
    fn reconstruct_recovers_hidden_state_from_observations() {
        let m = model();
        let mut s = m.discretize();
        s.set_reference_current(10.0);
        let mut devs = vec![s.deviation()];
        let trace: Vec<f64> = (0..300)
            .map(|k| if k % 45 < 20 { 38.0 } else { 6.0 })
            .collect();
        for &i in &trace {
            s.step(i);
            devs.push(s.deviation());
        }
        // Rebuild from the last observed pair and the current between them.
        let n = trace.len();
        let mut rebuilt = PdnState::reconstruct(
            &m,
            devs[n - 1],
            devs[n],
            trace[n - 1],
            s.reference_current(),
        )
        .expect("physical model is observable");
        assert!((rebuilt.voltage() - s.voltage()).abs() < 1e-9);
        // Both continue in lockstep (tolerance: reconstruction divides by
        // ad.b, so it is exact only to floating-point conditioning).
        for k in 0..2000 {
            let i = if k % 33 < 11 { 42.0 } else { 4.0 };
            let (va, vb) = (s.step(i), rebuilt.step(i));
            assert!((va - vb).abs() < 1e-9, "cycle {k}: {va} vs {vb}");
        }
    }

    #[test]
    fn lanes_match_scalar_steppers_bitwise() {
        let m = model();
        let mut scalars: Vec<PdnState> = (0..5)
            .map(|k| {
                let mut s = m.discretize();
                s.set_reference_current(4.0 + k as f64);
                // Desynchronize the transients so every lane carries a
                // distinct state into the gather.
                for j in 0..(50 * (k + 1)) {
                    s.step(if j % 13 < 5 { 38.0 } else { 7.0 });
                }
                s
            })
            .collect();
        let mut lanes = PdnLanes::gather(&scalars);
        assert_eq!(lanes.width(), 5);
        // Gathered state scatters back identically before any stepping.
        for (k, s) in scalars.iter().enumerate() {
            assert_eq!(lanes.scatter(k).voltage().to_bits(), s.voltage().to_bits());
        }
        for cycle in 0..3_000u64 {
            for (k, s) in scalars.iter_mut().enumerate() {
                let i = ((cycle * 17 + k as u64 * 5) % 41) as f64;
                let vs = s.step(i);
                let vl = lanes.step_lane(k, i);
                assert_eq!(vs.to_bits(), vl.to_bits(), "lane {k} cycle {cycle}");
            }
        }
        // And the post-run scatter still continues bit-for-bit.
        let mut back = lanes.scatter(3);
        for cycle in 0..500 {
            let i = ((cycle * 7) % 29) as f64;
            assert_eq!(back.step(i).to_bits(), scalars[3].step(i).to_bits());
        }
    }

    #[test]
    fn voltage_peek_does_not_advance() {
        let m = model();
        let mut s = m.discretize();
        s.step(40.0);
        let v1 = s.voltage();
        let v2 = s.voltage();
        assert_eq!(v1, v2);
    }
}
