//! Spectrum analysis for current traces.
//!
//! The dI/dt stressmark auto-tuner needs to know *where in the frequency
//! domain* a candidate loop concentrates its current energy, so it can steer
//! the loop period onto the package resonance. This module provides:
//!
//! * [`goertzel`] — single-bin spectral magnitude (cheap, exact frequency),
//! * [`fft`] / [`power_spectrum`] — radix-2 FFT for full-spectrum views,
//! * [`dominant_frequency`] — the non-DC bin with the most energy.
//!
//! Frequencies are expressed as *cycles per sample* (multiply by the CPU
//! clock to get hertz).

use std::f64::consts::PI;

/// A complex number in rectangular form (internal to this module's API
/// surface only through [`fft`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from rectangular parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude `sqrt(re^2 + im^2)`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

/// Complex product (used by the FFT butterflies and the frequency-domain
/// convolution in [`crate::convolve`]).
impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// In-place iterative radix-2 FFT.
///
/// # Panics
///
/// Panics unless the input length is a power of two (and at least 1).
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT length must be a power of two"
    );
    if n == 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u.add(v);
                data[i + j + len / 2] = u.sub(v);
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// In-place inverse radix-2 FFT, normalized so `ifft(fft(x)) == x` up to
/// rounding. Implemented by the conjugation identity
/// `ifft(X) = conj(fft(conj(X))) / n`, reusing the forward butterflies.
///
/// # Panics
///
/// Panics unless the input length is a power of two (and at least 1).
pub fn ifft(data: &mut [Complex]) {
    for c in data.iter_mut() {
        c.im = -c.im;
    }
    fft(data);
    let scale = 1.0 / data.len() as f64;
    for c in data.iter_mut() {
        c.re *= scale;
        c.im *= -scale;
    }
}

/// Power spectrum of a real signal: returns `n/2` magnitudes for bins
/// `0..n/2`, where bin `k` corresponds to frequency `k / n` cycles/sample.
/// The input is zero-padded to the next power of two. The mean (DC) is
/// removed before transforming so bin energies reflect *variation* only.
pub fn power_spectrum(signal: &[f64]) -> Vec<f64> {
    if signal.is_empty() {
        return Vec::new();
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let n = signal.len().next_power_of_two();
    let mut buf: Vec<Complex> = signal
        .iter()
        .map(|&x| Complex::new(x - mean, 0.0))
        .chain(std::iter::repeat(Complex::default()))
        .take(n)
        .collect();
    fft(&mut buf);
    buf[..n / 2].iter().map(|c| c.norm()).collect()
}

/// Goertzel single-bin DFT magnitude at `freq` cycles/sample (0 < freq < 0.5).
/// The mean is removed first. Cheaper than a full FFT when only one
/// frequency matters — exactly the stressmark tuner's case.
///
/// # Panics
///
/// Panics if `freq` is outside `(0, 0.5)`.
pub fn goertzel(signal: &[f64], freq: f64) -> f64 {
    assert!(
        freq > 0.0 && freq < 0.5,
        "freq must be in (0, 0.5) cycles/sample"
    );
    if signal.is_empty() {
        return 0.0;
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let w = 2.0 * PI * freq;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &x in signal {
        let s = (x - mean) + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2;
    power.max(0.0).sqrt()
}

/// The frequency (cycles/sample) of the strongest non-DC spectral bin, or
/// `None` for signals too short to analyze (< 4 samples) or with no
/// variation.
pub fn dominant_frequency(signal: &[f64]) -> Option<f64> {
    if signal.len() < 4 {
        return None;
    }
    let spec = power_spectrum(signal);
    let n = signal.len().next_power_of_two();
    let (best_bin, best_mag) =
        spec.iter()
            .enumerate()
            .skip(1)
            .fold(
                (0usize, 0.0f64),
                |acc, (k, &m)| if m > acc.1 { (k, m) } else { acc },
            );
    if best_mag <= 1e-12 {
        return None;
    }
    Some(best_bin as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for c in &data {
            assert!((c.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_sinusoid_peaks_at_its_bin() {
        let n = 256;
        let k = 16;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * k as f64 * t as f64 / n as f64).sin())
            .collect();
        let spec = power_spectrum(&signal);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 64;
        let signal: Vec<Complex> = (0..n)
            .map(|t| Complex::new(((t * 13) % 7) as f64 - 3.0, ((t * 5) % 11) as f64))
            .collect();
        let mut buf = signal.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in signal.iter().zip(&buf) {
            assert!((a.re - b.re).abs() < 1e-12, "{} vs {}", a.re, b.re);
            assert!((a.im - b.im).abs() < 1e-12, "{} vs {}", a.im, b.im);
        }
    }

    #[test]
    fn ifft_of_flat_spectrum_is_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 16];
        ifft(&mut data);
        assert!((data[0].re - 1.0).abs() < 1e-12);
        for c in &data[1..] {
            assert!(c.norm() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 6];
        fft(&mut data);
    }

    #[test]
    fn goertzel_matches_fft_bin() {
        let n = 128;
        let k = 10;
        let signal: Vec<f64> = (0..n)
            .map(|t| 3.0 * (2.0 * PI * k as f64 * t as f64 / n as f64).cos() + 5.0)
            .collect();
        let g = goertzel(&signal, k as f64 / n as f64);
        let spec = power_spectrum(&signal);
        assert!((g - spec[k]).abs() / spec[k] < 1e-9);
    }

    #[test]
    fn goertzel_ignores_dc() {
        let signal = vec![42.0; 64];
        assert!(goertzel(&signal, 0.25) < 1e-9);
    }

    #[test]
    fn dominant_frequency_finds_square_wave_fundamental() {
        // 60-sample period square wave = 1/60 cycles/sample fundamental.
        let signal: Vec<f64> = (0..1024)
            .map(|t| if t % 60 < 30 { 40.0 } else { 5.0 })
            .collect();
        let f = dominant_frequency(&signal).unwrap();
        assert!(
            (f - 1.0 / 60.0).abs() < 0.002,
            "dominant {f} vs expected {}",
            1.0 / 60.0
        );
    }

    #[test]
    fn dominant_frequency_of_constant_is_none() {
        assert_eq!(dominant_frequency(&vec![3.0; 64]), None);
        assert_eq!(dominant_frequency(&[1.0, 2.0]), None);
    }

    #[test]
    fn power_spectrum_of_empty_is_empty() {
        assert!(power_spectrum(&[]).is_empty());
    }

    #[test]
    fn parseval_energy_agreement() {
        // Sum of squared magnitudes over all bins equals n * signal energy
        // (mean removed). Check with the full complex FFT.
        let signal: Vec<f64> = (0..64).map(|t| ((t * 7) % 13) as f64).collect();
        let mean = signal.iter().sum::<f64>() / 64.0;
        let time_energy: f64 = signal.iter().map(|x| (x - mean).powi(2)).sum();
        let mut buf: Vec<Complex> = signal
            .iter()
            .map(|&x| Complex::new(x - mean, 0.0))
            .collect();
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.norm().powi(2)).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-9);
    }
}
