//! Concurrency oracle for the bounded sharded-LRU kernel cache.
//!
//! The serve daemon shares one kernel cache across all workers, so two
//! properties carry the determinism contract under load:
//!
//! 1. **Bitwise identity** — whatever a thread gets from
//!    `cached_kernel_for` must be bitwise-identical to a fresh
//!    single-threaded derivation for that model class, no matter how
//!    many threads race the first derivation or how much
//!    quantization-level jitter their model parameters carry.
//! 2. **Bounded residency** — the cache never holds more entries than
//!    its configured capacity, no matter how many distinct model
//!    classes are pushed through it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use voltctl_pdn::cache::{
    cached_kernel_count, cached_kernel_for, kernel_cache_capacity, ShardedLru,
};
use voltctl_pdn::convolve::kernel_for;
use voltctl_pdn::PdnModel;

/// Perturbs the low mantissa bits of a model's L and C — inside the
/// quantization quantum, so every jittered twin must fold onto the same
/// cache entry.
fn jittered(base: &PdnModel, salt: u64) -> PdnModel {
    PdnModel::from_rlc(
        base.r_dc(),
        f64::from_bits(base.inductance().to_bits() ^ (salt % 8)),
        f64::from_bits(base.capacitance().to_bits() ^ (salt / 8 % 8)),
        base.clock_hz(),
    )
    .expect("sub-quantum jitter keeps the model valid")
}

#[test]
fn eight_thread_hammer_returns_bitwise_identical_kernels() {
    let base = PdnModel::paper_default().unwrap();
    // Two model classes x two tolerances, hammered concurrently with
    // per-thread jitter. Fresh derivations (the oracle) computed once,
    // single-threaded, up front.
    let scaled = base.scaled(2.0).unwrap();
    let classes: Vec<(PdnModel, f64, Vec<f64>)> = [(base, 1e-5), (scaled, 1e-7)]
        .into_iter()
        .map(|(m, tol)| {
            let fresh = kernel_for(&m, tol);
            (m, tol, fresh)
        })
        .collect();
    let classes = Arc::new(classes);

    let mismatches = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for thread in 0..8u64 {
            let classes = Arc::clone(&classes);
            let mismatches = Arc::clone(&mismatches);
            scope.spawn(move || {
                for round in 0..32u64 {
                    for (model, tol, fresh) in classes.iter() {
                        let twin = jittered(model, thread * 131 + round);
                        let cached = cached_kernel_for(&twin, *tol);
                        if *cached != *fresh {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "every concurrent lookup must be bitwise-identical to a fresh derivation"
    );
    assert!(cached_kernel_count() <= kernel_cache_capacity());
}

#[test]
fn eviction_never_exceeds_the_configured_bound_under_contention() {
    // A tiny dedicated LRU hammered with far more distinct keys than
    // capacity, from 8 threads, with the invariant checked *during* the
    // storm, not just after it.
    let lru: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(4, 4));
    let capacity = lru.capacity();
    let violations = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for thread in 0..8u64 {
            let lru = Arc::clone(&lru);
            let violations = Arc::clone(&violations);
            scope.spawn(move || {
                for i in 0..512u64 {
                    let key = thread * 1_000 + i % 64;
                    let got = lru.get_or_insert_with(&key, || key * 3);
                    if got != key * 3 {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    if lru.len() > capacity {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(violations.load(Ordering::Relaxed), 0);
    assert!(lru.len() <= capacity);
}

#[test]
fn cached_and_fresh_kernels_agree_after_eviction_churn() {
    // Push enough distinct classes through the shared cache to force
    // evictions, then verify a re-derived (possibly evicted) class is
    // still served bitwise-correct.
    let base = PdnModel::paper_default().unwrap();
    let probe_tol = 3e-4;
    let fresh = kernel_for(&base, probe_tol);
    assert_eq!(*cached_kernel_for(&base, probe_tol), fresh);
    // Churn: many tolerances on one model produce many distinct keys.
    for i in 0..(kernel_cache_capacity() + 8) {
        let tol = 1e-2 / (i as f64 + 1.0);
        let _ = cached_kernel_for(&base, tol);
        assert!(cached_kernel_count() <= kernel_cache_capacity());
    }
    assert_eq!(
        *cached_kernel_for(&base, probe_tol),
        fresh,
        "a re-derived entry must match its pre-eviction bytes"
    );
}
