//! Property-based tests of the PDN model's analytic guarantees.

use proptest::prelude::*;
use voltctl_pdn::{waveform, PdnModel, VoltageHistogram, VoltageMonitor};

/// Valid design-parameter triples: R in [0.1, 2] mΩ, f0 in [20, 200] MHz,
/// Z_pk a multiple (1.2x–12x) of R.
fn spec_strategy() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.1e-3..2.0e-3, 20.0e6..200.0e6, 1.2..12.0)
        .prop_map(|(r, f0, ratio)| (r, f0, r * ratio))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fit is faithful: a model built from (R, f0, Z_pk) measures back
    /// those same quantities.
    #[test]
    fn fit_roundtrip((r, f0, z_pk) in spec_strategy()) {
        let m = PdnModel::builder()
            .r_dc(r)
            .resonant_freq_hz(f0)
            .peak_impedance(z_pk)
            .clock_hz(3.0e9)
            .build()
            .expect("valid spec fits");
        prop_assert!((m.r_dc() - r).abs() / r < 1e-12);
        prop_assert!((m.resonant_freq_hz() - f0).abs() / f0 < 1e-9);
        prop_assert!((m.peak_impedance() - z_pk).abs() / z_pk < 1e-4);
        // DC impedance equals R and every |Z| is at most the peak.
        prop_assert!((m.impedance_at(1.0) - r).abs() / r < 1e-6);
        for mult in [0.3, 0.7, 1.0, 1.5, 4.0] {
            prop_assert!(m.impedance_at(f0 * mult) <= z_pk * (1.0 + 1e-6));
        }
    }

    /// Stability: any bounded current trace produces a bounded voltage —
    /// the deviation never exceeds what a worst-case resonant train of the
    /// same amplitude achieves (plus slack for transient alignment).
    #[test]
    fn bounded_input_bounded_output(
        (r, f0, z_pk) in spec_strategy(),
        trace in prop::collection::vec(0.0f64..50.0, 50..400),
    ) {
        let m = PdnModel::builder()
            .r_dc(r)
            .resonant_freq_hz(f0)
            .peak_impedance(z_pk)
            .clock_hz(3.0e9)
            .build()
            .expect("valid spec fits");
        let bound = m.worst_case_deviation(50.0) * 1.05;
        let mut state = m.discretize();
        for &i in &trace {
            let v = state.step(i);
            prop_assert!((v - m.v_nominal()).abs() <= bound,
                "deviation {} exceeded worst-case bound {}", (v - m.v_nominal()).abs(), bound);
        }
    }

    /// Time-invariance: delaying the input delays the output identically.
    #[test]
    fn time_invariance(
        trace in prop::collection::vec(0.0f64..40.0, 10..120),
        delay in 1usize..50,
    ) {
        let m = PdnModel::paper_default().unwrap();
        let mut s1 = m.discretize();
        let direct: Vec<f64> = trace.iter().map(|&i| s1.step(i)).collect();

        let mut s2 = m.discretize();
        for _ in 0..delay {
            s2.step(0.0);
        }
        let delayed: Vec<f64> = trace.iter().map(|&i| s2.step(i)).collect();
        for (a, b) in direct.iter().zip(&delayed) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Monitor counters are consistent: cycles partition into bands,
    /// events never exceed cycles, min/max bracket every sample.
    #[test]
    fn monitor_invariants(volts in prop::collection::vec(0.85f64..1.15, 1..300)) {
        let mut mon = VoltageMonitor::new(1.0, 0.05);
        mon.observe_all(&volts);
        let r = mon.report();
        prop_assert_eq!(r.total_cycles, volts.len() as u64);
        prop_assert_eq!(r.emergency_cycles, r.under_cycles + r.over_cycles);
        prop_assert!(r.under_events <= r.under_cycles);
        prop_assert!(r.over_events <= r.over_cycles);
        let min = volts.iter().cloned().fold(f64::MAX, f64::min);
        let max = volts.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(r.min_v, min);
        prop_assert_eq!(r.max_v, max);
        prop_assert!(r.frequency() <= 1.0);
    }

    /// Histogram conservation: every sample lands in exactly one place.
    #[test]
    fn histogram_conserves_samples(volts in prop::collection::vec(0.80f64..1.20, 1..500)) {
        let mut h = VoltageHistogram::for_nominal_1v();
        h.record_all(&volts);
        let binned: u64 = h.counts().iter().sum();
        let (below, above) = h.out_of_range();
        prop_assert_eq!(binned + below + above, volts.len() as u64);
        prop_assert_eq!(h.total(), volts.len() as u64);
    }

    /// Waveform stats are exact for pulse trains built by the library.
    #[test]
    fn pulse_train_stats(
        base in 0.0f64..20.0,
        amp in 1.0f64..50.0,
        width in 1usize..30,
        pulses in 1usize..6,
    ) {
        let period = width * 2;
        let len = 10 + pulses * period + 10;
        let t = waveform::pulse_train(base, amp, 10, width, period, pulses, len);
        let s = waveform::stats(&t).unwrap();
        prop_assert_eq!(s.min, base);
        prop_assert_eq!(s.max, base + amp);
        // (base + amp) - base need not equal amp exactly in floating point.
        prop_assert!((s.max_step - amp).abs() < 1e-9);
        let high = t.iter().filter(|&&x| x > base).count();
        prop_assert_eq!(high, width * pulses);
    }
}
