//! Randomized tests of the PDN model's analytic guarantees, driven by the
//! workspace's deterministic RNG (seeded generation replaces proptest —
//! the build environment has no registry access).

use voltctl_pdn::{waveform, PdnModel, VoltageHistogram, VoltageMonitor};
use voltctl_telemetry::Rng;

/// Valid design-parameter triples: R in [0.1, 2] mΩ, f0 in [20, 200] MHz,
/// Z_pk a multiple (1.2x–12x) of R.
fn random_spec(rng: &mut Rng) -> (f64, f64, f64) {
    let r = rng.range_f64(0.1e-3, 2.0e-3);
    let f0 = rng.range_f64(20.0e6, 200.0e6);
    let ratio = rng.range_f64(1.2, 12.0);
    (r, f0, r * ratio)
}

fn random_trace(rng: &mut Rng, min_len: usize, max_len: usize, amp: f64) -> Vec<f64> {
    let len = rng.range_i64(min_len as i64, max_len as i64) as usize;
    (0..len).map(|_| rng.range_f64(0.0, amp)).collect()
}

/// The fit is faithful: a model built from (R, f0, Z_pk) measures back
/// those same quantities.
#[test]
fn fit_roundtrip() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0xF17 + seed);
        let (r, f0, z_pk) = random_spec(&mut rng);
        let m = PdnModel::builder()
            .r_dc(r)
            .resonant_freq_hz(f0)
            .peak_impedance(z_pk)
            .clock_hz(3.0e9)
            .build()
            .expect("valid spec fits");
        assert!((m.r_dc() - r).abs() / r < 1e-12, "seed {seed}");
        assert!((m.resonant_freq_hz() - f0).abs() / f0 < 1e-9, "seed {seed}");
        assert!(
            (m.peak_impedance() - z_pk).abs() / z_pk < 1e-4,
            "seed {seed}"
        );
        // DC impedance equals R and every |Z| is at most the peak.
        assert!((m.impedance_at(1.0) - r).abs() / r < 1e-6, "seed {seed}");
        for mult in [0.3, 0.7, 1.0, 1.5, 4.0] {
            assert!(
                m.impedance_at(f0 * mult) <= z_pk * (1.0 + 1e-6),
                "seed {seed}"
            );
        }
    }
}

/// Stability: any bounded current trace produces a bounded voltage —
/// the deviation never exceeds what a worst-case resonant train of the
/// same amplitude achieves (plus slack for transient alignment).
#[test]
fn bounded_input_bounded_output() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0xB1B0 + seed);
        let (r, f0, z_pk) = random_spec(&mut rng);
        let trace = random_trace(&mut rng, 50, 400, 50.0);
        let m = PdnModel::builder()
            .r_dc(r)
            .resonant_freq_hz(f0)
            .peak_impedance(z_pk)
            .clock_hz(3.0e9)
            .build()
            .expect("valid spec fits");
        let bound = m.worst_case_deviation(50.0) * 1.05;
        let mut state = m.discretize();
        for &i in &trace {
            let v = state.step(i);
            assert!(
                (v - m.v_nominal()).abs() <= bound,
                "seed {seed}: deviation {} exceeded worst-case bound {}",
                (v - m.v_nominal()).abs(),
                bound
            );
        }
    }
}

/// Time-invariance: delaying the input delays the output identically.
#[test]
fn time_invariance() {
    let m = PdnModel::paper_default().unwrap();
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x71AE + seed);
        let trace = random_trace(&mut rng, 10, 120, 40.0);
        let delay = rng.range_i64(1, 50) as usize;
        let mut s1 = m.discretize();
        let direct: Vec<f64> = trace.iter().map(|&i| s1.step(i)).collect();

        let mut s2 = m.discretize();
        for _ in 0..delay {
            s2.step(0.0);
        }
        let delayed: Vec<f64> = trace.iter().map(|&i| s2.step(i)).collect();
        for (a, b) in direct.iter().zip(&delayed) {
            assert!((a - b).abs() < 1e-12, "seed {seed}");
        }
    }
}

/// Monitor counters are consistent: cycles partition into bands,
/// events never exceed cycles, min/max bracket every sample.
#[test]
fn monitor_invariants() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x303 + seed);
        let len = rng.range_i64(1, 300) as usize;
        let volts: Vec<f64> = (0..len).map(|_| rng.range_f64(0.85, 1.15)).collect();
        let mut mon = VoltageMonitor::new(1.0, 0.05);
        mon.observe_all(&volts);
        let r = mon.report();
        assert_eq!(r.total_cycles, volts.len() as u64, "seed {seed}");
        assert_eq!(
            r.emergency_cycles,
            r.under_cycles + r.over_cycles,
            "seed {seed}"
        );
        assert!(r.under_events <= r.under_cycles, "seed {seed}");
        assert!(r.over_events <= r.over_cycles, "seed {seed}");
        let min = volts.iter().cloned().fold(f64::MAX, f64::min);
        let max = volts.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(r.min_v, min, "seed {seed}");
        assert_eq!(r.max_v, max, "seed {seed}");
        assert!(r.frequency() <= 1.0, "seed {seed}");
    }
}

/// Histogram conservation: every sample lands in exactly one place.
#[test]
fn histogram_conserves_samples() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x415 + seed);
        let len = rng.range_i64(1, 500) as usize;
        let volts: Vec<f64> = (0..len).map(|_| rng.range_f64(0.80, 1.20)).collect();
        let mut h = VoltageHistogram::for_nominal_1v();
        h.record_all(&volts);
        let binned: u64 = h.counts().iter().sum();
        let (below, above) = h.out_of_range();
        assert_eq!(binned + below + above, volts.len() as u64, "seed {seed}");
        assert_eq!(h.total(), volts.len() as u64, "seed {seed}");
    }
}

/// Waveform stats are exact for pulse trains built by the library.
#[test]
fn pulse_train_stats() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x9A15 + seed);
        let base = rng.range_f64(0.0, 20.0);
        let amp = rng.range_f64(1.0, 50.0);
        let width = rng.range_i64(1, 30) as usize;
        let pulses = rng.range_i64(1, 6) as usize;
        let period = width * 2;
        let len = 10 + pulses * period + 10;
        let t = waveform::pulse_train(base, amp, 10, width, period, pulses, len);
        let s = waveform::stats(&t).unwrap();
        assert_eq!(s.min, base, "seed {seed}");
        assert_eq!(s.max, base + amp, "seed {seed}");
        // (base + amp) - base need not equal amp exactly in floating point.
        assert!((s.max_step - amp).abs() < 1e-9, "seed {seed}");
        let high = t.iter().filter(|&&x| x > base).count();
        assert_eq!(high, width * pulses, "seed {seed}");
    }
}
