//! Differential-oracle suite for the convolution gears.
//!
//! The workspace carries three independent implementations of the same
//! mathematical object — direct convolution, overlap-save FFT
//! convolution, and the streaming ring-buffer convolver — plus the
//! state-space stepper they all approximate. Any disagreement between
//! them is a bug in exactly one of them, which makes cross-checking on
//! random inputs a complete oracle: no expected values need to be
//! hand-computed, and a failure shrinks to a minimal kernel/trace pair
//! that pinpoints the divergence (a ring-mask off-by-one in `Convolver`
//! shrinks to a trace of a handful of samples).

use voltctl_check::{check, ensure, f64_in, i64_in, vec_f64, Config};
use voltctl_pdn::cache::cached_kernel_for;
use voltctl_pdn::convolve::{convolve_full, convolve_full_fft, kernel_for, Convolver};
use voltctl_pdn::PdnModel;

/// |x - y| <= tol * max(1, |x|, |y|): relative on large signals, absolute
/// near zero (supply voltages sit near 1.0, so effectively relative).
fn close(x: f64, y: f64, tol: f64) -> bool {
    (x - y).abs() <= tol * 1.0_f64.max(x.abs()).max(y.abs())
}

fn ensure_all_close(a: &[f64], b: &[f64], tol: f64, what: &str) -> Result<(), String> {
    ensure!(
        a.len() == b.len(),
        "{what}: {} vs {} samples",
        a.len(),
        b.len()
    );
    for (n, (&x, &y)) in a.iter().zip(b).enumerate() {
        ensure!(close(x, y, tol), "{what}: cycle {n}: {x} vs {y}");
    }
    Ok(())
}

/// The three gears must agree on arbitrary signed kernels and arbitrary
/// traces — not just physical PDN kernels. Failures shrink toward a
/// short kernel and a near-empty trace.
#[test]
fn gears_agree_on_random_kernels_and_traces() {
    let gen = (
        vec_f64(1, 48, -1e-3, 1e-3), // kernel taps, signed
        vec_f64(0, 160, 0.0, 60.0),  // current trace (amps)
    );
    check(
        "oracle.convolution.gears-agree",
        &Config::cases(96, 0x0AC1),
        &gen,
        |(kernel, trace)| {
            let direct = convolve_full(kernel, trace, 1.0);
            let fft = convolve_full_fft(kernel, trace, 1.0);
            ensure_all_close(&direct, &fft, 1e-9, "direct vs fft")?;
            let mut conv = Convolver::new(kernel.clone(), 1.0);
            let streamed: Vec<f64> = trace.iter().map(|&i| conv.step(i)).collect();
            ensure_all_close(&direct, &streamed, 1e-9, "direct vs streaming")?;
            Ok(())
        },
    );
}

/// The streaming convolver's ring survives arbitrary interleavings of
/// `step` and `reset` — after a reset it must behave exactly like a
/// fresh convolver on the remaining trace.
#[test]
fn streaming_reset_equals_fresh_start() {
    let gen = (
        vec_f64(1, 24, -1e-3, 1e-3),
        vec_f64(1, 96, 0.0, 60.0),
        f64_in(0.0, 1.0), // where in the trace to reset
    );
    check(
        "oracle.convolution.reset-equals-fresh",
        &Config::cases(64, 0x0AC2),
        &gen,
        |(kernel, trace, frac)| {
            let cut = ((trace.len() as f64) * frac) as usize;
            let mut warm = Convolver::new(kernel.clone(), 1.0);
            for &i in &trace[..cut.min(trace.len())] {
                warm.step(i);
            }
            warm.reset();
            let mut fresh = Convolver::new(kernel.clone(), 1.0);
            for (n, &i) in trace.iter().enumerate() {
                let a = warm.step(i);
                let b = fresh.step(i);
                ensure!(a == b, "cycle {n} after reset: {a} vs {b}");
            }
            Ok(())
        },
    );
}

/// Every gear tracks the state-space reference on a tolerance-derived
/// kernel — the property the convolution path exists to uphold.
#[test]
fn gears_track_the_state_space_reference() {
    let model = PdnModel::paper_default().unwrap();
    let kernel = kernel_for(&model, 1e-10);
    let gen = vec_f64(1, 400, 0.0, 60.0);
    check(
        "oracle.convolution.matches-state-space",
        &Config::cases(48, 0x0AC3),
        &gen,
        |trace| {
            let mut ss = model.discretize();
            let exact: Vec<f64> = trace.iter().map(|&i| ss.step(i)).collect();
            let direct = convolve_full(&kernel, trace, model.v_nominal());
            ensure_all_close(&exact, &direct, 1e-7, "state-space vs direct")?;
            let fft = convolve_full_fft(&kernel, trace, model.v_nominal());
            ensure_all_close(&exact, &fft, 1e-7, "state-space vs fft")?;
            let mut conv = Convolver::new(kernel.clone(), model.v_nominal());
            let streamed: Vec<f64> = trace.iter().map(|&i| conv.step(i)).collect();
            ensure_all_close(&exact, &streamed, 1e-7, "state-space vs streaming")?;
            Ok(())
        },
    );
}

/// A cache hit must hand back taps bitwise identical to a fresh
/// derivation for the same (model, tolerance) — the cache may never
/// substitute "close enough" taps for the real thing.
#[test]
fn cached_kernels_are_bitwise_identical_to_fresh_derivation() {
    let base = PdnModel::paper_default().unwrap();
    let gen = (
        f64_in(0.6, 4.0), // impedance scale
        i64_in(3, 10),    // rel_tol exponent: 1e-3 .. 1e-9
    );
    check(
        "oracle.kernel.cache-bitwise",
        &Config::cases(48, 0x0AC4),
        &gen,
        |&(scale, exponent)| {
            let model = base
                .scaled(scale)
                .map_err(|e| format!("scaled({scale}): {e}"))?;
            let rel_tol = 10f64.powi(-(exponent as i32));
            let fresh = kernel_for(&model, rel_tol);
            let cached = cached_kernel_for(&model, rel_tol);
            ensure!(
                cached.len() == fresh.len(),
                "scale {scale} tol {rel_tol}: cached {} taps vs fresh {}",
                cached.len(),
                fresh.len()
            );
            for (k, (&c, &f)) in cached.iter().zip(&fresh).enumerate() {
                ensure!(
                    c.to_bits() == f.to_bits(),
                    "scale {scale} tol {rel_tol}: tap {k} differs: {c} vs {f}"
                );
            }
            // And a second lookup must be a true hit on the same taps.
            let again = cached_kernel_for(&model, rel_tol);
            ensure!(
                std::sync::Arc::ptr_eq(&cached, &again),
                "second lookup re-derived instead of hitting"
            );
            Ok(())
        },
    );
}

/// The incremental kernel derivation must be invariant to the tolerance
/// path taken to reach a length: a coarser-tolerance kernel is always a
/// bitwise prefix of a finer one (same stepper, same samples).
#[test]
fn coarse_kernels_are_prefixes_of_fine_kernels() {
    let base = PdnModel::paper_default().unwrap();
    let gen = (f64_in(0.6, 4.0), i64_in(3, 8));
    check(
        "oracle.kernel.prefix-consistency",
        &Config::cases(32, 0x0AC5),
        &gen,
        |&(scale, exponent)| {
            let model = base
                .scaled(scale)
                .map_err(|e| format!("scaled({scale}): {e}"))?;
            let coarse = kernel_for(&model, 10f64.powi(-(exponent as i32)));
            let fine = kernel_for(&model, 10f64.powi(-(exponent as i32) - 2));
            ensure!(
                fine.len() >= coarse.len(),
                "finer tolerance produced a shorter kernel"
            );
            for (k, (&c, &f)) in coarse.iter().zip(&fine).enumerate() {
                ensure!(
                    c.to_bits() == f.to_bits(),
                    "tap {k}: coarse {c} vs fine {f}"
                );
            }
            Ok(())
        },
    );
}
