//! Edge-case properties for the kernel cache's key quantization.
//!
//! The cache folds calibration jitter by masking the low 8 mantissa bits
//! of each model parameter. These tests pin down the contract on the
//! full `f64` bit space — NaNs, infinities, subnormals, both zeros —
//! because a cache key that panics, or that folds `+x` onto `-x`, would
//! silently hand a grid runner the wrong kernel.

use voltctl_check::{check, ensure, f64_bits, i64_in, Config};
use voltctl_pdn::cache::quantize;

/// Quantization is total: any bit pattern — NaN payloads, infinities,
/// subnormals — maps to a key without panicking, and the key is stable.
#[test]
fn quantize_is_total_and_deterministic() {
    check(
        "oracle.quantize.total",
        &Config::cases(256, 0x0CE0),
        &f64_bits(),
        |&x| {
            let a = quantize(x);
            let b = quantize(x);
            ensure!(a == b, "{x:?}: non-deterministic key {a:#x} vs {b:#x}");
            Ok(())
        },
    );
}

/// The sign bit always survives quantization: `+x` and `-x` never share
/// a cache entry, for every representable magnitude (including zero and
/// the subnormals, where a value-based comparison would see equality).
#[test]
fn quantize_never_collides_across_sign() {
    check(
        "oracle.quantize.sign-preserved",
        &Config::cases(256, 0x0CE1),
        &f64_bits(),
        |&x| {
            let pos = quantize(x);
            let neg = quantize(-x);
            ensure!(
                pos >> 63 == x.to_bits() >> 63,
                "{x:?}: sign bit dropped from key {pos:#x}"
            );
            ensure!(pos != neg, "{x:?}: +x and -x collide on key {pos:#x}");
            Ok(())
        },
    );
}

/// Jitter confined to the low 8 mantissa bits folds onto one key — the
/// whole point of quantization — while flips above the mask never do.
#[test]
fn quantize_folds_exactly_the_masked_bits() {
    let gen = (f64_bits(), i64_in(0, 64));
    check(
        "oracle.quantize.mask-boundary",
        &Config::cases(256, 0x0CE2),
        &gen,
        |&(x, bit)| {
            let flipped = f64::from_bits(x.to_bits() ^ (1u64 << bit));
            let same = quantize(x) == quantize(flipped);
            if bit < 8 {
                ensure!(same, "{x:?}: low-bit {bit} jitter changed the key");
            } else {
                ensure!(!same, "{x:?}: bit {bit} flip folded onto the same key");
            }
            Ok(())
        },
    );
}

/// The named edge cases, pinned explicitly (the properties above cover
/// them statistically; these make the contract readable).
#[test]
fn quantize_edge_cases_pinned() {
    // ±0.0 are distinct keys: a sign error upstream must miss the cache.
    assert_ne!(quantize(0.0), quantize(-0.0));
    // NaN quantizes without panicking and deterministically.
    assert_eq!(quantize(f64::NAN), quantize(f64::NAN));
    // Infinities keep their sign.
    assert_ne!(quantize(f64::INFINITY), quantize(f64::NEG_INFINITY));
    // The smallest subnormal folds onto the zero of its sign (it is
    // within the low-8-bit quantum of zero) but never onto the other
    // sign's zero.
    let tiny = f64::from_bits(1);
    assert_eq!(quantize(tiny), quantize(0.0));
    assert_ne!(quantize(-tiny), quantize(0.0));
    assert_eq!(quantize(-tiny), quantize(-0.0));
}
