//! Property tests: the overlap-save FFT convolution path must agree with
//! the direct O(N·K) reference (and the streaming convolver) on random
//! seeded traces, across kernel lengths, within 1e-9 relative tolerance.
//!
//! These are the acceptance tests for the fast replay path: any change
//! to FFT sizing, block partitioning, or ring indexing that breaks
//! numerical equivalence fails here before it can skew a replayed
//! emergency count.
//!
//! Run on the [`voltctl_check`] harness with the historical base seeds
//! (`0x1000`–`0x5000`). Each generator replays the original hand-rolled
//! draw sequence, so case 0 of every suite is byte-for-byte the
//! pre-migration test; the remaining cases are new coverage.

use voltctl_check::{check, ensure, ensure_eq, from_fn, Config};
use voltctl_pdn::convolve::{convolve_full, convolve_full_fft, kernel_for, Convolver};
use voltctl_pdn::state_space::pulse_response;
use voltctl_pdn::PdnModel;
use voltctl_telemetry::Rng;

/// |a - b| <= tol * max(1, |a|, |b|): relative where the signal is large,
/// absolute near zero (voltages sit near 1.0, so this is effectively
/// relative).
fn ensure_close(a: &[f64], b: &[f64], tol: f64, what: &str) -> Result<(), String> {
    ensure_eq!(a.len(), b.len());
    for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
        let scale = 1.0_f64.max(x.abs()).max(y.abs());
        ensure!(
            (x - y).abs() <= tol * scale,
            "{what}: cycle {k}: {x} vs {y} (tol {tol})"
        );
    }
    Ok(())
}

/// A seeded random current trace in the paper's ampere range.
fn random_trace(rng: &mut Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.range_f64(5.0, 50.0)).collect()
}

/// Kernel lengths straddling FFT block boundaries: tiny, non-power-of-two,
/// exactly a power of two, and the paper-default derived length.
fn taps_palette(model: &PdnModel) -> Vec<usize> {
    let paper = kernel_for(model, 1e-6).len();
    vec![1, 2, 3, 7, 64, 100, 255, 256, 257, paper]
}

#[test]
fn fft_matches_direct_on_random_traces_across_kernel_lengths() {
    let model = PdnModel::paper_default().unwrap();
    let palette = taps_palette(&model);
    // One value = every (taps, trace_len) cell of the palette with its
    // trace, drawn in the historical order off a single Rng stream.
    let cells = {
        let palette = palette.clone();
        from_fn(move |rng: &mut Rng| -> Vec<(usize, Vec<f64>)> {
            let mut out = Vec::new();
            for &taps in &palette {
                for trace_len in [1, taps / 2 + 1, taps, 4 * taps + 13] {
                    out.push((taps, random_trace(rng, trace_len)));
                }
            }
            out
        })
    };
    check(
        "convolve.fft-vs-direct.kernel-lengths",
        &Config::cases(4, 0x1000),
        &cells,
        |cells| {
            for (taps, trace) in cells {
                let kernel = pulse_response(&model, *taps);
                let direct = convolve_full(&kernel, trace, model.v_nominal());
                let fft = convolve_full_fft(&kernel, trace, model.v_nominal());
                ensure_close(
                    &direct,
                    &fft,
                    1e-9,
                    &format!("taps={taps} trace_len={}", trace.len()),
                )?;
            }
            Ok(())
        },
    );
}

#[test]
fn fft_matches_direct_on_random_kernels() {
    // Not just physical PDN kernels: arbitrary signed taps (including a
    // sign-alternating worst case for cancellation).
    let pairs = from_fn(|rng: &mut Rng| -> Vec<(Vec<f64>, Vec<f64>)> {
        [5usize, 33, 129, 513]
            .iter()
            .map(|&taps| {
                let kernel: Vec<f64> = (0..taps)
                    .map(|k| rng.range_f64(-1e-3, 1e-3) * if k % 2 == 0 { 1.0 } else { -1.0 })
                    .collect();
                let trace = random_trace(rng, 2048);
                (kernel, trace)
            })
            .collect()
    });
    check(
        "convolve.fft-vs-direct.random-kernels",
        &Config::cases(4, 0x2000),
        &pairs,
        |pairs| {
            for (kernel, trace) in pairs {
                let direct = convolve_full(kernel, trace, 1.0);
                let fft = convolve_full_fft(kernel, trace, 1.0);
                ensure_close(
                    &direct,
                    &fft,
                    1e-9,
                    &format!("random kernel taps={}", kernel.len()),
                )?;
            }
            Ok(())
        },
    );
}

#[test]
fn streaming_agrees_with_both_batch_paths() {
    let model = PdnModel::paper_default().unwrap();
    let traces = from_fn(|rng: &mut Rng| -> Vec<(usize, Vec<f64>)> {
        [7usize, 60, 256]
            .iter()
            .map(|&taps| (taps, random_trace(rng, 1500)))
            .collect()
    });
    check(
        "convolve.stream-vs-batch",
        &Config::cases(4, 0x3000),
        &traces,
        |traces| {
            for (taps, trace) in traces {
                let kernel = pulse_response(&model, *taps);
                let direct = convolve_full(&kernel, trace, model.v_nominal());
                let fft = convolve_full_fft(&kernel, trace, model.v_nominal());
                let mut conv = Convolver::new(kernel, model.v_nominal());
                let streamed: Vec<f64> = trace.iter().map(|&i| conv.step(i)).collect();
                ensure_close(&direct, &streamed, 1e-9, &format!("stream taps={taps}"))?;
                ensure_close(&fft, &streamed, 1e-9, &format!("fft-vs-stream taps={taps}"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn fft_replay_reproduces_state_space_voltages() {
    // End-to-end: a tolerance-derived kernel convolved via FFT must track
    // the exact state-space replay to (well within) the derivation
    // tolerance — the property the fast replay path exists to uphold.
    let model = PdnModel::paper_default().unwrap();
    let kernel = kernel_for(&model, 1e-9);
    check(
        "convolve.fft-replay-vs-state-space",
        &Config::cases(2, 0x4000),
        &from_fn(|rng: &mut Rng| random_trace(rng, 8192)),
        |trace| {
            let mut state = model.discretize();
            let exact: Vec<f64> = trace.iter().map(|&i| state.step(i)).collect();
            let fft = convolve_full_fft(&kernel, trace, model.v_nominal());
            ensure_close(&exact, &fft, 1e-6, "state-space vs fft replay")
        },
    );
}

#[test]
fn fft_is_deterministic_across_calls() {
    // Bitwise reproducibility: the replay engine's byte-identical-report
    // guarantee relies on every voltage path being a pure function.
    let model = PdnModel::paper_default().unwrap();
    let kernel = kernel_for(&model, 1e-6);
    check(
        "convolve.fft-deterministic",
        &Config::cases(2, 0x5000),
        &from_fn(|rng: &mut Rng| random_trace(rng, 4096)),
        |trace| {
            let a = convolve_full_fft(&kernel, trace, model.v_nominal());
            let b = convolve_full_fft(&kernel, trace, model.v_nominal());
            ensure_eq!(a, b);
            Ok(())
        },
    );
}
