//! Property tests: the overlap-save FFT convolution path must agree with
//! the direct O(N·K) reference (and the streaming convolver) on random
//! seeded traces, across kernel lengths, within 1e-9 relative tolerance.
//!
//! These are the acceptance tests for the fast replay path: any change
//! to FFT sizing, block partitioning, or ring indexing that breaks
//! numerical equivalence fails here before it can skew a replayed
//! emergency count.

use voltctl_pdn::convolve::{convolve_full, convolve_full_fft, kernel_for, Convolver};
use voltctl_pdn::state_space::pulse_response;
use voltctl_pdn::PdnModel;
use voltctl_telemetry::Rng;

/// |a - b| <= tol * max(1, |a|, |b|): relative where the signal is large,
/// absolute near zero (voltages sit near 1.0, so this is effectively
/// relative).
fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
        let scale = 1.0_f64.max(x.abs()).max(y.abs());
        assert!(
            (x - y).abs() <= tol * scale,
            "{what}: cycle {k}: {x} vs {y} (tol {tol})"
        );
    }
}

/// A seeded random current trace in the paper's ampere range.
fn random_trace(rng: &mut Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.range_f64(5.0, 50.0)).collect()
}

#[test]
fn fft_matches_direct_on_random_traces_across_kernel_lengths() {
    let model = PdnModel::paper_default().unwrap();
    let mut rng = Rng::new(0x1000);
    // Kernel lengths straddle FFT block boundaries: tiny, non-power-of-two,
    // exactly a power of two, and the paper-default derived length.
    let paper = kernel_for(&model, 1e-6).len();
    for taps in [1, 2, 3, 7, 64, 100, 255, 256, 257, paper] {
        let kernel = pulse_response(&model, taps);
        for trace_len in [1, taps / 2 + 1, taps, 4 * taps + 13] {
            let trace = random_trace(&mut rng, trace_len);
            let direct = convolve_full(&kernel, &trace, model.v_nominal());
            let fft = convolve_full_fft(&kernel, &trace, model.v_nominal());
            assert_close(
                &direct,
                &fft,
                1e-9,
                &format!("taps={taps} trace_len={trace_len}"),
            );
        }
    }
}

#[test]
fn fft_matches_direct_on_random_kernels() {
    // Not just physical PDN kernels: arbitrary signed taps (including a
    // sign-alternating worst case for cancellation).
    let mut rng = Rng::new(0x2000);
    for taps in [5, 33, 129, 513] {
        let kernel: Vec<f64> = (0..taps)
            .map(|k| rng.range_f64(-1e-3, 1e-3) * if k % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let trace = random_trace(&mut rng, 2048);
        let direct = convolve_full(&kernel, &trace, 1.0);
        let fft = convolve_full_fft(&kernel, &trace, 1.0);
        assert_close(&direct, &fft, 1e-9, &format!("random kernel taps={taps}"));
    }
}

#[test]
fn streaming_agrees_with_both_batch_paths() {
    let model = PdnModel::paper_default().unwrap();
    let mut rng = Rng::new(0x3000);
    for taps in [7, 60, 256] {
        let kernel = pulse_response(&model, taps);
        let trace = random_trace(&mut rng, 1500);
        let direct = convolve_full(&kernel, &trace, model.v_nominal());
        let fft = convolve_full_fft(&kernel, &trace, model.v_nominal());
        let mut conv = Convolver::new(kernel, model.v_nominal());
        let streamed: Vec<f64> = trace.iter().map(|&i| conv.step(i)).collect();
        assert_close(&direct, &streamed, 1e-9, &format!("stream taps={taps}"));
        assert_close(&fft, &streamed, 1e-9, &format!("fft-vs-stream taps={taps}"));
    }
}

#[test]
fn fft_replay_reproduces_state_space_voltages() {
    // End-to-end: a tolerance-derived kernel convolved via FFT must track
    // the exact state-space replay to (well within) the derivation
    // tolerance — the property the fast replay path exists to uphold.
    let model = PdnModel::paper_default().unwrap();
    let kernel = kernel_for(&model, 1e-9);
    let mut rng = Rng::new(0x4000);
    let trace = random_trace(&mut rng, 8192);

    let mut state = model.discretize();
    let exact: Vec<f64> = trace.iter().map(|&i| state.step(i)).collect();
    let fft = convolve_full_fft(&kernel, &trace, model.v_nominal());
    assert_close(&exact, &fft, 1e-6, "state-space vs fft replay");
}

#[test]
fn fft_is_deterministic_across_calls() {
    // Bitwise reproducibility: the replay engine's byte-identical-report
    // guarantee relies on every voltage path being a pure function.
    let model = PdnModel::paper_default().unwrap();
    let kernel = kernel_for(&model, 1e-6);
    let mut rng = Rng::new(0x5000);
    let trace = random_trace(&mut rng, 4096);
    let a = convolve_full_fft(&kernel, &trace, model.v_nominal());
    let b = convolve_full_fft(&kernel, &trace, model.v_nominal());
    assert_eq!(a, b);
}
