//! Property tests for the flight recorder, attribution counts, and the
//! Perfetto exporter, on the workspace's `voltctl-check` harness.

use voltctl_check::{check, ensure, i64_in, usize_in, vec_of, Config, Json};
use voltctl_trace::{
    events, to_chrome_trace, CauseCounts, CycleRecord, FlightRecorder, MergedTrace, SensorBand,
    SupplyBand, Tracer,
};

/// Decodes a generated band code: most values are Safe so traces spend
/// realistic stretches inside the band between crossings.
fn band(code: i64) -> SupplyBand {
    match code {
        0 => SupplyBand::Under,
        1 => SupplyBand::Over,
        _ => SupplyBand::Safe,
    }
}

/// Feeds a deterministic record stream (bands from `codes`, everything
/// else a function of the cycle index) into a recorder.
fn feed(fr: &mut FlightRecorder, codes: &[i64]) {
    for (k, &code) in codes.iter().enumerate() {
        fr.cycle(CycleRecord {
            cycle: k as u64,
            current: 20.0 + (k % 7) as f64,
            voltage: 1.0 - 0.01 * (k % 5) as f64,
            supply: band(code),
            sensor: SensorBand::Normal,
            events: if k % 3 == 0 { events::STALL } else { 0 },
        });
    }
}

/// The ring never drops in-window history: after `n` cycles it buffers
/// exactly `min(window, n)` records.
#[test]
fn ring_buffers_exactly_min_window_cycles() {
    let gen = (usize_in(1, 128), usize_in(0, 400));
    check(
        "trace.ring-buffered-min",
        &Config::cases(64, 0x7A11),
        &gen,
        |&(w, n)| {
            let mut fr = FlightRecorder::new(w);
            feed(&mut fr, &vec![9; n]);
            ensure!(
                fr.buffered() == w.min(n),
                "window {w}, {n} cycles: buffered {} != {}",
                fr.buffered(),
                w.min(n)
            );
            ensure!(fr.cycles() == n as u64);
            Ok(())
        },
    );
}

/// A lone crossing captures `min(window, pre)` cycles of history, the
/// crossing record itself, and `min(window, post)` cycles of aftermath —
/// a partial post-window (run ends early) is flushed, never dropped.
#[test]
fn capture_length_is_min_window_each_side() {
    let gen = (usize_in(1, 96), usize_in(0, 300), usize_in(0, 300));
    check(
        "trace.capture-covers-window",
        &Config::cases(64, 0x7A12),
        &gen,
        |&(w, pre, post)| {
            let mut fr = FlightRecorder::new(w);
            let mut codes = vec![9i64; pre];
            codes.push(0); // the single Under crossing
            codes.extend(std::iter::repeat_n(9, post));
            feed(&mut fr, &codes);
            let cell = fr.to_cell("p");
            ensure!(cell.crossings == 1, "exactly one crossing");
            ensure!(cell.captures.len() == 1, "exactly one capture");
            let cap = &cell.captures[0];
            let want = w.min(pre) + 1 + w.min(post);
            ensure!(
                cap.records.len() == want,
                "window {w}, pre {pre}, post {post}: len {} != {want}",
                cap.records.len()
            );
            ensure!(cap.pre_len == w.min(pre));
            ensure!(cap.crossing().cycle == pre as u64);
            Ok(())
        },
    );
}

/// Generates three independent cell traces from band-code streams.
fn three_cells(streams: &[Vec<i64>]) -> Vec<MergedTrace> {
    streams
        .iter()
        .enumerate()
        .map(|(k, codes)| {
            let mut fr = FlightRecorder::new(16);
            feed(&mut fr, codes);
            let mut m = MergedTrace::new();
            m.push(fr.to_cell(format!("cell{k}")));
            m
        })
        .collect()
}

/// Merging cell traces is associative: (a+b)+c == a+(b+c), so the
/// engine may fold per-cell tracers in any grouping as long as the
/// order is the grid order.
#[test]
fn merged_trace_merge_is_associative() {
    let stream = vec_of(i64_in(0, 8), 1, 120);
    let gen = (stream.clone(), stream.clone(), stream);
    check(
        "trace.merge-associative",
        &Config::cases(48, 0x7A13),
        &gen,
        |(a, b, c)| {
            let cells = three_cells(&[a.clone(), b.clone(), c.clone()]);
            let (a, b, c) = (&cells[0], &cells[1], &cells[2]);

            let mut left = a.clone();
            left.merge(b);
            left.merge(c);

            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);

            ensure!(left == right, "merge grouping changed the result");
            ensure!(
                left.total_captures()
                    == a.total_captures() + b.total_captures() + c.total_captures()
            );
            Ok(())
        },
    );
}

/// Cause tallies merge associatively AND commutatively (they are plain
/// per-class sums), mirroring the telemetry counter contract.
#[test]
fn cause_counts_merge_like_counters() {
    let stream = vec_of(i64_in(0, 6), 1, 150);
    let gen = (stream.clone(), stream);
    check(
        "trace.cause-counts-commute",
        &Config::cases(48, 0x7A14),
        &gen,
        |(a, b)| {
            let cfg = voltctl_trace::AttributionConfig::new(12);
            let count = |codes: &[i64]| {
                let mut fr = FlightRecorder::new(16);
                feed(&mut fr, codes);
                let mut counts = CauseCounts::new();
                for cap in &fr.to_cell("c").captures {
                    counts.add(voltctl_trace::attribute(cap, &cfg).cause);
                }
                counts
            };
            let (ca, cb) = (count(a), count(b));

            let mut ab = ca;
            ab.merge(&cb);
            let mut ba = cb;
            ba.merge(&ca);
            ensure!(ab == ba, "cause-count merge must commute");
            ensure!(ab.total() == ca.total() + cb.total());
            Ok(())
        },
    );
}

/// The Perfetto export always parses with the workspace's own JSON
/// reader, and every per-track timestamp sequence is strictly monotone
/// (Perfetto rejects out-of-order counter samples within a track).
#[test]
fn perfetto_export_parses_with_monotone_timestamps() {
    let stream = vec_of(i64_in(0, 8), 1, 200);
    let gen = (stream.clone(), stream);
    check(
        "trace.perfetto-roundtrip",
        &Config::cases(48, 0x7A15),
        &gen,
        |(a, b)| {
            let mut merged = MergedTrace::new();
            for (k, codes) in [a, b].iter().enumerate() {
                let mut fr = FlightRecorder::new(24);
                feed(&mut fr, codes);
                merged.push(fr.to_cell(format!("cell{k}")));
            }
            let json = to_chrome_trace("prop", &merged);
            let parsed = Json::parse(&json).map_err(|e| format!("JSON does not parse: {e}"))?;
            let events = parsed
                .get("traceEvents")
                .and_then(|e| e.as_arr())
                .ok_or("traceEvents missing")?;

            // ts must be strictly increasing within each (pid, name)
            // counter track.
            let mut last: std::collections::HashMap<(i64, String), f64> =
                std::collections::HashMap::new();
            for ev in events {
                let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
                if ph != "C" {
                    continue;
                }
                let pid = ev
                    .get("pid")
                    .and_then(|p| p.as_f64())
                    .ok_or("counter without pid")? as i64;
                let name = ev
                    .get("name")
                    .and_then(|n| n.as_str())
                    .ok_or("counter without name")?
                    .to_string();
                let ts = ev
                    .get("ts")
                    .and_then(|t| t.as_f64())
                    .ok_or("counter without ts")?;
                if let Some(&prev) = last.get(&(pid, name.clone())) {
                    ensure!(ts > prev, "track ({pid}, {name}): ts {ts} not after {prev}");
                }
                last.insert((pid, name), ts);
            }
            Ok(())
        },
    );
}
