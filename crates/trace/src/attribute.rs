//! Root-cause attribution: classify each [`EmergencyCapture`] into
//! exactly one cause class and rank classes for a run.
//!
//! The taxonomy reproduces the paper's qualitative attribution of
//! emergencies as machine-checkable rules, applied in a fixed priority
//! order so every capture gets exactly one deterministic class:
//!
//! 1. **controller-induced** — the actuator changed state shortly before
//!    the crossing (the control action itself produced the swing, e.g. a
//!    gating-onset overshoot).
//! 2. **resonant-train** — the capture's current waveform has a dominant
//!    period near the PDN resonance with enough spectral share: the
//!    paper's pathological stall/resume pulse train.
//! 3. **flush-dip** — a branch misprediction (pipeline flush) in the
//!    recent pre-window drained activity into a dip.
//! 4. **stall-then-surge** — a cache-miss stall in the recent pre-window
//!    was followed by a current swing at the crossing.
//! 5. **load-swing** — none of the above signatures: a generic program
//!    activity swing.
//!
//! Priority matters: a controlled resonant section *is* controller
//! territory only when the actuator actually moved — steady gating does
//! not shadow a resonance diagnosis.

use crate::flight::{EmergencyCapture, EmergencyKind, MergedTrace};
use crate::record::events;

/// The cause classes, in canonical (priority) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Actuator state changed shortly before the crossing.
    ControllerInduced,
    /// Dominant current period matches the PDN resonance.
    ResonantTrain,
    /// Pipeline flush (mispredict) in the recent pre-window.
    FlushDip,
    /// Cache-miss/issue stall in the recent pre-window.
    StallThenSurge,
    /// Generic activity swing with none of the above signatures.
    LoadSwing,
}

impl Cause {
    /// Number of cause classes.
    pub const COUNT: usize = 5;

    /// Every class in canonical (priority) order.
    pub const ALL: [Cause; Cause::COUNT] = [
        Cause::ControllerInduced,
        Cause::ResonantTrain,
        Cause::FlushDip,
        Cause::StallThenSurge,
        Cause::LoadSwing,
    ];

    /// Stable kebab-case label.
    pub fn name(self) -> &'static str {
        match self {
            Cause::ControllerInduced => "controller-induced",
            Cause::ResonantTrain => "resonant-train",
            Cause::FlushDip => "flush-dip",
            Cause::StallThenSurge => "stall-then-surge",
            Cause::LoadSwing => "load-swing",
        }
    }

    /// Telemetry counter name for this class (`trace.cause.<label>`),
    /// used when a traced run folds its [`CauseCounts`] into the
    /// exported telemetry snapshot.
    pub fn counter_name(self) -> &'static str {
        match self {
            Cause::ControllerInduced => "trace.cause.controller-induced",
            Cause::ResonantTrain => "trace.cause.resonant-train",
            Cause::FlushDip => "trace.cause.flush-dip",
            Cause::StallThenSurge => "trace.cause.stall-then-surge",
            Cause::LoadSwing => "trace.cause.load-swing",
        }
    }

    /// Canonical index (position in [`Cause::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Cause::ControllerInduced => 0,
            Cause::ResonantTrain => 1,
            Cause::FlushDip => 2,
            Cause::StallThenSurge => 3,
            Cause::LoadSwing => 4,
        }
    }
}

/// Tunables for the attribution pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributionConfig {
    /// The PDN's resonant period in cycles (from
    /// `PdnModel::resonant_period_cycles`).
    pub resonant_period: usize,
    /// Relative tolerance on the dominant period for a resonance match.
    pub resonant_tolerance: f64,
    /// Minimum share of candidate spectral power the dominant period must
    /// hold to count as resonant.
    pub min_period_share: f64,
    /// How many pre-window cycles before the crossing an actuator edge is
    /// considered causal.
    pub controller_horizon: usize,
    /// How many pre-window cycles before the crossing a flush/stall event
    /// is considered causal (defaults to the resonant period: one swing).
    pub uarch_horizon: usize,
}

impl AttributionConfig {
    /// Defaults for a PDN with the given resonant period.
    pub fn new(resonant_period: usize) -> AttributionConfig {
        let rp = resonant_period.max(2);
        AttributionConfig {
            resonant_period: rp,
            resonant_tolerance: 0.25,
            min_period_share: 0.2,
            controller_horizon: 16,
            uarch_horizon: rp,
        }
    }
}

/// One capture's verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attribution {
    /// The single cause class.
    pub cause: Cause,
    /// Dominant current period over the capture, cycles (0 when the
    /// window is too short to estimate).
    pub dominant_period: usize,
    /// Share of candidate spectral power held by the dominant period
    /// (0 when not estimated).
    pub period_share: f64,
}

/// Estimates the dominant period of `samples` by scanning single-bin DFT
/// (Goertzel-style) power over every integer period `2..=len/2` on the
/// mean-removed signal. Returns `(period, share_of_candidate_power)`, or
/// `(0, 0.0)` when fewer than 8 samples.
///
/// O(len²) — captures are a few hundred cycles, so this stays cheap and
/// keeps the crate dependency-free.
pub fn dominant_period(samples: &[f64]) -> (usize, f64) {
    let n = samples.len();
    if n < 8 {
        return (0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let mut best_p = 0usize;
    let mut best_power = 0.0f64;
    let mut total_power = 0.0f64;
    for p in 2..=n / 2 {
        let w = std::f64::consts::TAU / p as f64;
        let (mut c, mut s) = (0.0f64, 0.0f64);
        for (i, &x) in samples.iter().enumerate() {
            let ph = w * i as f64;
            let y = x - mean;
            c += y * ph.cos();
            s += y * ph.sin();
        }
        let power = c * c + s * s;
        total_power += power;
        if power > best_power {
            best_power = power;
            best_p = p;
        }
    }
    if total_power <= 0.0 || best_p == 0 {
        (0, 0.0)
    } else {
        (best_p, best_power / total_power)
    }
}

fn edge_within(pre: &[&u16], horizon: usize) -> bool {
    // An actuation-state change among the last `horizon + 1` pre records.
    let start = pre.len().saturating_sub(horizon + 1);
    pre[start..]
        .windows(2)
        .any(|w| (*w[0] & events::ACTUATION) != (*w[1] & events::ACTUATION))
}

fn any_within(pre: &[&u16], horizon: usize, bits: u16) -> bool {
    let start = pre.len().saturating_sub(horizon);
    pre[start..].iter().any(|&&e| e & bits != 0)
}

/// Classifies one capture. Total: every capture gets exactly one class.
pub fn attribute(capture: &EmergencyCapture, cfg: &AttributionConfig) -> Attribution {
    let currents: Vec<f64> = capture.records.iter().map(|r| r.current).collect();
    let (period, share) = dominant_period(&currents);

    let pre_events: Vec<&u16> = capture.pre().iter().map(|r| &r.events).collect();
    let cause = if edge_within(&pre_events, cfg.controller_horizon) {
        Cause::ControllerInduced
    } else if period > 0 && share >= cfg.min_period_share && {
        let rp = cfg.resonant_period as f64;
        (period as f64 - rp).abs() <= cfg.resonant_tolerance * rp
    } {
        Cause::ResonantTrain
    } else if any_within(&pre_events, cfg.uarch_horizon, events::MISPREDICT) {
        Cause::FlushDip
    } else if any_within(&pre_events, cfg.uarch_horizon, events::MISS | events::STALL) {
        Cause::StallThenSurge
    } else {
        Cause::LoadSwing
    };
    Attribution {
        cause,
        dominant_period: period,
        period_share: share,
    }
}

/// Per-class capture counts: the mergeable summary the forensics ranking
/// is built from. Merging is element-wise addition — associative and
/// commutative like telemetry counter merges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseCounts {
    counts: [u64; Cause::COUNT],
}

impl CauseCounts {
    /// All-zero counts.
    pub fn new() -> CauseCounts {
        CauseCounts::default()
    }

    /// Records one capture of `cause`.
    pub fn add(&mut self, cause: Cause) {
        self.counts[cause.index()] += 1;
    }

    /// Element-wise accumulation of `other`.
    pub fn merge(&mut self, other: &CauseCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Captures attributed to `cause`.
    pub fn get(&self, cause: Cause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total captures counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Classes ranked by count descending, ties broken by canonical
    /// order; zero-count classes omitted.
    pub fn ranking(&self) -> Vec<(Cause, u64)> {
        let mut ranked: Vec<(Cause, u64)> = Cause::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        ranked
    }
}

/// One capture with its attribution and rendering context.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedCapture {
    /// Grid index of the producing cell.
    pub cell: usize,
    /// Producing cell's label.
    pub cell_label: String,
    /// Which threshold was crossed.
    pub kind: EmergencyKind,
    /// Cycle of the crossing.
    pub crossing_cycle: u64,
    /// Capture length in records.
    pub len: usize,
    /// Minimum voltage over the capture.
    pub v_min: f64,
    /// Maximum voltage over the capture.
    pub v_max: f64,
    /// The verdict.
    pub attribution: Attribution,
    /// Non-zero event-bit cycle counts, rendered in canonical order
    /// (e.g. `stall x40 dl1-miss x12`), `-` when none.
    pub event_summary: String,
}

/// A whole run's attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct Forensics {
    /// Config the pass ran with.
    pub config: AttributionConfig,
    /// Cells traced.
    pub cells: usize,
    /// Pre/post window, or `None` when cells disagree.
    pub window: Option<usize>,
    /// Total cycles traced.
    pub cycles: u64,
    /// Total crossings (under, over inside).
    pub crossings: u64,
    /// Crossings into the under band.
    pub under_crossings: u64,
    /// Crossings into the over band.
    pub over_crossings: u64,
    /// Crossings not captured (storage exhausted).
    pub dropped_captures: u64,
    /// Total actuator intervention onsets.
    pub interventions: u64,
    /// Every capture, attributed, in grid-then-cycle order.
    pub captures: Vec<AttributedCapture>,
    /// Per-class counts over `captures`.
    pub counts: CauseCounts,
}

fn event_summary(capture: &EmergencyCapture) -> String {
    let parts: Vec<String> = events::NAMED
        .iter()
        .filter_map(|&(bit, name)| {
            let n = capture.cycles_with(bit);
            (n > 0).then(|| format!("{name} x{n}"))
        })
        .collect();
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join(" ")
    }
}

impl Forensics {
    /// Attributes every capture of `merged` under `cfg`.
    pub fn analyze(merged: &MergedTrace, cfg: &AttributionConfig) -> Forensics {
        let mut windows: Vec<usize> = merged.cells.iter().map(|c| c.window).collect();
        windows.sort_unstable();
        windows.dedup();
        let mut out = Forensics {
            config: *cfg,
            cells: merged.cells.len(),
            window: match windows.as_slice() {
                [w] => Some(*w),
                _ => None,
            },
            cycles: merged.total_cycles(),
            crossings: merged.total_crossings(),
            under_crossings: merged.cells.iter().map(|c| c.under_crossings).sum(),
            over_crossings: merged.cells.iter().map(|c| c.over_crossings).sum(),
            dropped_captures: merged.cells.iter().map(|c| c.dropped_captures).sum(),
            interventions: merged.cells.iter().map(|c| c.interventions_total).sum(),
            captures: Vec::new(),
            counts: CauseCounts::new(),
        };
        for (cell_idx, cell) in merged.cells.iter().enumerate() {
            for cap in &cell.captures {
                let attribution = attribute(cap, cfg);
                out.counts.add(attribution.cause);
                out.captures.push(AttributedCapture {
                    cell: cell_idx,
                    cell_label: cell.label.clone(),
                    kind: cap.kind,
                    crossing_cycle: cap.crossing_cycle,
                    len: cap.records.len(),
                    v_min: cap.v_min(),
                    v_max: cap.v_max(),
                    attribution,
                    event_summary: event_summary(cap),
                });
            }
        }
        out
    }

    /// Renders the plain-text forensics report. Purely a function of the
    /// analysis data — byte-identical across `--jobs` splits because the
    /// engine merges cell traces in grid order.
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "== forensics: {title} ==");
        match self.window {
            Some(w) => {
                let _ = writeln!(
                    s,
                    "window: {w} cycles pre + {w} post (resonant period {} cycles)",
                    self.config.resonant_period
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "window: mixed (resonant period {} cycles)",
                    self.config.resonant_period
                );
            }
        }
        let _ = writeln!(s, "cells traced: {}; cycles: {}", self.cells, self.cycles);
        let _ = writeln!(
            s,
            "emergency crossings: {} (under {}, over {}); captures: {} ({} dropped)",
            self.crossings,
            self.under_crossings,
            self.over_crossings,
            self.captures.len(),
            self.dropped_captures
        );
        let _ = writeln!(s, "controller interventions: {}", self.interventions);
        let _ = writeln!(s);
        if self.captures.is_empty() {
            let _ = writeln!(s, "no emergencies captured.");
            return s;
        }
        let _ = writeln!(s, "cause ranking:");
        let total = self.counts.total().max(1);
        for (rank, (cause, n)) in self.counts.ranking().into_iter().enumerate() {
            let _ = writeln!(
                s,
                "  {:>2}. {:<19} {:>6}  {:>5.1}%",
                rank + 1,
                cause.name(),
                n,
                n as f64 * 100.0 / total as f64
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "captures:");
        for (k, c) in self.captures.iter().enumerate() {
            let a = &c.attribution;
            let period = if a.dominant_period > 0 {
                format!(
                    "period {} ({:.0}% power)",
                    a.dominant_period,
                    a.period_share * 100.0
                )
            } else {
                "period n/a".to_string()
            };
            let _ = writeln!(
                s,
                "  [{k:>3}] cell {} \"{}\" @cycle {} {:<5} -> {:<18} {period}  v {:.4}..{:.4}  events: {}",
                c.cell,
                c.cell_label,
                c.crossing_cycle,
                c.kind.name(),
                a.cause.name(),
                c.v_min,
                c.v_max,
                c.event_summary
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;
    use crate::record::{CycleRecord, SupplyBand};
    use crate::tracer::Tracer;

    fn capture_from(records: Vec<CycleRecord>, pre_len: usize) -> EmergencyCapture {
        EmergencyCapture {
            kind: EmergencyKind::Under,
            crossing_cycle: records[pre_len].cycle,
            pre_len,
            records,
        }
    }

    fn rec(cycle: u64, current: f64, eventbits: u16) -> CycleRecord {
        CycleRecord {
            cycle,
            current,
            voltage: 1.0,
            supply: SupplyBand::Safe,
            events: eventbits,
            ..CycleRecord::default()
        }
    }

    #[test]
    fn dominant_period_finds_a_sine() {
        let p = 20usize;
        let xs: Vec<f64> = (0..200)
            .map(|i| 10.0 + 5.0 * (std::f64::consts::TAU * i as f64 / p as f64).sin())
            .collect();
        let (found, share) = dominant_period(&xs);
        assert_eq!(found, p);
        assert!(share > 0.3, "share {share}");
    }

    #[test]
    fn dominant_period_needs_samples() {
        assert_eq!(dominant_period(&[1.0; 4]), (0, 0.0));
        assert_eq!(
            dominant_period(&[3.0; 64]),
            (0, 0.0),
            "flat signal has no period"
        );
    }

    #[test]
    fn resonant_train_wins_without_actuation() {
        let cfg = AttributionConfig::new(20);
        let records: Vec<CycleRecord> = (0..120)
            .map(|i| {
                rec(
                    i,
                    10.0 + 5.0 * (std::f64::consts::TAU * i as f64 / 20.0).sin(),
                    events::STALL, // stalls present, but resonance outranks
                )
            })
            .collect();
        let a = attribute(&capture_from(records, 60), &cfg);
        assert_eq!(a.cause, Cause::ResonantTrain);
        assert_eq!(a.dominant_period, 20);
    }

    #[test]
    fn actuator_edge_outranks_resonance() {
        let cfg = AttributionConfig::new(20);
        let mut records: Vec<CycleRecord> = (0..120)
            .map(|i| {
                rec(
                    i,
                    10.0 + 5.0 * (std::f64::consts::TAU * i as f64 / 20.0).sin(),
                    0,
                )
            })
            .collect();
        // Gating turns on a few cycles before the crossing at index 60.
        for r in &mut records[55..60] {
            r.events |= events::GATE_FU;
        }
        let a = attribute(&capture_from(records, 60), &cfg);
        assert_eq!(a.cause, Cause::ControllerInduced);
    }

    #[test]
    fn steady_actuation_is_not_controller_induced() {
        let cfg = AttributionConfig::new(50);
        // Constant gating from record 0, aperiodic current, mispredict late.
        let mut records: Vec<CycleRecord> = (0..40)
            .map(|i| rec(i, (i as f64).sqrt(), events::GATE_FU))
            .collect();
        records[35].events |= events::MISPREDICT;
        let a = attribute(&capture_from(records, 38), &cfg);
        assert_eq!(a.cause, Cause::FlushDip);
    }

    #[test]
    fn stall_then_surge_and_fallback() {
        let cfg = AttributionConfig::new(50);
        let records: Vec<CycleRecord> = (0..30)
            .map(|i| rec(i, if i < 15 { 2.0 } else { 40.0 }, events::DL1_MISS))
            .collect();
        let a = attribute(&capture_from(records, 20), &cfg);
        assert_eq!(a.cause, Cause::StallThenSurge);

        let plain: Vec<CycleRecord> = (0..30).map(|i| rec(i, i as f64, 0)).collect();
        let a = attribute(&capture_from(plain, 20), &cfg);
        assert_eq!(a.cause, Cause::LoadSwing);
    }

    #[test]
    fn cause_counts_merge_and_rank() {
        let mut a = CauseCounts::new();
        a.add(Cause::FlushDip);
        a.add(Cause::FlushDip);
        let mut b = CauseCounts::new();
        b.add(Cause::ResonantTrain);
        b.add(Cause::ResonantTrain);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.total(), 4);
        // Tie: canonical order puts resonant-train (index 1) first.
        assert_eq!(
            ab.ranking(),
            vec![(Cause::ResonantTrain, 2), (Cause::FlushDip, 2)]
        );
    }

    #[test]
    fn forensics_attributes_every_capture_exactly_once() {
        let mut fr = FlightRecorder::new(8);
        for k in 0..40u64 {
            let band = if k == 20 || k == 33 {
                SupplyBand::Under
            } else {
                SupplyBand::Safe
            };
            let mut r = rec(k, 10.0, 0);
            r.supply = band;
            fr.cycle(r);
        }
        let mut merged = MergedTrace::new();
        merged.push(fr.to_cell("cell-a"));
        let cfg = AttributionConfig::new(20);
        let f = Forensics::analyze(&merged, &cfg);
        assert_eq!(f.captures.len(), 2);
        assert_eq!(f.counts.total(), 2, "each capture counted exactly once");
        let text = f.render("unit");
        assert!(text.contains("== forensics: unit =="));
        assert!(text.contains("cause ranking:"));
        assert!(text.contains("cell 0 \"cell-a\""));
    }

    #[test]
    fn empty_forensics_renders() {
        let f = Forensics::analyze(&MergedTrace::new(), &AttributionConfig::new(60));
        let text = f.render("empty");
        assert!(text.contains("no emergencies captured."));
    }
}
