//! The [`Tracer`] sink trait and its compile-time-off [`NullTracer`].
//!
//! This mirrors `voltctl_telemetry::Recorder` exactly: hot loops are
//! written against a generic `T: Tracer`, the associated `const ENABLED`
//! lets producers skip even *building* a [`CycleRecord`] when tracing is
//! off, and the default [`NullTracer`] monomorphizes every call site to
//! nothing — the PR 3 compile-time-off guarantee extended to tracing.

use crate::record::CycleRecord;

/// A sink for per-cycle trace records.
///
/// All methods default to no-ops so implementors override only what they
/// consume; producers should guard record construction with
/// `if T::ENABLED { ... }` so disabled tracing costs nothing.
pub trait Tracer {
    /// Whether this tracer consumes records at all. Generic code checks
    /// this constant so the disabled path is dead code, not a branch.
    const ENABLED: bool = true;

    /// Consumes one cycle's record.
    fn cycle(&mut self, record: CycleRecord) {
        let _ = record;
    }
}

/// The disabled tracer: `ENABLED == false`, every method a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;
}

/// Forwarding impl so loops can borrow a caller-owned tracer
/// (`.tracer(&mut flight)`) without giving up ownership.
impl<T: Tracer + ?Sized> Tracer for &mut T {
    const ENABLED: bool = T::ENABLED;

    fn cycle(&mut self, record: CycleRecord) {
        (**self).cycle(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_of<T: Tracer>() -> bool {
        T::ENABLED
    }

    #[test]
    fn null_tracer_is_disabled_and_zero_sized() {
        assert!(!enabled_of::<NullTracer>());
        assert!(!enabled_of::<&mut NullTracer>());
        assert_eq!(std::mem::size_of::<NullTracer>(), 0);
    }

    #[test]
    fn default_methods_are_no_ops() {
        struct CountOnly(u64);
        impl Tracer for CountOnly {
            fn cycle(&mut self, _record: CycleRecord) {
                self.0 += 1;
            }
        }
        assert!(enabled_of::<CountOnly>());
        let mut t = CountOnly(0);
        {
            // Through the forwarding impl explicitly, not auto-deref.
            let mut fwd = &mut t;
            <&mut CountOnly as Tracer>::cycle(&mut fwd, CycleRecord::default());
        }
        assert_eq!(t.0, 1);
        // NullTracer accepts records and drops them.
        NullTracer.cycle(CycleRecord::default());
    }
}
