//! voltctl-trace: cycle-level event tracing for the voltctl simulator.
//!
//! Where `voltctl-telemetry` *aggregates* (counters, histograms, timers),
//! this crate *remembers the story*: per-cycle [`CycleRecord`]s flow into
//! a ring-buffer [`FlightRecorder`] that freezes a pre/post window around
//! every emergency crossing, a root-cause pass ([`attribute`]) classifies
//! each [`EmergencyCapture`] into exactly one cause class, and exporters
//! render a Perfetto-loadable Chrome trace ([`perfetto`]) plus a
//! plain-text forensics report ([`Forensics`]).
//!
//! The producer-side contract mirrors the `Recorder` pattern exactly:
//! hot loops are generic over [`Tracer`], whose `const ENABLED` makes the
//! default [`NullTracer`] compile away — disabled tracing is dead code,
//! not a runtime branch.
//!
//! # Example
//!
//! ```
//! use voltctl_trace::{CycleRecord, FlightRecorder, MergedTrace, SupplyBand, Tracer};
//!
//! let mut fr = FlightRecorder::new(8);
//! for k in 0..32 {
//!     fr.cycle(CycleRecord {
//!         cycle: k,
//!         voltage: 1.0,
//!         current: 20.0,
//!         supply: if k == 16 { SupplyBand::Under } else { SupplyBand::Safe },
//!         ..CycleRecord::default()
//!     });
//! }
//! let mut merged = MergedTrace::new();
//! merged.push(fr.to_cell("example"));
//! assert_eq!(merged.total_captures(), 1);
//! let json = voltctl_trace::perfetto::to_chrome_trace("example", &merged);
//! assert!(json.contains("\"emergency:under\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attribute;
pub mod flight;
pub mod perfetto;
pub mod record;
pub mod tracer;

pub use attribute::{
    attribute, dominant_period, Attribution, AttributionConfig, Cause, CauseCounts, Forensics,
};
pub use flight::{
    CellTrace, EmergencyCapture, EmergencyKind, FlightRecorder, MergedTrace, DEFAULT_WINDOW,
};
pub use perfetto::to_chrome_trace;
pub use record::{events, CycleRecord, SensorBand, SupplyBand};
pub use tracer::{NullTracer, Tracer};
