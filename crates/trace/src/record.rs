//! The per-cycle trace record and its event-bit vocabulary.
//!
//! [`CycleRecord`] is the unit of tracing: one plain-data sample per
//! simulated cycle, small enough (`Copy`, no heap) that the flight
//! recorder can ring-buffer hundreds of them per cell without perturbing
//! the run. The producer (`voltctl_core::loopsim`) fills it from state it
//! already holds each cycle; nothing here reaches back into the
//! simulator.

/// Supply-voltage band relative to the emergency envelope, as classified
/// by `voltctl_pdn::VoltageMonitor`.
///
/// This is the *ground-truth* band (the oracle the paper measures
/// against), not the delayed/noisy sensor estimate in
/// [`CycleRecord::sensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupplyBand {
    /// Below the lower emergency threshold (a dip emergency).
    Under,
    /// Inside the allowed envelope.
    #[default]
    Safe,
    /// Above the upper emergency threshold (an overshoot emergency).
    Over,
}

impl SupplyBand {
    /// Short lowercase label (`under` / `safe` / `over`).
    pub fn name(self) -> &'static str {
        match self {
            SupplyBand::Under => "under",
            SupplyBand::Safe => "safe",
            SupplyBand::Over => "over",
        }
    }

    /// Small integer code for counter-track export (-1 / 0 / +1).
    pub fn code(self) -> i8 {
        match self {
            SupplyBand::Under => -1,
            SupplyBand::Safe => 0,
            SupplyBand::Over => 1,
        }
    }
}

/// The control loop's *sensed* voltage band (delayed, possibly noisy),
/// i.e. what the threshold controller acted on this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SensorBand {
    /// Sensor read below the low control threshold.
    Low,
    /// Sensor read inside the control band (no action).
    #[default]
    Normal,
    /// Sensor read above the high control threshold.
    High,
}

impl SensorBand {
    /// Short lowercase label (`low` / `normal` / `high`).
    pub fn name(self) -> &'static str {
        match self {
            SensorBand::Low => "low",
            SensorBand::Normal => "normal",
            SensorBand::High => "high",
        }
    }

    /// Small integer code for counter-track export (-1 / 0 / +1).
    pub fn code(self) -> i8 {
        match self {
            SensorBand::Low => -1,
            SensorBand::Normal => 0,
            SensorBand::High => 1,
        }
    }
}

/// Microarchitectural event bits carried by [`CycleRecord::events`].
///
/// One bit per event *kind* per cycle (a cycle with three D-cache misses
/// sets [`DL1_MISS`](events::DL1_MISS) once); the attribution pass cares
/// about temporal patterns, not per-cycle multiplicity.
pub mod events {
    /// At least one L1 D-cache miss this cycle.
    pub const DL1_MISS: u16 = 1 << 0;
    /// At least one L1 I-cache miss this cycle.
    pub const IL1_MISS: u16 = 1 << 1;
    /// At least one L2 miss (main-memory access) this cycle.
    pub const L2_MISS: u16 = 1 << 2;
    /// A mispredicted branch was fetched this cycle (pipeline flush).
    pub const MISPREDICT: u16 = 1 << 3;
    /// No instruction issued this cycle (an issue stall).
    pub const STALL: u16 = 1 << 4;
    /// Actuator was gating functional-unit issue this cycle.
    pub const GATE_FU: u16 = 1 << 5;
    /// Actuator was gating D-cache issue this cycle.
    pub const GATE_DL1: u16 = 1 << 6;
    /// Actuator was gating fetch (I-cache) this cycle.
    pub const GATE_IL1: u16 = 1 << 7;
    /// Phantom firing (dummy activity) on the FU domain this cycle.
    pub const PHANTOM_FU: u16 = 1 << 8;
    /// Phantom firing on the D-cache domain this cycle.
    pub const PHANTOM_DL1: u16 = 1 << 9;
    /// Phantom firing on the I-cache domain this cycle.
    pub const PHANTOM_IL1: u16 = 1 << 10;

    /// All throttle-down (gating) bits.
    pub const GATING: u16 = GATE_FU | GATE_DL1 | GATE_IL1;
    /// All throttle-up (phantom-fire) bits.
    pub const PHANTOM: u16 = PHANTOM_FU | PHANTOM_DL1 | PHANTOM_IL1;
    /// Any actuator activity (gating or phantom).
    pub const ACTUATION: u16 = GATING | PHANTOM;
    /// Any cache-miss bit.
    pub const MISS: u16 = DL1_MISS | IL1_MISS | L2_MISS;

    /// Every single-event bit, in canonical render order, with its label.
    pub const NAMED: [(u16, &str); 11] = [
        (DL1_MISS, "dl1-miss"),
        (IL1_MISS, "il1-miss"),
        (L2_MISS, "l2-miss"),
        (MISPREDICT, "mispredict"),
        (STALL, "stall"),
        (GATE_FU, "gate-fu"),
        (GATE_DL1, "gate-dl1"),
        (GATE_IL1, "gate-il1"),
        (PHANTOM_FU, "phantom-fu"),
        (PHANTOM_DL1, "phantom-dl1"),
        (PHANTOM_IL1, "phantom-il1"),
    ];
}

/// One cycle of traced state: the flight recorder's sample type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleRecord {
    /// Cycle index within the producing run (0-based, monotone).
    pub cycle: u64,
    /// Supply current drawn this cycle, amps.
    pub current: f64,
    /// Supply voltage seen this cycle, volts.
    pub voltage: f64,
    /// Ground-truth supply band (emergency classification).
    pub supply: SupplyBand,
    /// Sensed band the controller acted on.
    pub sensor: SensorBand,
    /// Bitset of [`events`] observed this cycle.
    pub events: u16,
}

impl CycleRecord {
    /// Whether any actuator (gating or phantom) bit is set.
    pub fn actuating(&self) -> bool {
        self.events & events::ACTUATION != 0
    }
}

impl voltctl_snap::Pack for SupplyBand {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(match self {
            SupplyBand::Under => 0,
            SupplyBand::Safe => 1,
            SupplyBand::Over => 2,
        });
    }
}

impl voltctl_snap::Unpack for SupplyBand {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(SupplyBand::Under),
            1 => Ok(SupplyBand::Safe),
            2 => Ok(SupplyBand::Over),
            k => Err(voltctl_snap::SnapError::Corrupt(format!(
                "invalid supply band tag {k}"
            ))),
        }
    }
}

impl voltctl_snap::Pack for SensorBand {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(match self {
            SensorBand::Low => 0,
            SensorBand::Normal => 1,
            SensorBand::High => 2,
        });
    }
}

impl voltctl_snap::Unpack for SensorBand {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(SensorBand::Low),
            1 => Ok(SensorBand::Normal),
            2 => Ok(SensorBand::High),
            k => Err(voltctl_snap::SnapError::Corrupt(format!(
                "invalid sensor band tag {k}"
            ))),
        }
    }
}

impl voltctl_snap::Pack for CycleRecord {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u64(self.cycle);
        w.put_f64(self.current);
        w.put_f64(self.voltage);
        self.supply.pack(w);
        self.sensor.pack(w);
        w.put_u16(self.events);
    }
}

impl voltctl_snap::Unpack for CycleRecord {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(CycleRecord {
            cycle: r.get_u64()?,
            current: r.get_f64()?,
            voltage: r.get_f64()?,
            supply: voltctl_snap::Unpack::unpack(r)?,
            sensor: voltctl_snap::Unpack::unpack(r)?,
            events: r.get_u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_bits_are_distinct() {
        let mut seen = 0u16;
        for (bit, _) in events::NAMED {
            assert_eq!(seen & bit, 0, "bit {bit:#06x} repeated");
            assert_eq!(bit.count_ones(), 1);
            seen |= bit;
        }
        assert_eq!(
            seen,
            events::MISS | events::MISPREDICT | events::STALL | events::ACTUATION
        );
    }

    #[test]
    fn band_codes_order() {
        assert!(SupplyBand::Under.code() < SupplyBand::Safe.code());
        assert!(SupplyBand::Safe.code() < SupplyBand::Over.code());
        assert_eq!(SensorBand::default(), SensorBand::Normal);
    }

    #[test]
    fn actuating_checks_both_directions() {
        let mut r = CycleRecord::default();
        assert!(!r.actuating());
        r.events = events::GATE_FU;
        assert!(r.actuating());
        r.events = events::PHANTOM_DL1;
        assert!(r.actuating());
        r.events = events::DL1_MISS | events::STALL;
        assert!(!r.actuating());
    }
}
