//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! One process per grid cell (`pid` = grid index), with counter tracks
//! for voltage, current, sensed band, and actuator duty, plus instant
//! events marking emergency crossings and controller interventions.
//! Timestamps are *simulated cycles* (1 cycle rendered as 1 µs of trace
//! time) — never wall clock — so the export is byte-identical across
//! `--jobs` splits and machines.
//!
//! Counter samples are emitted only over the union of capture windows:
//! the flight-recorder contract is "the story around each emergency", so
//! a million-cycle run exports kilobytes, not gigabytes. Overlapping
//! pre-windows (crossings closer than W cycles) are deduplicated so the
//! `ts` sequence of every counter track is strictly increasing —
//! property-tested via the `voltctl-check` JSON reader.

use std::fmt::Write as _;

use crate::flight::{CellTrace, MergedTrace};
use crate::record::events;

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON number rendering; non-finite values (which the simulator should
/// never produce) degrade to `0` so the artifact always parses.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn push_cell_events(out: &mut Vec<String>, pid: usize, cell: &CellTrace) {
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"cell {pid}: {}\"}}}}",
        escape(&cell.label)
    ));

    // Counter tracks over the union of capture windows, deduplicating
    // overlap so each track's ts is strictly increasing.
    let mut last_emitted: Option<u64> = None;
    for cap in &cell.captures {
        for r in &cap.records {
            if last_emitted.is_some_and(|t| r.cycle <= t) {
                continue;
            }
            last_emitted = Some(r.cycle);
            let ts = r.cycle;
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"name\":\"voltage_v\",\
                 \"args\":{{\"v\":{}}}}}",
                num(r.voltage)
            ));
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"name\":\"current_a\",\
                 \"args\":{{\"a\":{}}}}}",
                num(r.current)
            ));
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"name\":\"sensor_band\",\
                 \"args\":{{\"band\":{}}}}}",
                r.sensor.code()
            ));
            let gating = u8::from(r.events & events::GATING != 0);
            let phantom = u8::from(r.events & events::PHANTOM != 0);
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"name\":\"actuator_duty\",\
                 \"args\":{{\"gating\":{gating},\"phantom\":{phantom}}}}}"
            ));
        }
    }

    // Instant events: emergencies (process-scoped) and interventions
    // (thread-scoped), both already in increasing cycle order.
    for cap in &cell.captures {
        out.push(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"s\":\"p\",\
             \"name\":\"emergency:{}\"}}",
            cap.crossing_cycle,
            cap.kind.name()
        ));
    }
    for &cycle in &cell.interventions {
        out.push(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{cycle},\"s\":\"t\",\
             \"name\":\"intervention\"}}"
        ));
    }
}

/// Renders the merged trace as a Chrome trace-event JSON document.
///
/// Load it at <https://ui.perfetto.dev> (or `chrome://tracing`); `run` is
/// recorded in `otherData.run` for provenance.
pub fn to_chrome_trace(run: &str, merged: &MergedTrace) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, cell) in merged.cells.iter().enumerate() {
        push_cell_events(&mut events, pid, cell);
    }
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "\"displayTimeUnit\":\"ms\",");
    let _ = writeln!(
        s,
        "\"otherData\":{{\"generator\":\"voltctl-trace\",\"run\":\"{}\",\"ts_unit\":\"cycle\"}},",
        escape(run)
    );
    let _ = writeln!(s, "\"traceEvents\":[");
    for (k, e) in events.iter().enumerate() {
        let comma = if k + 1 < events.len() { "," } else { "" };
        let _ = writeln!(s, "{e}{comma}");
    }
    let _ = writeln!(s, "]");
    let _ = write!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;
    use crate::record::{CycleRecord, SupplyBand};
    use crate::tracer::Tracer;

    fn traced_cell(label: &str) -> CellTrace {
        let mut fr = FlightRecorder::new(4);
        for k in 0..20u64 {
            fr.cycle(CycleRecord {
                cycle: k,
                current: 10.0 + k as f64,
                voltage: 1.0,
                supply: if k == 8 {
                    SupplyBand::Under
                } else {
                    SupplyBand::Safe
                },
                events: if k == 3 { events::GATE_FU } else { 0 },
                ..CycleRecord::default()
            });
        }
        fr.to_cell(label)
    }

    #[test]
    fn export_has_all_tracks_and_instants() {
        let mut merged = MergedTrace::new();
        merged.push(traced_cell("stress \"quoted\""));
        let json = to_chrome_trace("unit", &merged);
        for needle in [
            "\"traceEvents\":[",
            "\"process_name\"",
            "\"voltage_v\"",
            "\"current_a\"",
            "\"sensor_band\"",
            "\"actuator_duty\"",
            "\"emergency:under\"",
            "\"intervention\"",
            "stress \\\"quoted\\\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets (cheap well-formedness probe; the
        // round-trip property test does the real parse).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn empty_trace_is_still_valid_json_shape() {
        let json = to_chrome_trace("empty", &MergedTrace::new());
        assert!(json.contains("\"traceEvents\":[\n]"));
    }

    #[test]
    fn non_finite_numbers_degrade_to_zero() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(1.5), "1.5");
    }
}
