//! The ring-buffer flight recorder and its frozen emergency captures.
//!
//! [`FlightRecorder`] continuously buffers the last `W` cycles of
//! [`CycleRecord`]s. When the supply band crosses into an emergency
//! (Safe→Under or Safe→Over, and direct Under↔Over flips), it freezes the
//! buffered pre-window plus the crossing cycle and keeps recording for
//! `W` post cycles, yielding an [`EmergencyCapture`] — the
//! "microarchitectural story around an emergency" the paper tells
//! qualitatively, as data.
//!
//! # Semantics
//!
//! * The pre-window holds `min(W, cycles elapsed)` records: the ring never
//!   drops an in-window cycle (property-tested).
//! * A crossing during an open capture's post-window *extends* that
//!   capture (the post countdown restarts) instead of opening an
//!   overlapping one, so captures within a cell never overlap and their
//!   cycle ranges are strictly increasing.
//! * Every crossing is counted even when capture storage is exhausted
//!   ([`CellTrace::dropped_captures`]) — counts are exact, captures are a
//!   bounded sample.

use std::collections::VecDeque;

use crate::record::{CycleRecord, SupplyBand};
use crate::tracer::Tracer;

/// Default pre/post window, cycles. Sized to cover ≥ 3 periods of the
/// paper PDN's ~60-cycle resonance at 2× impedance so the attribution
/// pass can see a resonant train inside one capture.
pub const DEFAULT_WINDOW: usize = 96;

/// Default cap on stored captures per cell (crossings beyond it are
/// counted but not captured).
pub const DEFAULT_MAX_CAPTURES: usize = 64;

/// Cap on stored intervention markers per cell.
const MAX_INTERVENTION_MARKS: usize = 4096;

/// Which emergency threshold was crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmergencyKind {
    /// Dip below the lower threshold.
    Under,
    /// Overshoot above the upper threshold.
    Over,
}

impl EmergencyKind {
    /// Short lowercase label (`under` / `over`).
    pub fn name(self) -> &'static str {
        match self {
            EmergencyKind::Under => "under",
            EmergencyKind::Over => "over",
        }
    }
}

/// A frozen pre/post window around one emergency crossing.
#[derive(Debug, Clone, PartialEq)]
pub struct EmergencyCapture {
    /// Which threshold was crossed at [`crossing_cycle`](Self::crossing_cycle).
    pub kind: EmergencyKind,
    /// Cycle index of the crossing record.
    pub crossing_cycle: u64,
    /// Number of pre-window records before the crossing record.
    pub pre_len: usize,
    /// Pre-window records, the crossing record, then post-window records,
    /// in cycle order.
    pub records: Vec<CycleRecord>,
}

impl EmergencyCapture {
    /// The crossing record itself.
    pub fn crossing(&self) -> &CycleRecord {
        &self.records[self.pre_len]
    }

    /// Records strictly before the crossing.
    pub fn pre(&self) -> &[CycleRecord] {
        &self.records[..self.pre_len]
    }

    /// Records strictly after the crossing.
    pub fn post(&self) -> &[CycleRecord] {
        &self.records[self.pre_len + 1..]
    }

    /// Minimum voltage over the capture.
    pub fn v_min(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.voltage)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum voltage over the capture.
    pub fn v_max(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.voltage)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of records with any of `bits` set.
    pub fn cycles_with(&self, bits: u16) -> usize {
        self.records.iter().filter(|r| r.events & bits != 0).count()
    }
}

impl voltctl_snap::Pack for EmergencyKind {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(match self {
            EmergencyKind::Under => 0,
            EmergencyKind::Over => 1,
        });
    }
}

impl voltctl_snap::Unpack for EmergencyKind {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(EmergencyKind::Under),
            1 => Ok(EmergencyKind::Over),
            k => Err(voltctl_snap::SnapError::Corrupt(format!(
                "invalid emergency kind tag {k}"
            ))),
        }
    }
}

impl voltctl_snap::Pack for EmergencyCapture {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.kind.pack(w);
        w.put_u64(self.crossing_cycle);
        w.put_usize(self.pre_len);
        self.records.pack(w);
    }
}

impl voltctl_snap::Unpack for EmergencyCapture {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let kind = voltctl_snap::Unpack::unpack(r)?;
        let crossing_cycle = r.get_u64()?;
        let pre_len = r.get_usize()?;
        let records: Vec<CycleRecord> = voltctl_snap::Unpack::unpack(r)?;
        // The crossing record at records[pre_len] must exist, or every
        // accessor (crossing/pre/post) would panic on the decoded value.
        if pre_len >= records.len() {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "capture pre-window length {pre_len} out of range for {} records",
                records.len()
            )));
        }
        Ok(EmergencyCapture {
            kind,
            crossing_cycle,
            pre_len,
            records,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Pending {
    capture: EmergencyCapture,
    post_left: usize,
}

impl voltctl_snap::Pack for Pending {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.capture.pack(w);
        w.put_usize(self.post_left);
    }
}

impl voltctl_snap::Unpack for Pending {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(Pending {
            capture: voltctl_snap::Unpack::unpack(r)?,
            post_left: r.get_usize()?,
        })
    }
}

/// The in-memory flight recorder: ring buffer + capture freezer.
///
/// This is the "MemoryRecorder" of tracing: attach it via
/// `ControlLoopBuilder::tracer`, run, then snapshot with
/// [`to_cell`](Self::to_cell).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    window: usize,
    max_captures: usize,
    ring: VecDeque<CycleRecord>,
    cycles: u64,
    last_supply: SupplyBand,
    last_actuating: bool,
    pending: Option<Pending>,
    captures: Vec<EmergencyCapture>,
    crossings: u64,
    under_crossings: u64,
    over_crossings: u64,
    dropped_captures: u64,
    interventions: Vec<u64>,
    interventions_total: u64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_WINDOW)
    }
}

impl FlightRecorder {
    /// A recorder with the given pre/post window (clamped to ≥ 1 cycle)
    /// and the default capture cap.
    pub fn new(window: usize) -> FlightRecorder {
        FlightRecorder {
            window: window.max(1),
            max_captures: DEFAULT_MAX_CAPTURES,
            ring: VecDeque::new(),
            cycles: 0,
            last_supply: SupplyBand::Safe,
            last_actuating: false,
            pending: None,
            captures: Vec::new(),
            crossings: 0,
            under_crossings: 0,
            over_crossings: 0,
            dropped_captures: 0,
            interventions: Vec::new(),
            interventions_total: 0,
        }
    }

    /// The configured pre/post window, cycles.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records currently buffered in the ring (`min(window, cycles)`).
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }

    /// Total records consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Emergency crossings observed so far (captured or not).
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Snapshots this recorder into a [`CellTrace`], flushing any capture
    /// still collecting its post-window. The recorder itself is untouched
    /// (cells are snapshotted by the engine after the run).
    pub fn to_cell(&self, label: impl Into<String>) -> CellTrace {
        let mut captures = self.captures.clone();
        if let Some(p) = &self.pending {
            captures.push(p.capture.clone());
        }
        CellTrace {
            label: label.into(),
            window: self.window,
            cycles: self.cycles,
            captures,
            crossings: self.crossings,
            under_crossings: self.under_crossings,
            over_crossings: self.over_crossings,
            dropped_captures: self.dropped_captures,
            interventions: self.interventions.clone(),
            interventions_total: self.interventions_total,
        }
    }
}

impl voltctl_snap::Pack for FlightRecorder {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_usize(self.window);
        w.put_usize(self.max_captures);
        self.ring.pack(w);
        w.put_u64(self.cycles);
        self.last_supply.pack(w);
        w.put_bool(self.last_actuating);
        self.pending.pack(w);
        self.captures.pack(w);
        w.put_u64(self.crossings);
        w.put_u64(self.under_crossings);
        w.put_u64(self.over_crossings);
        w.put_u64(self.dropped_captures);
        self.interventions.pack(w);
        w.put_u64(self.interventions_total);
    }
}

impl voltctl_snap::Unpack for FlightRecorder {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let corrupt = |msg: String| voltctl_snap::SnapError::Corrupt(msg);
        let window = r.get_usize()?;
        let max_captures = r.get_usize()?;
        let ring: VecDeque<CycleRecord> = voltctl_snap::Unpack::unpack(r)?;
        let cycles = r.get_u64()?;
        let last_supply = voltctl_snap::Unpack::unpack(r)?;
        let last_actuating = r.get_bool()?;
        let pending: Option<Pending> = voltctl_snap::Unpack::unpack(r)?;
        let captures: Vec<EmergencyCapture> = voltctl_snap::Unpack::unpack(r)?;
        let crossings = r.get_u64()?;
        let under_crossings = r.get_u64()?;
        let over_crossings = r.get_u64()?;
        let dropped_captures = r.get_u64()?;
        let interventions: Vec<u64> = voltctl_snap::Unpack::unpack(r)?;
        let interventions_total = r.get_u64()?;

        if window == 0 {
            return Err(corrupt("flight-recorder window must be >= 1".into()));
        }
        if ring.len() > window {
            return Err(corrupt(format!(
                "ring holds {} records but the window is {window}",
                ring.len()
            )));
        }
        if cycles < ring.len() as u64 {
            return Err(corrupt(format!(
                "ring holds {} records but only {cycles} cycles elapsed",
                ring.len()
            )));
        }
        if let Some(p) = &pending {
            if p.post_left == 0 || p.post_left > window {
                return Err(corrupt(format!(
                    "pending capture post-window {} out of range 1..={window}",
                    p.post_left
                )));
            }
        }
        if crossings != under_crossings + over_crossings {
            return Err(corrupt(format!(
                "crossing counts disagree: {crossings} != {under_crossings} + {over_crossings}"
            )));
        }
        if interventions.len() > MAX_INTERVENTION_MARKS {
            return Err(corrupt(format!(
                "{} intervention marks exceed the {MAX_INTERVENTION_MARKS} cap",
                interventions.len()
            )));
        }
        if interventions_total < interventions.len() as u64 {
            return Err(corrupt(format!(
                "{} intervention marks but total is {interventions_total}",
                interventions.len()
            )));
        }
        Ok(FlightRecorder {
            window,
            max_captures,
            ring,
            cycles,
            last_supply,
            last_actuating,
            pending,
            captures,
            crossings,
            under_crossings,
            over_crossings,
            dropped_captures,
            interventions,
            interventions_total,
        })
    }
}

impl Tracer for FlightRecorder {
    fn cycle(&mut self, rec: CycleRecord) {
        // Intervention markers: rising edges of any actuator activity.
        let actuating = rec.actuating();
        if actuating && !self.last_actuating {
            self.interventions_total += 1;
            if self.interventions.len() < MAX_INTERVENTION_MARKS {
                self.interventions.push(rec.cycle);
            }
        }
        self.last_actuating = actuating;

        // A crossing is entry into a non-Safe band, matching
        // VoltageMonitor's event counting (Under↔Over flips included).
        let crossing = rec.supply != SupplyBand::Safe && rec.supply != self.last_supply;
        self.last_supply = rec.supply;
        if crossing {
            self.crossings += 1;
            match rec.supply {
                SupplyBand::Under => self.under_crossings += 1,
                SupplyBand::Over => self.over_crossings += 1,
                SupplyBand::Safe => unreachable!("crossing implies non-Safe band"),
            }
        }

        match &mut self.pending {
            Some(p) => {
                p.capture.records.push(rec);
                if crossing {
                    // Extend the episode rather than opening an
                    // overlapping capture.
                    p.post_left = self.window;
                } else {
                    p.post_left -= 1;
                }
                if p.post_left == 0 {
                    let done = self.pending.take().expect("pending capture present");
                    self.captures.push(done.capture);
                }
            }
            None if crossing => {
                if self.captures.len() >= self.max_captures {
                    self.dropped_captures += 1;
                } else {
                    let mut records: Vec<CycleRecord> = self.ring.iter().copied().collect();
                    let pre_len = records.len();
                    records.push(rec);
                    self.pending = Some(Pending {
                        capture: EmergencyCapture {
                            kind: match rec.supply {
                                SupplyBand::Under => EmergencyKind::Under,
                                _ => EmergencyKind::Over,
                            },
                            crossing_cycle: rec.cycle,
                            pre_len,
                            records,
                        },
                        post_left: self.window,
                    });
                }
            }
            None => {}
        }

        if self.ring.len() == self.window {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
        self.cycles += 1;
    }
}

/// One cell's finished trace: the flight recorder's exportable snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    /// Cell label (grid position title from the scenario).
    pub label: String,
    /// Pre/post window the captures were taken with.
    pub window: usize,
    /// Cycles the cell traced in total.
    pub cycles: u64,
    /// Frozen captures, in crossing order, non-overlapping.
    pub captures: Vec<EmergencyCapture>,
    /// Total emergency crossings (≥ `captures.len()`).
    pub crossings: u64,
    /// Crossings into the under-voltage band.
    pub under_crossings: u64,
    /// Crossings into the over-voltage band.
    pub over_crossings: u64,
    /// Crossings not captured because storage was exhausted.
    pub dropped_captures: u64,
    /// Cycles at which an actuator intervention began (rising edges).
    pub interventions: Vec<u64>,
    /// Total intervention rising edges (≥ `interventions.len()`).
    pub interventions_total: u64,
}

/// All cells' traces for one run, in grid order.
///
/// Merging is list concatenation, so it is associative and — because the
/// engine always merges in grid order — deterministic for any `--jobs`
/// split, exactly like telemetry merging.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergedTrace {
    /// Per-cell traces in grid order.
    pub cells: Vec<CellTrace>,
}

impl MergedTrace {
    /// An empty merged trace.
    pub fn new() -> MergedTrace {
        MergedTrace::default()
    }

    /// Appends one cell's trace.
    pub fn push(&mut self, cell: CellTrace) {
        self.cells.push(cell);
    }

    /// Appends every cell of `other` (ordered concatenation).
    pub fn merge(&mut self, other: &MergedTrace) {
        self.cells.extend(other.cells.iter().cloned());
    }

    /// Total captures across cells.
    pub fn total_captures(&self) -> usize {
        self.cells.iter().map(|c| c.captures.len()).sum()
    }

    /// Total emergency crossings across cells.
    pub fn total_crossings(&self) -> u64 {
        self.cells.iter().map(|c| c.crossings).sum()
    }

    /// Total cycles traced across cells.
    pub fn total_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.cycles).sum()
    }

    /// Whether no cell traced any cycles.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|c| c.cycles == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::events;

    fn rec(cycle: u64, supply: SupplyBand) -> CycleRecord {
        CycleRecord {
            cycle,
            current: 10.0,
            voltage: 1.0,
            supply,
            ..CycleRecord::default()
        }
    }

    #[test]
    fn capture_freezes_pre_and_post_window() {
        let mut fr = FlightRecorder::new(4);
        for k in 0..10 {
            fr.cycle(rec(k, SupplyBand::Safe));
        }
        assert_eq!(fr.buffered(), 4);
        fr.cycle(rec(10, SupplyBand::Under));
        for k in 11..20 {
            fr.cycle(rec(k, SupplyBand::Safe));
        }
        let cell = fr.to_cell("t");
        assert_eq!(cell.crossings, 1);
        assert_eq!(cell.captures.len(), 1);
        let cap = &cell.captures[0];
        assert_eq!(cap.kind, EmergencyKind::Under);
        assert_eq!(cap.pre_len, 4);
        assert_eq!(cap.crossing_cycle, 10);
        assert_eq!(cap.crossing().cycle, 10);
        // 4 pre + crossing + 4 post.
        assert_eq!(cap.records.len(), 9);
        assert_eq!(cap.pre().len(), 4);
        assert_eq!(cap.post().len(), 4);
        assert_eq!(cap.records.first().unwrap().cycle, 6);
        assert_eq!(cap.records.last().unwrap().cycle, 14);
    }

    #[test]
    fn recrossing_extends_the_open_capture() {
        let mut fr = FlightRecorder::new(3);
        fr.cycle(rec(0, SupplyBand::Under));
        fr.cycle(rec(1, SupplyBand::Safe));
        fr.cycle(rec(2, SupplyBand::Over)); // re-crossing inside post-window
        for k in 3..10 {
            fr.cycle(rec(k, SupplyBand::Safe));
        }
        let cell = fr.to_cell("t");
        assert_eq!(cell.crossings, 2);
        assert_eq!(cell.under_crossings, 1);
        assert_eq!(cell.over_crossings, 1);
        assert_eq!(cell.captures.len(), 1, "episode extension, not overlap");
        let cap = &cell.captures[0];
        // cycle 0..=5: crossing, safe, re-crossing, then 3 post cycles.
        assert_eq!(cap.records.len(), 6);
    }

    #[test]
    fn partial_post_window_is_flushed_by_snapshot() {
        let mut fr = FlightRecorder::new(8);
        fr.cycle(rec(0, SupplyBand::Over));
        fr.cycle(rec(1, SupplyBand::Safe));
        let cell = fr.to_cell("t");
        assert_eq!(cell.captures.len(), 1);
        assert_eq!(cell.captures[0].records.len(), 2);
        // Snapshot did not consume the pending capture.
        assert_eq!(fr.to_cell("t"), cell);
    }

    #[test]
    fn capture_cap_counts_dropped_crossings() {
        let mut fr = FlightRecorder::new(1);
        fr.max_captures = 2;
        for k in 0..12u64 {
            // Alternate Safe / Under: a crossing every other cycle, each
            // capture closing after one post cycle.
            let band = if k % 2 == 1 {
                SupplyBand::Under
            } else {
                SupplyBand::Safe
            };
            fr.cycle(rec(k, band));
        }
        let cell = fr.to_cell("t");
        assert_eq!(cell.captures.len(), 2);
        assert_eq!(cell.crossings, 6);
        assert_eq!(cell.dropped_captures, 4);
    }

    #[test]
    fn interventions_mark_rising_edges_only() {
        let mut fr = FlightRecorder::new(4);
        let mut r = rec(0, SupplyBand::Safe);
        fr.cycle(r);
        for k in 1..4 {
            r = rec(k, SupplyBand::Safe);
            r.events = events::GATE_FU;
            fr.cycle(r);
        }
        r = rec(4, SupplyBand::Safe);
        fr.cycle(r);
        r = rec(5, SupplyBand::Safe);
        r.events = events::PHANTOM_IL1;
        fr.cycle(r);
        let cell = fr.to_cell("t");
        assert_eq!(cell.interventions, vec![1, 5]);
        assert_eq!(cell.interventions_total, 2);
    }

    #[test]
    fn wire_round_trip_resumes_mid_capture() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, Unpack};
        // Drive a recorder into the middle of an open capture, snapshot
        // it, then keep feeding the original and the restored copy the
        // same records: they must stay indistinguishable.
        let mut fr = FlightRecorder::new(4);
        for k in 0..8 {
            fr.cycle(rec(k, SupplyBand::Safe));
        }
        fr.cycle(rec(8, SupplyBand::Under));
        fr.cycle(rec(9, SupplyBand::Safe)); // post-window still open
        assert!(fr.pending.is_some(), "capture must be mid-flight");

        let mut w = ByteWriter::new();
        fr.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut restored = FlightRecorder::unpack(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(restored, fr);

        for k in 10..30 {
            let band = if k == 15 {
                SupplyBand::Over
            } else {
                SupplyBand::Safe
            };
            fr.cycle(rec(k, band));
            restored.cycle(rec(k, band));
        }
        assert_eq!(restored, fr);
        assert_eq!(restored.to_cell("t"), fr.to_cell("t"));
        let mut w2 = ByteWriter::new();
        restored.pack(&mut w2);
        let mut w3 = ByteWriter::new();
        fr.pack(&mut w3);
        assert_eq!(w2.into_bytes(), w3.into_bytes());
    }

    #[test]
    fn wire_decode_rejects_inconsistent_state() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, SnapError, Unpack};
        let mut fr = FlightRecorder::new(4);
        for k in 0..6 {
            fr.cycle(rec(k, SupplyBand::Safe));
        }
        let mut w = ByteWriter::new();
        fr.pack(&mut w);
        let good = w.into_bytes();
        assert!(FlightRecorder::unpack(&mut ByteReader::new(&good)).is_ok());

        // A zero window can never be produced by the constructor.
        let mut bad = good.clone();
        bad[..8].copy_from_slice(&0u64.to_le_bytes());
        match FlightRecorder::unpack(&mut ByteReader::new(&bad)) {
            Err(SnapError::Corrupt(msg)) => assert!(msg.contains("window"), "{msg}"),
            other => panic!("zero window must be rejected, got {other:?}"),
        }

        // Truncations at every prefix must error, never panic.
        for cut in (0..good.len()).step_by(7) {
            assert!(
                FlightRecorder::unpack(&mut ByteReader::new(&good[..cut])).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn merge_is_ordered_concatenation() {
        let mut a = MergedTrace::new();
        a.push(FlightRecorder::new(2).to_cell("a"));
        let mut b = MergedTrace::new();
        b.push(FlightRecorder::new(2).to_cell("b"));
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.cells.len(), 2);
        assert_eq!(ab.cells[0].label, "a");
        assert_eq!(ab.cells[1].label, "b");
        assert!(ab.is_empty());
    }
}
