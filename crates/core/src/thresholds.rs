//! The control-theoretic threshold solver (§4.3, Table 3).
//!
//! The paper's design flow: model the supply network, construct the true
//! worst-case current waveform (a full-swing square train at the package
//! resonance), then solve — in MATLAB/Simulink — for the highest/lowest
//! sensor thresholds that *guarantee* the supply never leaves its ±5%
//! specification given the sensor delay and the actuator's strength. We
//! reproduce that flow with direct worst-case closed-loop simulation plus
//! bisection.
//!
//! The worst-case plant is adversarial: an attacker program drives the
//! largest possible current square wave at the resonant frequency. The
//! controller senses with `delay` cycles of lag; when it engages, the
//! actuator clamps the current the machine can draw toward the scope's
//! [`Leverage`]: units inside the scope clamp immediately, units outside
//! it quiesce only as the pipeline backs up (the scope's settle time).
//! Weak scopes (FU-only) leave the adversary enough residual swing, for
//! long enough, that **no** threshold keeps the supply in specification —
//! the solver reports [`ControlError::Unstable`], reproducing the paper's
//! finding that FU-only control fails at higher sensor delays.

use crate::actuator::Leverage;
use crate::replay::{replay, ReplayConfig};
use std::fmt;
use voltctl_pdn::PdnModel;

/// A solved threshold pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Undershoot trigger (volts).
    pub v_low: f64,
    /// Overshoot trigger (volts).
    pub v_high: f64,
}

impl Thresholds {
    /// The safe operating window in millivolts (Table 3's last column).
    pub fn window_mv(&self) -> f64 {
        (self.v_high - self.v_low) * 1000.0
    }

    /// Compensates for sensor error as the paper prescribes (§4.5): raise
    /// the low threshold and lower the high threshold by the error bound.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::Infeasible`] when the error consumes the
    /// whole window.
    pub fn tightened(&self, error_mv: f64) -> Result<Thresholds, ControlError> {
        let e = error_mv / 1000.0;
        let t = Thresholds {
            v_low: self.v_low + e,
            v_high: self.v_high - e,
        };
        if t.v_low >= t.v_high {
            return Err(ControlError::Infeasible(format!(
                "sensor error {error_mv} mV consumes the entire {:.0} mV window",
                self.window_mv()
            )));
        }
        Ok(t)
    }
}

/// Errors from the solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// No threshold exists: the actuation scope cannot arrest the
    /// worst-case swing at this impedance and delay.
    Unstable {
        /// Sensor delay at which stability was lost (cycles).
        delay_cycles: u32,
    },
    /// The requested configuration is self-contradictory.
    Infeasible(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Unstable { delay_cycles } => write!(
                f,
                "no safe threshold exists at sensor delay {delay_cycles}: actuation leverage insufficient"
            ),
            ControlError::Infeasible(why) => write!(f, "infeasible configuration: {why}"),
        }
    }
}

impl std::error::Error for ControlError {}

/// Inputs to the solver.
#[derive(Debug, Clone)]
pub struct SolveSetup<'a> {
    /// The supply network under design.
    pub pdn: &'a PdnModel,
    /// The machine's minimum sustained current (amps).
    pub i_min: f64,
    /// The machine's maximum sustained current (amps).
    pub i_max: f64,
    /// The actuation scope's current leverage.
    pub leverage: Leverage,
    /// Sensor delay in cycles.
    pub delay_cycles: u32,
    /// Worst-case simulation length in cycles.
    pub sim_cycles: u64,
    /// Maximum per-cycle current change the plant can produce, amps/cycle.
    /// Real pipelines ramp over a few cycles as stages fill and drain —
    /// the same observation behind the paper's multi-cycle energy
    /// spreading fix to Wattch ("avoids the overestimation of current
    /// swings"). Defaults to a third of the full swing per cycle.
    pub slew_limit: f64,
}

impl<'a> SolveSetup<'a> {
    /// A setup with the default simulation length.
    pub fn new(
        pdn: &'a PdnModel,
        i_min: f64,
        i_max: f64,
        leverage: Leverage,
        delay_cycles: u32,
    ) -> SolveSetup<'a> {
        SolveSetup {
            pdn,
            i_min,
            i_max,
            leverage,
            delay_cycles,
            sim_cycles: 6_000,
            slew_limit: (i_max - i_min) / 3.0,
        }
    }
}

/// The worst-case closed-loop plant used for both solves.
struct WorstCase<'a> {
    setup: &'a SolveSetup<'a>,
    period: usize,
}

/// Extremes of the supply voltage over a worst-case run.
#[derive(Debug, Clone, Copy)]
struct Extremes {
    min_v: f64,
    max_v: f64,
}

impl<'a> WorstCase<'a> {
    fn new(setup: &'a SolveSetup<'a>) -> WorstCase<'a> {
        WorstCase {
            setup,
            period: setup.pdn.resonant_period_cycles().max(2),
        }
    }

    /// Runs the adversary against the controller with the given
    /// (possibly infinite) thresholds and returns the voltage extremes.
    fn run(&self, v_low: f64, v_high: f64) -> Extremes {
        let s = self.setup;
        let mut supply = s.pdn.discretize();
        supply.set_reference_current(s.i_min);
        let half = self.period / 2;
        let period = self.period;
        let demand = (0..s.sim_cycles).map(move |t| {
            if (t as usize) % period < half {
                s.i_max
            } else {
                s.i_min
            }
        });
        let out = replay(
            &mut supply,
            demand,
            &ReplayConfig {
                thresholds: Some(Thresholds { v_low, v_high }),
                leverage: s.leverage,
                delay_cycles: s.delay_cycles,
                slew_limit: Some(s.slew_limit),
                i_max: s.i_max,
                i_min: s.i_min,
            },
        );
        Extremes {
            min_v: out.min_v,
            max_v: out.max_v,
        }
    }
}

/// Solves for the widest guaranteed-safe threshold window (Table 3).
///
/// The low threshold is solved first against the undershoot worst case
/// (with the high side disabled — conservative), then the high threshold
/// against the overshoot worst case with the solved low side active.
///
/// # Errors
///
/// [`ControlError::Unstable`] when no low threshold keeps the supply above
/// specification (the scope's leverage is insufficient at this delay and
/// impedance); [`ControlError::Infeasible`] for contradictory inputs.
pub fn solve_thresholds(setup: &SolveSetup<'_>) -> Result<Thresholds, ControlError> {
    if !(setup.i_min.is_finite() && setup.i_max.is_finite() && setup.i_min < setup.i_max) {
        return Err(ControlError::Infeasible(
            "need i_min < i_max, both finite".into(),
        ));
    }
    let v_nom = setup.pdn.v_nominal();
    let v_min_spec = v_nom * (1.0 - setup.pdn.tolerance());
    let v_max_spec = v_nom * (1.0 + setup.pdn.tolerance());
    let plant = WorstCase::new(setup);

    // --- low side: find the lowest v_low that still guarantees spec ----
    let feasible_low = |v_low: f64| plant.run(v_low, f64::INFINITY).min_v >= v_min_spec;

    // The most conservative choice is just under nominal. If even that
    // fails, no threshold works: the scope is unstable here.
    let top = v_nom - 1e-4;
    if !feasible_low(top) {
        return Err(ControlError::Unstable {
            delay_cycles: setup.delay_cycles,
        });
    }
    let mut lo = v_min_spec;
    let mut hi = top;
    if feasible_low(lo) {
        hi = lo;
    } else {
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if feasible_low(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }
    let v_low = hi;

    // --- high side: highest v_high that still guarantees spec ----------
    let feasible_high = |v_high: f64| plant.run(v_low, v_high).max_v <= v_max_spec;
    let bottom = v_nom + 1e-4;
    if !feasible_high(bottom) {
        return Err(ControlError::Unstable {
            delay_cycles: setup.delay_cycles,
        });
    }
    let mut lo = bottom;
    let mut hi = v_max_spec;
    if feasible_high(hi) {
        lo = hi;
    } else {
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if feasible_high(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let v_high = lo;

    Ok(Thresholds { v_low, v_high })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ActuationScope;
    use voltctl_pdn::PdnModel;
    use voltctl_power::{PowerModel, PowerParams};

    fn harness(percent: f64) -> (PdnModel, PowerModel) {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let base = PdnModel::paper_default().unwrap();
        let delta = power.achievable_peak_current() - power.min_current();
        let target = base.calibrated_target(delta).unwrap();
        (target.scaled(percent).unwrap(), power)
    }

    fn setup_for<'a>(
        pdn: &'a PdnModel,
        power: &PowerModel,
        scope: ActuationScope,
        delay: u32,
    ) -> SolveSetup<'a> {
        SolveSetup::new(
            pdn,
            power.min_current(),
            power.achievable_peak_current(),
            scope.leverage(power),
            delay,
        )
    }

    #[test]
    fn ideal_scope_solves_at_all_paper_delays() {
        let (pdn, power) = harness(2.0);
        for delay in 0..=6 {
            let t = solve_thresholds(&setup_for(&pdn, &power, ActuationScope::Ideal, delay))
                .unwrap_or_else(|e| panic!("delay {delay}: {e}"));
            assert!(t.v_low >= 0.95 && t.v_low < 1.0, "delay {delay}: {t:?}");
            assert!(t.v_high > 1.0 && t.v_high <= 1.05, "delay {delay}: {t:?}");
        }
    }

    #[test]
    fn window_shrinks_with_delay() {
        let (pdn, power) = harness(2.0);
        let mut prev = f64::INFINITY;
        for delay in 0..=6 {
            let t =
                solve_thresholds(&setup_for(&pdn, &power, ActuationScope::Ideal, delay)).unwrap();
            assert!(
                t.window_mv() <= prev + 1e-6,
                "window must shrink: delay {delay} window {} prev {prev}",
                t.window_mv()
            );
            prev = t.window_mv();
        }
    }

    #[test]
    fn low_threshold_rises_with_delay() {
        let (pdn, power) = harness(2.0);
        let t0 = solve_thresholds(&setup_for(&pdn, &power, ActuationScope::Ideal, 0)).unwrap();
        let t6 = solve_thresholds(&setup_for(&pdn, &power, ActuationScope::Ideal, 6)).unwrap();
        assert!(t6.v_low > t0.v_low);
    }

    #[test]
    fn fu_only_goes_unstable_at_high_delay() {
        let (pdn, power) = harness(2.0);
        let mut first_unstable = None;
        for delay in 0..=6 {
            let r = solve_thresholds(&setup_for(&pdn, &power, ActuationScope::Fu, delay));
            if r.is_err() && first_unstable.is_none() {
                first_unstable = Some(delay);
            }
            if let Some(d) = first_unstable {
                assert!(
                    r.is_err(),
                    "once unstable at {d}, larger delay {delay} must stay unstable"
                );
            }
        }
        assert!(
            first_unstable.is_some(),
            "FU-only control must lose stability within the paper's delay range"
        );
    }

    #[test]
    fn coarse_scopes_stay_stable_through_delay_five() {
        let (pdn, power) = harness(2.0);
        for scope in [ActuationScope::FuDl1, ActuationScope::FuDl1Il1] {
            for delay in 0..=5 {
                solve_thresholds(&setup_for(&pdn, &power, scope, delay))
                    .unwrap_or_else(|e| panic!("{} delay {delay}: {e}", scope.name()));
            }
        }
    }

    #[test]
    fn tightened_compensates_error() {
        let t = Thresholds {
            v_low: 0.96,
            v_high: 1.02,
        };
        let tt = t.tightened(15.0).unwrap();
        assert!((tt.v_low - 0.975).abs() < 1e-12);
        assert!((tt.v_high - 1.005).abs() < 1e-12);
        assert!(t.tightened(40.0).is_err());
    }

    #[test]
    fn window_mv_reports_millivolts() {
        let t = Thresholds {
            v_low: 0.956,
            v_high: 1.017,
        };
        assert!((t.window_mv() - 61.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_inputs_rejected() {
        let (pdn, power) = harness(2.0);
        let mut s = setup_for(&pdn, &power, ActuationScope::Ideal, 0);
        s.i_min = s.i_max + 1.0;
        assert!(matches!(
            solve_thresholds(&s),
            Err(ControlError::Infeasible(_))
        ));
    }

    #[test]
    fn higher_impedance_narrows_the_window() {
        let (pdn2, power) = harness(2.0);
        let (pdn3, _) = harness(3.0);
        let t2 = solve_thresholds(&setup_for(&pdn2, &power, ActuationScope::Ideal, 2)).unwrap();
        let t3 = solve_thresholds(&setup_for(&pdn3, &power, ActuationScope::Ideal, 2)).unwrap();
        assert!(t3.window_mv() < t2.window_mv());
    }

    #[test]
    fn error_display_mentions_delay() {
        let e = ControlError::Unstable { delay_cycles: 4 };
        assert!(e.to_string().contains('4'));
    }
}
