//! Target-impedance calibration (§3.3).
//!
//! The paper defines the **target impedance** as the peak impedance at
//! which the worst-case current swing produces exactly the allowed ±5%
//! deviation — emergencies are impossible at or below it *by definition*.
//! This module ties the power model's current envelope to the PDN fit:
//! [`calibrated_pdn`] produces the network at any "percent of target
//! impedance" (Table 2's sweep axis: 100%–400%).

use voltctl_pdn::{PdnError, PdnModel};
use voltctl_power::PowerModel;

/// Builds the supply network at `percent_of_target` (1.0 = exactly the
/// target impedance; 2.0 = the paper's cheaper 200% design point) for the
/// machine described by `power`, preserving `base`'s DC resistance,
/// resonant frequency, clock, and voltage parameters.
///
/// # Errors
///
/// Propagates fit errors from the underlying model (e.g. a current
/// envelope whose IR drop alone exceeds the voltage budget).
pub fn calibrated_pdn(
    base: &PdnModel,
    power: &PowerModel,
    percent_of_target: f64,
) -> Result<PdnModel, PdnError> {
    let target = base.calibrated_target(current_swing(power))?;
    target.scaled(percent_of_target)
}

/// The machine's worst-case *achievable* current swing (amps): saturated
/// pipeline minus the clock-gated floor. This is the envelope the paper
/// extracts "from the processor power model" for its worst-case analysis —
/// the structural sum-of-peaks is unreachable through a finite issue
/// width.
pub fn current_swing(power: &PowerModel) -> f64 {
    power.achievable_peak_current() - power.min_current()
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltctl_power::PowerParams;

    #[test]
    fn target_impedance_admits_no_worst_case_emergency() {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let base = PdnModel::paper_default().unwrap();
        let at_target = calibrated_pdn(&base, &power, 1.0).unwrap();
        let dev = at_target.worst_case_deviation(current_swing(&power));
        assert!(dev <= at_target.tolerance_volts() * (1.0 + 1e-3));
    }

    #[test]
    fn double_impedance_doubles_worst_case() {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let base = PdnModel::paper_default().unwrap();
        let delta = current_swing(&power);
        let p100 = calibrated_pdn(&base, &power, 1.0).unwrap();
        let p200 = calibrated_pdn(&base, &power, 2.0).unwrap();
        let d100 = p100.worst_case_deviation(delta);
        let d200 = p200.worst_case_deviation(delta);
        // Deviation scales near-linearly with peak impedance (the DC-R
        // contribution is fixed, so slightly sub-linear).
        assert!(d200 > 1.6 * d100 && d200 < 2.2 * d100, "{d100} vs {d200}");
    }

    #[test]
    fn preserves_base_parameters() {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let base = PdnModel::paper_default().unwrap();
        let cal = calibrated_pdn(&base, &power, 2.0).unwrap();
        assert!((cal.r_dc() - base.r_dc()).abs() < 1e-15);
        assert!(
            (cal.resonant_freq_hz() - base.resonant_freq_hz()).abs() / base.resonant_freq_hz()
                < 1e-6
        );
        assert_eq!(cal.v_nominal(), base.v_nominal());
    }
}
