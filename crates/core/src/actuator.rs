//! Actuation scopes (§5.1) and their current leverage.
//!
//! The paper evaluates three granularities of microarchitectural
//! actuation, each a superset of the last:
//!
//! * **FU** — clock-gate / phantom-fire all functional units;
//! * **FU/DL1** — additionally the level-one data cache (with the memory
//!   ports and LSQ);
//! * **FU/DL1/IL1** — additionally the level-one instruction cache (with
//!   fetch and the predictor).
//!
//! An **Ideal** scope (used for the sensor studies of §4.4–4.5) actuates
//! everything instantaneously.
//!
//! Beyond driving the CPU's [`GatingState`], each scope exposes its
//! *current leverage* — the current envelope the actuator can force the
//! machine toward — which the worst-case threshold solver consumes. The
//! leverage model also captures *indirect* stalling: units outside the
//! scope quiet down once the pipeline backs up behind the gated ones, with
//! a scope-specific settling time (the out-of-order window drains slowly
//! behind gated FUs, but fetch stops almost immediately once IL1 is
//! gated).

use crate::controller::ControlAction;
use voltctl_cpu::{Domain, GatingState};
use voltctl_power::{PowerModel, Unit};

/// Which pipeline slice the actuator controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActuationScope {
    /// Instantaneous, full-machine actuation (sensor-study baseline).
    Ideal,
    /// Functional units only.
    Fu,
    /// Functional units + L1 data cache.
    FuDl1,
    /// Functional units + both L1 caches.
    FuDl1Il1,
}

impl ActuationScope {
    /// All scopes, coarsest last.
    pub fn all() -> [ActuationScope; 4] {
        [
            ActuationScope::Ideal,
            ActuationScope::Fu,
            ActuationScope::FuDl1,
            ActuationScope::FuDl1Il1,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ActuationScope::Ideal => "ideal",
            ActuationScope::Fu => "FU",
            ActuationScope::FuDl1 => "FU/DL1",
            ActuationScope::FuDl1Il1 => "FU/DL1/IL1",
        }
    }

    /// The gating domains directly driven by this scope.
    pub fn domains(self) -> &'static [Domain] {
        match self {
            ActuationScope::Fu => &[Domain::Fu],
            ActuationScope::FuDl1 => &[Domain::Fu, Domain::Dl1],
            ActuationScope::Ideal | ActuationScope::FuDl1Il1 => {
                &[Domain::Fu, Domain::Dl1, Domain::Il1]
            }
        }
    }

    /// Applies a controller command to the CPU's gating state.
    pub fn apply(self, action: ControlAction, gating: &mut GatingState) {
        match action {
            ControlAction::None => gating.release_all(),
            ControlAction::ReduceCurrent => {
                gating.release_all();
                for &d in self.domains() {
                    gating.set_gated(d, true);
                }
            }
            ControlAction::IncreaseCurrent => {
                gating.release_all();
                for &d in self.domains() {
                    gating.set_phantom(d, true);
                }
            }
        }
    }

    /// The power-model units directly inside this scope's gate.
    pub fn direct_units(self) -> &'static [Unit] {
        match self {
            ActuationScope::Fu => &[Unit::IntAlu, Unit::IntMult, Unit::FpAlu, Unit::FpMult],
            ActuationScope::FuDl1 => &[
                Unit::IntAlu,
                Unit::IntMult,
                Unit::FpAlu,
                Unit::FpMult,
                Unit::Dl1,
                Unit::Lsq,
            ],
            ActuationScope::Ideal | ActuationScope::FuDl1Il1 => &[
                Unit::IntAlu,
                Unit::IntMult,
                Unit::FpAlu,
                Unit::FpMult,
                Unit::Dl1,
                Unit::Lsq,
                Unit::Il1,
                Unit::Fetch,
                Unit::Bpred,
            ],
        }
    }

    /// Current leverage for the worst-case solver.
    pub fn leverage(self, power: &PowerModel) -> Leverage {
        let params = power.params();
        let vdd = params.vdd;
        let floor = params.gating_floor;
        let direct = self.direct_units();

        // Sustained worst-case current while Reduce holds: direct units at
        // the gating floor, everything else (conservatively) at peak.
        let mut reduce_floor_w = 0.0;
        let mut increase_ceiling_w = 0.0;
        for unit in Unit::all() {
            let peak = params.peak(unit);
            let in_scope = direct.contains(&unit) || unit == Unit::Clock;
            if unit == Unit::Clock {
                reduce_floor_w += peak;
                increase_ceiling_w += peak;
                continue;
            }
            if in_scope {
                reduce_floor_w += peak * floor;
                increase_ceiling_w += peak;
            } else {
                // Out-of-scope units settle toward the floor as the
                // pipeline backs up (see `settle_cycles`) — except under
                // FU-only control, where loads, stores, and fetch need no
                // functional unit and can *sustain* partial activity
                // indefinitely (memory-bound code keeps running with the
                // ALUs gated). That sustained residual is the second
                // reason FU-only control lacks grip.
                reduce_floor_w += peak * floor + self.sustained_residual() * peak * (1.0 - floor);
                // Phantom firing adds nothing outside the scope.
                increase_ceiling_w += peak * floor;
            }
        }

        Leverage {
            reduce_floor_amps: reduce_floor_w / vdd,
            increase_ceiling_amps: increase_ceiling_w / vdd,
            settle_cycles: self.settle_cycles(),
        }
    }

    /// How long the machine takes to quiesce after Reduce engages:
    /// out-of-scope structures keep drawing near-peak current until the
    /// pipeline backs up behind the gated units.
    ///
    /// * Ideal — instantaneous by definition.
    /// * FU/DL1/IL1 — fetch gates directly; one or two cycles of residue.
    /// * FU/DL1 — fetch and dispatch continue until the fetch queue backs
    ///   up (a handful of cycles at 8-wide with a 32-entry queue).
    /// * FU — loads, stores, and fetch all continue until the window
    ///   fills behind the gated execution units: the slowest, weakest
    ///   grip — the reason the paper finds FU-only control unstable for
    ///   sensor delays of three cycles or more.
    pub fn settle_cycles(self) -> u64 {
        match self {
            ActuationScope::Ideal => 0,
            ActuationScope::FuDl1Il1 => 2,
            ActuationScope::FuDl1 => 6,
            ActuationScope::Fu => 10,
        }
    }

    /// Fraction of an out-of-scope unit's dynamic range that stays active
    /// indefinitely while this scope's Reduce holds (see
    /// [`leverage`](Self::leverage)).
    fn sustained_residual(self) -> f64 {
        match self {
            ActuationScope::Fu => 0.17,
            _ => 0.0,
        }
    }
}

/// The current envelope an actuation scope can force.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Leverage {
    /// Sustained current (amps) once Reduce has fully settled.
    pub reduce_floor_amps: f64,
    /// Sustained current (amps) once Increase (phantom fire) has settled.
    pub increase_ceiling_amps: f64,
    /// Cycles for out-of-scope activity to quiesce after Reduce engages.
    pub settle_cycles: u64,
}

/// Asymmetric actuation (the paper's §6 future-work idea): use one scope
/// for undershoot gating and a different one for overshoot phantom
/// firing.
///
/// The asymmetry exploits that the two responses have different
/// implementation costs: clock-gating a cache is easy (freeze the clock),
/// but phantom-firing it burns real array energy — so a designer might
/// gate FU/DL1/IL1 on voltage-low events while firing only the functional
/// units on the (rarer) voltage-high events.
///
/// # Example
///
/// ```
/// use voltctl_core::actuator::{ActuationScope, AsymmetricActuator};
/// use voltctl_core::controller::ControlAction;
/// use voltctl_cpu::GatingState;
///
/// let act = AsymmetricActuator {
///     reduce: ActuationScope::FuDl1Il1,
///     increase: ActuationScope::Fu,
/// };
/// let mut g = GatingState::default();
/// act.apply(ControlAction::IncreaseCurrent, &mut g);
/// assert!(g.phantom_fu && !g.phantom_dl1); // fires only the FUs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsymmetricActuator {
    /// Scope gated on voltage-low events.
    pub reduce: ActuationScope,
    /// Scope phantom-fired on voltage-high events.
    pub increase: ActuationScope,
}

impl AsymmetricActuator {
    /// A symmetric actuator (both responses use the same scope).
    pub fn symmetric(scope: ActuationScope) -> AsymmetricActuator {
        AsymmetricActuator {
            reduce: scope,
            increase: scope,
        }
    }

    /// Applies a controller command, routing it to the proper scope.
    pub fn apply(&self, action: ControlAction, gating: &mut GatingState) {
        match action {
            ControlAction::ReduceCurrent => self.reduce.apply(action, gating),
            ControlAction::IncreaseCurrent => self.increase.apply(action, gating),
            ControlAction::None => gating.release_all(),
        }
    }

    /// Composite leverage for the worst-case threshold solver: the reduce
    /// side's floor and settle time with the increase side's ceiling.
    pub fn leverage(&self, power: &PowerModel) -> Leverage {
        Leverage {
            increase_ceiling_amps: self.increase.leverage(power).increase_ceiling_amps,
            ..self.reduce.leverage(power)
        }
    }
}

impl voltctl_snap::Pack for ActuationScope {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        let idx = ActuationScope::all()
            .iter()
            .position(|s| s == self)
            .expect("every scope is in all()");
        w.put_u8(idx as u8);
    }
}

impl voltctl_snap::Unpack for ActuationScope {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let idx = r.get_u8()? as usize;
        ActuationScope::all().get(idx).copied().ok_or_else(|| {
            voltctl_snap::SnapError::Corrupt(format!("invalid actuation scope tag {idx}"))
        })
    }
}

impl voltctl_snap::Pack for AsymmetricActuator {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.reduce.pack(w);
        self.increase.pack(w);
    }
}

impl voltctl_snap::Unpack for AsymmetricActuator {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(AsymmetricActuator {
            reduce: voltctl_snap::Unpack::unpack(r)?,
            increase: voltctl_snap::Unpack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltctl_power::PowerParams;

    fn power() -> PowerModel {
        PowerModel::new(PowerParams::paper_3ghz())
    }

    #[test]
    fn reduce_gates_only_scope_domains() {
        let mut g = GatingState::default();
        ActuationScope::Fu.apply(ControlAction::ReduceCurrent, &mut g);
        assert!(g.gate_fu && !g.gate_dl1 && !g.gate_il1);

        ActuationScope::FuDl1.apply(ControlAction::ReduceCurrent, &mut g);
        assert!(g.gate_fu && g.gate_dl1 && !g.gate_il1);

        ActuationScope::FuDl1Il1.apply(ControlAction::ReduceCurrent, &mut g);
        assert!(g.gate_fu && g.gate_dl1 && g.gate_il1);
    }

    #[test]
    fn increase_fires_instead_of_gating() {
        let mut g = GatingState::default();
        ActuationScope::FuDl1.apply(ControlAction::IncreaseCurrent, &mut g);
        assert!(g.phantom_fu && g.phantom_dl1);
        assert!(!g.gate_fu && !g.gate_dl1);
    }

    #[test]
    fn none_releases_everything() {
        let mut g = GatingState::default();
        ActuationScope::Ideal.apply(ControlAction::ReduceCurrent, &mut g);
        assert!(g.any_active());
        ActuationScope::Ideal.apply(ControlAction::None, &mut g);
        assert!(!g.any_active());
    }

    #[test]
    fn coarser_scopes_have_more_leverage() {
        let p = power();
        let fu = ActuationScope::Fu.leverage(&p);
        let fu_dl1 = ActuationScope::FuDl1.leverage(&p);
        let full = ActuationScope::FuDl1Il1.leverage(&p);
        // Phantom-firing a bigger slice reaches higher current.
        assert!(full.increase_ceiling_amps > fu_dl1.increase_ceiling_amps);
        assert!(fu_dl1.increase_ceiling_amps > fu.increase_ceiling_amps);
        // And quiesces faster.
        assert!(full.settle_cycles < fu_dl1.settle_cycles);
        assert!(fu_dl1.settle_cycles < fu.settle_cycles);
    }

    #[test]
    fn full_scope_reaches_machine_extremes() {
        let p = power();
        let full = ActuationScope::FuDl1Il1.leverage(&p);
        assert!((full.reduce_floor_amps - p.min_current()).abs() < 1.0);
        // Phantom firing everything except always-idle structures gets
        // close to (but not beyond) the machine peak.
        assert!(full.increase_ceiling_amps <= p.peak_current() + 1e-9);
        assert!(full.increase_ceiling_amps > 0.7 * p.peak_current());
    }

    #[test]
    fn ideal_is_instant() {
        assert_eq!(ActuationScope::Ideal.settle_cycles(), 0);
        assert_eq!(
            ActuationScope::Ideal.domains(),
            ActuationScope::FuDl1Il1.domains()
        );
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> =
            ActuationScope::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn asymmetric_routes_by_action() {
        let act = AsymmetricActuator {
            reduce: ActuationScope::FuDl1Il1,
            increase: ActuationScope::Fu,
        };
        let mut g = GatingState::default();
        act.apply(ControlAction::ReduceCurrent, &mut g);
        assert!(g.gate_fu && g.gate_dl1 && g.gate_il1);
        act.apply(ControlAction::IncreaseCurrent, &mut g);
        assert!(g.phantom_fu && !g.phantom_dl1 && !g.phantom_il1);
        assert!(!g.gate_fu);
        act.apply(ControlAction::None, &mut g);
        assert!(!g.any_active());
    }

    #[test]
    fn symmetric_constructor_matches_plain_scope() {
        let p = power();
        let sym = AsymmetricActuator::symmetric(ActuationScope::FuDl1);
        assert_eq!(sym.leverage(&p), ActuationScope::FuDl1.leverage(&p));
    }

    #[test]
    fn asymmetric_leverage_composes_sides() {
        let p = power();
        let act = AsymmetricActuator {
            reduce: ActuationScope::FuDl1Il1,
            increase: ActuationScope::Fu,
        };
        let lev = act.leverage(&p);
        let full = ActuationScope::FuDl1Il1.leverage(&p);
        let fu = ActuationScope::Fu.leverage(&p);
        assert_eq!(lev.reduce_floor_amps, full.reduce_floor_amps);
        assert_eq!(lev.settle_cycles, full.settle_cycles);
        assert_eq!(lev.increase_ceiling_amps, fu.increase_ceiling_amps);
    }
}
