//! Batched lockstep execution of many [`ControlLoop`]s (the lane path).
//!
//! A grid experiment steps hundreds of independent control loops, and the
//! scalar profile is dominated by [`Cpu::step`] (~75% of per-cycle cost)
//! with the control-side bookkeeping spread across small heap-scattered
//! objects. [`LaneLoop`] transposes W loops into structure-of-arrays
//! state — PDN state-space coefficients in [`PdnLanes`], sensor delay
//! pipelines in one flat ring, controller FSM fields in per-field arrays
//! — and steps all lanes in lockstep with branch-minimized passes.
//!
//! The big win, though, is **CPU sharing**: the simulator is fully
//! deterministic, so two lanes whose CPUs are byte-identical (same
//! program, configuration, architectural and microarchitectural state —
//! including clock-gating) and whose power models are
//! parameter-identical *must* produce identical activity every cycle
//! until their controllers command different gating. Lanes are therefore
//! grouped: one [`Cpu::step`] and one power evaluation per group per
//! cycle, broadcast to every member lane. In a sweep, the uncontrolled
//! baselines of one workload at every configuration collapse into a
//! single group for the whole run, and each controlled lane rides along
//! until its first intervention.
//!
//! # Divergence-exit rules
//!
//! * **Gating divergence**: at the end of each cycle every lane's desired
//!   gating is reduced to a 6-bit mask (actuation is absolute — the
//!   actuator always releases everything first, so the mask is a pure
//!   function of the controller action and scope). Lanes in a group are
//!   partitioned by mask; the first partition keeps the group's CPU,
//!   every other partition *forks* a clone. Groups split and never
//!   merge.
//! * **Lane exit**: a lane leaves the lockstep the moment its cycle
//!   budget is spent or its program finishes; its outcome (report +
//!   architectural digest) is materialized at that boundary, and a CPU
//!   clone is parked on the lane so it can still be scattered back into
//!   a scalar [`ControlLoop`] while its former group runs on.
//! * **Unsupported observers**: loops carrying a live recorder or tracer
//!   never enter the lane path (those observers fire in scalar step
//!   order); the engine falls back to the scalar path for such cells.
//!   The in-memory [`LoopSample`] trace *is* supported — samples are
//!   scattered per lane in scalar order.
//!
//! Bitwise identity with the scalar path is a hard contract, enforced by
//! the differential oracle in `tests/oracle_lanes.rs`: per lane, every
//! f64 operation happens in exactly the order [`ControlLoop::step`]
//! performs it, including the *conditional* sensor-noise RNG draw.

use std::collections::VecDeque;

use crate::actuator::AsymmetricActuator;
use crate::controller::{ControlAction, ControllerParts, ThresholdController};
use crate::loopsim::{power_fingerprint, ControlLoop, LaneParts, LoopReport, LoopSample};
use crate::sensor::{SensorParts, SensorReading, ThresholdSensor};
use voltctl_cpu::{Cpu, GatingState};
use voltctl_pdn::{PdnLanes, VoltageHistogram, VoltageMonitor};
use voltctl_power::{EnergyAccumulator, PowerModel};
use voltctl_telemetry::Rng;

/// Gating-mask sentinel for lanes that issued no command this cycle
/// (uncontrolled lanes): keep whatever gating the group already has.
const MASK_KEEP: u8 = 0x40;

/// `ctrl_last` encoding: the controller has never decided.
const LAST_NEVER: u8 = 0;

/// A lane's materialized end-of-run result.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneOutcome {
    /// The run report, bitwise identical to the scalar loop's.
    pub report: LoopReport,
    /// Digest of the CPU's architectural state at exit.
    pub arch_digest: u64,
}

/// One CPU shared by every lane whose control history is still
/// identical. `lanes` is empty once all members have exited (the group
/// itself is retained so parked lanes can still clone its power model).
#[derive(Debug)]
struct LaneGroup {
    cpu: Cpu,
    power: PowerModel,
    vdd: f64,
    lanes: Vec<usize>,
}

/// W control loops in structure-of-arrays layout, stepped in lockstep.
///
/// Build one with [`gather`](LaneLoop::gather), drive it with
/// [`run`](LaneLoop::run) or [`step_all`](LaneLoop::step_all), then read
/// [`outcome`](LaneLoop::outcome)s or scatter back to scalar loops with
/// [`into_loops`](LaneLoop::into_loops) / [`save_lane`](LaneLoop::save_lane).
#[derive(Debug)]
pub struct LaneLoop {
    // Lane-indexed supply/observer state.
    pdn: PdnLanes,
    monitor: Vec<VoltageMonitor>,
    histogram: Vec<VoltageHistogram>,
    energy: Vec<EnergyAccumulator>,
    // Sensor state, field-major. `has_sensor` gates the whole block;
    // the delay pipelines live in one flat ring (`ring[ring_off[l]..
    // ring_off[l]+ring_cap[l]]`, head = oldest entry).
    has_sensor: Vec<bool>,
    sens_v_low: Vec<f64>,
    sens_v_high: Vec<f64>,
    sens_noise_v: Vec<f64>,
    sens_rng: Vec<Rng>,
    ring: Vec<f64>,
    ring_off: Vec<usize>,
    ring_cap: Vec<usize>,
    ring_head: Vec<usize>,
    // Controller FSM, field-major. `ctrl_last`: 0 = never decided,
    // 1 = None, 2 = ReduceCurrent, 3 = IncreaseCurrent.
    ctrl_last: Vec<u8>,
    reduce_cycles: Vec<u64>,
    increase_cycles: Vec<u64>,
    reduce_events: Vec<u64>,
    increase_events: Vec<u64>,
    actuator: Vec<AsymmetricActuator>,
    cycles_in_low: Vec<u64>,
    cycles_in_normal: Vec<u64>,
    cycles_in_high: Vec<u64>,
    trace: Vec<Option<Vec<LoopSample>>>,
    // Execution bookkeeping.
    groups: Vec<LaneGroup>,
    lane_group: Vec<usize>,
    budget: Vec<u64>,
    parked: Vec<Option<Cpu>>,
    outcome: Vec<Option<LaneOutcome>>,
    // Per-cycle scratch, lane-indexed.
    active: Vec<usize>,
    scratch_watts: Vec<f64>,
    scratch_amps: Vec<f64>,
    scratch_volts: Vec<f64>,
    scratch_pre_mask: Vec<u8>,
    scratch_mask: Vec<u8>,
}

/// Reduces a gating state to its 6-bit mask.
fn mask_of(g: GatingState) -> u8 {
    (g.gate_fu as u8)
        | (g.gate_dl1 as u8) << 1
        | (g.gate_il1 as u8) << 2
        | (g.phantom_fu as u8) << 3
        | (g.phantom_dl1 as u8) << 4
        | (g.phantom_il1 as u8) << 5
}

/// Sets a gating state to exactly the bits of `mask`. Equivalent to
/// `AsymmetricActuator::apply` for the action/scope that produced the
/// mask: apply always starts from `release_all`, so the result carries
/// no dependence on the prior state.
fn apply_mask(g: &mut GatingState, mask: u8) {
    g.gate_fu = mask & 1 != 0;
    g.gate_dl1 = mask & 2 != 0;
    g.gate_il1 = mask & 4 != 0;
    g.phantom_fu = mask & 8 != 0;
    g.phantom_dl1 = mask & 16 != 0;
    g.phantom_il1 = mask & 32 != 0;
}

/// The gating mask `actuator.apply(action, ..)` would leave behind.
fn desired_mask(actuator: &AsymmetricActuator, action: ControlAction) -> u8 {
    let scope_mask = |scope: crate::actuator::ActuationScope, shift: u32| -> u8 {
        let mut m = 0u8;
        for &d in scope.domains() {
            m |= match d {
                voltctl_cpu::Domain::Fu => 1,
                voltctl_cpu::Domain::Dl1 => 2,
                voltctl_cpu::Domain::Il1 => 4,
            } << shift;
        }
        m
    };
    match action {
        ControlAction::None => 0,
        ControlAction::ReduceCurrent => scope_mask(actuator.reduce, 0),
        ControlAction::IncreaseCurrent => scope_mask(actuator.increase, 3),
    }
}

fn encode_last(last: Option<ControlAction>) -> u8 {
    match last {
        None => LAST_NEVER,
        Some(ControlAction::None) => 1,
        Some(ControlAction::ReduceCurrent) => 2,
        Some(ControlAction::IncreaseCurrent) => 3,
    }
}

fn decode_last(code: u8) -> Option<ControlAction> {
    match code {
        LAST_NEVER => None,
        1 => Some(ControlAction::None),
        2 => Some(ControlAction::ReduceCurrent),
        _ => Some(ControlAction::IncreaseCurrent),
    }
}

impl LaneLoop {
    /// Transposes `loops` into lane state, assigning each lane the cycle
    /// budget in `budgets` (a lane exits once it has stepped that many
    /// cycles, or earlier when its program finishes — exactly
    /// [`ControlLoop::step_n`] semantics).
    ///
    /// Lanes whose CPUs are byte-identical and whose power models are
    /// parameter-identical are placed in one shared-CPU group.
    ///
    /// # Panics
    ///
    /// Panics when `budgets.len() != loops.len()`.
    pub fn gather(loops: Vec<ControlLoop>, budgets: &[u64]) -> LaneLoop {
        assert_eq!(loops.len(), budgets.len(), "one budget per lane");
        let n = loops.len();
        let mut lanes = LaneLoop {
            pdn: PdnLanes::default(),
            monitor: Vec::with_capacity(n),
            histogram: Vec::with_capacity(n),
            energy: Vec::with_capacity(n),
            has_sensor: Vec::with_capacity(n),
            sens_v_low: Vec::with_capacity(n),
            sens_v_high: Vec::with_capacity(n),
            sens_noise_v: Vec::with_capacity(n),
            sens_rng: Vec::with_capacity(n),
            ring: Vec::new(),
            ring_off: Vec::with_capacity(n),
            ring_cap: Vec::with_capacity(n),
            ring_head: Vec::with_capacity(n),
            ctrl_last: Vec::with_capacity(n),
            reduce_cycles: Vec::with_capacity(n),
            increase_cycles: Vec::with_capacity(n),
            reduce_events: Vec::with_capacity(n),
            increase_events: Vec::with_capacity(n),
            actuator: Vec::with_capacity(n),
            cycles_in_low: Vec::with_capacity(n),
            cycles_in_normal: Vec::with_capacity(n),
            cycles_in_high: Vec::with_capacity(n),
            trace: Vec::with_capacity(n),
            groups: Vec::new(),
            lane_group: Vec::with_capacity(n),
            budget: budgets.to_vec(),
            parked: Vec::with_capacity(n),
            outcome: Vec::with_capacity(n),
            active: Vec::with_capacity(n),
            scratch_watts: vec![0.0; n],
            scratch_amps: vec![0.0; n],
            scratch_volts: vec![0.0; n],
            scratch_pre_mask: vec![0; n],
            scratch_mask: vec![0; n],
        };

        // Group keys: (power fingerprint, fnv of CPU bytes, CPU bytes).
        // The byte image embeds the program digest and configuration
        // fingerprint, so byte equality really does imply identical
        // future behavior under identical gating commands.
        let mut keys: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        let mut pdn_states = Vec::with_capacity(n);

        for (lane, sim) in loops.into_iter().enumerate() {
            let parts = sim.into_lane_parts();
            let power_fp = power_fingerprint(&parts.power);
            let mut w = voltctl_snap::ByteWriter::new();
            parts.cpu.pack_state(&mut w);
            let cpu_bytes = w.into_bytes();
            let cpu_fp = voltctl_snap::fnv1a(&cpu_bytes);

            let group = keys
                .iter()
                .position(|(pfp, cfp, bytes)| {
                    *pfp == power_fp && *cfp == cpu_fp && *bytes == cpu_bytes
                })
                .unwrap_or_else(|| {
                    let vdd = parts.power.params().vdd;
                    lanes.groups.push(LaneGroup {
                        cpu: parts.cpu,
                        power: parts.power,
                        vdd,
                        lanes: Vec::new(),
                    });
                    keys.push((power_fp, cpu_fp, cpu_bytes));
                    lanes.groups.len() - 1
                });
            lanes.groups[group].lanes.push(lane);
            lanes.lane_group.push(group);

            pdn_states.push(parts.pdn_state);
            lanes.monitor.push(parts.monitor);
            lanes.histogram.push(parts.histogram);
            lanes.energy.push(parts.energy);

            match parts.sensor {
                Some(sensor) => {
                    let p = sensor.into_lane_parts();
                    lanes.has_sensor.push(true);
                    lanes.sens_v_low.push(p.v_low);
                    lanes.sens_v_high.push(p.v_high);
                    lanes.sens_noise_v.push(p.noise_v);
                    lanes.sens_rng.push(p.rng);
                    lanes.ring_off.push(lanes.ring.len());
                    lanes.ring_cap.push(p.pipeline.len());
                    lanes.ring_head.push(0);
                    // Oldest-first, so head 0 points at the next value
                    // `pop_front` would have yielded.
                    lanes.ring.extend(p.pipeline.iter());
                }
                None => {
                    lanes.has_sensor.push(false);
                    lanes.sens_v_low.push(0.0);
                    lanes.sens_v_high.push(0.0);
                    lanes.sens_noise_v.push(0.0);
                    lanes.sens_rng.push(Rng::new(0));
                    lanes.ring_off.push(lanes.ring.len());
                    lanes.ring_cap.push(0);
                    lanes.ring_head.push(0);
                }
            }

            let c = parts.controller.into_lane_parts();
            lanes.ctrl_last.push(encode_last(c.last));
            lanes.reduce_cycles.push(c.reduce_cycles);
            lanes.increase_cycles.push(c.increase_cycles);
            lanes.reduce_events.push(c.reduce_events);
            lanes.increase_events.push(c.increase_events);
            lanes.actuator.push(parts.actuator);
            lanes.cycles_in_low.push(parts.cycles_in_low);
            lanes.cycles_in_normal.push(parts.cycles_in_normal);
            lanes.cycles_in_high.push(parts.cycles_in_high);
            lanes.trace.push(parts.trace);
            lanes.parked.push(None);
            lanes.outcome.push(None);
        }
        lanes.pdn = PdnLanes::gather(&pdn_states);
        lanes
    }

    /// Number of lanes (width W).
    pub fn width(&self) -> usize {
        self.budget.len()
    }

    /// Number of CPU groups that still have running lanes.
    pub fn active_group_count(&self) -> usize {
        self.groups.iter().filter(|g| !g.lanes.is_empty()).count()
    }

    /// Number of lanes that have not yet exited.
    pub fn active_lane_count(&self) -> usize {
        self.groups.iter().map(|g| g.lanes.len()).sum()
    }

    /// The lane's materialized outcome, once it has exited.
    pub fn outcome(&self, lane: usize) -> Option<&LaneOutcome> {
        self.outcome[lane].as_ref()
    }

    /// The lane's run report at its current state (live lanes included).
    pub fn report(&self, lane: usize) -> LoopReport {
        self.make_report(lane, self.lane_cpu(lane))
    }

    /// Digest of the lane CPU's architectural state.
    pub fn arch_digest(&self, lane: usize) -> u64 {
        self.lane_cpu(lane).arch_digest()
    }

    /// Takes the lane's recorded per-cycle trace (empty unless the
    /// gathered loop had `record_trace` enabled).
    pub fn take_trace(&mut self, lane: usize) -> Vec<LoopSample> {
        self.trace[lane].take().unwrap_or_default()
    }

    fn lane_cpu(&self, lane: usize) -> &Cpu {
        match &self.parked[lane] {
            Some(cpu) => cpu,
            None => &self.groups[self.lane_group[lane]].cpu,
        }
    }

    fn make_report(&self, lane: usize, cpu: &Cpu) -> LoopReport {
        let stats = cpu.stats();
        LoopReport {
            cycles: stats.cycles,
            committed: stats.committed,
            ipc: stats.ipc(),
            emergencies: self.monitor[lane].report(),
            energy_joules: self.energy[lane].joules(),
            avg_power: self.energy[lane].average_power(),
            reduce_cycles: self.reduce_cycles[lane],
            increase_cycles: self.increase_cycles[lane],
            interventions: self.reduce_events[lane] + self.increase_events[lane],
            cycles_in_low: self.cycles_in_low[lane],
            cycles_in_normal: self.cycles_in_normal[lane],
            cycles_in_high: self.cycles_in_high[lane],
        }
    }

    /// Scatters one lane back into the scalar parts a [`ControlLoop`]
    /// assembles from; every field is cloned, the lane keeps running.
    fn lane_parts(&self, lane: usize) -> LaneParts {
        let group = &self.groups[self.lane_group[lane]];
        let cpu = match &self.parked[lane] {
            Some(cpu) => cpu.clone(),
            None => group.cpu.clone(),
        };
        let sensor = self.has_sensor[lane].then(|| {
            let (off, cap, head) = (
                self.ring_off[lane],
                self.ring_cap[lane],
                self.ring_head[lane],
            );
            let mut pipeline = VecDeque::with_capacity(cap + 1);
            for k in 0..cap {
                pipeline.push_back(self.ring[off + (head + k) % cap]);
            }
            ThresholdSensor::from_lane_parts(SensorParts {
                v_low: self.sens_v_low[lane],
                v_high: self.sens_v_high[lane],
                pipeline,
                noise_v: self.sens_noise_v[lane],
                rng: self.sens_rng[lane].clone(),
            })
        });
        LaneParts {
            cpu,
            power: group.power.clone(),
            pdn_state: self.pdn.scatter(lane),
            v_nominal: self.pdn.v_nominal(lane),
            sensor,
            controller: ThresholdController::from_lane_parts(ControllerParts {
                last: decode_last(self.ctrl_last[lane]),
                reduce_cycles: self.reduce_cycles[lane],
                increase_cycles: self.increase_cycles[lane],
                reduce_events: self.reduce_events[lane],
                increase_events: self.increase_events[lane],
            }),
            actuator: self.actuator[lane],
            monitor: self.monitor[lane].clone(),
            histogram: self.histogram[lane].clone(),
            energy: self.energy[lane],
            trace: self.trace[lane].clone(),
            cycles_in_low: self.cycles_in_low[lane],
            cycles_in_normal: self.cycles_in_normal[lane],
            cycles_in_high: self.cycles_in_high[lane],
        }
    }

    /// Serializes one lane as a scalar loop snapshot — byte-identical to
    /// the [`ControlLoop::save`] of a loop stepped scalar to the same
    /// point, so `--shards`/`--resume` round-trip through the lane path.
    pub fn save_lane(&self, lane: usize) -> Vec<u8> {
        ControlLoop::from_lane_parts(self.lane_parts(lane)).save()
    }

    /// Scatters every lane back into a scalar [`ControlLoop`], in lane
    /// order. Each scattered loop continues bit-for-bit from where the
    /// lane left off.
    pub fn into_loops(self) -> Vec<ControlLoop> {
        (0..self.width())
            .map(|l| ControlLoop::from_lane_parts(self.lane_parts(l)))
            .collect()
    }

    /// Runs every lane to its exit (budget spent or program finished);
    /// returns the total number of lane-cycles stepped.
    pub fn run(&mut self) -> u64 {
        let mut total = 0u64;
        loop {
            let stepped = self.step_all();
            if stepped == 0 {
                return total;
            }
            total += stepped as u64;
        }
    }

    /// Retires lanes that cannot step this cycle (budget spent, or the
    /// group's program finished), materializing their outcomes and
    /// parking a CPU clone on each.
    fn retire_exits(&mut self) {
        for g_idx in 0..self.groups.len() {
            if self.groups[g_idx].lanes.is_empty() {
                continue;
            }
            let done = self.groups[g_idx].cpu.done();
            let any_exit = done
                || self.groups[g_idx]
                    .lanes
                    .iter()
                    .any(|&l| self.budget[l] == 0);
            if !any_exit {
                continue;
            }
            let exits: Vec<usize> = self.groups[g_idx]
                .lanes
                .iter()
                .copied()
                .filter(|&l| done || self.budget[l] == 0)
                .collect();
            let budget = std::mem::take(&mut self.budget);
            self.groups[g_idx]
                .lanes
                .retain(|&l| !(done || budget[l] == 0));
            self.budget = budget;
            for &l in &exits {
                let cpu = self.groups[g_idx].cpu.clone();
                self.outcome[l] = Some(LaneOutcome {
                    report: self.make_report(l, &cpu),
                    arch_digest: cpu.arch_digest(),
                });
                self.parked[l] = Some(cpu);
            }
        }
    }

    /// Advances every live lane one cycle in lockstep; returns how many
    /// lanes stepped (0 = all lanes have exited).
    ///
    /// Per lane the pass structure exactly mirrors [`ControlLoop::step`]:
    /// pre-step gating read, CPU step + power evaluation (once per
    /// group), PDN step, monitor/histogram/energy, sensor pipeline +
    /// conditional noise draw, controller FSM, band counters, trace
    /// sample — then gating partition / copy-on-diverge for the next
    /// cycle.
    pub fn step_all(&mut self) -> usize {
        self.retire_exits();

        // Pass 1: one CPU step + power evaluation per group, broadcast
        // to every member lane's scratch slot.
        self.active.clear();
        for g_idx in 0..self.groups.len() {
            if self.groups[g_idx].lanes.is_empty() {
                continue;
            }
            let g = &mut self.groups[g_idx];
            let gating = g.cpu.gating();
            let act = g.cpu.step();
            let watts = g.power.cycle_power(&act, &gating).total();
            let amps = watts / g.vdd;
            let pre_mask = mask_of(gating);
            for &l in &g.lanes {
                self.scratch_watts[l] = watts;
                self.scratch_amps[l] = amps;
                self.scratch_pre_mask[l] = pre_mask;
            }
            self.active.extend_from_slice(&g.lanes);
        }
        if self.active.is_empty() {
            return 0;
        }

        // Pass 2: supply + ground-truth observers, lane-major.
        for &l in &self.active {
            let volts = self.pdn.step_lane(l, self.scratch_amps[l]);
            self.scratch_volts[l] = volts;
            self.monitor[l].observe(volts);
            self.histogram[l].record(volts);
            self.energy[l].add_cycle(self.scratch_watts[l]);
        }

        // Pass 3: sensor pipeline, conditional noise draw, controller
        // FSM, band counters, desired-gating mask.
        for &l in &self.active {
            let reading = if self.has_sensor[l] {
                let volts = self.scratch_volts[l];
                let cap = self.ring_cap[l];
                let seen = if cap == 0 {
                    volts
                } else {
                    let head = self.ring_head[l];
                    let pos = self.ring_off[l] + head;
                    let seen = self.ring[pos];
                    self.ring[pos] = volts;
                    self.ring_head[l] = if head + 1 == cap { 0 } else { head + 1 };
                    seen
                };
                // The noise draw is conditional in the scalar sensor;
                // replicating the condition keeps RNG streams aligned.
                let noisy = if self.sens_noise_v[l] > 0.0 {
                    seen + self.sens_rng[l].range_f64(-self.sens_noise_v[l], self.sens_noise_v[l])
                } else {
                    seen
                };
                let reading = if noisy < self.sens_v_low[l] {
                    SensorReading::Low
                } else if noisy > self.sens_v_high[l] {
                    SensorReading::High
                } else {
                    SensorReading::Normal
                };
                let action = match reading {
                    SensorReading::Low => ControlAction::ReduceCurrent,
                    SensorReading::High => ControlAction::IncreaseCurrent,
                    SensorReading::Normal => ControlAction::None,
                };
                match action {
                    ControlAction::ReduceCurrent => {
                        self.reduce_cycles[l] += 1;
                        if self.ctrl_last[l] != 2 {
                            self.reduce_events[l] += 1;
                        }
                    }
                    ControlAction::IncreaseCurrent => {
                        self.increase_cycles[l] += 1;
                        if self.ctrl_last[l] != 3 {
                            self.increase_events[l] += 1;
                        }
                    }
                    ControlAction::None => {}
                }
                self.ctrl_last[l] = encode_last(Some(action));
                self.scratch_mask[l] = desired_mask(&self.actuator[l], action);
                reading
            } else {
                self.scratch_mask[l] = MASK_KEEP;
                SensorReading::Normal
            };
            match reading {
                SensorReading::Low => self.cycles_in_low[l] += 1,
                SensorReading::Normal => self.cycles_in_normal[l] += 1,
                SensorReading::High => self.cycles_in_high[l] += 1,
            }
        }

        // Pass 4: trace scatter (samples use the pre-step gating, as in
        // the scalar loop) and budget decrement.
        for &l in &self.active {
            if let Some(trace) = &mut self.trace[l] {
                let m = self.scratch_pre_mask[l];
                trace.push(LoopSample {
                    current: self.scratch_amps[l],
                    voltage: self.scratch_volts[l],
                    reducing: m & 0b000111 != 0,
                    increasing: m & 0b111000 != 0,
                });
            }
            self.budget[l] -= 1;
        }

        // Pass 5: gating partition / copy-on-diverge.
        let stepped = self.active.len();
        for g_idx in 0..self.groups.len() {
            if self.groups[g_idx].lanes.is_empty() {
                continue;
            }
            let g_cur = mask_of(self.groups[g_idx].cpu.gating());
            // Fast path: all lanes want the mask the group already has.
            let unanimous = {
                let lanes = &self.groups[g_idx].lanes;
                let first = self.scratch_mask[lanes[0]];
                let first = if first == MASK_KEEP { g_cur } else { first };
                lanes[1..]
                    .iter()
                    .all(|&l| {
                        let m = self.scratch_mask[l];
                        (if m == MASK_KEEP { g_cur } else { m }) == first
                    })
                    .then_some(first)
            };
            match unanimous {
                Some(mask) => {
                    if mask != g_cur {
                        apply_mask(self.groups[g_idx].cpu.gating_mut(), mask);
                    }
                }
                None => self.split_group(g_idx, g_cur),
            }
        }
        stepped
    }

    /// Partitions `g_idx`'s lanes by desired gating mask (encounter
    /// order). The first partition keeps the group's CPU; every other
    /// partition forks a clone into a fresh group. Uncontrolled lanes
    /// resolve to the group's current mask and therefore always stay
    /// with the no-change partition — their gating never moves.
    fn split_group(&mut self, g_idx: usize, g_cur: u8) {
        let lanes = std::mem::take(&mut self.groups[g_idx].lanes);
        let mut parts: Vec<(u8, Vec<usize>)> = Vec::new();
        for &l in &lanes {
            let m = self.scratch_mask[l];
            let m = if m == MASK_KEEP { g_cur } else { m };
            match parts.iter_mut().find(|(mask, _)| *mask == m) {
                Some((_, members)) => members.push(l),
                None => parts.push((m, vec![l])),
            }
        }
        let mut parts = parts.into_iter();
        let (first_mask, first_lanes) = parts.next().expect("group was non-empty");
        self.groups[g_idx].lanes = first_lanes;
        if first_mask != g_cur {
            apply_mask(self.groups[g_idx].cpu.gating_mut(), first_mask);
        }
        for (mask, members) in parts {
            let mut cpu = self.groups[g_idx].cpu.clone();
            // The clone may already carry the first partition's mask;
            // apply unconditionally — actuation is absolute.
            apply_mask(cpu.gating_mut(), mask);
            let power = self.groups[g_idx].power.clone();
            let vdd = self.groups[g_idx].vdd;
            let new_idx = self.groups.len();
            for &l in &members {
                self.lane_group[l] = new_idx;
            }
            self.groups.push(LaneGroup {
                cpu,
                power,
                vdd,
                lanes: members,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrated_pdn;
    use crate::sensor::SensorConfig;
    use crate::thresholds::Thresholds;
    use voltctl_isa::builder::ProgramBuilder;
    use voltctl_isa::reg::IntReg;
    use voltctl_pdn::PdnModel;
    use voltctl_power::PowerParams;

    fn spin_program() -> voltctl_isa::Program {
        let mut b = ProgramBuilder::new("spin");
        b.label("top");
        b.addq_imm(IntReg::R1, IntReg::R1, 1);
        b.br("top");
        b.build().unwrap()
    }

    fn make_loop(thresholds: Option<Thresholds>, delay: u32, noise_mv: f64) -> ControlLoop {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 2.0).unwrap();
        let mut b = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .record_trace(true)
            .sensor(SensorConfig {
                delay_cycles: delay,
                noise_mv,
                seed: 0xd1d7,
            });
        if let Some(t) = thresholds {
            b = b.thresholds(t);
        }
        b.build().unwrap()
    }

    fn tight() -> Thresholds {
        Thresholds {
            v_low: 0.9995,
            v_high: 1.0005,
        }
    }

    fn loose() -> Thresholds {
        Thresholds {
            v_low: 0.955,
            v_high: 1.045,
        }
    }

    #[test]
    fn lane_run_matches_scalar_bitwise() {
        let configs: [(Option<Thresholds>, u32, f64); 4] = [
            (None, 0, 0.0),
            (Some(loose()), 2, 15.0),
            (Some(tight()), 1, 0.0),
            (Some(tight()), 3, 0.0),
        ];
        let budget = 4_000u64;

        let mut scalars: Vec<ControlLoop> = configs
            .iter()
            .map(|&(t, d, n)| make_loop(t, d, n))
            .collect();
        let lanes_in: Vec<ControlLoop> = configs
            .iter()
            .map(|&(t, d, n)| make_loop(t, d, n))
            .collect();

        let mut lanes = LaneLoop::gather(lanes_in, &vec![budget; configs.len()]);
        // All four CPUs start byte-identical (same program/config), so
        // gather must collapse them into one group.
        assert_eq!(lanes.active_group_count(), 1);
        lanes.run();

        for (l, scalar) in scalars.iter_mut().enumerate() {
            scalar.step_n(budget);
            let out = lanes.outcome(l).expect("lane exited");
            assert_eq!(out.report, scalar.report(), "lane {l} report");
            assert_eq!(out.arch_digest, scalar.arch_digest(), "lane {l} digest");
            let a = scalar.take_trace();
            let b = lanes.take_trace(l);
            assert_eq!(a.len(), b.len(), "lane {l} trace length");
            for (k, (x, y)) in a.iter().zip(&b).enumerate() {
                assert!(
                    x.current.to_bits() == y.current.to_bits()
                        && x.voltage.to_bits() == y.voltage.to_bits()
                        && x.reducing == y.reducing
                        && x.increasing == y.increasing,
                    "lane {l} cycle {k}: {x:?} vs {y:?}"
                );
            }
        }
        // The tight-threshold lanes must have diverged from the shared
        // group (the controller intervened on the spin supply dip).
        assert!(lanes.groups.len() > 1, "divergence expected");
    }

    #[test]
    fn uneven_budgets_exit_lanes_individually() {
        let budgets = [500u64, 2_000, 1_000];
        let lanes_in: Vec<ControlLoop> = (0..3).map(|_| make_loop(Some(loose()), 1, 0.0)).collect();
        let mut lanes = LaneLoop::gather(lanes_in, &budgets);
        lanes.run();
        for (l, &b) in budgets.iter().enumerate() {
            let mut scalar = make_loop(Some(loose()), 1, 0.0);
            scalar.step_n(b);
            let out = lanes.outcome(l).expect("exited");
            assert_eq!(out.report, scalar.report(), "lane {l}");
        }
    }

    #[test]
    fn save_lane_bytes_match_scalar_save() {
        let budget = 1_500u64;
        let lanes_in = vec![make_loop(Some(loose()), 2, 10.0), make_loop(None, 0, 0.0)];
        let mut lanes = LaneLoop::gather(lanes_in, &[budget, budget]);
        lanes.run();
        for (l, &(t, d, n)) in [(Some(loose()), 2, 10.0), (None, 0, 0.0)]
            .iter()
            .enumerate()
        {
            let mut scalar = make_loop(t, d, n);
            scalar.step_n(budget);
            assert_eq!(lanes.save_lane(l), scalar.save(), "lane {l} snapshot bytes");
        }
    }

    #[test]
    fn into_loops_continue_bitwise() {
        let half = 900u64;
        let rest = 1_100u64;
        let lanes_in = vec![
            make_loop(Some(tight()), 1, 0.0),
            make_loop(Some(loose()), 0, 0.0),
        ];
        let mut lanes = LaneLoop::gather(lanes_in, &[half, half]);
        lanes.run();
        let mut scattered = lanes.into_loops();
        for (l, &(t, d)) in [(Some(tight()), 1u32), (Some(loose()), 0)]
            .iter()
            .enumerate()
        {
            let mut scalar = make_loop(t, d, 0.0);
            scalar.step_n(half + rest);
            scattered[l].step_n(rest);
            assert_eq!(scattered[l].report(), scalar.report(), "lane {l}");
            assert_eq!(scattered[l].save(), scalar.save(), "lane {l} bytes");
        }
    }

    #[test]
    fn finished_program_exits_before_budget() {
        let mut b = ProgramBuilder::new("short");
        for _ in 0..32 {
            b.addq_imm(IntReg::R1, IntReg::R1, 1);
        }
        let program = b.build().unwrap();
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 2.0).unwrap();
        let mk = || {
            ControlLoop::builder(program.clone())
                .power(power.clone())
                .pdn(pdn.clone())
                .build()
                .unwrap()
        };
        let mut lanes = LaneLoop::gather(vec![mk()], &[100_000]);
        lanes.run();
        let mut scalar = mk();
        scalar.step_n(100_000);
        let out = lanes.outcome(0).unwrap();
        assert!(out.report.cycles < 100_000, "program must finish early");
        assert_eq!(out.report, scalar.report());
    }
}
