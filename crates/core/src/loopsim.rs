//! The closed-loop integrated simulator (Figures 7 and 12).
//!
//! One [`ControlLoop`] couples every layer of the paper's methodology:
//! the cycle-level CPU produces per-cycle activity; the structural power
//! model turns it into current; the discretized PDN turns current into
//! supply voltage; the threshold sensor/controller/actuator close the loop
//! back onto the CPU's clock-gating state. Running without thresholds
//! gives the uncontrolled baseline the evaluations compare against.
//!
//! Actuation commands decided at the end of cycle *t* take effect in cycle
//! *t+1* — a one-cycle actuator latency inherent to any real
//! implementation, on top of the configurable sensor delay.
//!
//! # Observability
//!
//! The loop is generic over a [`Recorder`] (default [`NullRecorder`]):
//! per-cycle voltage/current samples, controller-state cycle counters, and
//! wall-clock timers around the CPU/power/PDN/control sub-steps stream
//! into it. Metric names are resolved to [`MetricId`]s once at build
//! time and samples go through the id-indexed recorder methods; sub-step
//! timers are sampled one cycle in [`TIMER_SAMPLE_STRIDE`] so clock
//! reads stay off the common path. With the default recorder, `R::ENABLED` is false and every
//! instrumentation site monomorphizes away — the disabled loop is the
//! uninstrumented loop. Attach a real recorder with
//! [`ControlLoopBuilder::recorder`] and flush run-level aggregates with
//! [`ControlLoop::finish_telemetry`].
//!
//! The loop is also generic over a [`Tracer`] (default [`NullTracer`],
//! same compile-time-off contract): when enabled, every cycle emits one
//! [`CycleRecord`](voltctl_trace::CycleRecord) — current, voltage,
//! ground-truth supply band, sensed band, and microarchitectural event
//! bits — into the attached flight recorder. Attach one with
//! [`ControlLoopBuilder::tracer`].

use crate::actuator::{ActuationScope, AsymmetricActuator};
use crate::controller::ThresholdController;
use crate::sensor::{SensorConfig, SensorReading, ThresholdSensor};
use crate::thresholds::{ControlError, Thresholds};
use voltctl_cpu::{Cpu, CpuConfig, CycleActivity, GatingState};
use voltctl_isa::Program;
use voltctl_pdn::emergency::VoltageBand;
use voltctl_pdn::{EmergencyReport, PdnModel, PdnState, VoltageHistogram, VoltageMonitor};
use voltctl_power::{EnergyAccumulator, PowerModel};
use voltctl_snap::{Pack, SnapError, SnapshotKind, SnapshotReader, SnapshotWriter, Unpack};
use voltctl_telemetry::{MetricId, NullRecorder, Recorder, Stopwatch};
use voltctl_trace::{events, CycleRecord, NullTracer, SensorBand, SupplyBand, Tracer};

/// Sub-step wall-clock timers are sampled every this many cycles (two
/// clock reads per sampled span). Stride sampling keeps the recorded
/// loop honest about where time goes without paying eight `Instant::now`
/// calls on every cycle; the sampled mean is unbiased for steady-state
/// sub-step costs.
pub const TIMER_SAMPLE_STRIDE: u64 = 64;

/// The per-cycle metric ids, resolved once at build time so the hot loop
/// records through flat-index lookups ([`Recorder::value_id`] /
/// [`Recorder::timer_id`]) instead of per-sample name maps.
#[derive(Debug, Clone, Copy, Default)]
struct LoopMetricIds {
    voltage: MetricId,
    current: MetricId,
    cpu_ns: MetricId,
    power_ns: MetricId,
    pdn_ns: MetricId,
    control_ns: MetricId,
}

impl LoopMetricIds {
    fn resolve<R: Recorder>(rec: &mut R) -> LoopMetricIds {
        if !R::ENABLED {
            return LoopMetricIds::default();
        }
        LoopMetricIds {
            voltage: rec.metric_id("loop.voltage_v"),
            current: rec.metric_id("loop.current_a"),
            cpu_ns: rec.metric_id("loop.step.cpu_ns"),
            power_ns: rec.metric_id("loop.step.power_ns"),
            pdn_ns: rec.metric_id("loop.step.pdn_ns"),
            control_ns: rec.metric_id("loop.step.control_ns"),
        }
    }
}

/// One cycle's observables (optionally recorded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopSample {
    /// Current drawn this cycle (amps).
    pub current: f64,
    /// Supply voltage at end of cycle (volts).
    pub voltage: f64,
    /// Whether the actuator was reducing current this cycle.
    pub reducing: bool,
    /// Whether the actuator was phantom-firing this cycle.
    pub increasing: bool,
}

impl voltctl_snap::Pack for LoopSample {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.current);
        w.put_f64(self.voltage);
        w.put_bool(self.reducing);
        w.put_bool(self.increasing);
    }
}

impl voltctl_snap::Unpack for LoopSample {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, SnapError> {
        Ok(LoopSample {
            current: r.get_f64()?,
            voltage: r.get_f64()?,
            reducing: r.get_bool()?,
            increasing: r.get_bool()?,
        })
    }
}

/// Section tags of the [`SnapshotKind::Loop`] container written by
/// [`ControlLoop::save`]. Every section is at schema version
/// [`LOOP_SECTION_VERSION`]; unknown tags are skipped on read so future
/// versions can append sections without breaking old readers.
mod section {
    /// Nominal voltage, power-model fingerprint, band cycle counters.
    pub const META: u16 = 1;
    /// Full microarchitectural CPU state (self-validating against the
    /// program digest and machine-configuration fingerprint).
    pub const CPU: u16 = 2;
    /// The discretized supply network mid-transient.
    pub const PDN: u16 = 3;
    /// The threshold sensor (delay pipeline + noise RNG), if controlled.
    pub const SENSOR: u16 = 4;
    /// The threshold controller FSM and its intervention counters.
    pub const CONTROLLER: u16 = 5;
    /// The actuation scopes in effect.
    pub const ACTUATOR: u16 = 6;
    /// Voltage monitor, histogram, and energy accumulator.
    pub const MONITOR: u16 = 7;
    /// The recorded per-cycle sample trace, when enabled.
    pub const TRACE: u16 = 8;
}

/// Schema version of every loop-snapshot section this build writes.
pub const LOOP_SECTION_VERSION: u16 = 1;

/// Builder for [`ControlLoop`].
#[derive(Debug)]
pub struct ControlLoopBuilder<R: Recorder = NullRecorder, T: Tracer = NullTracer> {
    program: Program,
    cpu_config: CpuConfig,
    power: Option<PowerModel>,
    pdn: Option<PdnModel>,
    thresholds: Option<Thresholds>,
    sensor: SensorConfig,
    actuator: AsymmetricActuator,
    record_trace: bool,
    recorder: R,
    tracer: T,
}

impl<R: Recorder, T: Tracer> ControlLoopBuilder<R, T> {
    /// Selects the machine configuration (default: Table 1).
    pub fn cpu_config(mut self, config: CpuConfig) -> Self {
        self.cpu_config = config;
        self
    }

    /// Sets the power model (required).
    pub fn power(mut self, power: PowerModel) -> Self {
        self.power = Some(power);
        self
    }

    /// Sets the supply-network model (required).
    pub fn pdn(mut self, pdn: PdnModel) -> Self {
        self.pdn = Some(pdn);
        self
    }

    /// Enables control with these thresholds (omit for the uncontrolled
    /// baseline). Sensor error compensation is applied automatically:
    /// the deployed thresholds are tightened by the configured noise
    /// bound.
    pub fn thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Configures the sensor (delay, noise, seed).
    pub fn sensor(mut self, sensor: SensorConfig) -> Self {
        self.sensor = sensor;
        self
    }

    /// Selects the actuation scope for both responses (default: FU/DL1).
    pub fn scope(mut self, scope: ActuationScope) -> Self {
        self.actuator = AsymmetricActuator::symmetric(scope);
        self
    }

    /// Selects an asymmetric actuator (§6 extension): one scope gated on
    /// undershoot, another phantom-fired on overshoot.
    pub fn actuator(mut self, actuator: AsymmetricActuator) -> Self {
        self.actuator = actuator;
        self
    }

    /// Records per-cycle samples (memory-heavy; for trace figures).
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Attaches a telemetry recorder; the built loop streams per-cycle
    /// samples and sub-step timings into it.
    pub fn recorder<R2: Recorder>(self, recorder: R2) -> ControlLoopBuilder<R2, T> {
        ControlLoopBuilder {
            program: self.program,
            cpu_config: self.cpu_config,
            power: self.power,
            pdn: self.pdn,
            thresholds: self.thresholds,
            sensor: self.sensor,
            actuator: self.actuator,
            record_trace: self.record_trace,
            recorder,
            tracer: self.tracer,
        }
    }

    /// Attaches a cycle tracer (e.g. a
    /// [`FlightRecorder`](voltctl_trace::FlightRecorder), or `&mut` one);
    /// the built loop emits one [`CycleRecord`] per cycle into it.
    pub fn tracer<T2: Tracer>(self, tracer: T2) -> ControlLoopBuilder<R, T2> {
        ControlLoopBuilder {
            program: self.program,
            cpu_config: self.cpu_config,
            power: self.power,
            pdn: self.pdn,
            thresholds: self.thresholds,
            sensor: self.sensor,
            actuator: self.actuator,
            record_trace: self.record_trace,
            recorder: self.recorder,
            tracer,
        }
    }

    /// Builds the loop.
    ///
    /// # Errors
    ///
    /// [`ControlError::Infeasible`] when required parts are missing, the
    /// CPU configuration fails validation, or error compensation consumes
    /// the threshold window.
    pub fn build(self) -> Result<ControlLoop<R, T>, ControlError> {
        let power = self
            .power
            .ok_or_else(|| ControlError::Infeasible("power model is required".into()))?;
        let pdn = self
            .pdn
            .ok_or_else(|| ControlError::Infeasible("PDN model is required".into()))?;
        let cpu = Cpu::new(self.cpu_config, &self.program).map_err(ControlError::Infeasible)?;

        let sensor = match self.thresholds {
            Some(t) => {
                let deployed = t.tightened(self.sensor.noise_mv)?;
                Some(ThresholdSensor::new(
                    deployed.v_low,
                    deployed.v_high,
                    pdn.v_nominal(),
                    self.sensor,
                ))
            }
            None => None,
        };

        let mut pdn_state = pdn.discretize();
        pdn_state.set_reference_current(power.min_current());
        let monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
        let energy = EnergyAccumulator::new(pdn.clock_hz());
        let mut recorder = self.recorder;
        let metric_ids = LoopMetricIds::resolve(&mut recorder);

        Ok(ControlLoop {
            cpu,
            power,
            pdn_state,
            v_nominal: pdn.v_nominal(),
            sensor,
            controller: ThresholdController::new(),
            actuator: self.actuator,
            monitor,
            histogram: VoltageHistogram::for_nominal_1v(),
            energy,
            trace: if self.record_trace {
                Some(Vec::new())
            } else {
                None
            },
            recorder,
            metric_ids,
            tracer: self.tracer,
            cycles_in_low: 0,
            cycles_in_normal: 0,
            cycles_in_high: 0,
        })
    }

    /// Builds the loop and restores it to the state captured by
    /// [`ControlLoop::save`], so stepping continues bit-for-bit where the
    /// saved run left off.
    ///
    /// The builder supplies everything a snapshot deliberately does not
    /// carry — the program, the machine configuration, the power model,
    /// and the attached observers — and those must match the producing
    /// run: the snapshot embeds the program digest and configuration
    /// fingerprints and restoration fails on any mismatch. Everything
    /// else (pipeline state, supply transient, sensor pipeline and noise
    /// RNG, controller counters, actuation scopes, monitor/histogram/
    /// energy aggregates, the recorded sample trace) comes from the
    /// snapshot, replacing whatever the builder configured.
    ///
    /// Restoration is atomic: the snapshot is fully decoded and validated
    /// before any loop state is touched, so an error never leaves a
    /// half-restored loop.
    ///
    /// # Errors
    ///
    /// [`ControlError::Infeasible`] when the builder itself is infeasible,
    /// when the bytes are not a loop snapshot (wrong magic, kind, version,
    /// truncation, corruption), or when the snapshot was taken under a
    /// different program, machine configuration, power model, or
    /// control-enablement than this builder specifies.
    pub fn restore(self, bytes: &[u8]) -> Result<ControlLoop<R, T>, ControlError> {
        let program = self.program.clone();
        let cpu_config = self.cpu_config.clone();
        let mut sim = self.build()?;
        sim.apply_snapshot(cpu_config, &program, bytes)?;
        Ok(sim)
    }
}

/// The closed-loop simulator.
#[derive(Debug)]
pub struct ControlLoop<R: Recorder = NullRecorder, T: Tracer = NullTracer> {
    cpu: Cpu,
    power: PowerModel,
    pdn_state: PdnState,
    v_nominal: f64,
    sensor: Option<ThresholdSensor>,
    controller: ThresholdController,
    actuator: AsymmetricActuator,
    monitor: VoltageMonitor,
    histogram: VoltageHistogram,
    energy: EnergyAccumulator,
    trace: Option<Vec<LoopSample>>,
    recorder: R,
    metric_ids: LoopMetricIds,
    tracer: T,
    cycles_in_low: u64,
    cycles_in_normal: u64,
    cycles_in_high: u64,
}

/// Run-level results.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Voltage-emergency statistics.
    pub emergencies: EmergencyReport,
    /// Total energy in joules.
    pub energy_joules: f64,
    /// Average power in watts.
    pub avg_power: f64,
    /// Cycles the actuator spent gating.
    pub reduce_cycles: u64,
    /// Cycles the actuator spent phantom-firing.
    pub increase_cycles: u64,
    /// Distinct controller interventions.
    pub interventions: u64,
    /// Cycles the sensed supply was in the Low band.
    pub cycles_in_low: u64,
    /// Cycles the sensed supply was in the Normal band (all cycles when
    /// running uncontrolled).
    pub cycles_in_normal: u64,
    /// Cycles the sensed supply was in the High band.
    pub cycles_in_high: u64,
}

impl LoopReport {
    /// Fraction of cycles the actuator spent gating (the gating duty
    /// cycle; 0 with no cycles).
    pub fn gating_duty(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.reduce_cycles as f64 / self.cycles as f64
        }
    }
}

impl ControlLoop {
    /// Starts building a loop around `program`.
    pub fn builder(program: Program) -> ControlLoopBuilder {
        ControlLoopBuilder {
            program,
            cpu_config: CpuConfig::table1(),
            power: None,
            pdn: None,
            thresholds: None,
            sensor: SensorConfig::default(),
            actuator: AsymmetricActuator::symmetric(ActuationScope::FuDl1),
            record_trace: false,
            recorder: NullRecorder,
            tracer: NullTracer,
        }
    }
}

/// Fingerprint of a power model's full parameterization, embedded in loop
/// snapshots so restoration detects a rebuild under different power
/// assumptions (which would silently change every current sample). Also
/// part of the lane-group key (see [`crate::lane`]): two loops may share
/// one CPU only when their power models are parameter-identical.
pub(crate) fn power_fingerprint(power: &PowerModel) -> u64 {
    voltctl_snap::fnv1a(format!("{power:?}").as_bytes())
}

/// A [`ControlLoop`]'s complete evolving state, decomposed so the lane
/// path ([`crate::lane`]) can transpose it into per-field arrays and —
/// at checkpoint/scatter boundaries — reassemble a scalar loop that is
/// byte-identical to one that had been stepped scalar all along.
#[derive(Debug)]
pub(crate) struct LaneParts {
    pub(crate) cpu: Cpu,
    pub(crate) power: PowerModel,
    pub(crate) pdn_state: PdnState,
    pub(crate) v_nominal: f64,
    pub(crate) sensor: Option<ThresholdSensor>,
    pub(crate) controller: ThresholdController,
    pub(crate) actuator: AsymmetricActuator,
    pub(crate) monitor: VoltageMonitor,
    pub(crate) histogram: VoltageHistogram,
    pub(crate) energy: EnergyAccumulator,
    pub(crate) trace: Option<Vec<LoopSample>>,
    pub(crate) cycles_in_low: u64,
    pub(crate) cycles_in_normal: u64,
    pub(crate) cycles_in_high: u64,
}

impl ControlLoop {
    /// Decomposes an (unobserved) loop into lane-transposable parts.
    ///
    /// Only the default `NullRecorder`/`NullTracer` instantiation can
    /// enter the lane path: per-cycle observers would have to fire in
    /// scalar step order, which is exactly what the transposed passes
    /// give up.
    pub(crate) fn into_lane_parts(self) -> LaneParts {
        LaneParts {
            cpu: self.cpu,
            power: self.power,
            pdn_state: self.pdn_state,
            v_nominal: self.v_nominal,
            sensor: self.sensor,
            controller: self.controller,
            actuator: self.actuator,
            monitor: self.monitor,
            histogram: self.histogram,
            energy: self.energy,
            trace: self.trace,
            cycles_in_low: self.cycles_in_low,
            cycles_in_normal: self.cycles_in_normal,
            cycles_in_high: self.cycles_in_high,
        }
    }

    /// Reassembles a scalar loop from lane parts. Inverse of
    /// [`into_lane_parts`](Self::into_lane_parts): a loop rebuilt from
    /// unmodified parts is byte-identical (its [`save`](Self::save)
    /// bytes match) to the loop that was decomposed.
    pub(crate) fn from_lane_parts(parts: LaneParts) -> ControlLoop {
        ControlLoop {
            cpu: parts.cpu,
            power: parts.power,
            pdn_state: parts.pdn_state,
            v_nominal: parts.v_nominal,
            sensor: parts.sensor,
            controller: parts.controller,
            actuator: parts.actuator,
            monitor: parts.monitor,
            histogram: parts.histogram,
            energy: parts.energy,
            trace: parts.trace,
            recorder: NullRecorder,
            metric_ids: LoopMetricIds::default(),
            tracer: NullTracer,
            cycles_in_low: parts.cycles_in_low,
            cycles_in_normal: parts.cycles_in_normal,
            cycles_in_high: parts.cycles_in_high,
        }
    }
}

/// Maps the monitor's ground-truth band into the trace vocabulary.
fn supply_band(band: VoltageBand) -> SupplyBand {
    match band {
        VoltageBand::UnderEmergency => SupplyBand::Under,
        VoltageBand::Safe => SupplyBand::Safe,
        VoltageBand::OverEmergency => SupplyBand::Over,
    }
}

/// Maps the sensed control band into the trace vocabulary.
fn sensor_band(reading: SensorReading) -> SensorBand {
    match reading {
        SensorReading::Low => SensorBand::Low,
        SensorReading::Normal => SensorBand::Normal,
        SensorReading::High => SensorBand::High,
    }
}

/// Packs one cycle's microarchitectural activity and actuator state into
/// trace event bits.
fn event_bits(act: &CycleActivity, gating: &GatingState) -> u16 {
    let mut bits = 0u16;
    if act.dl1_misses > 0 {
        bits |= events::DL1_MISS;
    }
    if act.il1_misses > 0 {
        bits |= events::IL1_MISS;
    }
    if act.l2_misses > 0 {
        bits |= events::L2_MISS;
    }
    if act.mispredicts > 0 {
        bits |= events::MISPREDICT;
    }
    if act.issued == 0 {
        bits |= events::STALL;
    }
    if gating.gate_fu {
        bits |= events::GATE_FU;
    }
    if gating.gate_dl1 {
        bits |= events::GATE_DL1;
    }
    if gating.gate_il1 {
        bits |= events::GATE_IL1;
    }
    if gating.phantom_fu {
        bits |= events::PHANTOM_FU;
    }
    if gating.phantom_dl1 {
        bits |= events::PHANTOM_DL1;
    }
    if gating.phantom_il1 {
        bits |= events::PHANTOM_IL1;
    }
    bits
}

impl<R: Recorder, T: Tracer> ControlLoop<R, T> {
    /// Advances one cycle.
    pub fn step(&mut self) -> LoopSample {
        // 0-based index of the cycle about to execute; only read when an
        // observer is enabled so the disabled loop stays byte-identical.
        let cycle = if R::ENABLED || T::ENABLED {
            self.cpu.stats().cycles
        } else {
            0
        };
        // Sub-step timers are stride-sampled: two clock reads per span
        // are the recorded path's single biggest tax, so only one cycle
        // in TIMER_SAMPLE_STRIDE pays them.
        let time_substeps = R::ENABLED && cycle % TIMER_SAMPLE_STRIDE == 0;
        let gating = self.cpu.gating();

        let sw = Stopwatch::started_if(time_substeps);
        let act = self.cpu.step();
        sw.stop_id(&mut self.recorder, self.metric_ids.cpu_ns);

        let sw = Stopwatch::started_if(time_substeps);
        let watts = self.power.cycle_power(&act, &gating).total();
        let amps = watts / self.power.params().vdd;
        sw.stop_id(&mut self.recorder, self.metric_ids.power_ns);

        let sw = Stopwatch::started_if(time_substeps);
        let volts = self.pdn_state.step(amps);
        sw.stop_id(&mut self.recorder, self.metric_ids.pdn_ns);

        let band = self.monitor.observe(volts);
        self.histogram.record(volts);
        self.energy.add_cycle(watts);

        let sw = Stopwatch::started_if(time_substeps);
        let mut reading = SensorReading::Normal;
        if let Some(sensor) = &mut self.sensor {
            reading = sensor.observe(volts);
            let action = self.controller.decide(reading);
            self.actuator.apply(action, self.cpu.gating_mut());
        }
        sw.stop_id(&mut self.recorder, self.metric_ids.control_ns);

        if T::ENABLED {
            self.tracer.cycle(CycleRecord {
                cycle,
                current: amps,
                voltage: volts,
                supply: supply_band(band),
                sensor: sensor_band(reading),
                events: event_bits(&act, &gating),
            });
        }

        match reading {
            SensorReading::Low => self.cycles_in_low += 1,
            SensorReading::Normal => self.cycles_in_normal += 1,
            SensorReading::High => self.cycles_in_high += 1,
        }

        if R::ENABLED {
            self.recorder.value_id(self.metric_ids.voltage, volts);
            self.recorder.value_id(self.metric_ids.current, amps);
        }

        let sample = LoopSample {
            current: amps,
            voltage: volts,
            reducing: gating.gate_fu || gating.gate_dl1 || gating.gate_il1,
            increasing: gating.phantom_fu || gating.phantom_dl1 || gating.phantom_il1,
        };
        if let Some(trace) = &mut self.trace {
            trace.push(sample);
        }
        sample
    }

    /// Advances up to `budget` cycles, stopping early when the program
    /// finishes, and returns how many cycles actually ran.
    ///
    /// This is the resumable execution primitive: run a slice, ask
    /// [`done`](Self::done), [`save`](Self::save) at any boundary, and a
    /// loop restored from that snapshot continues the remaining slices
    /// bit-for-bit. When trace recording is on, the sample buffer is
    /// reserved up front (capped at 2^22 samples per call for
    /// pathological budgets) so the hot loop never reallocates mid-run.
    pub fn step_n(&mut self, budget: u64) -> u64 {
        if let Some(trace) = &mut self.trace {
            trace.reserve(budget.min(1 << 22) as usize);
        }
        let mut stepped = 0;
        while stepped < budget && !self.cpu.done() {
            self.step();
            stepped += 1;
        }
        stepped
    }

    /// Runs `cycles` cycles (stops early if the program finishes).
    ///
    /// Compatibility alias for [`step_n`](Self::step_n), kept so existing
    /// scenario code keeps compiling; it discards the stepped-cycle count.
    /// New code that runs in resumable slices should call `step_n`.
    pub fn run(&mut self, cycles: u64) {
        self.step_n(cycles);
    }

    /// Whether the program has finished and drained.
    pub fn done(&self) -> bool {
        self.cpu.done()
    }

    /// The underlying CPU (stats, architectural state).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The voltage histogram accumulated so far (Figure 10).
    pub fn histogram(&self) -> &VoltageHistogram {
        &self.histogram
    }

    /// The attached telemetry recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// The attached telemetry recorder, mutably (e.g. to register
    /// histogram buckets before running).
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Consumes the loop, returning its recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// The attached cycle tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// The attached cycle tracer, mutably.
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consumes the loop, returning its tracer.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Consumes the loop, returning its recorder and tracer together.
    pub fn into_parts(self) -> (R, T) {
        (self.recorder, self.tracer)
    }

    /// Takes the recorded per-cycle trace (empty unless
    /// [`ControlLoopBuilder::record_trace`] was enabled).
    pub fn take_trace(&mut self) -> Vec<LoopSample> {
        self.trace.take().unwrap_or_default()
    }

    /// Produces the run report.
    pub fn report(&self) -> LoopReport {
        let stats = self.cpu.stats();
        LoopReport {
            cycles: stats.cycles,
            committed: stats.committed,
            ipc: stats.ipc(),
            emergencies: self.monitor.report(),
            energy_joules: self.energy.joules(),
            avg_power: self.energy.average_power(),
            reduce_cycles: self.controller.reduce_cycles(),
            increase_cycles: self.controller.increase_cycles(),
            interventions: self.controller.reduce_events() + self.controller.increase_events(),
            cycles_in_low: self.cycles_in_low,
            cycles_in_normal: self.cycles_in_normal,
            cycles_in_high: self.cycles_in_high,
        }
    }

    /// Flushes run-level aggregates into the recorder: controller-state
    /// cycle totals, intervention/gating counters, the gating duty cycle,
    /// emergency statistics, the voltage histogram, per-unit CPU activity,
    /// and accumulated energy. Call once after the run; per-cycle streams
    /// (sub-step timers, voltage/current samples) are recorded as the loop
    /// executes and need no flush.
    pub fn finish_telemetry(&mut self) {
        if !R::ENABLED {
            return;
        }
        let report = self.report();
        let rec = &mut self.recorder;
        rec.counter("loop.cycles", report.cycles);
        rec.counter("loop.committed", report.committed);
        rec.counter("loop.cycles_in_low", report.cycles_in_low);
        rec.counter("loop.cycles_in_normal", report.cycles_in_normal);
        rec.counter("loop.cycles_in_high", report.cycles_in_high);
        rec.counter("loop.reduce_cycles", report.reduce_cycles);
        rec.counter("loop.increase_cycles", report.increase_cycles);
        rec.counter("loop.interventions", report.interventions);
        rec.value("loop.gating_duty", report.gating_duty());
        rec.value("loop.ipc", report.ipc);
        report.emergencies.record_telemetry(rec);
        self.histogram.record_telemetry(rec, "loop.voltage_hist");
        self.cpu.stats().record_telemetry(rec);
        self.energy.record_telemetry(rec);
    }

    /// Serializes the loop's complete simulation state into a versioned
    /// [`SnapshotKind::Loop`] container.
    ///
    /// The snapshot captures everything that evolves as the loop steps —
    /// CPU microarchitectural state, the supply transient, the sensor's
    /// delay pipeline and noise RNG, controller counters, actuation
    /// scopes, monitor/histogram/energy aggregates, and the recorded
    /// sample trace — so [`ControlLoopBuilder::restore`] resumes
    /// bit-for-bit. Static inputs (program, machine configuration, power
    /// model) are *not* stored; they are fingerprinted so restoration can
    /// verify the rebuilt loop matches, and the observers (recorder,
    /// tracer) stay outside: both [`MemoryRecorder`] and
    /// [`FlightRecorder`](voltctl_trace::FlightRecorder) implement
    /// [`Pack`] themselves, so callers checkpoint them alongside.
    ///
    /// [`MemoryRecorder`]: voltctl_telemetry::MemoryRecorder
    pub fn save(&self) -> Vec<u8> {
        let mut snap = SnapshotWriter::new(SnapshotKind::Loop);

        let mut w = voltctl_snap::ByteWriter::new();
        w.put_f64(self.v_nominal);
        w.put_u64(power_fingerprint(&self.power));
        w.put_u64(self.cycles_in_low);
        w.put_u64(self.cycles_in_normal);
        w.put_u64(self.cycles_in_high);
        snap.section(section::META, LOOP_SECTION_VERSION, w);

        let mut w = voltctl_snap::ByteWriter::new();
        self.cpu.pack_state(&mut w);
        snap.section(section::CPU, LOOP_SECTION_VERSION, w);

        let mut w = voltctl_snap::ByteWriter::new();
        self.pdn_state.pack(&mut w);
        snap.section(section::PDN, LOOP_SECTION_VERSION, w);

        let mut w = voltctl_snap::ByteWriter::new();
        self.sensor.pack(&mut w);
        snap.section(section::SENSOR, LOOP_SECTION_VERSION, w);

        let mut w = voltctl_snap::ByteWriter::new();
        self.controller.pack(&mut w);
        snap.section(section::CONTROLLER, LOOP_SECTION_VERSION, w);

        let mut w = voltctl_snap::ByteWriter::new();
        self.actuator.pack(&mut w);
        snap.section(section::ACTUATOR, LOOP_SECTION_VERSION, w);

        let mut w = voltctl_snap::ByteWriter::new();
        self.monitor.pack(&mut w);
        self.histogram.pack(&mut w);
        self.energy.pack(&mut w);
        snap.section(section::MONITOR, LOOP_SECTION_VERSION, w);

        let mut w = voltctl_snap::ByteWriter::new();
        self.trace.pack(&mut w);
        snap.section(section::TRACE, LOOP_SECTION_VERSION, w);

        snap.finish()
    }

    /// Decodes a loop snapshot and swaps it in. Two-phase: every section
    /// is decoded and validated into locals first, then the loop's fields
    /// are replaced together, so a failure cannot leave mixed state.
    fn apply_snapshot(
        &mut self,
        config: CpuConfig,
        program: &Program,
        bytes: &[u8],
    ) -> Result<(), ControlError> {
        let snap_err = |e: SnapError| ControlError::Infeasible(format!("snapshot: {e}"));
        let reader = SnapshotReader::parse(bytes).map_err(snap_err)?;
        if reader.kind() != SnapshotKind::Loop {
            return Err(ControlError::Infeasible(format!(
                "expected a loop snapshot, found a {} snapshot",
                reader.kind().name()
            )));
        }
        let section_reader = |tag: u16, what: &'static str| {
            let sec = reader.require(tag, what).map_err(snap_err)?;
            if sec.version != LOOP_SECTION_VERSION {
                return Err(snap_err(SnapError::UnsupportedVersion {
                    what,
                    found: u32::from(sec.version),
                    supported: u32::from(LOOP_SECTION_VERSION),
                }));
            }
            Ok(sec.reader())
        };

        let mut r = section_reader(section::META, "loop metadata")?;
        let v_nominal = r.get_f64().map_err(snap_err)?;
        let power_fp = r.get_u64().map_err(snap_err)?;
        let cycles_in_low = r.get_u64().map_err(snap_err)?;
        let cycles_in_normal = r.get_u64().map_err(snap_err)?;
        let cycles_in_high = r.get_u64().map_err(snap_err)?;
        r.expect_end("loop metadata").map_err(snap_err)?;
        if power_fp != power_fingerprint(&self.power) {
            return Err(ControlError::Infeasible(
                "snapshot was taken with a different power model".into(),
            ));
        }

        let mut r = section_reader(section::CPU, "cpu state")?;
        let cpu = Cpu::unpack_state(config, program, &mut r).map_err(snap_err)?;
        r.expect_end("cpu state").map_err(snap_err)?;

        let mut r = section_reader(section::PDN, "supply state")?;
        let pdn_state = PdnState::unpack(&mut r).map_err(snap_err)?;
        r.expect_end("supply state").map_err(snap_err)?;

        let mut r = section_reader(section::SENSOR, "sensor state")?;
        let sensor: Option<ThresholdSensor> = Unpack::unpack(&mut r).map_err(snap_err)?;
        r.expect_end("sensor state").map_err(snap_err)?;
        if sensor.is_some() != self.sensor.is_some() {
            return Err(ControlError::Infeasible(format!(
                "snapshot is of {} run but the builder configured {}",
                if sensor.is_some() {
                    "a controlled"
                } else {
                    "an uncontrolled"
                },
                if self.sensor.is_some() {
                    "control thresholds"
                } else {
                    "no control"
                },
            )));
        }

        let mut r = section_reader(section::CONTROLLER, "controller state")?;
        let controller = ThresholdController::unpack(&mut r).map_err(snap_err)?;
        r.expect_end("controller state").map_err(snap_err)?;

        let mut r = section_reader(section::ACTUATOR, "actuator state")?;
        let actuator = AsymmetricActuator::unpack(&mut r).map_err(snap_err)?;
        r.expect_end("actuator state").map_err(snap_err)?;

        let mut r = section_reader(section::MONITOR, "monitor state")?;
        let monitor = VoltageMonitor::unpack(&mut r).map_err(snap_err)?;
        let histogram = VoltageHistogram::unpack(&mut r).map_err(snap_err)?;
        let energy = EnergyAccumulator::unpack(&mut r).map_err(snap_err)?;
        r.expect_end("monitor state").map_err(snap_err)?;

        let mut r = section_reader(section::TRACE, "sample trace")?;
        let trace: Option<Vec<LoopSample>> = Unpack::unpack(&mut r).map_err(snap_err)?;
        r.expect_end("sample trace").map_err(snap_err)?;

        self.cpu = cpu;
        self.pdn_state = pdn_state;
        self.v_nominal = v_nominal;
        self.sensor = sensor;
        self.controller = controller;
        self.actuator = actuator;
        self.monitor = monitor;
        self.histogram = histogram;
        self.energy = energy;
        self.trace = trace;
        self.cycles_in_low = cycles_in_low;
        self.cycles_in_normal = cycles_in_normal;
        self.cycles_in_high = cycles_in_high;
        Ok(())
    }

    /// Digest of the CPU's architectural state, to verify control does not
    /// perturb program results.
    pub fn arch_digest(&self) -> u64 {
        self.cpu.arch_digest()
    }

    /// The nominal supply voltage.
    pub fn v_nominal(&self) -> f64 {
        self.v_nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrated_pdn;
    use voltctl_isa::builder::ProgramBuilder;
    use voltctl_isa::reg::IntReg;
    use voltctl_power::PowerParams;
    use voltctl_telemetry::MemoryRecorder;

    fn spin_program() -> Program {
        let mut b = ProgramBuilder::new("spin");
        b.label("top");
        b.addq_imm(IntReg::R1, IntReg::R1, 1);
        b.br("top");
        b.build().unwrap()
    }

    fn harness(percent: f64) -> (PowerModel, PdnModel) {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, percent).unwrap();
        (power, pdn)
    }

    #[test]
    fn uncontrolled_loop_runs_and_reports() {
        let (power, pdn) = harness(2.0);
        let mut sim = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .build()
            .unwrap();
        sim.run(5_000);
        let r = sim.report();
        assert_eq!(r.cycles, 5_000);
        assert!(r.committed > 0);
        assert!(r.energy_joules > 0.0);
        assert_eq!(r.interventions, 0, "no thresholds ⇒ no control");
        assert_eq!(r.cycles_in_normal, 5_000, "no sensor ⇒ all cycles Normal");
        assert_eq!(r.gating_duty(), 0.0);
    }

    #[test]
    fn missing_parts_are_rejected() {
        let e = ControlLoop::builder(spin_program()).build().unwrap_err();
        assert!(matches!(e, ControlError::Infeasible(_)));
    }

    #[test]
    fn controlled_loop_intervenes_on_stressmark_class_swings() {
        // Build a small divide/burst oscillator inline (stressmark-like).
        let mut b = ProgramBuilder::new("osc");
        b.data_f64(0x40000, &[1.0, 1.0]);
        b.lda(IntReg::R4, IntReg::R31, 0x40000);
        b.ldt(voltctl_isa::FpReg::F2, 8, IntReg::R4);
        b.lda(IntReg::R1, IntReg::R31, 1);
        b.label("top");
        b.ldt(voltctl_isa::FpReg::F1, 0, IntReg::R4);
        b.divt(
            voltctl_isa::FpReg::F3,
            voltctl_isa::FpReg::F1,
            voltctl_isa::FpReg::F2,
        );
        b.stt(voltctl_isa::FpReg::F3, 16, IntReg::R4);
        b.ldq(IntReg::R7, 16, IntReg::R4);
        b.cmoveq(IntReg::R3, IntReg::R31, IntReg::R7);
        for k in 0..180 {
            match k % 3 {
                0 => {
                    b.xor(IntReg::R8, IntReg::R3, IntReg::R3);
                }
                1 => {
                    b.addq(IntReg::new(9), IntReg::R3, IntReg::R3);
                }
                _ => {
                    b.stq(IntReg::R3, 64 + ((k as i64 * 8) % 56), IntReg::R4);
                }
            }
        }
        b.xor(IntReg::R3, IntReg::R3, IntReg::R8);
        b.stq(IntReg::R3, 0, IntReg::R4);
        b.bne(IntReg::R1, "top");
        let program = b.build().unwrap();

        // High impedance so the oscillation actually threatens the spec.
        let (power, pdn) = harness(4.0);
        let thresholds = Thresholds {
            v_low: 0.97,
            v_high: 1.03,
        };

        let mut controlled = ControlLoop::builder(program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .thresholds(thresholds)
            .scope(ActuationScope::FuDl1Il1)
            .build()
            .unwrap();
        controlled.run(60_000);
        let rc = controlled.report();

        let mut baseline = ControlLoop::builder(program)
            .power(power)
            .pdn(pdn)
            .build()
            .unwrap();
        baseline.run(60_000);
        let rb = baseline.report();

        assert!(rc.interventions > 0, "controller must engage");
        assert!(
            rc.emergencies.emergency_cycles < rb.emergencies.emergency_cycles,
            "control must reduce emergencies: {} vs {}",
            rc.emergencies.emergency_cycles,
            rb.emergencies.emergency_cycles
        );
        assert!(rc.cycles_in_low > 0, "interventions imply Low cycles");
        assert!(rc.gating_duty() > 0.0);
    }

    #[test]
    fn control_preserves_program_results() {
        // Finite program: digests must match with and without control.
        let mut b = ProgramBuilder::new("finite");
        b.lda(IntReg::R4, IntReg::R31, 0x9000);
        b.lda(IntReg::R1, IntReg::R31, 300);
        b.label("top");
        b.mulq(IntReg::R2, IntReg::R1, IntReg::R1);
        b.stq(IntReg::R2, 0, IntReg::R4);
        b.ldq(IntReg::R3, 0, IntReg::R4);
        b.addq(IntReg::R5, IntReg::R5, IntReg::R3);
        b.addq_imm(IntReg::R4, IntReg::R4, 8);
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        let program = b.build().unwrap();

        let (power, pdn) = harness(2.0);
        let mut base = ControlLoop::builder(program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .build()
            .unwrap();
        base.run(1_000_000);
        assert!(base.done());

        // Aggressive thresholds force frequent actuation.
        let mut controlled = ControlLoop::builder(program)
            .power(power)
            .pdn(pdn)
            .thresholds(Thresholds {
                v_low: 0.999,
                v_high: 1.001,
            })
            .scope(ActuationScope::FuDl1Il1)
            .build()
            .unwrap();
        controlled.run(5_000_000);
        assert!(controlled.done());
        assert!(controlled.report().interventions > 0);
        assert_eq!(base.arch_digest(), controlled.arch_digest());
        assert!(
            controlled.report().cycles > base.report().cycles,
            "actuation must cost cycles"
        );
    }

    #[test]
    fn trace_recording_captures_samples() {
        let (power, pdn) = harness(2.0);
        let mut sim = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .record_trace(true)
            .build()
            .unwrap();
        sim.run(100);
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 100);
        assert!(trace.iter().all(|s| s.voltage > 0.5 && s.current > 0.0));
    }

    #[test]
    fn trace_buffer_is_reserved_before_the_run() {
        let (power, pdn) = harness(2.0);
        let mut sim = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .record_trace(true)
            .build()
            .unwrap();
        sim.run(750);
        // The reserve in run() must cover the whole budget: pushing the
        // samples cannot have grown the buffer beyond one allocation.
        let trace = sim.trace.as_ref().expect("trace recording enabled");
        assert_eq!(trace.len(), 750);
        assert!(
            trace.capacity() >= 750,
            "capacity {} must be reserved up front",
            trace.capacity()
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn disabled_recorder_is_compile_time_off() {
        // The hot path guards every instrumentation site on R::ENABLED;
        // the default recorder must be statically disabled so those sites
        // monomorphize away (no clock reads, no sample recording).
        assert!(!<NullRecorder as Recorder>::ENABLED);
        assert!(<MemoryRecorder as Recorder>::ENABLED);
        let sw = Stopwatch::start_for::<NullRecorder>();
        assert_eq!(sw.elapsed_ns(), 0, "disabled span must not read the clock");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn disabled_tracer_is_compile_time_off() {
        // Mirror of disabled_recorder_is_compile_time_off for the Tracer
        // axis: the default tracer must be statically disabled (and
        // zero-sized) so the per-cycle CycleRecord construction in step()
        // is dead code, not a runtime branch.
        assert!(!<NullTracer as Tracer>::ENABLED);
        assert!(<voltctl_trace::FlightRecorder as Tracer>::ENABLED);
        assert!(
            !<&mut NullTracer as Tracer>::ENABLED,
            "forwarding preserves off"
        );
        assert_eq!(std::mem::size_of::<NullTracer>(), 0);
        // A null-traced loop is the *same type layout* as an untraced one.
        assert_eq!(
            std::mem::size_of::<ControlLoop>(),
            std::mem::size_of::<ControlLoop<NullRecorder, NullTracer>>()
        );
    }

    #[test]
    fn null_tracer_loop_matches_traced_loop_exactly() {
        // Tracing must be a pure observer: a loop with a FlightRecorder
        // attached produces identical simulation results to the default
        // NullTracer loop, and the flight recorder sees every cycle.
        let (power, pdn) = harness(2.0);
        let mut plain = ControlLoop::builder(spin_program())
            .power(power.clone())
            .pdn(pdn.clone())
            .build()
            .unwrap();
        let mut flight = voltctl_trace::FlightRecorder::new(32);
        let mut traced = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .tracer(&mut flight)
            .build()
            .unwrap();
        plain.run(2_000);
        traced.run(2_000);
        assert_eq!(plain.report(), traced.report());
        assert_eq!(plain.arch_digest(), traced.arch_digest());
        drop(traced);
        assert_eq!(flight.cycles(), 2_000);
        assert_eq!(flight.buffered(), 32);
        let cell = flight.to_cell("spin");
        assert_eq!(
            cell.crossings,
            plain.report().emergencies.events(),
            "tracer crossing count must agree with the voltage monitor"
        );
    }

    #[test]
    fn noise_compensation_tightens_deployed_thresholds() {
        let (power, pdn) = harness(2.0);
        let sim = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .thresholds(Thresholds {
                v_low: 0.96,
                v_high: 1.04,
            })
            .sensor(SensorConfig {
                delay_cycles: 0,
                noise_mv: 10.0,
                seed: 7,
            })
            .build()
            .unwrap();
        let sensor = sim.sensor.as_ref().unwrap();
        assert!((sensor.v_low() - 0.97).abs() < 1e-12);
        assert!((sensor.v_high() - 1.03).abs() < 1e-12);
    }

    #[test]
    fn recorder_streams_per_cycle_and_run_level_telemetry() {
        let (power, pdn) = harness(2.0);
        let mut sim = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .recorder(MemoryRecorder::new())
            .build()
            .unwrap();
        sim.run(500);
        sim.finish_telemetry();
        let snap = sim.recorder().snapshot();
        assert_eq!(snap.counter("loop.cycles"), Some(500));
        assert_eq!(snap.value("loop.voltage_v").unwrap().count, 500);
        assert_eq!(snap.value("loop.current_a").unwrap().count, 500);
        // Sub-step timers are stride-sampled: cycle indices 0, 64, ….
        let sampled = 500u64.div_ceil(TIMER_SAMPLE_STRIDE);
        for timer in [
            "loop.step.cpu_ns",
            "loop.step.power_ns",
            "loop.step.pdn_ns",
            "loop.step.control_ns",
        ] {
            assert_eq!(snap.timer(timer).unwrap().count, sampled, "{timer}");
        }
        assert_eq!(snap.histogram("loop.voltage_hist").unwrap().total(), 500);
        assert_eq!(snap.counter("cpu.cycles"), Some(500));
        let low = snap.counter("loop.cycles_in_low").unwrap();
        let normal = snap.counter("loop.cycles_in_normal").unwrap();
        let high = snap.counter("loop.cycles_in_high").unwrap();
        assert_eq!(low + normal + high, 500);
    }

    fn oscillator_program() -> Program {
        let mut b = ProgramBuilder::new("osc-snap");
        b.data_f64(0x40000, &[1.0, 1.0]);
        b.lda(IntReg::R4, IntReg::R31, 0x40000);
        b.ldt(voltctl_isa::FpReg::F2, 8, IntReg::R4);
        b.lda(IntReg::R1, IntReg::R31, 2_000);
        b.label("top");
        b.ldt(voltctl_isa::FpReg::F1, 0, IntReg::R4);
        b.divt(
            voltctl_isa::FpReg::F3,
            voltctl_isa::FpReg::F1,
            voltctl_isa::FpReg::F2,
        );
        b.stt(voltctl_isa::FpReg::F3, 16, IntReg::R4);
        for k in 0..60 {
            match k % 3 {
                0 => {
                    b.xor(IntReg::R8, IntReg::R3, IntReg::R3);
                }
                1 => {
                    b.addq(IntReg::new(9), IntReg::R3, IntReg::R3);
                }
                _ => {
                    b.stq(IntReg::R3, 64 + ((k as i64 * 8) % 56), IntReg::R4);
                }
            }
        }
        b.subq_imm(IntReg::R1, IntReg::R1, 1);
        b.bne(IntReg::R1, "top");
        b.halt();
        b.build().unwrap()
    }

    /// A controlled builder exercising every stateful component: sensor
    /// delay pipeline, sensor noise RNG, and an asymmetric actuator.
    fn snapshot_builder(
        program: Program,
        power: PowerModel,
        pdn: voltctl_pdn::PdnModel,
    ) -> ControlLoopBuilder {
        ControlLoop::builder(program)
            .power(power)
            .pdn(pdn)
            .thresholds(Thresholds {
                v_low: 0.97,
                v_high: 1.03,
            })
            .sensor(SensorConfig {
                delay_cycles: 2,
                noise_mv: 5.0,
                seed: 0x5eed,
            })
            .actuator(AsymmetricActuator {
                reduce: ActuationScope::FuDl1Il1,
                increase: ActuationScope::Fu,
            })
    }

    #[test]
    fn save_restore_continues_bit_for_bit() {
        let (power, pdn) = harness(4.0);
        let program = oscillator_program();
        let mut reference = snapshot_builder(program.clone(), power.clone(), pdn.clone())
            .build()
            .unwrap();
        reference.step_n(7_500);
        assert!(!reference.done(), "snapshot must be taken mid-run");
        let bytes = reference.save();

        let mut resumed = snapshot_builder(program, power, pdn)
            .restore(&bytes)
            .unwrap();
        // Resumed state must be indistinguishable: identical re-save.
        assert_eq!(resumed.save(), bytes);

        // And stepping must match the uninterrupted run sample-for-sample
        // (LoopSample equality is f64 equality — bitwise for non-NaN).
        for _ in 0..10_000 {
            if reference.done() {
                break;
            }
            assert_eq!(reference.step(), resumed.step());
        }
        assert_eq!(reference.done(), resumed.done());
        assert_eq!(reference.report(), resumed.report());
        assert_eq!(reference.arch_digest(), resumed.arch_digest());
        assert_eq!(reference.save(), resumed.save());
    }

    #[test]
    fn saved_trace_buffer_travels_with_the_snapshot() {
        let (power, pdn) = harness(2.0);
        let mut sim = ControlLoop::builder(spin_program())
            .power(power.clone())
            .pdn(pdn.clone())
            .record_trace(true)
            .build()
            .unwrap();
        sim.step_n(100);
        let bytes = sim.save();
        let mut resumed = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .record_trace(true)
            .restore(&bytes)
            .unwrap();
        resumed.step_n(50);
        sim.step_n(50);
        let expect = sim.take_trace();
        let got = resumed.take_trace();
        assert_eq!(expect.len(), 150);
        assert_eq!(expect, got, "restored trace must include pre-save samples");
    }

    #[test]
    fn restore_rejects_mismatched_rebuilds() {
        let (power, pdn) = harness(4.0);
        let program = oscillator_program();
        let mut sim = snapshot_builder(program.clone(), power.clone(), pdn.clone())
            .build()
            .unwrap();
        sim.step_n(500);
        let bytes = sim.save();

        // Different program.
        let e = snapshot_builder(spin_program(), power.clone(), pdn.clone())
            .restore(&bytes)
            .unwrap_err();
        assert!(
            e.to_string().contains("different program"),
            "unexpected error: {e}"
        );

        // Different machine configuration.
        let mut small = CpuConfig::table1();
        small.ruu_size /= 2;
        let e = snapshot_builder(program.clone(), power.clone(), pdn.clone())
            .cpu_config(small)
            .restore(&bytes)
            .unwrap_err();
        assert!(
            e.to_string().contains("different machine configuration"),
            "unexpected error: {e}"
        );

        // Different power model.
        let mut params = PowerParams::paper_3ghz();
        params.vdd *= 1.1;
        let e = snapshot_builder(program.clone(), PowerModel::new(params), pdn.clone())
            .restore(&bytes)
            .unwrap_err();
        assert!(
            e.to_string().contains("different power model"),
            "unexpected error: {e}"
        );

        // Controlled snapshot into an uncontrolled builder.
        let e = ControlLoop::builder(program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .restore(&bytes)
            .unwrap_err();
        assert!(
            e.to_string().contains("uncontrolled") || e.to_string().contains("no control"),
            "unexpected error: {e}"
        );

        // The matching rebuild still works after all those rejections.
        assert!(snapshot_builder(program, power, pdn)
            .restore(&bytes)
            .is_ok());
    }

    #[test]
    fn restore_rejects_damaged_snapshots_without_panicking() {
        let (power, pdn) = harness(2.0);
        let mut sim = ControlLoop::builder(spin_program())
            .power(power.clone())
            .pdn(pdn.clone())
            .build()
            .unwrap();
        sim.step_n(300);
        let bytes = sim.save();

        // Every truncation must be a clean error.
        for cut in (0..bytes.len()).step_by(41) {
            let builder = ControlLoop::builder(spin_program())
                .power(power.clone())
                .pdn(pdn.clone());
            assert!(
                builder.restore(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Arbitrary junk must be a clean error too.
        let builder = ControlLoop::builder(spin_program())
            .power(power.clone())
            .pdn(pdn.clone());
        assert!(builder.restore(b"not a snapshot at all").is_err());
    }

    #[test]
    fn step_n_reports_cycles_and_run_delegates() {
        let (power, pdn) = harness(2.0);
        let program = oscillator_program();
        let mut a = ControlLoop::builder(program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .build()
            .unwrap();
        let mut total = 0;
        loop {
            let stepped = a.step_n(10_000);
            total += stepped;
            if stepped < 10_000 {
                break;
            }
        }
        assert!(a.done());
        assert_eq!(total, a.report().cycles);
        assert_eq!(a.step_n(10), 0, "a finished loop steps zero cycles");

        // The `run` shim is exactly step_n with the count discarded.
        let mut b = ControlLoop::builder(program)
            .power(power)
            .pdn(pdn)
            .build()
            .unwrap();
        b.run(u64::MAX);
        assert!(b.done());
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn null_recorder_loop_matches_recorded_loop_exactly() {
        let (power, pdn) = harness(2.0);
        let mut plain = ControlLoop::builder(spin_program())
            .power(power.clone())
            .pdn(pdn.clone())
            .build()
            .unwrap();
        let mut recorded = ControlLoop::builder(spin_program())
            .power(power)
            .pdn(pdn)
            .recorder(MemoryRecorder::new())
            .build()
            .unwrap();
        plain.run(2_000);
        recorded.run(2_000);
        // Telemetry must be a pure observer: identical simulation results.
        assert_eq!(plain.report(), recorded.report());
        assert_eq!(plain.arch_digest(), recorded.arch_digest());
    }
}
