//! Replay a current-demand trace through any supply network under
//! threshold control — without a CPU in the loop.
//!
//! This is the analytic harness the worst-case threshold solver is built
//! on, exposed as a public API: given a per-cycle *demand* trace (what the
//! program wants to draw), a [`Supply`] implementation (the second-order
//! model, the detailed ladder, a measured convolution kernel, …), and an
//! actuation [`Leverage`], [`replay`] simulates the sensed-threshold
//! control law and reports the voltage envelope and actuation effort.
//!
//! Uses:
//!
//! * fast design-space exploration over recorded workload traces (no
//!   cycle-level simulation needed once a trace exists);
//! * validating thresholds solved on an abstraction against a more
//!   detailed network (`ablation_ladder`);
//! * the solver's worst-case adversary itself
//!   ([`crate::thresholds::solve_thresholds`]).

use crate::actuator::Leverage;
use crate::thresholds::Thresholds;
use std::collections::VecDeque;
use voltctl_pdn::{PdnModel, PdnState, Supply};
use voltctl_trace::EmergencyCapture;

/// Configuration of a replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Controller thresholds; `None` replays uncontrolled.
    pub thresholds: Option<Thresholds>,
    /// Actuation strength (ignored when uncontrolled).
    pub leverage: Leverage,
    /// Sensor delay in cycles.
    pub delay_cycles: u32,
    /// Optional per-cycle slew limit (amps/cycle) applied to the demand —
    /// models the pipeline's fill/drain ramp. `None` = unlimited.
    pub slew_limit: Option<f64>,
    /// The demand's sustained maximum (amps): where the actuation ceiling
    /// decays *from* when Reduce engages.
    pub i_max: f64,
    /// The demand's sustained minimum (amps): where the actuation floor
    /// decays *from* when Increase engages, and the regulation point.
    pub i_min: f64,
}

/// Result envelope of a replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// Lowest die voltage seen (volts).
    pub min_v: f64,
    /// Highest die voltage seen (volts).
    pub max_v: f64,
    /// Cycles with the Reduce clamp engaged.
    pub reduce_cycles: u64,
    /// Cycles with the Increase clamp engaged.
    pub increase_cycles: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Replays `demand` (amps per cycle) through `supply` under the configured
/// control law. The supply should already be regulated (reference current
/// set); `config.i_min` is used only for the actuation-decay envelope.
pub fn replay<S: Supply>(
    supply: &mut S,
    demand: impl IntoIterator<Item = f64>,
    config: &ReplayConfig,
) -> ReplayOutcome {
    let v_nom = supply.nominal();
    let mut sensed: VecDeque<f64> =
        std::iter::repeat_n(v_nom, config.delay_cycles as usize).collect();
    let mut v = v_nom;
    let mut min_v = v_nom;
    let mut max_v = v_nom;
    let mut reduce_time = 0u64;
    let mut increase_time = 0u64;
    let mut reduce_cycles = 0u64;
    let mut increase_cycles = 0u64;
    let mut cycles = 0u64;
    let mut prev_i = config.i_min;

    for want in demand {
        sensed.push_back(v);
        let seen = sensed.pop_front().unwrap_or(v);

        if let Some(t) = config.thresholds {
            if seen < t.v_low {
                reduce_time += 1;
                increase_time = 0;
            } else if seen > t.v_high {
                increase_time += 1;
                reduce_time = 0;
            } else {
                reduce_time = 0;
                increase_time = 0;
            }
        }

        let mut i = match config.slew_limit {
            Some(slew) => prev_i + (want - prev_i).clamp(-slew, slew),
            None => want,
        };

        if reduce_time > 0 {
            reduce_cycles += 1;
            let ceiling = decay(
                config.i_max,
                config.leverage.reduce_floor_amps,
                reduce_time,
                config.leverage.settle_cycles,
            );
            i = i.min(ceiling);
        } else if increase_time > 0 {
            increase_cycles += 1;
            let floor = decay(
                config.i_min,
                config.leverage.increase_ceiling_amps,
                increase_time,
                1,
            );
            i = i.max(floor);
        }

        prev_i = i;
        v = supply.step_supply(i);
        min_v = min_v.min(v);
        max_v = max_v.max(v);
        cycles += 1;
    }
    ReplayOutcome {
        min_v,
        max_v,
        reduce_cycles,
        increase_cycles,
        cycles,
    }
}

/// Turns a flight-recorder [`EmergencyCapture`] back into a live supply
/// stepper positioned at the capture's second record — a time-travel
/// checkpoint for debugging an emergency after the fact.
///
/// The capture logs only observables (per-cycle current and voltage); the
/// supply's hidden inductor state is recovered from the first two records
/// via [`PdnState::reconstruct`]. Feeding the remaining recorded currents
/// to the returned stepper reproduces the remaining recorded voltages to
/// numerical conditioning (~1e-9 V, not bitwise — reconstruction divides
/// through the discretized dynamics), and from there the investigator can
/// diverge: replay the same window against different thresholds, inject a
/// different actuation response, or hand the state to
/// [`replay`] for what-if control sweeps.
///
/// `model` and `i_ref` must be the supply model and regulation point the
/// capturing run used. Returns `None` when the capture holds fewer than
/// two records (no pre-window to reconstruct from) or the model's
/// discretization makes the hidden state unobservable (degenerate for
/// physical RLC parameters).
pub fn capture_checkpoint(
    model: &PdnModel,
    capture: &EmergencyCapture,
    i_ref: f64,
) -> Option<PdnState> {
    let prev = capture.records.first()?;
    let now = capture.records.get(1)?;
    let v_nom = model.v_nominal();
    PdnState::reconstruct(
        model,
        prev.voltage - v_nom,
        now.voltage - v_nom,
        now.current,
        i_ref,
    )
}

/// Exponential approach from `from` toward `to` after `t` engaged cycles
/// with time constant `settle` (instant when `settle == 0`).
pub(crate) fn decay(from: f64, to: f64, t: u64, settle: u64) -> f64 {
    if settle == 0 {
        return to;
    }
    let frac = (-(t as f64) / settle as f64).exp();
    to + (from - to) * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ActuationScope;
    use voltctl_pdn::{waveform, PdnModel};
    use voltctl_power::{PowerModel, PowerParams};

    fn harness() -> (PdnModel, PowerModel) {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let base = PdnModel::paper_default().unwrap();
        let delta = power.achievable_peak_current() - power.min_current();
        (
            base.calibrated_target(delta).unwrap().scaled(3.0).unwrap(),
            power,
        )
    }

    fn config(power: &PowerModel, thresholds: Option<Thresholds>) -> ReplayConfig {
        ReplayConfig {
            thresholds,
            leverage: ActuationScope::FuDl1Il1.leverage(power),
            delay_cycles: 1,
            slew_limit: None,
            i_max: power.achievable_peak_current(),
            i_min: power.min_current(),
        }
    }

    #[test]
    fn uncontrolled_replay_reports_the_envelope() {
        let (pdn, power) = harness();
        let mut supply = pdn.discretize();
        supply.set_reference_current(power.min_current());
        let demand = waveform::square_wave(
            power.min_current(),
            power.achievable_peak_current(),
            pdn.resonant_period_cycles(),
            3000,
        );
        let out = replay(&mut supply, demand, &config(&power, None));
        assert_eq!(out.cycles, 3000);
        assert_eq!(out.reduce_cycles + out.increase_cycles, 0);
        assert!(out.min_v < 0.95, "300% impedance must violate uncontrolled");
        assert!(out.max_v > pdn.v_nominal());
    }

    #[test]
    fn control_clamps_the_same_demand() {
        let (pdn, power) = harness();
        let thresholds = Thresholds {
            v_low: 0.975,
            v_high: 1.025,
        };
        let demand = waveform::square_wave(
            power.min_current(),
            power.achievable_peak_current(),
            pdn.resonant_period_cycles(),
            3000,
        );
        let mut supply = pdn.discretize();
        supply.set_reference_current(power.min_current());
        let out = replay(&mut supply, demand, &config(&power, Some(thresholds)));
        assert!(out.reduce_cycles > 0, "the clamp must engage");
        assert!(
            out.min_v >= 0.95,
            "control must hold the spec: min {}",
            out.min_v
        );
    }

    #[test]
    fn slew_limit_softens_the_transient() {
        let (pdn, power) = harness();
        let demand = || {
            waveform::square_wave(
                power.min_current(),
                power.achievable_peak_current(),
                pdn.resonant_period_cycles(),
                2000,
            )
        };
        let mut cfg = config(&power, None);
        let mut supply = pdn.discretize();
        supply.set_reference_current(power.min_current());
        let hard = replay(&mut supply, demand(), &cfg);

        cfg.slew_limit = Some((cfg.i_max - cfg.i_min) / 8.0);
        let mut supply = pdn.discretize();
        supply.set_reference_current(power.min_current());
        let soft = replay(&mut supply, demand(), &cfg);
        assert!(
            soft.min_v > hard.min_v,
            "slew limiting must reduce the swing"
        );
    }

    #[test]
    fn capture_checkpoint_replays_the_recorded_emergency() {
        use crate::calibrate::calibrated_pdn;
        use crate::loopsim::ControlLoop;
        use voltctl_isa::builder::ProgramBuilder;
        use voltctl_isa::reg::IntReg;
        use voltctl_trace::FlightRecorder;

        // A divide/burst oscillator at high impedance: emergencies occur
        // uncontrolled, so the flight recorder freezes captures.
        let mut b = ProgramBuilder::new("osc");
        b.data_f64(0x40000, &[1.0, 1.0]);
        b.lda(IntReg::R4, IntReg::R31, 0x40000);
        b.ldt(voltctl_isa::FpReg::F2, 8, IntReg::R4);
        b.lda(IntReg::R1, IntReg::R31, 1);
        b.label("top");
        b.ldt(voltctl_isa::FpReg::F1, 0, IntReg::R4);
        b.divt(
            voltctl_isa::FpReg::F3,
            voltctl_isa::FpReg::F1,
            voltctl_isa::FpReg::F2,
        );
        for k in 0..120 {
            if k % 2 == 0 {
                b.xor(IntReg::R8, IntReg::R3, IntReg::R3);
            } else {
                b.stq(IntReg::R3, 64 + ((k as i64 * 8) % 56), IntReg::R4);
            }
        }
        b.bne(IntReg::R1, "top");
        let program = b.build().unwrap();

        let power = PowerModel::new(PowerParams::paper_3ghz());
        let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 4.0).unwrap();
        let mut flight = FlightRecorder::new(16);
        let mut sim = ControlLoop::builder(program)
            .power(power.clone())
            .pdn(pdn.clone())
            .tracer(&mut flight)
            .build()
            .unwrap();
        sim.run(30_000);
        drop(sim);
        let cell = flight.to_cell("osc");
        assert!(
            !cell.captures.is_empty(),
            "the run must capture emergencies"
        );

        // Every capture with a pre-window converts back into a stepper
        // that reproduces the rest of the recorded voltage trajectory.
        let mut verified = 0;
        for cap in cell.captures.iter().filter(|c| c.records.len() > 2) {
            let mut state = capture_checkpoint(&pdn, cap, power.min_current())
                .expect("physical RLC parameters are observable");
            for (k, rec) in cap.records.iter().enumerate().skip(2) {
                let v = state.step(rec.current);
                assert!(
                    (v - rec.voltage).abs() < 1e-9,
                    "capture @{} record {k}: replayed {v} vs recorded {}",
                    cap.crossing_cycle,
                    rec.voltage
                );
            }
            verified += 1;
        }
        assert!(verified > 0, "at least one capture must have a window");

        // A capture with fewer than two records cannot be reconstructed.
        let stub = EmergencyCapture {
            records: cap_first_record(&cell.captures[0]),
            ..cell.captures[0].clone()
        };
        assert!(capture_checkpoint(&pdn, &stub, power.min_current()).is_none());
    }

    fn cap_first_record(cap: &EmergencyCapture) -> Vec<voltctl_trace::CycleRecord> {
        vec![cap.records[0]]
    }

    #[test]
    fn works_on_the_ladder_supply() {
        let (_, power) = harness();
        let ladder = voltctl_pdn::ladder::LadderModel::typical_three_stage();
        let mut supply = ladder.discretize();
        supply.set_reference_current(power.min_current());
        let demand = waveform::square_wave(power.min_current(), 50.0, 60, 1200);
        let out = replay(&mut supply, demand, &config(&power, None));
        assert!(out.min_v < ladder.v_nominal());
        assert_eq!(out.cycles, 1200);
    }
}
