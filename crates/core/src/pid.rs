//! The PID alternative the paper considered and rejected (§6).
//!
//! A textbook discrete PID controller needs (a) a *magnitude* voltage
//! reading rather than a three-level comparison, and (b) a multiply-
//! accumulate pipeline to evaluate the control law — both of which add
//! latency precisely where the dI/dt problem affords almost none. This
//! module implements that controller so the repository's ablation bench
//! (`ablation_pid`) can quantify the paper's argument: with its extra
//! compute latency, PID control underperforms the threshold scheme it was
//! meant to refine.
//!
//! The PID output is ultimately quantized to the same three actuation
//! commands — gate, none, phantom-fire — because that is all the
//! microarchitectural actuator can do.

use crate::controller::ControlAction;
use std::collections::VecDeque;

/// Discrete PID controller over the supply-voltage error.
#[derive(Debug, Clone)]
pub struct PidController {
    /// Proportional gain (per volt).
    pub kp: f64,
    /// Integral gain (per volt-cycle).
    pub ki: f64,
    /// Derivative gain (volt-cycles).
    pub kd: f64,
    /// Actuation dead-band: |u| below this commands nothing.
    pub dead_band: f64,
    v_nominal: f64,
    integral: f64,
    prev_error: f64,
    /// Compute latency of the MAC pipeline, in cycles (≥ 1 realistically;
    /// the paper argues this is the scheme's downfall).
    compute_delay: VecDeque<f64>,
    integral_clamp: f64,
}

impl PidController {
    /// Creates a PID controller around `v_nominal` with `compute_delay`
    /// extra cycles of control-law latency.
    ///
    /// # Panics
    ///
    /// Panics if any gain is negative or non-finite.
    pub fn new(kp: f64, ki: f64, kd: f64, v_nominal: f64, compute_delay: u32) -> PidController {
        for (name, g) in [("kp", kp), ("ki", ki), ("kd", kd)] {
            assert!(g.is_finite() && g >= 0.0, "{name} must be non-negative");
        }
        PidController {
            kp,
            ki,
            kd,
            dead_band: 0.5,
            v_nominal,
            integral: 0.0,
            prev_error: 0.0,
            compute_delay: std::iter::repeat_n(0.0, compute_delay as usize).collect(),
            integral_clamp: 1.0,
        }
    }

    /// Reasonable default tuning for the paper's package: engages around
    /// a ~25 mV sag with derivative anticipation (a starting point; the
    /// ablation sweeps around it).
    pub fn default_tuning(v_nominal: f64, compute_delay: u32) -> PidController {
        PidController::new(20.0, 0.5, 150.0, v_nominal, compute_delay)
    }

    /// Consumes this cycle's measured voltage, returns the (delayed)
    /// actuation command.
    pub fn decide(&mut self, volts: f64) -> ControlAction {
        // Error is positive when the supply sags.
        let error = self.v_nominal - volts;
        self.integral = (self.integral + error).clamp(-self.integral_clamp, self.integral_clamp);
        let derivative = error - self.prev_error;
        self.prev_error = error;
        let u = self.kp * error + self.ki * self.integral + self.kd * derivative;

        // The MAC pipeline delays the control signal.
        self.compute_delay.push_back(u);
        let u = self.compute_delay.pop_front().unwrap_or(u);

        if u > self.dead_band {
            ControlAction::ReduceCurrent
        } else if u < -self.dead_band {
            ControlAction::IncreaseCurrent
        } else {
            ControlAction::None
        }
    }

    /// Clears the controller's dynamic state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = 0.0;
        for slot in &mut self.compute_delay {
            *slot = 0.0;
        }
    }
}

impl voltctl_snap::Pack for PidController {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.kp);
        w.put_f64(self.ki);
        w.put_f64(self.kd);
        w.put_f64(self.dead_band);
        w.put_f64(self.v_nominal);
        w.put_f64(self.integral);
        w.put_f64(self.prev_error);
        self.compute_delay.pack(w);
        w.put_f64(self.integral_clamp);
    }
}

impl voltctl_snap::Unpack for PidController {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let kp = r.get_f64()?;
        let ki = r.get_f64()?;
        let kd = r.get_f64()?;
        let dead_band = r.get_f64()?;
        let v_nominal = r.get_f64()?;
        let integral = r.get_f64()?;
        let prev_error = r.get_f64()?;
        let compute_delay: VecDeque<f64> = voltctl_snap::Unpack::unpack(r)?;
        let integral_clamp = r.get_f64()?;
        // Re-assert the constructor's gain invariants on decoded bytes.
        for (name, g) in [("kp", kp), ("ki", ki), ("kd", kd)] {
            if !g.is_finite() || g < 0.0 {
                return Err(voltctl_snap::SnapError::Corrupt(format!(
                    "PID gain {name} = {g} must be non-negative and finite"
                )));
            }
        }
        Ok(PidController {
            kp,
            ki,
            kd,
            dead_band,
            v_nominal,
            integral,
            prev_error,
            compute_delay,
            integral_clamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sag_commands_reduction() {
        let mut pid = PidController::default_tuning(1.0, 0);
        // A sharp 30 mV sag.
        let a = pid.decide(0.97);
        assert_eq!(a, ControlAction::ReduceCurrent);
    }

    #[test]
    fn overshoot_commands_firing() {
        let mut pid = PidController::default_tuning(1.0, 0);
        assert_eq!(pid.decide(1.03), ControlAction::IncreaseCurrent);
    }

    #[test]
    fn nominal_commands_nothing() {
        let mut pid = PidController::default_tuning(1.0, 0);
        assert_eq!(pid.decide(1.0), ControlAction::None);
    }

    #[test]
    fn compute_delay_postpones_response() {
        let mut pid = PidController::default_tuning(1.0, 3);
        assert_eq!(pid.decide(0.95), ControlAction::None); // pipeline filling
        assert_eq!(pid.decide(0.95), ControlAction::None);
        assert_eq!(pid.decide(0.95), ControlAction::None);
        assert_eq!(pid.decide(0.95), ControlAction::ReduceCurrent);
    }

    #[test]
    fn integral_accumulates_on_persistent_error() {
        let mut pid = PidController::new(0.0, 5.0, 0.0, 1.0, 0);
        // Pure-integral controller: small sustained error eventually trips.
        let mut tripped = false;
        for _ in 0..100 {
            if pid.decide(0.999) == ControlAction::ReduceCurrent {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn integral_is_clamped() {
        let mut pid = PidController::new(0.0, 5.0, 0.0, 1.0, 0);
        for _ in 0..10_000 {
            pid.decide(0.90);
        }
        // After returning to nominal, the wound-up integral must unwind in
        // bounded time thanks to the clamp.
        let mut recovered = false;
        for _ in 0..50 {
            if pid.decide(1.05) != ControlAction::ReduceCurrent {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "anti-windup clamp must bound recovery time");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::default_tuning(1.0, 2);
        pid.decide(0.90);
        pid.decide(0.90);
        pid.reset();
        assert_eq!(pid.decide(1.0), ControlAction::None);
    }

    #[test]
    fn wire_round_trip_continues_the_control_stream() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, SnapError, Unpack};
        let mut pid = PidController::default_tuning(1.0, 3);
        for k in 0..100 {
            pid.decide(1.0 - (k % 7) as f64 * 0.01);
        }
        let mut w = ByteWriter::new();
        pid.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut restored = PidController::unpack(&mut r).unwrap();
        assert!(r.finished());
        // Integral, previous error, and the MAC pipeline all carry over:
        // the two controllers must emit identical commands forever after.
        for k in 0..200 {
            let v = 1.0 + ((k % 11) as f64 - 5.0) * 0.008;
            assert_eq!(pid.decide(v), restored.decide(v));
        }

        // A negative gain must be rejected on decode, mirroring `new`.
        let mut bad = bytes.clone();
        bad[..8].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        match PidController::unpack(&mut ByteReader::new(&bad)) {
            Err(SnapError::Corrupt(msg)) => assert!(msg.contains("kp"), "{msg}"),
            other => panic!("negative kp must be rejected, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gain_rejected() {
        let _ = PidController::new(-1.0, 0.0, 0.0, 1.0, 0);
    }
}
