//! The threshold control policy (§4.1).
//!
//! The controller maps sensor readings to actuation commands: while the
//! sensed supply is **Low**, reduce current (gate the controlled units);
//! while it is **High**, increase current (phantom-fire them); otherwise
//! run normally. Recovery is implicit — the command is withdrawn the
//! moment the sensed voltage re-enters the safe window, exactly the
//! "deactivates all of the controlled units until the voltage level is
//! above the threshold again" policy of §5.1.

use crate::sensor::SensorReading;

/// The actuation command for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlAction {
    /// Run normally.
    None,
    /// Gate the controlled units to cut current (undershoot response).
    ReduceCurrent,
    /// Phantom-fire the controlled units to add current (overshoot
    /// response).
    IncreaseCurrent,
}

/// The threshold controller FSM, with activation statistics.
#[derive(Debug, Clone, Default)]
pub struct ThresholdController {
    last: Option<ControlAction>,
    reduce_cycles: u64,
    increase_cycles: u64,
    reduce_events: u64,
    increase_events: u64,
}

impl ThresholdController {
    /// Creates an idle controller.
    pub fn new() -> ThresholdController {
        ThresholdController::default()
    }

    /// Consumes one sensor reading, returns this cycle's command.
    pub fn decide(&mut self, reading: SensorReading) -> ControlAction {
        let action = match reading {
            SensorReading::Low => ControlAction::ReduceCurrent,
            SensorReading::High => ControlAction::IncreaseCurrent,
            SensorReading::Normal => ControlAction::None,
        };
        match action {
            ControlAction::ReduceCurrent => {
                self.reduce_cycles += 1;
                if self.last != Some(ControlAction::ReduceCurrent) {
                    self.reduce_events += 1;
                }
            }
            ControlAction::IncreaseCurrent => {
                self.increase_cycles += 1;
                if self.last != Some(ControlAction::IncreaseCurrent) {
                    self.increase_events += 1;
                }
            }
            ControlAction::None => {}
        }
        self.last = Some(action);
        action
    }

    /// Cycles spent commanding current reduction.
    pub fn reduce_cycles(&self) -> u64 {
        self.reduce_cycles
    }

    /// Cycles spent commanding current increase (phantom firing).
    pub fn increase_cycles(&self) -> u64 {
        self.increase_cycles
    }

    /// Distinct undershoot interventions.
    pub fn reduce_events(&self) -> u64 {
        self.reduce_events
    }

    /// Distinct overshoot interventions.
    pub fn increase_events(&self) -> u64 {
        self.increase_events
    }

    /// Whether the controller ever intervened.
    pub fn intervened(&self) -> bool {
        self.reduce_cycles + self.increase_cycles > 0
    }
}

/// The controller FSM decomposed for the lane path (see [`crate::lane`]),
/// where each field lives in its own per-lane array.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ControllerParts {
    pub(crate) last: Option<ControlAction>,
    pub(crate) reduce_cycles: u64,
    pub(crate) increase_cycles: u64,
    pub(crate) reduce_events: u64,
    pub(crate) increase_events: u64,
}

impl ThresholdController {
    /// Decomposes into lane-transposable parts.
    pub(crate) fn into_lane_parts(self) -> ControllerParts {
        ControllerParts {
            last: self.last,
            reduce_cycles: self.reduce_cycles,
            increase_cycles: self.increase_cycles,
            reduce_events: self.reduce_events,
            increase_events: self.increase_events,
        }
    }

    /// Reassembles a controller from lane parts.
    pub(crate) fn from_lane_parts(p: ControllerParts) -> ThresholdController {
        ThresholdController {
            last: p.last,
            reduce_cycles: p.reduce_cycles,
            increase_cycles: p.increase_cycles,
            reduce_events: p.reduce_events,
            increase_events: p.increase_events,
        }
    }
}

impl voltctl_snap::Pack for ControlAction {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(match self {
            ControlAction::None => 0,
            ControlAction::ReduceCurrent => 1,
            ControlAction::IncreaseCurrent => 2,
        });
    }
}

impl voltctl_snap::Unpack for ControlAction {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(ControlAction::None),
            1 => Ok(ControlAction::ReduceCurrent),
            2 => Ok(ControlAction::IncreaseCurrent),
            k => Err(voltctl_snap::SnapError::Corrupt(format!(
                "invalid control action tag {k}"
            ))),
        }
    }
}

impl voltctl_snap::Pack for ThresholdController {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.last.pack(w);
        w.put_u64(self.reduce_cycles);
        w.put_u64(self.increase_cycles);
        w.put_u64(self.reduce_events);
        w.put_u64(self.increase_events);
    }
}

impl voltctl_snap::Unpack for ThresholdController {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let last = voltctl_snap::Unpack::unpack(r)?;
        let reduce_cycles = r.get_u64()?;
        let increase_cycles = r.get_u64()?;
        let reduce_events = r.get_u64()?;
        let increase_events = r.get_u64()?;
        // Every distinct intervention spans at least one cycle.
        if reduce_events > reduce_cycles || increase_events > increase_cycles {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "controller event counts exceed cycle counts: \
                 {reduce_events}/{reduce_cycles} reduce, \
                 {increase_events}/{increase_cycles} increase"
            )));
        }
        Ok(ThresholdController {
            last,
            reduce_cycles,
            increase_cycles,
            reduce_events,
            increase_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_readings_to_actions() {
        let mut c = ThresholdController::new();
        assert_eq!(c.decide(SensorReading::Normal), ControlAction::None);
        assert_eq!(c.decide(SensorReading::Low), ControlAction::ReduceCurrent);
        assert_eq!(
            c.decide(SensorReading::High),
            ControlAction::IncreaseCurrent
        );
    }

    #[test]
    fn recovery_is_immediate() {
        let mut c = ThresholdController::new();
        c.decide(SensorReading::Low);
        assert_eq!(c.decide(SensorReading::Normal), ControlAction::None);
    }

    #[test]
    fn events_count_transitions_cycles_count_duration() {
        let mut c = ThresholdController::new();
        for r in [
            SensorReading::Low,
            SensorReading::Low,
            SensorReading::Normal,
            SensorReading::Low,
            SensorReading::High,
            SensorReading::High,
        ] {
            c.decide(r);
        }
        assert_eq!(c.reduce_events(), 2);
        assert_eq!(c.reduce_cycles(), 3);
        assert_eq!(c.increase_events(), 1);
        assert_eq!(c.increase_cycles(), 2);
        assert!(c.intervened());
    }

    #[test]
    fn idle_controller_never_intervened() {
        let mut c = ThresholdController::new();
        for _ in 0..10 {
            c.decide(SensorReading::Normal);
        }
        assert!(!c.intervened());
    }
}
