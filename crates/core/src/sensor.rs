//! The threshold voltage sensor (§4.2).
//!
//! The paper's key implementability argument is that the controller never
//! needs a digitized voltage *value* — only which of three bands the
//! supply is in. [`ThresholdSensor`] models exactly that interface, plus
//! the two non-idealities the paper sweeps:
//!
//! * **delay** (0–6 cycles, §4.4): the reading reflects the supply as it
//!   was `delay` cycles ago (bandgap comparison / delay-line detection
//!   latency);
//! * **error** (10–25 mV, §4.5): white noise added to the compared
//!   voltage. Following the paper, users compensate by tightening the
//!   thresholds by the noise bound (see
//!   [`Thresholds::tightened`](crate::thresholds::Thresholds::tightened)).

use std::collections::VecDeque;
use voltctl_telemetry::Rng;

/// One quantized sensor output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorReading {
    /// Supply below the low threshold: undershoot danger.
    Low,
    /// Supply within the safe window.
    Normal,
    /// Supply above the high threshold: overshoot danger.
    High,
}

/// Sensor non-idealities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorConfig {
    /// Reading latency in cycles (0 = ideal).
    pub delay_cycles: u32,
    /// White-noise bound in millivolts; uniform in `[-noise, +noise]`.
    pub noise_mv: f64,
    /// RNG seed for reproducible noise.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            delay_cycles: 0,
            noise_mv: 0.0,
            seed: 0x5eed,
        }
    }
}

/// The Low/Normal/High threshold sensor.
///
/// # Example
///
/// ```
/// use voltctl_core::sensor::{SensorConfig, SensorReading, ThresholdSensor};
///
/// let mut s = ThresholdSensor::new(0.96, 1.04, 1.0, SensorConfig::default());
/// assert_eq!(s.observe(1.00), SensorReading::Normal);
/// assert_eq!(s.observe(0.95), SensorReading::Low);
/// assert_eq!(s.observe(1.05), SensorReading::High);
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdSensor {
    v_low: f64,
    v_high: f64,
    pipeline: VecDeque<f64>,
    noise_v: f64,
    rng: Rng,
}

impl ThresholdSensor {
    /// Creates a sensor with the given thresholds. `v_fill` (normally the
    /// nominal voltage) pre-fills the delay pipeline so the first `delay`
    /// readings are Normal.
    ///
    /// # Panics
    ///
    /// Panics unless `v_low < v_high` and the noise bound is non-negative
    /// and finite.
    pub fn new(v_low: f64, v_high: f64, v_fill: f64, config: SensorConfig) -> ThresholdSensor {
        assert!(v_low < v_high, "need v_low < v_high");
        assert!(
            config.noise_mv.is_finite() && config.noise_mv >= 0.0,
            "noise bound must be non-negative"
        );
        let mut pipeline = VecDeque::with_capacity(config.delay_cycles as usize + 1);
        for _ in 0..config.delay_cycles {
            pipeline.push_back(v_fill);
        }
        ThresholdSensor {
            v_low,
            v_high,
            pipeline,
            noise_v: config.noise_mv / 1000.0,
            rng: Rng::new(config.seed),
        }
    }

    /// The low threshold in volts.
    pub fn v_low(&self) -> f64 {
        self.v_low
    }

    /// The high threshold in volts.
    pub fn v_high(&self) -> f64 {
        self.v_high
    }

    /// Feeds this cycle's true supply voltage; returns the (delayed,
    /// noisy) quantized reading.
    pub fn observe(&mut self, volts: f64) -> SensorReading {
        self.pipeline.push_back(volts);
        let seen = self
            .pipeline
            .pop_front()
            .expect("pipeline is never empty here");
        let noisy = if self.noise_v > 0.0 {
            seen + self.rng.range_f64(-self.noise_v, self.noise_v)
        } else {
            seen
        };
        if noisy < self.v_low {
            SensorReading::Low
        } else if noisy > self.v_high {
            SensorReading::High
        } else {
            SensorReading::Normal
        }
    }
}

/// The sensor's state decomposed for the lane path (see [`crate::lane`]):
/// the delay pipeline transposes into a flat ring shared across lanes,
/// everything else into per-field arrays.
#[derive(Debug, Clone)]
pub(crate) struct SensorParts {
    pub(crate) v_low: f64,
    pub(crate) v_high: f64,
    pub(crate) pipeline: VecDeque<f64>,
    pub(crate) noise_v: f64,
    pub(crate) rng: Rng,
}

impl ThresholdSensor {
    /// Decomposes into lane-transposable parts.
    pub(crate) fn into_lane_parts(self) -> SensorParts {
        SensorParts {
            v_low: self.v_low,
            v_high: self.v_high,
            pipeline: self.pipeline,
            noise_v: self.noise_v,
            rng: self.rng,
        }
    }

    /// Reassembles a sensor from lane parts. The parts must originate
    /// from [`into_lane_parts`](Self::into_lane_parts) (possibly stepped
    /// in the lane path); invariants were established at construction.
    pub(crate) fn from_lane_parts(p: SensorParts) -> ThresholdSensor {
        ThresholdSensor {
            v_low: p.v_low,
            v_high: p.v_high,
            pipeline: p.pipeline,
            noise_v: p.noise_v,
            rng: p.rng,
        }
    }
}

impl voltctl_snap::Pack for ThresholdSensor {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.v_low);
        w.put_f64(self.v_high);
        self.pipeline.pack(w);
        w.put_f64(self.noise_v);
        self.rng.pack(w);
    }
}

impl voltctl_snap::Unpack for ThresholdSensor {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let v_low = r.get_f64()?;
        let v_high = r.get_f64()?;
        let pipeline: VecDeque<f64> = voltctl_snap::Unpack::unpack(r)?;
        let noise_v = r.get_f64()?;
        let rng = voltctl_snap::Unpack::unpack(r)?;
        // Re-assert the constructor invariants so a decoded sensor can
        // never be in a state `new` would have panicked on.
        if v_low.is_nan() || v_high.is_nan() || v_low >= v_high {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "sensor thresholds inverted: v_low {v_low} >= v_high {v_high}"
            )));
        }
        if !noise_v.is_finite() || noise_v < 0.0 {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "sensor noise bound {noise_v} must be finite and non-negative"
            )));
        }
        Ok(ThresholdSensor {
            v_low,
            v_high,
            pipeline,
            noise_v,
            rng,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_into_three_bands() {
        let mut s = ThresholdSensor::new(0.96, 1.04, 1.0, SensorConfig::default());
        assert_eq!(s.observe(0.959), SensorReading::Low);
        assert_eq!(s.observe(0.961), SensorReading::Normal);
        assert_eq!(s.observe(1.039), SensorReading::Normal);
        assert_eq!(s.observe(1.041), SensorReading::High);
    }

    #[test]
    fn delay_shifts_readings() {
        let config = SensorConfig {
            delay_cycles: 3,
            ..Default::default()
        };
        let mut s = ThresholdSensor::new(0.96, 1.04, 1.0, config);
        // Three pre-filled nominal readings come out first.
        assert_eq!(s.observe(0.90), SensorReading::Normal);
        assert_eq!(s.observe(0.90), SensorReading::Normal);
        assert_eq!(s.observe(0.90), SensorReading::Normal);
        // Now the 0.90 from 3 cycles ago arrives.
        assert_eq!(s.observe(1.0), SensorReading::Low);
    }

    #[test]
    fn zero_delay_is_immediate() {
        let mut s = ThresholdSensor::new(0.96, 1.04, 1.0, SensorConfig::default());
        assert_eq!(s.observe(0.90), SensorReading::Low);
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let config = SensorConfig {
            delay_cycles: 0,
            noise_mv: 20.0,
            seed: 42,
        };
        // At 25 mV above the threshold, 20 mV noise can never flip the
        // reading to Low.
        let mut s = ThresholdSensor::new(0.96, 1.04, 1.0, config);
        for _ in 0..1000 {
            assert_ne!(s.observe(0.985), SensorReading::Low);
        }
        // Near the threshold it sometimes does flip — and identically so
        // for an identically seeded sensor.
        let mut a = ThresholdSensor::new(0.96, 1.04, 1.0, config);
        let mut b = ThresholdSensor::new(0.96, 1.04, 1.0, config);
        let mut flipped = 0;
        for _ in 0..1000 {
            let ra = a.observe(0.965);
            let rb = b.observe(0.965);
            assert_eq!(ra, rb, "same seed ⇒ same noise");
            if ra == SensorReading::Low {
                flipped += 1;
            }
        }
        assert!(
            flipped > 0,
            "5 mV margin under 20 mV noise must flip sometimes"
        );
        assert!(flipped < 1000);
    }

    #[test]
    #[should_panic(expected = "v_low < v_high")]
    fn inverted_thresholds_rejected() {
        let _ = ThresholdSensor::new(1.04, 0.96, 1.0, SensorConfig::default());
    }

    #[test]
    fn wire_round_trip_preserves_delay_and_noise_stream() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, Unpack};
        let config = SensorConfig {
            delay_cycles: 3,
            noise_mv: 15.0,
            seed: 99,
        };
        let mut s = ThresholdSensor::new(0.96, 1.04, 1.0, config);
        for k in 0..257 {
            s.observe(0.96 + k as f64 * 1e-4);
        }
        let mut w = ByteWriter::new();
        s.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut t = ThresholdSensor::unpack(&mut r).unwrap();
        assert!(r.finished());
        // The restored sensor must continue the exact same delayed,
        // noisy reading stream: pipeline contents and RNG state carry.
        for k in 0..1000u64 {
            let v = 0.95 + ((k * 37) % 100) as f64 * 1e-3;
            assert_eq!(s.observe(v), t.observe(v), "cycle {k}");
        }
    }

    #[test]
    fn wire_decode_rejects_inverted_thresholds() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, SnapError, Unpack};
        let s = ThresholdSensor::new(0.96, 1.04, 1.0, SensorConfig::default());
        let mut w = ByteWriter::new();
        s.pack(&mut w);
        let mut bytes = w.into_bytes();
        // Swap the two threshold doubles in place.
        let (low, high) = (bytes[..8].to_vec(), bytes[8..16].to_vec());
        bytes[..8].copy_from_slice(&high);
        bytes[8..16].copy_from_slice(&low);
        match ThresholdSensor::unpack(&mut ByteReader::new(&bytes)) {
            Err(SnapError::Corrupt(msg)) => assert!(msg.contains("inverted"), "{msg}"),
            other => panic!("inverted thresholds must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| SensorConfig {
            delay_cycles: 0,
            noise_mv: 20.0,
            seed,
        };
        let mut a = ThresholdSensor::new(0.96, 1.04, 1.0, mk(1));
        let mut b = ThresholdSensor::new(0.96, 1.04, 1.0, mk(2));
        let mut diffs = 0;
        for _ in 0..1000 {
            if a.observe(0.965) != b.observe(0.965) {
                diffs += 1;
            }
        }
        assert!(diffs > 0);
    }
}
