//! Microarchitectural control of voltage emergencies — the contribution of
//! Joseph, Brooks & Martonosi (HPCA 2003).
//!
//! The paper's proposal is a **threshold controller**: a cheap voltage
//! sensor classifies the supply as Low / Normal / High; when it leaves the
//! safe band, a microarchitectural **actuator** clock-gates (to arrest an
//! undershoot) or "phantom-fires" (to arrest an overshoot) a configurable
//! slice of the pipeline until the supply recovers. Because the controller
//! is designed inside linear-systems theory, its thresholds can be solved
//! offline against the analytic worst case, yielding *guaranteed* bounds
//! rather than heuristics.
//!
//! Module map (paper section in parentheses):
//!
//! * [`sensor`] — Low/Normal/High quantization with configurable delay and
//!   white-noise error (§4.2, §4.4, §4.5).
//! * [`controller`] — the threshold control FSM (§4.1).
//! * [`actuator`] — actuation scopes: ideal, FU, FU/DL1, FU/DL1/IL1
//!   mapped onto the CPU's gating domains (§5.1).
//! * [`thresholds`] — the worst-case threshold solver replicating the
//!   MATLAB/Simulink design flow (§4.3, Table 3), including detection of
//!   scopes whose leverage cannot stabilize the supply (FU-only at high
//!   delay, §5.2).
//! * [`loopsim`] — the closed loop: CPU → power → current → PDN → voltage
//!   → sensor → controller → actuator → CPU (Figure 7 + Figure 12).
//! * [`analysis`] — controlled-vs-baseline evaluation: performance loss,
//!   energy increase, emergency elimination (§4.4–§5.3).
//! * [`calibrate`] — target-impedance calibration tying the power model's
//!   current envelope to the PDN model (§3.3).
//! * [`pid`] — the textbook PID alternative the paper discusses and
//!   rejects (§6), kept as an ablation.
//!
//! # Example: close the loop around a workload
//!
//! ```
//! use voltctl_core::prelude::*;
//! use voltctl_cpu::CpuConfig;
//! use voltctl_power::{PowerModel, PowerParams};
//! use voltctl_pdn::PdnModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let power = PowerModel::new(PowerParams::paper_3ghz());
//! let pdn = calibrated_pdn(&PdnModel::paper_default()?, &power, 2.0)?;
//! let thresholds = Thresholds { v_low: 0.96, v_high: 1.04 };
//!
//! let mut b = voltctl_isa::ProgramBuilder::new("spin");
//! b.label("top");
//! b.addq_imm(voltctl_isa::IntReg::R1, voltctl_isa::IntReg::R1, 1);
//! b.br("top");
//! let program = b.build()?;
//!
//! let mut sim = ControlLoop::builder(program)
//!     .cpu_config(CpuConfig::table1())
//!     .power(power)
//!     .pdn(pdn)
//!     .thresholds(thresholds)
//!     .scope(ActuationScope::FuDl1)
//!     .sensor(SensorConfig { delay_cycles: 2, noise_mv: 0.0, seed: 1 })
//!     .build()?;
//! sim.run(10_000);
//! assert_eq!(sim.report().emergencies.events(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actuator;
pub mod analysis;
pub mod calibrate;
pub mod controller;
pub mod lane;
pub mod loopsim;
pub mod pid;
pub mod replay;
pub mod sensor;
pub mod thresholds;

pub use actuator::{ActuationScope, AsymmetricActuator};
pub use analysis::{
    build_eval_loops, evaluate_program, evaluate_program_recorded, evaluate_program_traced,
    replay_current_trace, replay_current_trace_traced, EvalSetup, Evaluation, TraceReplay,
};
pub use calibrate::calibrated_pdn;
pub use controller::{ControlAction, ThresholdController};
pub use lane::{LaneLoop, LaneOutcome};
pub use loopsim::{ControlLoop, LoopReport};
pub use replay::{replay, ReplayConfig, ReplayOutcome};
pub use sensor::{SensorConfig, SensorReading, ThresholdSensor};
pub use thresholds::{solve_thresholds, ControlError, SolveSetup, Thresholds};

/// Convenient re-exports for closed-loop experiments.
pub mod prelude {
    pub use crate::actuator::{ActuationScope, AsymmetricActuator};
    pub use crate::calibrate::calibrated_pdn;
    pub use crate::controller::{ControlAction, ThresholdController};
    pub use crate::lane::{LaneLoop, LaneOutcome};
    pub use crate::loopsim::{ControlLoop, LoopReport};
    pub use crate::replay::{replay, ReplayConfig, ReplayOutcome};
    pub use crate::sensor::{SensorConfig, SensorReading, ThresholdSensor};
    pub use crate::thresholds::{solve_thresholds, ControlError, SolveSetup, Thresholds};
}
