//! Controlled-vs-baseline evaluation (§4.4–§5.3).
//!
//! The paper's controller results are always reported *relative to an
//! uncontrolled run*: performance degradation, energy increase, and the
//! emergencies eliminated. [`Evaluation`] packages one such comparison;
//! [`evaluate_program`] runs both loops over the same cycle budget with
//! identical inputs.

use crate::actuator::ActuationScope;
use crate::loopsim::{ControlLoop, LoopReport};
use crate::sensor::SensorConfig;
use crate::thresholds::{ControlError, Thresholds};
use voltctl_cpu::CpuConfig;
use voltctl_isa::Program;
use voltctl_pdn::{EmergencyReport, PdnModel, VoltageHistogram, VoltageMonitor};
use voltctl_power::PowerModel;

/// A controlled run compared against its uncontrolled baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The uncontrolled run.
    pub baseline: LoopReport,
    /// The controlled run.
    pub controlled: LoopReport,
}

impl Evaluation {
    /// Fractional performance loss: `1 - IPC_controlled / IPC_baseline`.
    /// Near zero (or slightly negative, from measurement noise) when the
    /// controller rarely intervenes.
    pub fn perf_loss(&self) -> f64 {
        if self.baseline.ipc <= 0.0 {
            return 0.0;
        }
        1.0 - self.controlled.ipc / self.baseline.ipc
    }

    /// Fractional energy increase **per committed instruction** (total
    /// energy is not comparable across equal-cycle runs that commit
    /// different instruction counts).
    pub fn energy_increase(&self) -> f64 {
        let base = self.baseline.energy_joules / self.baseline.committed.max(1) as f64;
        let ctrl = self.controlled.energy_joules / self.controlled.committed.max(1) as f64;
        if base <= 0.0 {
            return 0.0;
        }
        ctrl / base - 1.0
    }

    /// Emergencies eliminated by control (cycle count).
    pub fn emergencies_eliminated(&self) -> i64 {
        self.baseline.emergencies.emergency_cycles as i64
            - self.controlled.emergencies.emergency_cycles as i64
    }
}

/// Everything needed to evaluate one configuration.
#[derive(Debug, Clone)]
pub struct EvalSetup {
    /// Machine configuration.
    pub cpu_config: CpuConfig,
    /// Power model.
    pub power: PowerModel,
    /// Supply network.
    pub pdn: PdnModel,
    /// Solved thresholds for the controlled run.
    pub thresholds: Thresholds,
    /// Sensor non-idealities.
    pub sensor: SensorConfig,
    /// Actuation scope.
    pub scope: ActuationScope,
}

/// Runs `program` for `warmup + cycles` cycles twice — controlled and
/// uncontrolled — and reports the comparison. Warm-up cycles are included
/// in both runs identically; reports cover the whole run (the transient
/// affects both sides equally).
///
/// # Errors
///
/// Propagates loop-construction errors.
pub fn evaluate_program(
    program: &Program,
    setup: &EvalSetup,
    warmup: u64,
    cycles: u64,
) -> Result<Evaluation, ControlError> {
    let (evaluation, _) = evaluate_program_recorded(
        program,
        setup,
        warmup,
        cycles,
        voltctl_telemetry::NullRecorder,
    )?;
    Ok(evaluation)
}

/// Like [`evaluate_program`], but streams the **controlled** run's
/// telemetry (per-cycle samples, sub-step timers, run-level aggregates)
/// into `recorder` and hands it back alongside the comparison.
///
/// # Errors
///
/// Propagates loop-construction errors.
pub fn evaluate_program_recorded<R: voltctl_telemetry::Recorder>(
    program: &Program,
    setup: &EvalSetup,
    warmup: u64,
    cycles: u64,
    recorder: R,
) -> Result<(Evaluation, R), ControlError> {
    let (evaluation, recorder, _) = evaluate_program_traced(
        program,
        setup,
        warmup,
        cycles,
        recorder,
        voltctl_trace::NullTracer,
    )?;
    Ok((evaluation, recorder))
}

/// Like [`evaluate_program_recorded`], but additionally attaches `tracer`
/// to the **controlled** run (matching the telemetry policy: the
/// controlled loop is the one under forensic scrutiny) and hands it back
/// for capture extraction.
///
/// # Errors
///
/// Propagates loop-construction errors.
pub fn evaluate_program_traced<R: voltctl_telemetry::Recorder, T: voltctl_trace::Tracer>(
    program: &Program,
    setup: &EvalSetup,
    warmup: u64,
    cycles: u64,
    recorder: R,
    tracer: T,
) -> Result<(Evaluation, R, T), ControlError> {
    let mut baseline = ControlLoop::builder(program.clone())
        .cpu_config(setup.cpu_config.clone())
        .power(setup.power.clone())
        .pdn(setup.pdn.clone())
        .build()?;
    baseline.run(warmup + cycles);

    let mut controlled = ControlLoop::builder(program.clone())
        .cpu_config(setup.cpu_config.clone())
        .power(setup.power.clone())
        .pdn(setup.pdn.clone())
        .thresholds(setup.thresholds)
        .sensor(setup.sensor)
        .scope(setup.scope)
        .recorder(recorder)
        .tracer(tracer)
        .build()?;
    controlled.run(warmup + cycles);
    controlled.finish_telemetry();

    let evaluation = Evaluation {
        baseline: baseline.report(),
        controlled: controlled.report(),
    };
    let (recorder, tracer) = controlled.into_parts();
    Ok((evaluation, recorder, tracer))
}

/// Builds the `(baseline, controlled)` loop pair [`evaluate_program`]
/// would run, without running them — the entry point for batch
/// executors ([`crate::lane::LaneLoop`]) that step many evaluations in
/// lockstep. The loops are constructed exactly as on the scalar path
/// (same builder calls, no recorder or tracer), so running each for
/// `warmup + cycles` cycles reproduces [`evaluate_program`]'s reports
/// bitwise.
///
/// # Errors
///
/// Propagates loop-construction errors.
pub fn build_eval_loops(
    program: &Program,
    setup: &EvalSetup,
) -> Result<(ControlLoop, ControlLoop), ControlError> {
    let baseline = ControlLoop::builder(program.clone())
        .cpu_config(setup.cpu_config.clone())
        .power(setup.power.clone())
        .pdn(setup.pdn.clone())
        .build()?;
    let controlled = ControlLoop::builder(program.clone())
        .cpu_config(setup.cpu_config.clone())
        .power(setup.power.clone())
        .pdn(setup.pdn.clone())
        .thresholds(setup.thresholds)
        .sensor(setup.sensor)
        .scope(setup.scope)
        .build()?;
    Ok((baseline, controlled))
}

/// The result of replaying a recorded current trace through a supply
/// network: the emergency report and (optionally) the voltage
/// distribution.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    /// Out-of-band statistics over the replay.
    pub report: EmergencyReport,
    /// The voltage distribution, when requested.
    pub histogram: Option<VoltageHistogram>,
}

/// Replays an uncontrolled current trace through `pdn`, following the
/// methodology used for Table 2 / Figure 10: the supply's reference
/// current is the trace minimum (the network is assumed settled at the
/// program's quiescent draw), every cycle's voltage feeds the emergency
/// monitor, and — with `with_histogram` — the 0.90–1.10 V distribution.
///
/// Traces do not depend on the network, so one recorded trace can be
/// replayed at many impedance points; this helper is the shared
/// replacement for the replay loops the experiment binaries used to
/// hand-roll.
pub fn replay_current_trace(pdn: &PdnModel, trace: &[f64], with_histogram: bool) -> TraceReplay {
    let (replay, _) =
        replay_current_trace_traced(pdn, trace, with_histogram, voltctl_trace::NullTracer);
    replay
}

/// Like [`replay_current_trace`], but streams every replayed cycle into
/// `tracer` as a [`CycleRecord`](voltctl_trace::CycleRecord) — replays
/// have no CPU behind them, so the sensed band is `Normal` and the event
/// bits are empty; only current/voltage/supply-band carry signal.
pub fn replay_current_trace_traced<T: voltctl_trace::Tracer>(
    pdn: &PdnModel,
    trace: &[f64],
    with_histogram: bool,
    mut tracer: T,
) -> (TraceReplay, T) {
    let mut state = pdn.discretize();
    state.set_reference_current(trace.iter().cloned().fold(f64::MAX, f64::min));
    let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
    let mut histogram = with_histogram.then(VoltageHistogram::for_nominal_1v);
    for (k, &i) in trace.iter().enumerate() {
        let v = state.step(i);
        let band = monitor.observe(v);
        if T::ENABLED {
            tracer.cycle(voltctl_trace::CycleRecord {
                cycle: k as u64,
                current: i,
                voltage: v,
                supply: match band {
                    voltctl_pdn::emergency::VoltageBand::UnderEmergency => {
                        voltctl_trace::SupplyBand::Under
                    }
                    voltctl_pdn::emergency::VoltageBand::Safe => voltctl_trace::SupplyBand::Safe,
                    voltctl_pdn::emergency::VoltageBand::OverEmergency => {
                        voltctl_trace::SupplyBand::Over
                    }
                },
                sensor: voltctl_trace::SensorBand::Normal,
                events: 0,
            });
        }
        if let Some(h) = histogram.as_mut() {
            h.record(v);
        }
    }
    (
        TraceReplay {
            report: monitor.report(),
            histogram,
        },
        tracer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrated_pdn;
    use voltctl_isa::builder::ProgramBuilder;
    use voltctl_isa::reg::IntReg;
    use voltctl_power::PowerParams;

    fn setup(percent: f64, thresholds: Thresholds) -> EvalSetup {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, percent).unwrap();
        EvalSetup {
            cpu_config: CpuConfig::table1(),
            power,
            pdn,
            thresholds,
            sensor: SensorConfig::default(),
            scope: ActuationScope::FuDl1,
        }
    }

    fn spin() -> Program {
        let mut b = ProgramBuilder::new("spin");
        b.label("top");
        b.addq_imm(IntReg::R1, IntReg::R1, 1);
        b.br("top");
        b.build().unwrap()
    }

    #[test]
    fn quiet_program_sees_no_degradation() {
        let s = setup(
            2.0,
            Thresholds {
                v_low: 0.955,
                v_high: 1.045,
            },
        );
        let e = evaluate_program(&spin(), &s, 1_000, 10_000).unwrap();
        assert!(e.perf_loss().abs() < 0.01, "loss {}", e.perf_loss());
        assert!(e.energy_increase().abs() < 0.01);
        assert_eq!(e.controlled.interventions, 0);
    }

    #[test]
    fn aggressive_thresholds_cost_performance() {
        let s = setup(
            2.0,
            Thresholds {
                v_low: 0.9995,
                v_high: 1.0005,
            },
        );
        let e = evaluate_program(&spin(), &s, 1_000, 10_000).unwrap();
        assert!(e.controlled.interventions > 0);
        assert!(e.perf_loss() > 0.02, "loss {}", e.perf_loss());
    }

    #[test]
    fn trace_replay_flags_emergencies_and_buckets_volts() {
        let power = PowerModel::new(PowerParams::paper_3ghz());
        let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 3.0).unwrap();
        let swing = power.achievable_peak_current() - power.min_current();
        // A resonant square train at 300% impedance must cross the band;
        // a flat trace must not.
        let period = pdn.resonant_period_cycles();
        let train = voltctl_pdn::waveform::square_wave(0.0, swing, period, 20 * period);
        let hot = replay_current_trace(&pdn, &train, true);
        assert!(hot.report.any(), "resonant train must cause emergencies");
        let hist = hot.histogram.expect("requested");
        assert_eq!(hist.total(), train.len() as u64);

        let calm = replay_current_trace(&pdn, &vec![1.0; 500], false);
        assert!(!calm.report.any());
        assert!(calm.histogram.is_none());
    }

    #[test]
    fn metrics_handle_degenerate_reports() {
        let zeroed = LoopReport {
            cycles: 0,
            committed: 0,
            ipc: 0.0,
            emergencies: voltctl_pdn::VoltageMonitor::new(1.0, 0.05).report(),
            energy_joules: 0.0,
            avg_power: 0.0,
            reduce_cycles: 0,
            increase_cycles: 0,
            interventions: 0,
            cycles_in_low: 0,
            cycles_in_normal: 0,
            cycles_in_high: 0,
        };
        let e = Evaluation {
            baseline: zeroed.clone(),
            controlled: zeroed,
        };
        assert_eq!(e.perf_loss(), 0.0);
        assert_eq!(e.energy_increase(), 0.0);
        assert_eq!(e.emergencies_eliminated(), 0);
    }
}
