//! Coverage for [`replay_current_trace`] with `with_histogram: true` —
//! the Table 2 / Figure 10 replay helper. The histogram and emergency
//! report must match a hand-rolled state-space loop exactly, and the
//! histogram must only exist when requested.

use voltctl_core::replay_current_trace;
use voltctl_pdn::{waveform, PdnModel, VoltageHistogram, VoltageMonitor};
use voltctl_telemetry::Rng;

/// A resonant square train with seeded jitter — enough dI/dt activity at
/// the paper-default network to produce both under- and overshoots.
fn emergency_trace(model: &PdnModel, len: usize) -> Vec<f64> {
    let period = model.resonant_period_cycles();
    let mut rng = Rng::new(0xABCD);
    waveform::square_wave(5.0, 45.0, period, len)
        .into_iter()
        .map(|i| i + rng.range_f64(0.0, 2.0))
        .collect()
}

#[test]
fn histogram_is_none_unless_requested() {
    let model = PdnModel::paper_default().unwrap();
    let trace = emergency_trace(&model, 2000);
    assert!(replay_current_trace(&model, &trace, false)
        .histogram
        .is_none());
    assert!(replay_current_trace(&model, &trace, true)
        .histogram
        .is_some());
}

#[test]
fn histogram_accounts_for_every_cycle() {
    let model = PdnModel::paper_default().unwrap();
    let trace = emergency_trace(&model, 5000);
    let replay = replay_current_trace(&model, &trace, true);
    let hist = replay.histogram.expect("requested histogram");
    let (below, above) = hist.out_of_range();
    assert_eq!(
        hist.total() + below + above,
        trace.len() as u64,
        "every replayed cycle lands in a bin or an out-of-range tally"
    );
    assert_eq!(replay.report.total_cycles, trace.len() as u64);
}

#[test]
fn replay_matches_manual_state_space_loop() {
    let model = PdnModel::paper_default().unwrap();
    let trace = emergency_trace(&model, 5000);
    let replay = replay_current_trace(&model, &trace, true);

    // The documented methodology, by hand: reference current = trace
    // minimum, every voltage through monitor + histogram.
    let mut state = model.discretize();
    state.set_reference_current(trace.iter().cloned().fold(f64::MAX, f64::min));
    let mut monitor = VoltageMonitor::new(model.v_nominal(), model.tolerance());
    let mut hist = VoltageHistogram::for_nominal_1v();
    for &i in &trace {
        let v = state.step(i);
        monitor.observe(v);
        hist.record(v);
    }

    let manual = monitor.report();
    assert_eq!(replay.report.total_cycles, manual.total_cycles);
    assert_eq!(replay.report.emergency_cycles, manual.emergency_cycles);
    assert_eq!(replay.report.under_cycles, manual.under_cycles);
    assert_eq!(replay.report.over_cycles, manual.over_cycles);
    assert_eq!(replay.report.under_events, manual.under_events);
    assert_eq!(replay.report.over_events, manual.over_events);
    assert_eq!(replay.report.min_v.to_bits(), manual.min_v.to_bits());
    assert_eq!(replay.report.max_v.to_bits(), manual.max_v.to_bits());
    assert_eq!(replay.histogram.unwrap().counts(), hist.counts());

    // The stress trace actually exercises the monitor.
    assert!(manual.any(), "trace must trigger at least one emergency");
}

#[test]
fn replay_is_deterministic_and_network_scales_sanely() {
    let model = PdnModel::paper_default().unwrap();
    let trace = emergency_trace(&model, 4000);
    let a = replay_current_trace(&model, &trace, true);
    let b = replay_current_trace(&model, &trace, true);
    assert_eq!(a.report.emergency_cycles, b.report.emergency_cycles);
    assert_eq!(a.histogram.unwrap().counts(), b.histogram.unwrap().counts());

    // A stiffer network (higher impedance) can only widen the excursion.
    let stiff = model.scaled(3.0).unwrap();
    let worse = replay_current_trace(&stiff, &trace, false);
    assert!(worse.report.min_v <= a.report.min_v);
    assert!(worse.report.emergency_cycles >= a.report.emergency_cycles);
}
