//! Differential oracle for the lane path: bitwise identity between
//! [`LaneLoop`] lockstep execution and the scalar [`ControlLoop`], the
//! hard contract `crates/core/src/lane.rs` promises.
//!
//! Random grids of per-lane configurations (controlled/uncontrolled,
//! tight/loose thresholds, sensor delay and noise, mixed programs,
//! uneven budgets) are run at lane widths 1, 4, 8, and 9 — one past the
//! widest regular group, so a ragged tail lane is always exercised —
//! and every lane must agree with its scalar twin on the run report,
//! the architectural digest, and every per-cycle trace sample to the
//! bit. A second property drives the mid-run checkpoint contract:
//! lane → `save_lane` → scalar restore → re-gather must continue
//! bit-for-bit, so `--shards`/`--resume` cannot tell the paths apart.

use voltctl_check::{check, ensure, ensure_eq, usize_in, Config};
use voltctl_core::calibrate::calibrated_pdn;
use voltctl_core::loopsim::LoopSample;
use voltctl_core::prelude::*;
use voltctl_core::sensor::SensorConfig;
use voltctl_core::LaneLoop;
use voltctl_isa::builder::ProgramBuilder;
use voltctl_isa::reg::IntReg;
use voltctl_pdn::PdnModel;
use voltctl_power::{PowerModel, PowerParams};
use voltctl_telemetry::Rng;

/// The tested lane widths: singleton, two regular groups, and a ragged
/// tail one past width 8.
const WIDTHS: [usize; 4] = [1, 4, 8, 9];

/// A steady high-activity spin: the supply dips hard, so tight
/// thresholds intervene and controlled lanes diverge from the group.
fn spin_program() -> voltctl_isa::Program {
    let mut b = ProgramBuilder::new("oracle-spin");
    b.label("top");
    b.addq_imm(IntReg::R1, IntReg::R1, 1);
    b.br("top");
    b.build().unwrap()
}

/// A mixed ALU loop with a different activity profile, so grids hold
/// lanes that can never share a CPU with the spin lanes.
fn mix_program() -> voltctl_isa::Program {
    let mut b = ProgramBuilder::new("oracle-mix");
    b.label("top");
    b.addq_imm(IntReg::R1, IntReg::R1, 3);
    b.mulq_imm(IntReg::R2, IntReg::R1, 5);
    b.xor(IntReg::R3, IntReg::R2, IntReg::R1);
    b.srl_imm(IntReg::R4, IntReg::R3, 2);
    b.br("top");
    b.build().unwrap()
}

/// One lane's randomized configuration, drawn from a seeded [`Rng`] so
/// the whole grid reproduces from a single case seed.
#[derive(Debug, Clone)]
struct LaneConfig {
    mix: bool,
    thresholds: Option<Thresholds>,
    delay: u32,
    noise_mv: f64,
    budget: u64,
}

impl LaneConfig {
    fn draw(rng: &mut Rng) -> LaneConfig {
        // The tight 1 mV window rejects any meaningful sensor noise
        // (the builder calls it Infeasible), so noise only pairs with
        // the loose band or no thresholds at all.
        let (thresholds, tight) = match rng.next_u64() % 3 {
            0 => (None, false),
            1 => (
                Some(Thresholds {
                    v_low: 0.955,
                    v_high: 1.045,
                }),
                false,
            ),
            _ => (
                Some(Thresholds {
                    v_low: 0.9995,
                    v_high: 1.0005,
                }),
                true,
            ),
        };
        LaneConfig {
            mix: rng.next_bool(),
            thresholds,
            delay: (rng.next_u64() % 4) as u32,
            noise_mv: if !tight && rng.next_bool() { 10.0 } else { 0.0 },
            budget: 300 + rng.next_u64() % 900,
        }
    }

    fn build(&self, pdn: &PdnModel, power: &PowerModel) -> ControlLoop {
        let program = if self.mix {
            mix_program()
        } else {
            spin_program()
        };
        let mut b = ControlLoop::builder(program)
            .power(power.clone())
            .pdn(pdn.clone())
            .record_trace(true)
            .sensor(SensorConfig {
                delay_cycles: self.delay,
                noise_mv: self.noise_mv,
                seed: 0xd1d7,
            });
        if let Some(t) = self.thresholds {
            b = b.thresholds(t);
        }
        b.build().unwrap()
    }

    fn restore(&self, pdn: &PdnModel, power: &PowerModel, bytes: &[u8]) -> ControlLoop {
        let program = if self.mix {
            mix_program()
        } else {
            spin_program()
        };
        let mut b = ControlLoop::builder(program)
            .power(power.clone())
            .pdn(pdn.clone())
            .record_trace(true)
            .sensor(SensorConfig {
                delay_cycles: self.delay,
                noise_mv: self.noise_mv,
                seed: 0xd1d7,
            });
        if let Some(t) = self.thresholds {
            b = b.thresholds(t);
        }
        b.restore(bytes).unwrap()
    }
}

fn grid(seed: u64, width: usize) -> Vec<LaneConfig> {
    let mut rng = Rng::new(seed ^ 0xa5a5_5a5a);
    (0..width).map(|_| LaneConfig::draw(&mut rng)).collect()
}

fn sample_bits_equal(a: &LoopSample, b: &LoopSample) -> bool {
    a.current.to_bits() == b.current.to_bits()
        && a.voltage.to_bits() == b.voltage.to_bits()
        && a.reducing == b.reducing
        && a.increasing == b.increasing
}

/// Lane execution agrees bitwise with scalar execution — reports,
/// architectural digests, and every trace sample — for random grids at
/// every tested width.
#[test]
fn lanes_match_scalar_bitwise_over_random_grids() {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 2.0).unwrap();
    let gen = (usize_in(0, WIDTHS.len() - 1), usize_in(0, usize::MAX >> 1));
    check(
        "oracle.lanes.scalar-differential",
        &Config::cases(12, 0x1a7e),
        &gen,
        |(w_idx, seed)| {
            let width = WIDTHS[*w_idx];
            let configs = grid(*seed as u64, width);
            let budgets: Vec<u64> = configs.iter().map(|c| c.budget).collect();

            let mut lanes = LaneLoop::gather(
                configs.iter().map(|c| c.build(&pdn, &power)).collect(),
                &budgets,
            );
            lanes.run();

            for (l, config) in configs.iter().enumerate() {
                let mut scalar = config.build(&pdn, &power);
                scalar.step_n(config.budget);
                let out = lanes.outcome(l).expect("lane exited at its budget");
                ensure_eq!(out.report, scalar.report());
                ensure_eq!(out.arch_digest, scalar.arch_digest());
                let want = scalar.take_trace();
                let got = lanes.take_trace(l);
                ensure_eq!(want.len(), got.len());
                for (k, (a, b)) in want.iter().zip(&got).enumerate() {
                    ensure!(
                        sample_bits_equal(a, b),
                        "lane {l} ({config:?}) cycle {k}: {a:?} vs {b:?}"
                    );
                }
            }
            Ok(())
        },
    );
}

/// The mid-run checkpoint contract: pause a lane run, serialize every
/// lane with `save_lane`, restore each through the scalar snapshot
/// path, re-gather, and finish under lanes. The snapshot bytes must
/// match a scalar run paused at the same cycle, and the completed runs
/// must agree bitwise end to end — including the sensor RNG and the
/// in-flight trace carried across the checkpoint.
#[test]
fn mid_run_save_restore_continues_bitwise() {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 2.0).unwrap();
    let gen = (usize_in(0, WIDTHS.len() - 1), usize_in(0, usize::MAX >> 1));
    check(
        "oracle.lanes.save-restore-continue",
        &Config::cases(8, 0x5a7e),
        &gen,
        |(w_idx, seed)| {
            let width = WIDTHS[*w_idx];
            let configs = grid(*seed as u64, width);
            let splits: Vec<u64> = configs.iter().map(|c| c.budget / 2).collect();
            let rests: Vec<u64> = configs
                .iter()
                .zip(&splits)
                .map(|(c, s)| c.budget - s)
                .collect();

            // First half under lanes, checkpoint, second half under
            // lanes again on the restored loops.
            let mut first = LaneLoop::gather(
                configs.iter().map(|c| c.build(&pdn, &power)).collect(),
                &splits,
            );
            first.run();
            let mut restored = Vec::with_capacity(width);
            for (l, config) in configs.iter().enumerate() {
                let bytes = first.save_lane(l);
                let mut paused = config.build(&pdn, &power);
                paused.step_n(splits[l]);
                ensure_eq!(bytes, paused.save());
                restored.push(config.restore(&pdn, &power, &bytes));
            }
            let mut second = LaneLoop::gather(restored, &rests);
            second.run();

            for (l, config) in configs.iter().enumerate() {
                let mut scalar = config.build(&pdn, &power);
                scalar.step_n(config.budget);
                let out = second.outcome(l).expect("restored lane exited");
                ensure_eq!(out.report, scalar.report());
                ensure_eq!(out.arch_digest, scalar.arch_digest());
                // The full snapshot (CPU, PDN, sensor RNG, controller,
                // trace) agrees after crossing the checkpoint.
                ensure_eq!(second.save_lane(l), scalar.save());
            }
            Ok(())
        },
    );
}
