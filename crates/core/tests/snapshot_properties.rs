//! Property tests for `ControlLoop` checkpoint/restore on the
//! `voltctl-check` harness — the resumability contract behind
//! `run --shards` and `--resume`:
//!
//! * saving at *any* cycle boundary and continuing from the restored
//!   loop is **bitwise** identical to a straight run (reports equal,
//!   final snapshots byte-equal), across sensor delays, noise seeds,
//!   and controlled/uncontrolled modes;
//! * damaged snapshots (any truncation, any byte flip) are rejected
//!   with a descriptive error, never a panic, never partial state;
//! * a snapshot only restores into a matching builder — a different
//!   control-enablement is refused by name.
//!
//! Case counts are small: every case runs the closed loop cycle by
//! cycle.

use voltctl_check::{check, ensure, usize_in, Config};
use voltctl_core::prelude::*;
use voltctl_cpu::CpuConfig;
use voltctl_isa::builder::ProgramBuilder;
use voltctl_isa::reg::IntReg;
use voltctl_isa::Program;
use voltctl_pdn::PdnModel;
use voltctl_power::{PowerModel, PowerParams};

fn spin_program() -> Program {
    let mut b = ProgramBuilder::new("spin");
    b.label("top");
    b.addq_imm(IntReg::R1, IntReg::R1, 1);
    b.br("top");
    b.build().unwrap()
}

fn harness() -> (PowerModel, PdnModel) {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default().unwrap(), &power, 3.0).unwrap();
    (power, pdn)
}

/// A builder with the test harness wired up; `controlled` adds the
/// threshold sensor/controller path (delay + noisy sensor, so the
/// sensor's delay pipeline and RNG state are exercised by the
/// checkpoint).
fn builder(
    power: &PowerModel,
    pdn: &PdnModel,
    controlled: bool,
    delay: usize,
    seed: usize,
) -> voltctl_core::loopsim::ControlLoopBuilder {
    let b = ControlLoop::builder(spin_program())
        .cpu_config(CpuConfig::table1())
        .power(power.clone())
        .pdn(pdn.clone())
        .sensor(SensorConfig {
            delay_cycles: delay as u32,
            noise_mv: 5.0,
            seed: seed as u64,
        });
    if controlled {
        b.thresholds(Thresholds {
            v_low: 0.97,
            v_high: 1.03,
        })
    } else {
        b
    }
}

/// save at any split point s, restore, run the rest ⇒ bitwise the same
/// run: equal reports and byte-equal final snapshots.
#[test]
fn save_restore_continue_is_bitwise_equal_to_straight_run() {
    let (power, pdn) = harness();
    let gen = (
        usize_in(2, 900),  // total cycles
        usize_in(0, 1000), // split point, reduced mod total
        usize_in(0, 7),    // sensor delay (paper sweep 0..=6)
        usize_in(0, 128),  // bit 0: controlled; rest: sensor noise seed
    );
    check(
        "core.snapshot.resume-bitwise",
        &Config::cases(24, 0x10A1),
        &gen,
        |&(total, split, delay, seed_mode)| {
            let total = total as u64;
            let s = (split as u64) % total;
            let controlled = seed_mode & 1 == 1;
            let seed = seed_mode >> 1;

            let mut straight = builder(&power, &pdn, controlled, delay, seed)
                .build()
                .map_err(|e| e.to_string())?;
            straight.step_n(total);

            let mut first = builder(&power, &pdn, controlled, delay, seed)
                .build()
                .map_err(|e| e.to_string())?;
            ensure!(first.step_n(s) == s, "spin never finishes early");
            let checkpoint = first.save();
            let mut resumed = builder(&power, &pdn, controlled, delay, seed)
                .restore(&checkpoint)
                .map_err(|e| format!("restore at cycle {s}: {e}"))?;
            // (Report comparison would be NaN-poisoned at s == 0, where
            // ipc is 0/0; byte-comparing the re-serialized state is the
            // stronger check anyway.)
            ensure!(
                resumed.save() == checkpoint,
                "restore must land exactly on the saved state"
            );
            resumed.step_n(total - s);

            ensure!(
                resumed.report() == straight.report(),
                "split at {s}/{total} (delay {delay}, controlled {controlled}): \
                 resumed report diverged",
            );
            ensure!(
                resumed.save() == straight.save(),
                "split at {s}/{total}: final snapshots differ byte-wise"
            );
            Ok(())
        },
    );
}

/// Any truncation or byte flip of a loop snapshot is refused with a
/// descriptive error; the builder never panics and never yields a loop.
#[test]
fn damaged_loop_snapshots_are_always_rejected() {
    let (power, pdn) = harness();
    let mut sim = builder(&power, &pdn, true, 2, 7).build().unwrap();
    sim.step_n(300);
    let good = sim.save();

    let gen = (
        usize_in(0, 1 << 16), // position, reduced mod length
        usize_in(0, 257),     // 0 = truncate; 1..=255 xor mask; 256 -> mask 0xFF
    );
    check(
        "core.snapshot.damage-rejected",
        &Config::cases(64, 0x10A2),
        &gen,
        |&(pos, op)| {
            let at = pos % good.len();
            let damaged = if op == 0 {
                good[..at].to_vec()
            } else {
                let mut bytes = good.clone();
                bytes[at] ^= (op.min(255)) as u8;
                bytes
            };
            match builder(&power, &pdn, true, 2, 7).restore(&damaged) {
                Err(e) => {
                    ensure!(!e.to_string().is_empty(), "error must describe itself");
                    Ok(())
                }
                Ok(_) => Err(format!(
                    "damage at byte {at} (op {op}) of a {}-byte snapshot restored",
                    good.len()
                )),
            }
        },
    );
}

/// A snapshot carries its control-enablement: restoring a controlled
/// checkpoint into an uncontrolled builder (or vice versa) is refused.
#[test]
fn snapshots_refuse_a_mismatched_builder() {
    let (power, pdn) = harness();

    let mut controlled = builder(&power, &pdn, true, 2, 7).build().unwrap();
    controlled.step_n(200);
    let err = builder(&power, &pdn, false, 2, 7)
        .restore(&controlled.save())
        .unwrap_err();
    assert!(
        !err.to_string().is_empty(),
        "mismatch error must describe itself"
    );

    let mut baseline = builder(&power, &pdn, false, 2, 7).build().unwrap();
    baseline.step_n(200);
    assert!(builder(&power, &pdn, true, 2, 7)
        .restore(&baseline.save())
        .is_err());
}
