//! Differential-oracle suite for the control loop.
//!
//! The controlled-replay engine (`voltctl_core::replay`) is the
//! foundation both of the worst-case threshold solver and of trace-based
//! design-space exploration, so it gets the strongest oracle available:
//! a deliberately naive reimplementation in this file — plain indexed
//! loops, no `VecDeque`, no shared helpers — that must agree **bitwise**
//! with the production path on random demands, delays, and control
//! modes. The remaining properties pin the controller's band discipline,
//! the sensed-threshold guarantee the solver provides, and the sensor's
//! delay/error envelope across the paper's sweep ranges (0–6 cycles,
//! 0–25 mV).

use voltctl_check::{check, ensure, f64_in, i64_in, usize_in, vec_f64, Config};
use voltctl_core::actuator::Leverage;
use voltctl_core::prelude::*;
use voltctl_core::sensor::{SensorConfig, SensorReading, ThresholdSensor};
use voltctl_pdn::{PdnModel, Supply};

const I_MIN: f64 = 5.0;
const I_MAX: f64 = 50.0;

fn leverage() -> Leverage {
    Leverage {
        reduce_floor_amps: 12.0,
        increase_ceiling_amps: 45.0,
        settle_cycles: 2,
    }
}

/// A from-scratch reimplementation of the controlled replay loop: same
/// control law, written as differently as possible (indexed history
/// instead of a delay queue, inline decay). Any divergence from
/// `voltctl_core::replay` is a bug in one of the two.
fn naive_replay(model: &PdnModel, demand: &[f64], config: &ReplayConfig) -> ReplayOutcome {
    let mut supply = model.discretize();
    supply.set_reference_current(config.i_min);
    let v_nom = supply.nominal();
    let delay = config.delay_cycles as usize;
    let decay = |from: f64, to: f64, t: u64, settle: u64| -> f64 {
        if settle == 0 {
            to
        } else {
            to + (from - to) * (-(t as f64) / settle as f64).exp()
        }
    };

    let mut entering: Vec<f64> = Vec::with_capacity(demand.len());
    let mut v = v_nom;
    let (mut min_v, mut max_v) = (v_nom, v_nom);
    let (mut reduce_time, mut increase_time) = (0u64, 0u64);
    let (mut reduce_cycles, mut increase_cycles) = (0u64, 0u64);
    let mut prev_i = config.i_min;

    for (t, &want) in demand.iter().enumerate() {
        entering.push(v);
        let seen = if t >= delay {
            entering[t - delay]
        } else {
            v_nom
        };

        if let Some(th) = config.thresholds {
            if seen < th.v_low {
                reduce_time += 1;
                increase_time = 0;
            } else if seen > th.v_high {
                increase_time += 1;
                reduce_time = 0;
            } else {
                reduce_time = 0;
                increase_time = 0;
            }
        }

        let mut i = match config.slew_limit {
            Some(slew) => prev_i + (want - prev_i).clamp(-slew, slew),
            None => want,
        };
        if reduce_time > 0 {
            reduce_cycles += 1;
            i = i.min(decay(
                config.i_max,
                config.leverage.reduce_floor_amps,
                reduce_time,
                config.leverage.settle_cycles,
            ));
        } else if increase_time > 0 {
            increase_cycles += 1;
            i = i.max(decay(
                config.i_min,
                config.leverage.increase_ceiling_amps,
                increase_time,
                1,
            ));
        }

        prev_i = i;
        v = supply.step_supply(i);
        min_v = min_v.min(v);
        max_v = max_v.max(v);
    }
    ReplayOutcome {
        min_v,
        max_v,
        reduce_cycles,
        increase_cycles,
        cycles: demand.len() as u64,
    }
}

/// The production replay agrees bitwise with the naive reference over
/// random demands, all paper sensor delays, controlled and uncontrolled,
/// with and without slew limiting.
#[test]
fn replay_matches_naive_reimplementation_bitwise() {
    let model = PdnModel::paper_default().unwrap();
    let gen = (
        vec_f64(1, 240, I_MIN, I_MAX), // demand (amps per cycle)
        usize_in(0, 7),                // sensor delay, paper range 0..=6
        i64_in(0, 4),                  // bit 0: thresholds on; bit 1: slew on
    );
    check(
        "oracle.replay.naive-differential",
        &Config::cases(64, 0x0C01),
        &gen,
        |(demand, delay, mode)| {
            let config = ReplayConfig {
                thresholds: (mode & 1 == 1).then_some(Thresholds {
                    v_low: 0.97,
                    v_high: 1.03,
                }),
                leverage: leverage(),
                delay_cycles: *delay as u32,
                slew_limit: (mode & 2 == 2).then_some((I_MAX - I_MIN) / 3.0),
                i_max: I_MAX,
                i_min: I_MIN,
            };
            let mut supply = model.discretize();
            supply.set_reference_current(config.i_min);
            let production = replay(&mut supply, demand.iter().copied(), &config);
            let naive = naive_replay(&model, demand, &config);
            ensure!(
                production == naive,
                "delay {delay} mode {mode}: production {production:?} vs naive {naive:?}"
            );
            Ok(())
        },
    );
}

/// Band discipline: fed through a zero-noise sensor, the controller
/// commands Reduce exactly when the delayed voltage is below the low
/// threshold, Increase exactly when above the high threshold, and
/// nothing otherwise — and its cycle counters tally those commands.
#[test]
fn controller_fires_only_outside_the_band() {
    let gen = (
        f64_in(0.90, 0.99),          // v_low
        f64_in(0.005, 0.08),         // window width -> v_high
        usize_in(0, 7),              // sensor delay
        vec_f64(1, 100, 0.85, 1.15), // true voltage trace
    );
    check(
        "oracle.controller.band-invariant",
        &Config::cases(96, 0x0C02),
        &gen,
        |(v_low, window, delay, trace)| {
            let v_high = v_low + window;
            let mut sensor = ThresholdSensor::new(
                *v_low,
                v_high,
                1.0,
                SensorConfig {
                    delay_cycles: *delay as u32,
                    noise_mv: 0.0,
                    seed: 1,
                },
            );
            let mut controller = ThresholdController::new();
            let (mut lows, mut highs) = (0u64, 0u64);
            for (t, &v) in trace.iter().enumerate() {
                let action = controller.decide(sensor.observe(v));
                // What the sensor is looking at this cycle: the voltage
                // from `delay` cycles ago, nominal during pipeline fill.
                let sensed = if t >= *delay { trace[t - *delay] } else { 1.0 };
                let expected = if sensed < *v_low {
                    lows += 1;
                    ControlAction::ReduceCurrent
                } else if sensed > v_high {
                    highs += 1;
                    ControlAction::IncreaseCurrent
                } else {
                    ControlAction::None
                };
                ensure!(
                    action == expected,
                    "cycle {t}: sensed {sensed} in [{v_low}, {v_high}] -> {action:?}, expected {expected:?}"
                );
            }
            ensure!(
                controller.reduce_cycles() == lows && controller.increase_cycles() == highs,
                "counters drifted: {} Reduce / {} Increase vs {lows}/{highs} band exits",
                controller.reduce_cycles(),
                controller.increase_cycles()
            );
            Ok(())
        },
    );
}

/// The solver's guarantee carries to arbitrary in-envelope demands: with
/// thresholds solved against the worst-case resonant square train, any
/// slew-limited demand inside the machine's current envelope replays
/// within specification — so engaging the controller (gating *and*
/// phantom firing) never creates an emergency a free-running machine
/// would not have had.
#[test]
fn solved_thresholds_hold_for_random_in_envelope_demands() {
    let model = PdnModel::paper_default().unwrap();
    let setup = SolveSetup::new(&model, I_MIN, I_MAX, leverage(), 2);
    let thresholds = solve_thresholds(&setup).expect("paper config must be solvable");
    let v_min_spec = model.v_nominal() * (1.0 - model.tolerance());
    let v_max_spec = model.v_nominal() * (1.0 + model.tolerance());

    let gen = (
        vec_f64(1, 40, I_MIN, I_MAX), // demand levels
        i64_in(1, 40),                // cycles each level is held
    );
    check(
        "oracle.control.solved-thresholds-hold",
        &Config::cases(48, 0x0C03),
        &gen,
        |(levels, hold)| {
            let demand: Vec<f64> = levels
                .iter()
                .flat_map(|&amps| std::iter::repeat_n(amps, *hold as usize))
                .collect();
            let config = ReplayConfig {
                thresholds: Some(thresholds),
                leverage: leverage(),
                delay_cycles: setup.delay_cycles,
                slew_limit: Some(setup.slew_limit),
                i_max: I_MAX,
                i_min: I_MIN,
            };
            let mut supply = model.discretize();
            supply.set_reference_current(I_MIN);
            let out = replay(&mut supply, demand.iter().copied(), &config);
            ensure!(
                out.min_v >= v_min_spec,
                "controlled undershoot {} below spec {v_min_spec}",
                out.min_v
            );
            ensure!(
                out.max_v <= v_max_spec,
                "controlled overshoot {} above spec {v_max_spec}",
                out.max_v
            );
            Ok(())
        },
    );
}

/// The sensor's error envelope: with a noise bound of `e` volts, a Low
/// reading implies the delayed true voltage was within `e` of the low
/// band, High within `e` of the high band, and Normal within `e` of the
/// window — across the paper's full delay (0–6 cycles) and error
/// (0–25 mV) sweep.
#[test]
fn sensor_readings_stay_inside_the_error_envelope() {
    let gen = (
        usize_in(0, 7),              // delay, paper sweep 0..=6
        f64_in(0.0, 25.0),           // noise bound, paper sweep 0..=25 mV
        i64_in(0, 1 << 30),          // sensor noise seed
        vec_f64(1, 120, 0.90, 1.10), // true voltage trace
    );
    let (v_low, v_high) = (0.96, 1.04);
    check(
        "oracle.sensor.error-envelope",
        &Config::cases(96, 0x0C04),
        &gen,
        |(delay, noise_mv, seed, trace)| {
            let mut sensor = ThresholdSensor::new(
                v_low,
                v_high,
                1.0,
                SensorConfig {
                    delay_cycles: *delay as u32,
                    noise_mv: *noise_mv,
                    seed: *seed as u64,
                },
            );
            let e = noise_mv / 1000.0;
            for (t, &v) in trace.iter().enumerate() {
                let reading = sensor.observe(v);
                let sensed = if t >= *delay { trace[t - *delay] } else { 1.0 };
                let ok = match reading {
                    SensorReading::Low => sensed < v_low + e,
                    SensorReading::High => sensed > v_high - e,
                    SensorReading::Normal => sensed >= v_low - e && sensed <= v_high + e,
                };
                ensure!(
                    ok,
                    "cycle {t}: {reading:?} for sensed {sensed} violates the \
                     {noise_mv} mV envelope at delay {delay}"
                );
            }
            Ok(())
        },
    );
}
