//! Architectural register names.
//!
//! The machine has 32 integer registers (`r0`–`r31`) and 32 floating-point
//! registers (`f0`–`f31`). Following the Alpha convention, `r31` and `f31`
//! read as zero and writes to them are discarded. A unified flat index
//! (0–63) is provided for dependence tracking in the simulator.

use std::fmt;

/// An integer register `r0`–`r31`. `R31` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

/// A floating-point register `f0`–`f31`. `F31` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

/// Either register file, as carried by an instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Integer register.
    Int(IntReg),
    /// Floating-point register.
    Fp(FpReg),
}

impl IntReg {
    /// The hardwired zero register.
    pub const R31: IntReg = IntReg(31);
    /// General registers commonly used by the workloads.
    pub const R0: IntReg = IntReg(0);
    #[allow(missing_docs)]
    pub const R1: IntReg = IntReg(1);
    #[allow(missing_docs)]
    pub const R2: IntReg = IntReg(2);
    #[allow(missing_docs)]
    pub const R3: IntReg = IntReg(3);
    #[allow(missing_docs)]
    pub const R4: IntReg = IntReg(4);
    #[allow(missing_docs)]
    pub const R5: IntReg = IntReg(5);
    #[allow(missing_docs)]
    pub const R6: IntReg = IntReg(6);
    #[allow(missing_docs)]
    pub const R7: IntReg = IntReg(7);
    #[allow(missing_docs)]
    pub const R8: IntReg = IntReg(8);

    /// Creates a register by number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    pub fn new(n: u8) -> IntReg {
        assert!(n < 32, "integer register number must be < 32, got {n}");
        IntReg(n)
    }

    /// The register number, 0–31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl FpReg {
    /// The hardwired zero register.
    pub const F31: FpReg = FpReg(31);
    #[allow(missing_docs)]
    pub const F0: FpReg = FpReg(0);
    #[allow(missing_docs)]
    pub const F1: FpReg = FpReg(1);
    #[allow(missing_docs)]
    pub const F2: FpReg = FpReg(2);
    #[allow(missing_docs)]
    pub const F3: FpReg = FpReg(3);
    #[allow(missing_docs)]
    pub const F4: FpReg = FpReg(4);
    #[allow(missing_docs)]
    pub const F5: FpReg = FpReg(5);
    #[allow(missing_docs)]
    pub const F6: FpReg = FpReg(6);

    /// Creates a register by number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    pub fn new(n: u8) -> FpReg {
        assert!(n < 32, "fp register number must be < 32, got {n}");
        FpReg(n)
    }

    /// The register number, 0–31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl Reg {
    /// Flat index across both files: integer registers map to 0–31, FP
    /// registers to 32–63. Used for unified dependence tracking.
    pub fn index(self) -> usize {
        match self {
            Reg::Int(r) => r.number() as usize,
            Reg::Fp(r) => 32 + r.number() as usize,
        }
    }

    /// Builds a register back from its flat index.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 63`.
    pub fn from_index(idx: usize) -> Reg {
        assert!(idx < 64, "flat register index must be < 64, got {idx}");
        if idx < 32 {
            Reg::Int(IntReg(idx as u8))
        } else {
            Reg::Fp(FpReg((idx - 32) as u8))
        }
    }

    /// Whether the register reads as constant zero.
    pub fn is_zero(self) -> bool {
        match self {
            Reg::Int(r) => r.is_zero(),
            Reg::Fp(r) => r.is_zero(),
        }
    }

    /// Whether this is a floating-point register.
    pub fn is_fp(self) -> bool {
        matches!(self, Reg::Fp(_))
    }
}

impl voltctl_snap::Pack for Reg {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(self.index() as u8);
    }
}

impl voltctl_snap::Unpack for Reg {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let idx = r.get_u8()? as usize;
        if idx >= 64 {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "register index {idx} out of range (must be < 64)"
            )));
        }
        Ok(Reg::from_index(idx))
    }
}

impl From<IntReg> for Reg {
    fn from(r: IntReg) -> Reg {
        Reg::Int(r)
    }
}

impl From<FpReg> for Reg {
    fn from(r: FpReg) -> Reg {
        Reg::Fp(r)
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(r) => r.fmt(f),
            Reg::Fp(r) => r.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrip() {
        for idx in 0..64 {
            assert_eq!(Reg::from_index(idx).index(), idx);
        }
    }

    #[test]
    fn zero_registers() {
        assert!(IntReg::R31.is_zero());
        assert!(FpReg::F31.is_zero());
        assert!(!IntReg::R0.is_zero());
        assert!(Reg::Int(IntReg::R31).is_zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntReg::new(7).to_string(), "r7");
        assert_eq!(FpReg::new(31).to_string(), "f31");
        assert_eq!(Reg::Fp(FpReg::F2).to_string(), "f2");
    }

    #[test]
    #[should_panic(expected = "must be < 32")]
    fn out_of_range_rejected() {
        let _ = IntReg::new(32);
    }

    #[test]
    fn fp_classification() {
        assert!(Reg::Fp(FpReg::F0).is_fp());
        assert!(!Reg::Int(IntReg::R0).is_fp());
    }
}
