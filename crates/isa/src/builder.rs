//! Ergonomic program construction with labels.
//!
//! [`ProgramBuilder`] appends instructions in order, resolves symbolic
//! branch labels at [`build`](ProgramBuilder::build) time, and collects
//! initial-data segments. Workload generators in `voltctl-workloads` are
//! written against this interface.

use crate::inst::Inst;
use crate::opcode::Opcode;
use crate::program::{DataSegment, Program};
use crate::reg::{FpReg, IntReg};
use std::collections::HashMap;
use std::fmt;

/// Errors reported by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never defined.
    UnresolvedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// No instructions were added.
    EmptyProgram,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnresolvedLabel(l) => write!(f, "unresolved label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Program`].
///
/// # Example
///
/// ```
/// use voltctl_isa::builder::ProgramBuilder;
/// use voltctl_isa::reg::IntReg;
///
/// let mut b = ProgramBuilder::new("count");
/// b.lda(IntReg::R1, IntReg::R31, 10);
/// b.label("top");
/// b.subq_imm(IntReg::R1, IntReg::R1, 1);
/// b.bne(IntReg::R1, "top");
/// b.halt();
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
    data: Vec<DataSegment>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Starts an empty program named `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            duplicate: None,
        }
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if self
            .labels
            .insert(label.clone(), self.insts.len() as u32)
            .is_some()
        {
            self.duplicate.get_or_insert(label);
        }
        self
    }

    /// Appends a raw instruction.
    pub fn raw(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    // --- integer ALU -----------------------------------------------------

    /// `rd = ra + imm` (load address / constant).
    pub fn lda(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Lda, rd, ra, imm))
    }

    /// `rd = ra + rb`.
    pub fn addq(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Addq, rd, ra, rb))
    }

    /// `rd = ra + imm`.
    pub fn addq_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Addq, rd, ra, imm))
    }

    /// `rd = ra - rb`.
    pub fn subq(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Subq, rd, ra, rb))
    }

    /// `rd = ra - imm`.
    pub fn subq_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Subq, rd, ra, imm))
    }

    /// `rd = ra & rb`.
    pub fn and(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::And, rd, ra, rb))
    }

    /// `rd = ra & imm`.
    pub fn and_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::And, rd, ra, imm))
    }

    /// `rd = ra | rb`.
    pub fn or(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Or, rd, ra, rb))
    }

    /// `rd = ra ^ rb`.
    pub fn xor(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Xor, rd, ra, rb))
    }

    /// `rd = ra ^ imm`.
    pub fn xor_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Xor, rd, ra, imm))
    }

    /// `rd = ra << imm`.
    pub fn sll_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Sll, rd, ra, imm))
    }

    /// `rd = ra >> imm` (logical).
    pub fn srl_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Srl, rd, ra, imm))
    }

    /// `rd = (ra == rb) ? 1 : 0`.
    pub fn cmpeq(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Cmpeq, rd, ra, rb))
    }

    /// `rd = (ra < rb) ? 1 : 0` (signed).
    pub fn cmplt(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Cmplt, rd, ra, rb))
    }

    /// `rd = (ra < imm) ? 1 : 0` (signed).
    pub fn cmplt_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Cmplt, rd, ra, imm))
    }

    /// `rd = (ra != 0) ? rb : rd`.
    pub fn cmovne(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::cmov(Opcode::Cmovne, rd, ra, rb))
    }

    /// `rd = (ra == 0) ? rb : rd`.
    pub fn cmoveq(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::cmov(Opcode::Cmoveq, rd, ra, rb))
    }

    /// `rd = ra * rb`.
    pub fn mulq(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Mulq, rd, ra, rb))
    }

    /// `rd = ra * imm`.
    pub fn mulq_imm(&mut self, rd: IntReg, ra: IntReg, imm: i64) -> &mut Self {
        self.raw(Inst::alu_imm(Opcode::Mulq, rd, ra, imm))
    }

    /// `rd = ra / rb` (signed, total).
    pub fn divq(&mut self, rd: IntReg, ra: IntReg, rb: IntReg) -> &mut Self {
        self.raw(Inst::alu(Opcode::Divq, rd, ra, rb))
    }

    // --- floating point --------------------------------------------------

    /// `fd = fa + fb`.
    pub fn addt(&mut self, fd: FpReg, fa: FpReg, fb: FpReg) -> &mut Self {
        self.raw(Inst::fp(Opcode::Addt, fd, fa, fb))
    }

    /// `fd = fa - fb`.
    pub fn subt(&mut self, fd: FpReg, fa: FpReg, fb: FpReg) -> &mut Self {
        self.raw(Inst::fp(Opcode::Subt, fd, fa, fb))
    }

    /// `fd = fa * fb`.
    pub fn mult(&mut self, fd: FpReg, fa: FpReg, fb: FpReg) -> &mut Self {
        self.raw(Inst::fp(Opcode::Mult, fd, fa, fb))
    }

    /// `fd = fa / fb`.
    pub fn divt(&mut self, fd: FpReg, fa: FpReg, fb: FpReg) -> &mut Self {
        self.raw(Inst::fp(Opcode::Divt, fd, fa, fb))
    }

    /// `fd = sqrt(fa)`.
    pub fn sqrtt(&mut self, fd: FpReg, fa: FpReg) -> &mut Self {
        self.raw(Inst::fp(Opcode::Sqrtt, fd, fa, FpReg::F31))
    }

    /// `fd = fa` (FP move).
    pub fn cpys(&mut self, fd: FpReg, fa: FpReg) -> &mut Self {
        self.raw(Inst::fp(Opcode::Cpys, fd, fa, FpReg::F31))
    }

    // --- memory ------------------------------------------------------------

    /// `rd = mem64[ra + disp]`.
    pub fn ldq(&mut self, rd: IntReg, disp: i64, base: IntReg) -> &mut Self {
        self.raw(Inst::load(Opcode::Ldq, rd, base, disp))
    }

    /// `mem64[base + disp] = data`.
    pub fn stq(&mut self, data: IntReg, disp: i64, base: IntReg) -> &mut Self {
        self.raw(Inst::store(Opcode::Stq, data, base, disp))
    }

    /// `rd = mem32[ra + disp]` (zero-extended).
    pub fn ldl(&mut self, rd: IntReg, disp: i64, base: IntReg) -> &mut Self {
        self.raw(Inst::load(Opcode::Ldl, rd, base, disp))
    }

    /// `mem32[base + disp] = data`.
    pub fn stl(&mut self, data: IntReg, disp: i64, base: IntReg) -> &mut Self {
        self.raw(Inst::store(Opcode::Stl, data, base, disp))
    }

    /// `fd = mem_f64[base + disp]`.
    pub fn ldt(&mut self, fd: FpReg, disp: i64, base: IntReg) -> &mut Self {
        self.raw(Inst::load_fp(fd, base, disp))
    }

    /// `mem_f64[base + disp] = fdata`.
    pub fn stt(&mut self, fdata: FpReg, disp: i64, base: IntReg) -> &mut Self {
        self.raw(Inst::store_fp(fdata, base, disp))
    }

    // --- control -----------------------------------------------------------

    fn branch_to(&mut self, op: Opcode, ra: Option<IntReg>, label: &str) -> &mut Self {
        let idx = self.insts.len();
        let inst = match ra {
            Some(ra) => Inst::branch(op, ra, u32::MAX),
            None => Inst::br(u32::MAX),
        };
        self.insts.push(inst);
        self.fixups.push((idx, label.to_string()));
        self
    }

    /// Branch to `label` if `ra == 0`.
    pub fn beq(&mut self, ra: IntReg, label: &str) -> &mut Self {
        self.branch_to(Opcode::Beq, Some(ra), label)
    }

    /// Branch to `label` if `ra != 0`.
    pub fn bne(&mut self, ra: IntReg, label: &str) -> &mut Self {
        self.branch_to(Opcode::Bne, Some(ra), label)
    }

    /// Branch to `label` if `ra < 0` (signed).
    pub fn blt(&mut self, ra: IntReg, label: &str) -> &mut Self {
        self.branch_to(Opcode::Blt, Some(ra), label)
    }

    /// Branch to `label` if `ra >= 0` (signed).
    pub fn bge(&mut self, ra: IntReg, label: &str) -> &mut Self {
        self.branch_to(Opcode::Bge, Some(ra), label)
    }

    /// Unconditional branch to `label`.
    pub fn br(&mut self, label: &str) -> &mut Self {
        self.branch_to(Opcode::Br, None, label)
    }

    /// Jump to subroutine at `label`, linking through `link`.
    pub fn jsr(&mut self, link: IntReg, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.insts.push(Inst::jsr(link, u32::MAX));
        self.fixups.push((idx, label.to_string()));
        self
    }

    /// Return through `link`.
    pub fn ret(&mut self, link: IntReg) -> &mut Self {
        self.raw(Inst::ret(link))
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Inst::nop())
    }

    /// Program terminator.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Inst::halt())
    }

    // --- data --------------------------------------------------------------

    /// Adds a raw byte segment at `addr`.
    pub fn data_bytes(&mut self, addr: u64, bytes: Vec<u8>) -> &mut Self {
        self.data.push(DataSegment { addr, bytes });
        self
    }

    /// Adds consecutive little-endian `u64` words at `addr`.
    pub fn data_u64(&mut self, addr: u64, words: &[u64]) -> &mut Self {
        let bytes = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data_bytes(addr, bytes)
    }

    /// Adds consecutive IEEE doubles at `addr`.
    pub fn data_f64(&mut self, addr: u64, vals: &[f64]) -> &mut Self {
        let bytes = vals
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        self.data_bytes(addr, bytes)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// [`BuildError::EmptyProgram`] with no instructions,
    /// [`BuildError::DuplicateLabel`] if any label was defined twice, and
    /// [`BuildError::UnresolvedLabel`] for branches to undefined labels.
    pub fn build(&mut self) -> Result<Program, BuildError> {
        if self.insts.is_empty() {
            return Err(BuildError::EmptyProgram);
        }
        if let Some(dup) = &self.duplicate {
            return Err(BuildError::DuplicateLabel(dup.clone()));
        }
        for (idx, label) in &self.fixups {
            let target = self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UnresolvedLabel(label.clone()))?;
            self.insts[*idx].target = Some(*target);
        }
        Ok(Program::new(
            self.name.clone(),
            self.insts.clone(),
            self.data.clone(),
            0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new("t");
        b.label("top");
        b.addq_imm(IntReg::R1, IntReg::R1, 1);
        b.beq(IntReg::R1, "end"); // forward
        b.bne(IntReg::R1, "top"); // backward
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.insts()[1].target, Some(3));
        assert_eq!(p.insts()[2].target, Some(0));
    }

    #[test]
    fn unresolved_label_is_error() {
        let mut b = ProgramBuilder::new("t");
        b.br("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnresolvedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut b = ProgramBuilder::new("t");
        b.label("x");
        b.nop();
        b.label("x");
        b.halt();
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn empty_program_is_error() {
        assert_eq!(
            ProgramBuilder::new("t").build().unwrap_err(),
            BuildError::EmptyProgram
        );
    }

    #[test]
    fn data_helpers_encode_little_endian() {
        let mut b = ProgramBuilder::new("t");
        b.nop();
        b.data_u64(0x100, &[0x0102030405060708]);
        b.data_f64(0x200, &[1.0]);
        let p = b.build().unwrap();
        assert_eq!(p.data()[0].bytes[0], 0x08);
        assert_eq!(p.data()[1].bytes, 1.0f64.to_bits().to_le_bytes().to_vec());
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = BuildError::UnresolvedLabel("loop".into());
        assert!(e.to_string().contains("loop"));
    }

    #[test]
    fn builder_len_tracks_instructions() {
        let mut b = ProgramBuilder::new("t");
        assert!(b.is_empty());
        b.nop().nop();
        assert_eq!(b.len(), 2);
    }
}
