//! The instruction record.
//!
//! [`Inst`] is a decoded, word-sized instruction: an opcode, up to three
//! source registers, an optional destination, a signed immediate
//! (displacement for memory operations, literal operand for immediate ALU
//! forms), and a branch target expressed as an instruction index.
//!
//! Operand roles by opcode family:
//!
//! | family | `rd` | `ra` | `rb` | `rc` | `imm` |
//! |---|---|---|---|---|---|
//! | ALU (reg form) | dest | src1 | src2 | — | — |
//! | ALU (imm form) | dest | src1 | — | — | literal |
//! | `cmov*` | dest | condition | value | old dest | — |
//! | load | dest | base | — | — | displacement |
//! | store | — | base | data | — | displacement |
//! | branch | — | condition | — | — | — (`target`) |

use crate::opcode::{OpClass, Opcode};
use crate::reg::{FpReg, IntReg, Reg};
use std::fmt;

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub rd: Option<Reg>,
    /// First source (condition for cmov/branches, base for memory ops).
    pub ra: Option<Reg>,
    /// Second source (data register for stores, value for cmov).
    pub rb: Option<Reg>,
    /// Third source (old destination for cmov).
    pub rc: Option<Reg>,
    /// Immediate: displacement for memory ops, literal for imm-ALU forms.
    pub imm: i64,
    /// Branch target as an instruction index.
    pub target: Option<u32>,
}

impl voltctl_snap::Pack for Inst {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        self.op.pack(w);
        self.rd.pack(w);
        self.ra.pack(w);
        self.rb.pack(w);
        self.rc.pack(w);
        w.put_i64(self.imm);
        self.target.pack(w);
    }
}

impl voltctl_snap::Unpack for Inst {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(Inst {
            op: Opcode::unpack(r)?,
            rd: Option::unpack(r)?,
            ra: Option::unpack(r)?,
            rb: Option::unpack(r)?,
            rc: Option::unpack(r)?,
            imm: r.get_i64()?,
            target: Option::unpack(r)?,
        })
    }
}

impl Inst {
    fn base(op: Opcode) -> Inst {
        Inst {
            op,
            rd: None,
            ra: None,
            rb: None,
            rc: None,
            imm: 0,
            target: None,
        }
    }

    /// Register-form integer ALU or multiply/divide op: `rd = ra <op> rb`.
    pub fn alu(op: Opcode, rd: IntReg, ra: IntReg, rb: IntReg) -> Inst {
        debug_assert!(matches!(op.class(), OpClass::IntAlu | OpClass::IntMult));
        Inst {
            rd: Some(rd.into()),
            ra: Some(ra.into()),
            rb: Some(rb.into()),
            ..Inst::base(op)
        }
    }

    /// Immediate-form integer op: `rd = ra <op> imm`.
    pub fn alu_imm(op: Opcode, rd: IntReg, ra: IntReg, imm: i64) -> Inst {
        debug_assert!(matches!(op.class(), OpClass::IntAlu | OpClass::IntMult));
        Inst {
            rd: Some(rd.into()),
            ra: Some(ra.into()),
            imm,
            ..Inst::base(op)
        }
    }

    /// Conditional move: `rd = cond(ra) ? rb : rd_old`.
    pub fn cmov(op: Opcode, rd: IntReg, ra: IntReg, rb: IntReg) -> Inst {
        debug_assert!(matches!(op, Opcode::Cmovne | Opcode::Cmoveq));
        Inst {
            rd: Some(rd.into()),
            ra: Some(ra.into()),
            rb: Some(rb.into()),
            rc: Some(rd.into()),
            ..Inst::base(op)
        }
    }

    /// Floating-point arithmetic: `fd = fa <op> fb`.
    pub fn fp(op: Opcode, fd: FpReg, fa: FpReg, fb: FpReg) -> Inst {
        debug_assert!(matches!(
            op.class(),
            OpClass::FpAdd | OpClass::FpMult | OpClass::FpDiv
        ));
        Inst {
            rd: Some(fd.into()),
            ra: Some(fa.into()),
            rb: Some(fb.into()),
            ..Inst::base(op)
        }
    }

    /// Integer load: `rd = mem[ra + disp]`.
    pub fn load(op: Opcode, rd: IntReg, base: IntReg, disp: i64) -> Inst {
        debug_assert!(matches!(op, Opcode::Ldq | Opcode::Ldl));
        Inst {
            rd: Some(rd.into()),
            ra: Some(base.into()),
            imm: disp,
            ..Inst::base(op)
        }
    }

    /// FP load: `fd = mem[ra + disp]`.
    pub fn load_fp(rd: FpReg, base: IntReg, disp: i64) -> Inst {
        Inst {
            rd: Some(rd.into()),
            ra: Some(base.into()),
            imm: disp,
            ..Inst::base(Opcode::Ldt)
        }
    }

    /// Integer store: `mem[ra + disp] = rb`.
    pub fn store(op: Opcode, data: IntReg, base: IntReg, disp: i64) -> Inst {
        debug_assert!(matches!(op, Opcode::Stq | Opcode::Stl));
        Inst {
            ra: Some(base.into()),
            rb: Some(data.into()),
            imm: disp,
            ..Inst::base(op)
        }
    }

    /// FP store: `mem[ra + disp] = fb`.
    pub fn store_fp(data: FpReg, base: IntReg, disp: i64) -> Inst {
        Inst {
            ra: Some(base.into()),
            rb: Some(data.into()),
            imm: disp,
            ..Inst::base(Opcode::Stt)
        }
    }

    /// Conditional branch on `ra`, to instruction index `target`.
    pub fn branch(op: Opcode, ra: IntReg, target: u32) -> Inst {
        debug_assert!(op.is_conditional_branch());
        Inst {
            ra: Some(ra.into()),
            target: Some(target),
            ..Inst::base(op)
        }
    }

    /// Unconditional branch to instruction index `target`.
    pub fn br(target: u32) -> Inst {
        Inst {
            target: Some(target),
            ..Inst::base(Opcode::Br)
        }
    }

    /// Jump to subroutine at `target`, writing the return address into
    /// `link`.
    pub fn jsr(link: IntReg, target: u32) -> Inst {
        Inst {
            rd: Some(link.into()),
            target: Some(target),
            ..Inst::base(Opcode::Jsr)
        }
    }

    /// Return through the address held in `link` (dynamic target).
    pub fn ret(link: IntReg) -> Inst {
        Inst {
            ra: Some(link.into()),
            ..Inst::base(Opcode::Ret)
        }
    }

    /// No-operation.
    pub fn nop() -> Inst {
        Inst::base(Opcode::Nop)
    }

    /// Program terminator.
    pub fn halt() -> Inst {
        Inst::base(Opcode::Halt)
    }

    /// The destination register, with writes to hardwired-zero registers
    /// filtered out (they architecturally do nothing).
    pub fn effective_dest(&self) -> Option<Reg> {
        self.rd.filter(|r| !r.is_zero())
    }

    /// Source registers, with hardwired-zero registers filtered out (they
    /// are always ready and carry no dependence).
    pub fn effective_sources(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.ra, self.rb, self.rc]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        self.op.class() == OpClass::Load
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        self.op.class() == OpClass::Store
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use OpClass::*;
        match self.op.class() {
            Load => write!(
                f,
                "{} {}, {}({})",
                self.op,
                self.rd.expect("load has dest"),
                self.imm,
                self.ra.expect("load has base")
            ),
            Store => write!(
                f,
                "{} {}, {}({})",
                self.op,
                self.rb.expect("store has data"),
                self.imm,
                self.ra.expect("store has base")
            ),
            Branch => match self.op {
                Opcode::Jsr => match (self.rd, self.target) {
                    (Some(rd), Some(t)) => write!(f, "{} {}, @{t}", self.op, rd),
                    _ => write!(f, "{} <unresolved>", self.op),
                },
                Opcode::Ret => write!(
                    f,
                    "{} {}",
                    self.op,
                    self.ra.expect("ret has a link register")
                ),
                _ => match (self.ra, self.target) {
                    (Some(ra), Some(t)) => write!(f, "{} {}, @{t}", self.op, ra),
                    (None, Some(t)) => write!(f, "{} @{t}", self.op),
                    _ => write!(f, "{} <unresolved>", self.op),
                },
            },
            Nop => write!(f, "{}", self.op),
            _ => {
                // ALU / FP forms.
                let rd = self.rd.expect("alu has dest");
                let ra = self.ra.expect("alu has src1");
                match self.rb {
                    Some(rb) => write!(f, "{} {}, {}, {}", self.op, rd, ra, rb),
                    None => write!(f, "{} {}, {}, #{}", self.op, rd, ra, self.imm),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FpReg, IntReg};

    #[test]
    fn effective_dest_filters_zero_reg() {
        let i = Inst::alu(Opcode::Addq, IntReg::R31, IntReg::R1, IntReg::R2);
        assert_eq!(i.effective_dest(), None);
        let j = Inst::alu(Opcode::Addq, IntReg::R1, IntReg::R2, IntReg::R3);
        assert_eq!(j.effective_dest(), Some(IntReg::R1.into()));
    }

    #[test]
    fn effective_sources_filter_zero_reg() {
        let i = Inst::alu(Opcode::Addq, IntReg::R1, IntReg::R31, IntReg::R2);
        let sources: Vec<_> = i.effective_sources().collect();
        assert_eq!(sources, vec![Reg::Int(IntReg::R2)]);
    }

    #[test]
    fn cmov_reads_old_dest() {
        let i = Inst::cmov(Opcode::Cmovne, IntReg::R3, IntReg::R31, IntReg::R7);
        let sources: Vec<_> = i.effective_sources().collect();
        // r31 filtered; reads r7 (value) and r3 (old dest).
        assert_eq!(sources, vec![Reg::Int(IntReg::R7), Reg::Int(IntReg::R3)]);
    }

    #[test]
    fn store_has_no_dest() {
        let i = Inst::store(Opcode::Stq, IntReg::R3, IntReg::R4, 8);
        assert_eq!(i.effective_dest(), None);
        assert!(i.is_store());
        assert!(!i.is_load());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Inst::alu(Opcode::Addq, IntReg::R1, IntReg::R2, IntReg::R3).to_string(),
            "addq r1, r2, r3"
        );
        assert_eq!(
            Inst::alu_imm(Opcode::Subq, IntReg::R1, IntReg::R1, 4).to_string(),
            "subq r1, r1, #4"
        );
        assert_eq!(
            Inst::load_fp(FpReg::F1, IntReg::R4, 0).to_string(),
            "ldt f1, 0(r4)"
        );
        assert_eq!(
            Inst::store_fp(FpReg::F3, IntReg::R4, 8).to_string(),
            "stt f3, 8(r4)"
        );
        assert_eq!(
            Inst::branch(Opcode::Bne, IntReg::R1, 5).to_string(),
            "bne r1, @5"
        );
        assert_eq!(Inst::br(0).to_string(), "br @0");
        assert_eq!(Inst::nop().to_string(), "nop");
    }

    #[test]
    fn branch_carries_target() {
        let i = Inst::branch(Opcode::Beq, IntReg::R2, 42);
        assert_eq!(i.target, Some(42));
        assert!(i.op.is_conditional_branch());
    }
}
