//! Executable programs: instruction memory plus an initial data image.
//!
//! Program counters are *instruction indices* (the fetch unit synthesizes
//! byte addresses as `index * 4` where byte addresses are needed, e.g. for
//! BTB indexing). The data image is a list of `(address, bytes)` segments
//! loaded into simulated memory before execution.

use crate::inst::Inst;
use std::fmt;

/// An immutable, executable program.
///
/// Built with [`crate::builder::ProgramBuilder`] or assembled from text by
/// [`crate::asm::assemble`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    data: Vec<DataSegment>,
    entry: u32,
}

/// An initial-memory segment.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Base byte address.
    pub addr: u64,
    /// Raw bytes (little-endian for multi-byte values).
    pub bytes: Vec<u8>,
}

impl Program {
    /// Creates a program from parts. Prefer the builder.
    ///
    /// # Panics
    ///
    /// Panics when `insts` is empty or `entry` is out of range.
    pub fn new(
        name: impl Into<String>,
        insts: Vec<Inst>,
        data: Vec<DataSegment>,
        entry: u32,
    ) -> Program {
        assert!(!insts.is_empty(), "program must contain instructions");
        assert!(
            (entry as usize) < insts.len(),
            "entry point {entry} out of range"
        );
        Program {
            name: name.into(),
            insts,
            data,
            entry,
        }
    }

    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Always false: construction rejects empty programs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The instruction at index `pc`, or `None` past the end.
    pub fn fetch(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// All instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Initial-memory segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// The entry-point instruction index.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Synthetic byte address of an instruction (for BTB/i-cache indexing).
    pub fn inst_addr(pc: u32) -> u64 {
        0x1_0000 + (pc as u64) * 4
    }

    /// A stable FNV-1a fingerprint of the whole program — name, entry
    /// point, disassembly, and initial data image. Checkpoints embed it
    /// so a snapshot can refuse to restore onto a different program.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.entry.to_le_bytes());
        eat(&(self.insts.len() as u64).to_le_bytes());
        for inst in &self.insts {
            // The disassembly covers every semantic field (opcode,
            // registers, immediate, branch target).
            eat(inst.to_string().as_bytes());
        }
        for seg in &self.data {
            eat(&seg.addr.to_le_bytes());
            eat(&(seg.bytes.len() as u64).to_le_bytes());
            eat(&seg.bytes);
        }
        hash
    }
}

impl fmt::Display for Program {
    /// Renders a disassembly listing with instruction indices.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program: {} ({} insts)", self.name, self.insts.len())?;
        for (idx, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{idx:4}:  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::opcode::Opcode;
    use crate::reg::IntReg;

    fn demo() -> Program {
        Program::new(
            "demo",
            vec![
                Inst::alu_imm(Opcode::Addq, IntReg::R1, IntReg::R31, 1),
                Inst::halt(),
            ],
            vec![DataSegment {
                addr: 0x1000,
                bytes: vec![1, 2, 3],
            }],
            0,
        )
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = demo();
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_some());
        assert!(p.fetch(2).is_none());
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must contain instructions")]
    fn empty_program_rejected() {
        let _ = Program::new("empty", vec![], vec![], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_entry_rejected() {
        let _ = Program::new("bad", vec![Inst::nop()], vec![], 5);
    }

    #[test]
    fn display_lists_instructions() {
        let text = demo().to_string();
        assert!(text.contains("; program: demo"));
        assert!(text.contains("addq r1, r31, #1"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn inst_addresses_are_word_spaced() {
        assert_eq!(Program::inst_addr(0) + 4, Program::inst_addr(1));
        assert_ne!(Program::inst_addr(0), 0); // text doesn't start at null
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let p = demo();
        assert_eq!(p.digest(), demo().digest(), "same program, same digest");
        let other = Program::new(
            "demo",
            vec![
                Inst::alu_imm(Opcode::Addq, IntReg::R1, IntReg::R31, 2),
                Inst::halt(),
            ],
            p.data().to_vec(),
            0,
        );
        assert_ne!(p.digest(), other.digest(), "one immediate flips the digest");
    }

    #[test]
    fn data_segments_preserved() {
        let p = demo();
        assert_eq!(p.data().len(), 1);
        assert_eq!(p.data()[0].addr, 0x1000);
        assert_eq!(p.data()[0].bytes, vec![1, 2, 3]);
    }
}
