//! Pure functional semantics.
//!
//! All architectural state is `u64`; floating-point registers hold IEEE-754
//! double bit patterns. Every operation is total and deterministic: integer
//! arithmetic wraps, integer division by zero yields zero, NaN-to-integer
//! conversion yields zero. No traps or exceptions are modeled — the paper's
//! controller never relies on them, and totality keeps the simulator's
//! state machine simple.

use crate::opcode::Opcode;

/// Evaluates a register- or immediate-form computational op.
/// `a` is the `ra` value; `b` is the `rb` value or the sign-extended
/// immediate. FP operands/results are double bit patterns.
///
/// # Panics
///
/// Panics (debug builds) when called with a non-computational opcode;
/// in release builds non-computational opcodes return zero.
pub fn eval_alu(op: Opcode, a: u64, b: u64) -> u64 {
    use Opcode::*;
    match op {
        Lda => a.wrapping_add(b),
        Addq => a.wrapping_add(b),
        Subq => a.wrapping_sub(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Sll => a.wrapping_shl((b & 63) as u32),
        Srl => a.wrapping_shr((b & 63) as u32),
        Cmpeq => u64::from(a == b),
        Cmplt => u64::from((a as i64) < (b as i64)),
        Mulq => a.wrapping_mul(b),
        Divq => {
            let d = b as i64;
            if d == 0 {
                0
            } else {
                ((a as i64).wrapping_div(d)) as u64
            }
        }
        Addt => f64::to_bits(f64::from_bits(a) + f64::from_bits(b)),
        Subt => f64::to_bits(f64::from_bits(a) - f64::from_bits(b)),
        Mult => f64::to_bits(f64::from_bits(a) * f64::from_bits(b)),
        Divt => {
            let q = f64::from_bits(a) / f64::from_bits(b);
            f64::to_bits(q)
        }
        Sqrtt => f64::to_bits(f64::from_bits(a).sqrt()),
        Cpys => a,
        Cvtqt => f64::to_bits(a as i64 as f64),
        Cvttq => {
            let x = f64::from_bits(a);
            if x.is_nan() {
                0
            } else {
                (x as i64) as u64
            }
        }
        other => {
            debug_assert!(false, "eval_alu called with {other:?}");
            0
        }
    }
}

/// Evaluates a conditional move: returns the new destination value given
/// the condition register value `cond`, the move source `val`, and the old
/// destination `old`.
///
/// # Panics
///
/// Panics (debug builds) for non-cmov opcodes.
pub fn eval_cmov(op: Opcode, cond: u64, val: u64, old: u64) -> u64 {
    match op {
        Opcode::Cmovne => {
            if cond != 0 {
                val
            } else {
                old
            }
        }
        Opcode::Cmoveq => {
            if cond == 0 {
                val
            } else {
                old
            }
        }
        other => {
            debug_assert!(false, "eval_cmov called with {other:?}");
            old
        }
    }
}

/// Whether a branch is taken given the condition register value.
/// Unconditional `Br` is always taken.
///
/// # Panics
///
/// Panics (debug builds) for non-branch opcodes.
pub fn branch_taken(op: Opcode, a: u64) -> bool {
    use Opcode::*;
    match op {
        Beq => a == 0,
        Bne => a != 0,
        Blt => (a as i64) < 0,
        Bge => (a as i64) >= 0,
        Br | Jsr | Ret => true,
        other => {
            debug_assert!(false, "branch_taken called with {other:?}");
            false
        }
    }
}

/// Computes a memory effective address `base + disp` with wrapping.
pub fn effective_address(base: u64, disp: i64) -> u64 {
    base.wrapping_add(disp as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode::*;

    #[test]
    fn integer_arithmetic() {
        assert_eq!(eval_alu(Addq, 3, 4), 7);
        assert_eq!(eval_alu(Subq, 3, 4), u64::MAX); // wraps
        assert_eq!(eval_alu(Mulq, 6, 7), 42);
        assert_eq!(eval_alu(And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_alu(Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_alu(Xor, 0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn shifts_mask_the_amount() {
        assert_eq!(eval_alu(Sll, 1, 4), 16);
        assert_eq!(eval_alu(Sll, 1, 64), 1); // 64 & 63 == 0
        assert_eq!(eval_alu(Srl, 16, 4), 1);
    }

    #[test]
    fn compares_are_zero_one() {
        assert_eq!(eval_alu(Cmpeq, 5, 5), 1);
        assert_eq!(eval_alu(Cmpeq, 5, 6), 0);
        assert_eq!(eval_alu(Cmplt, (-1i64) as u64, 0), 1); // signed
        assert_eq!(eval_alu(Cmplt, 1, 0), 0);
    }

    #[test]
    fn divide_by_zero_is_total() {
        assert_eq!(eval_alu(Divq, 42, 0), 0);
        assert_eq!(eval_alu(Divq, 42, 7), 6);
        assert_eq!(eval_alu(Divq, (-42i64) as u64, 7), (-6i64) as u64);
    }

    #[test]
    fn fp_arithmetic_roundtrips_bits() {
        let a = f64::to_bits(1.5);
        let b = f64::to_bits(2.0);
        assert_eq!(f64::from_bits(eval_alu(Addt, a, b)), 3.5);
        assert_eq!(f64::from_bits(eval_alu(Mult, a, b)), 3.0);
        assert_eq!(f64::from_bits(eval_alu(Divt, a, b)), 0.75);
        assert_eq!(f64::from_bits(eval_alu(Sqrtt, f64::to_bits(9.0), 0)), 3.0);
    }

    #[test]
    fn fp_divide_by_zero_is_inf() {
        let inf = eval_alu(Divt, f64::to_bits(1.0), f64::to_bits(0.0));
        assert!(f64::from_bits(inf).is_infinite());
    }

    #[test]
    fn conversions() {
        assert_eq!(f64::from_bits(eval_alu(Cvtqt, (-3i64) as u64, 0)), -3.0);
        assert_eq!(eval_alu(Cvttq, f64::to_bits(3.9), 0), 3);
        assert_eq!(eval_alu(Cvttq, f64::to_bits(f64::NAN), 0), 0);
    }

    #[test]
    fn cmov_semantics() {
        assert_eq!(eval_cmov(Cmovne, 1, 10, 20), 10);
        assert_eq!(eval_cmov(Cmovne, 0, 10, 20), 20);
        assert_eq!(eval_cmov(Cmoveq, 0, 10, 20), 10);
        assert_eq!(eval_cmov(Cmoveq, 1, 10, 20), 20);
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(Beq, 0));
        assert!(!branch_taken(Beq, 1));
        assert!(branch_taken(Bne, 7));
        assert!(branch_taken(Blt, (-5i64) as u64));
        assert!(!branch_taken(Blt, 5));
        assert!(branch_taken(Bge, 0));
        assert!(branch_taken(Br, 12345));
    }

    #[test]
    fn effective_address_wraps() {
        assert_eq!(effective_address(100, 8), 108);
        assert_eq!(effective_address(8, -16), (-8i64) as u64);
    }
}
