//! A small text assembler and disassembler.
//!
//! The syntax mirrors the paper's Figure 8 listing style:
//!
//! ```text
//! ; dI/dt stressmark inner loop
//! top:
//!     ldt   f1, 0(r4)
//!     divt  f3, f1, f2
//!     stt   f3, 8(r4)
//!     ldq   r7, 8(r4)
//!     cmovne r3, r31, r7
//!     stq   r3, 0(r4)
//!     bne   r1, top
//!     halt
//! ```
//!
//! * `;` starts a comment,
//! * `name:` defines a label,
//! * `#n` is an immediate operand, `n(rB)` a memory operand,
//! * branches take a label.
//!
//! [`disassemble`] emits text that re-assembles to the identical program
//! (round-trip property-tested in the crate's tests).

use crate::builder::{BuildError, ProgramBuilder};
use crate::inst::Inst;
use crate::opcode::{OpClass, Opcode};
use crate::program::Program;
use crate::reg::{FpReg, IntReg};
use std::collections::BTreeSet;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for build-stage errors with no single line).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_int_reg(tok: &str, line: usize) -> Result<IntReg, AsmError> {
    let n: u8 = tok
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected integer register, got `{tok}`")))?;
    if n > 31 {
        return Err(err(line, format!("register number out of range: `{tok}`")));
    }
    Ok(IntReg::new(n))
}

fn parse_fp_reg(tok: &str, line: usize) -> Result<FpReg, AsmError> {
    let n: u8 = tok
        .strip_prefix('f')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected fp register, got `{tok}`")))?;
    if n > 31 {
        return Err(err(line, format!("register number out of range: `{tok}`")));
    }
    Ok(FpReg::new(n))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let body = tok
        .strip_prefix('#')
        .ok_or_else(|| err(line, format!("expected immediate (#n), got `{tok}`")))?;
    parse_i64(body, line)
}

fn parse_i64(body: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, digits) = match body.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, body),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse()
    }
    .map_err(|_| err(line, format!("bad integer literal `{body}`")))?;
    Ok(if neg { -value } else { value })
}

/// Parses `disp(base)`.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, IntReg), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected disp(base), got `{tok}`")))?;
    if !tok.ends_with(')') {
        return Err(err(line, format!("expected disp(base), got `{tok}`")));
    }
    let disp_str = &tok[..open];
    let disp = if disp_str.is_empty() {
        0
    } else {
        parse_i64(disp_str, line)?
    };
    let base = parse_int_reg(&tok[open + 1..tok.len() - 1], line)?;
    Ok((disp, base))
}

/// Assembles source text into a program named `name`.
///
/// # Errors
///
/// Returns the first syntax error with its line number, or a label
/// resolution error from the underlying builder.
pub fn assemble(name: &str, text: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new(name);
    for (line_idx, raw_line) in text.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = match raw_line.find(';') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(line_no, format!("bad label `{label}`")));
            }
            b.label(label);
            continue;
        }

        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        let op = Opcode::from_mnemonic(mnemonic)
            .ok_or_else(|| err(line_no, format!("unknown mnemonic `{mnemonic}`")))?;
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };

        let expect = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        match op.class() {
            OpClass::IntAlu | OpClass::IntMult => match op {
                Opcode::Cmovne | Opcode::Cmoveq => {
                    expect(3)?;
                    let rd = parse_int_reg(ops[0], line_no)?;
                    let ra = parse_int_reg(ops[1], line_no)?;
                    let rb = parse_int_reg(ops[2], line_no)?;
                    b.raw(Inst::cmov(op, rd, ra, rb));
                }
                _ => {
                    expect(3)?;
                    let rd = parse_int_reg(ops[0], line_no)?;
                    let ra = parse_int_reg(ops[1], line_no)?;
                    if ops[2].starts_with('#') {
                        b.raw(Inst::alu_imm(op, rd, ra, parse_imm(ops[2], line_no)?));
                    } else {
                        b.raw(Inst::alu(op, rd, ra, parse_int_reg(ops[2], line_no)?));
                    }
                }
            },
            OpClass::FpAdd | OpClass::FpMult | OpClass::FpDiv => match op {
                Opcode::Sqrtt | Opcode::Cpys => {
                    expect(2)?;
                    let fd = parse_fp_reg(ops[0], line_no)?;
                    let fa = parse_fp_reg(ops[1], line_no)?;
                    b.raw(Inst::fp(op, fd, fa, FpReg::F31));
                }
                Opcode::Cvtqt | Opcode::Cvttq => {
                    expect(2)?;
                    let fd = parse_fp_reg(ops[0], line_no)?;
                    let fa = parse_fp_reg(ops[1], line_no)?;
                    b.raw(Inst::fp(op, fd, fa, FpReg::F31));
                }
                _ => {
                    expect(3)?;
                    let fd = parse_fp_reg(ops[0], line_no)?;
                    let fa = parse_fp_reg(ops[1], line_no)?;
                    let fb = parse_fp_reg(ops[2], line_no)?;
                    b.raw(Inst::fp(op, fd, fa, fb));
                }
            },
            OpClass::Load => {
                expect(2)?;
                let (disp, base) = parse_mem(ops[1], line_no)?;
                match op {
                    Opcode::Ldt => {
                        b.raw(Inst::load_fp(parse_fp_reg(ops[0], line_no)?, base, disp));
                    }
                    _ => {
                        b.raw(Inst::load(op, parse_int_reg(ops[0], line_no)?, base, disp));
                    }
                }
            }
            OpClass::Store => {
                expect(2)?;
                let (disp, base) = parse_mem(ops[1], line_no)?;
                match op {
                    Opcode::Stt => {
                        b.raw(Inst::store_fp(parse_fp_reg(ops[0], line_no)?, base, disp));
                    }
                    _ => {
                        b.raw(Inst::store(op, parse_int_reg(ops[0], line_no)?, base, disp));
                    }
                }
            }
            OpClass::Branch => match op {
                Opcode::Br => {
                    expect(1)?;
                    b.br(ops[0]);
                }
                Opcode::Jsr => {
                    expect(2)?;
                    let link = parse_int_reg(ops[0], line_no)?;
                    b.jsr(link, ops[1]);
                }
                Opcode::Ret => {
                    expect(1)?;
                    let link = parse_int_reg(ops[0], line_no)?;
                    b.ret(link);
                }
                _ => {
                    expect(2)?;
                    let ra = parse_int_reg(ops[0], line_no)?;
                    let label = ops[1];
                    match op {
                        Opcode::Beq => b.beq(ra, label),
                        Opcode::Bne => b.bne(ra, label),
                        Opcode::Blt => b.blt(ra, label),
                        Opcode::Bge => b.bge(ra, label),
                        _ => unreachable!(),
                    };
                }
            },
            OpClass::Nop => {
                expect(0)?;
                b.raw(if op == Opcode::Halt {
                    Inst::halt()
                } else {
                    Inst::nop()
                });
            }
        }
    }
    b.build().map_err(|e| match e {
        BuildError::UnresolvedLabel(l) => err(0, format!("unresolved label `{l}`")),
        BuildError::DuplicateLabel(l) => err(0, format!("duplicate label `{l}`")),
        BuildError::EmptyProgram => err(0, "empty program"),
    })
}

/// Disassembles a program into re-assemblable text (labels synthesized as
/// `L<index>` at branch targets).
pub fn disassemble(program: &Program) -> String {
    let targets: BTreeSet<u32> = program.insts().iter().filter_map(|i| i.target).collect();
    let mut out = String::new();
    out.push_str(&format!("; {}\n", program.name()));
    for (idx, inst) in program.insts().iter().enumerate() {
        if targets.contains(&(idx as u32)) {
            out.push_str(&format!("L{idx}:\n"));
        }
        let text = match inst.op.class() {
            OpClass::Branch if inst.op == Opcode::Ret => {
                format!("{} {}", inst.op, inst.ra.expect("ret has a link register"))
            }
            OpClass::Branch if inst.op == Opcode::Jsr => {
                let t = inst.target.expect("built programs have resolved targets");
                format!(
                    "{} {}, L{t}",
                    inst.op,
                    inst.rd.expect("jsr has a link register")
                )
            }
            OpClass::Branch => {
                let t = inst.target.expect("built programs have resolved targets");
                match inst.ra {
                    Some(ra) => format!("{} {}, L{t}", inst.op, ra),
                    None => format!("{} L{t}", inst.op),
                }
            }
            OpClass::FpAdd | OpClass::FpDiv
                if matches!(
                    inst.op,
                    Opcode::Sqrtt | Opcode::Cpys | Opcode::Cvtqt | Opcode::Cvttq
                ) =>
            {
                format!(
                    "{} {}, {}",
                    inst.op,
                    inst.rd.expect("fp unary has dest"),
                    inst.ra.expect("fp unary has src")
                )
            }
            _ => inst.to_string(),
        };
        out.push_str(&format!("    {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRESSMARK_STYLE: &str = r#"
; figure-8 style loop
top:
    ldt  f1, 0(r4)
    divt f3, f1, f2
    divt f3, f3, f2
    stt  f3, 8(r4)
    ldq  r7, 8(r4)
    cmovne r3, r31, r7
    stq  r3, 0(r4)
    subq r1, r1, #1
    bne  r1, top
    halt
"#;

    #[test]
    fn assembles_figure8_style_loop() {
        let p = assemble("stress", STRESSMARK_STYLE).unwrap();
        assert_eq!(p.len(), 10);
        assert_eq!(p.insts()[8].target, Some(0));
        assert_eq!(p.insts()[0].op, Opcode::Ldt);
        assert_eq!(p.insts()[5].op, Opcode::Cmovne);
    }

    #[test]
    fn roundtrip_through_disassembler() {
        let p = assemble("stress", STRESSMARK_STYLE).unwrap();
        let text = disassemble(&p);
        let p2 = assemble("stress", &text).unwrap();
        assert_eq!(p.insts(), p2.insts());
    }

    #[test]
    fn immediates_and_hex() {
        let p = assemble("t", "lda r1, r31, #0x100\nsubq r2, r1, #-5\nhalt\n").unwrap();
        assert_eq!(p.insts()[0].imm, 0x100);
        assert_eq!(p.insts()[1].imm, -5);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("t", "nop\nbogus r1, r2, r3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn wrong_operand_count_reports_error() {
        let e = assemble("t", "addq r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn bad_register_reports_error() {
        let e = assemble("t", "addq r1, r99, r2\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn unresolved_label_reported() {
        let e = assemble("t", "br nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn memory_operand_without_disp() {
        let p = assemble("t", "ldq r1, (r4)\nhalt\n").unwrap();
        assert_eq!(p.insts()[0].imm, 0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("t", "\n; header\n  nop ; trailing\n\nhalt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unary_fp_ops_roundtrip() {
        let src = "sqrtt f1, f2\ncpys f3, f1\ncvtqt f4, f3\nhalt\n";
        let p = assemble("t", src).unwrap();
        let p2 = assemble("t", &disassemble(&p)).unwrap();
        assert_eq!(p.insts(), p2.insts());
    }
}
