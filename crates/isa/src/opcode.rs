//! Opcodes and their microarchitectural classification.
//!
//! Mnemonics follow the Alpha AXP flavor used in the paper's Figure 8
//! stressmark listing (`ldt`, `divt`, `stt`, `ldq`, `cmovne`, `stq`, …).
//! [`OpClass`] groups opcodes by the functional-unit / power class the
//! simulator cares about.

use std::fmt;

/// The instruction opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Opcode {
    // --- integer ALU ---
    /// Load address / immediate: `rd = ra + imm`.
    Lda,
    Addq,
    Subq,
    And,
    Or,
    Xor,
    /// Shift left logical by immediate.
    Sll,
    /// Shift right logical by immediate.
    Srl,
    /// Set-if-equal: `rd = (ra == rb_or_imm) ? 1 : 0`.
    Cmpeq,
    /// Set-if-signed-less-than.
    Cmplt,
    /// Conditional move: `rd = (ra != 0) ? rb : rd_old` (reads `rc = rd_old`).
    Cmovne,
    /// Conditional move: `rd = (ra == 0) ? rb : rd_old` (reads `rc = rd_old`).
    Cmoveq,

    // --- integer multiply/divide ---
    Mulq,
    /// Signed 64-bit divide (traps-to-zero on divide by zero, like a
    /// quietly-defined machine; no exceptions are modeled).
    Divq,

    // --- floating point ---
    Addt,
    Subt,
    /// FP multiply.
    Mult,
    /// FP divide: the long-latency stall generator of the stressmark.
    Divt,
    Sqrtt,
    /// FP register move (copy sign of whole value).
    Cpys,
    /// Convert integer (bits in FP reg) to double.
    Cvtqt,
    /// Convert double to integer (truncating), result in FP reg.
    Cvttq,

    // --- memory ---
    /// Load quadword (8 bytes) into an integer register.
    Ldq,
    /// Store quadword from an integer register.
    Stq,
    /// Load longword (4 bytes, zero-extended).
    Ldl,
    /// Store longword.
    Stl,
    /// Load IEEE double into an FP register.
    Ldt,
    /// Store IEEE double from an FP register.
    Stt,

    // --- control ---
    /// Branch if `ra == 0`.
    Beq,
    /// Branch if `ra != 0`.
    Bne,
    /// Branch if `ra < 0` (signed).
    Blt,
    /// Branch if `ra >= 0` (signed).
    Bge,
    /// Unconditional branch.
    Br,
    /// Jump to subroutine: writes the return address (next instruction
    /// index) into `rd`, then branches to `target`.
    Jsr,
    /// Return: branches to the instruction index held in `ra` (predicted
    /// by the return-address stack).
    Ret,

    // --- other ---
    Nop,
    /// Stops the program (simulator drains and finishes).
    Halt,
}

/// Functional-unit / power classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer operations (single-cycle ALU).
    IntAlu,
    /// Integer multiply/divide (long latency, partially pipelined).
    IntMult,
    /// FP add/subtract/convert.
    FpAdd,
    /// FP multiply.
    FpMult,
    /// FP divide / square root (long latency, unpipelined).
    FpDiv,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Control transfer.
    Branch,
    /// No work (also `Halt`).
    Nop,
}

impl Opcode {
    /// The opcode's functional-unit class.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Lda | Addq | Subq | And | Or | Xor | Sll | Srl | Cmpeq | Cmplt | Cmovne | Cmoveq => {
                OpClass::IntAlu
            }
            Mulq | Divq => OpClass::IntMult,
            Addt | Subt | Cpys | Cvtqt | Cvttq => OpClass::FpAdd,
            Mult => OpClass::FpMult,
            Divt | Sqrtt => OpClass::FpDiv,
            Ldq | Ldl | Ldt => OpClass::Load,
            Stq | Stl | Stt => OpClass::Store,
            Beq | Bne | Blt | Bge | Br | Jsr | Ret => OpClass::Branch,
            Nop | Halt => OpClass::Nop,
        }
    }

    /// Whether the opcode writes a floating-point destination.
    pub fn writes_fp(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Addt | Subt | Mult | Divt | Sqrtt | Cpys | Cvtqt | Cvttq | Ldt
        )
    }

    /// Whether this is a conditional branch (not `Br`).
    pub fn is_conditional_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// Whether this is any control transfer.
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// Whether this accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// Memory access size in bytes for loads/stores (0 otherwise).
    pub fn mem_bytes(self) -> usize {
        use Opcode::*;
        match self {
            Ldq | Stq | Ldt | Stt => 8,
            Ldl | Stl => 4,
            _ => 0,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Lda => "lda",
            Addq => "addq",
            Subq => "subq",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Cmpeq => "cmpeq",
            Cmplt => "cmplt",
            Cmovne => "cmovne",
            Cmoveq => "cmoveq",
            Mulq => "mulq",
            Divq => "divq",
            Addt => "addt",
            Subt => "subt",
            Mult => "mult",
            Divt => "divt",
            Sqrtt => "sqrtt",
            Cpys => "cpys",
            Cvtqt => "cvtqt",
            Cvttq => "cvttq",
            Ldq => "ldq",
            Stq => "stq",
            Ldl => "ldl",
            Stl => "stl",
            Ldt => "ldt",
            Stt => "stt",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Br => "br",
            Jsr => "jsr",
            Ret => "ret",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// Parses a mnemonic back to an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        use Opcode::*;
        Some(match s {
            "lda" => Lda,
            "addq" => Addq,
            "subq" => Subq,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "sll" => Sll,
            "srl" => Srl,
            "cmpeq" => Cmpeq,
            "cmplt" => Cmplt,
            "cmovne" => Cmovne,
            "cmoveq" => Cmoveq,
            "mulq" => Mulq,
            "divq" => Divq,
            "addt" => Addt,
            "subt" => Subt,
            "mult" => Mult,
            "divt" => Divt,
            "sqrtt" => Sqrtt,
            "cpys" => Cpys,
            "cvtqt" => Cvtqt,
            "cvttq" => Cvttq,
            "ldq" => Ldq,
            "stq" => Stq,
            "ldl" => Ldl,
            "stl" => Stl,
            "ldt" => Ldt,
            "stt" => Stt,
            "beq" => Beq,
            "bne" => Bne,
            "blt" => Blt,
            "bge" => Bge,
            "br" => Br,
            "jsr" => Jsr,
            "ret" => Ret,
            "nop" => Nop,
            "halt" => Halt,
            _ => return None,
        })
    }

    /// Every opcode, for exhaustive testing.
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Lda, Addq, Subq, And, Or, Xor, Sll, Srl, Cmpeq, Cmplt, Cmovne, Cmoveq, Mulq, Divq,
            Addt, Subt, Mult, Divt, Sqrtt, Cpys, Cvtqt, Cvttq, Ldq, Stq, Ldl, Stl, Ldt, Stt, Beq,
            Bne, Blt, Bge, Br, Jsr, Ret, Nop, Halt,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl voltctl_snap::Pack for Opcode {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        let idx = Opcode::all()
            .iter()
            .position(|op| op == self)
            .expect("Opcode::all() covers every variant");
        w.put_u8(idx as u8);
    }
}

impl voltctl_snap::Unpack for Opcode {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let idx = r.get_u8()? as usize;
        Opcode::all().get(idx).copied().ok_or_else(|| {
            voltctl_snap::SnapError::Corrupt(format!(
                "opcode index {idx} out of range (must be < {})",
                Opcode::all().len()
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip_for_all_opcodes() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn unknown_mnemonic_is_none() {
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Opcode::Divt.class(), OpClass::FpDiv);
        assert_eq!(Opcode::Ldt.class(), OpClass::Load);
        assert_eq!(Opcode::Stq.class(), OpClass::Store);
        assert_eq!(Opcode::Bne.class(), OpClass::Branch);
        assert_eq!(Opcode::Mulq.class(), OpClass::IntMult);
        assert_eq!(Opcode::Halt.class(), OpClass::Nop);
    }

    #[test]
    fn fp_writers_flagged() {
        assert!(Opcode::Divt.writes_fp());
        assert!(Opcode::Ldt.writes_fp());
        assert!(!Opcode::Ldq.writes_fp());
        assert!(!Opcode::Stt.writes_fp()); // stores write no register
    }

    #[test]
    fn branch_predicates() {
        assert!(Opcode::Beq.is_conditional_branch());
        assert!(!Opcode::Br.is_conditional_branch());
        assert!(Opcode::Br.is_branch());
        assert!(!Opcode::Addq.is_branch());
    }

    #[test]
    fn mem_bytes() {
        assert_eq!(Opcode::Ldq.mem_bytes(), 8);
        assert_eq!(Opcode::Stl.mem_bytes(), 4);
        assert_eq!(Opcode::Addq.mem_bytes(), 0);
        assert!(Opcode::Ldl.is_mem());
    }
}
