//! A compact Alpha-flavored RISC instruction set for execution-driven
//! microarchitecture simulation.
//!
//! The HPCA 2003 dI/dt paper runs Alpha binaries on SimpleScalar; this crate
//! provides the equivalent substrate for `voltctl`: a small load/store ISA
//! with 32 integer and 32 floating-point registers, the operation classes
//! that matter for power modeling (integer ALU, integer multiply/divide, FP
//! add, FP multiply, FP divide/sqrt, loads, stores, branches), and
//! deterministic functional semantics so the cycle-level simulator in
//! `voltctl-cpu` is *execution-driven* — register values, memory addresses,
//! and branch outcomes are computed, not traced.
//!
//! Modules:
//!
//! * [`reg`] — typed register names ([`reg::Reg`]), with hardwired zero
//!   registers `r31`/`f31`.
//! * [`opcode`] — the instruction menagerie and its [`opcode::OpClass`]
//!   classification.
//! * [`inst`] — the [`inst::Inst`] record: operands, immediates, branch
//!   targets.
//! * [`exec`] — pure functional semantics (`u64` register file, IEEE-754
//!   doubles bit-cast into integer registers).
//! * [`program`] — an executable [`program::Program`]: instruction memory
//!   plus entry point and initial data image.
//! * [`builder`] — ergonomic construction with labels and automatic branch
//!   patching.
//! * [`asm`] — a text assembler/disassembler for Fig. 8-style listings.
//!
//! # Example
//!
//! ```
//! use voltctl_isa::builder::ProgramBuilder;
//! use voltctl_isa::reg::{IntReg, FpReg};
//!
//! let mut b = ProgramBuilder::new("demo");
//! b.lda(IntReg::R1, IntReg::R31, 5);     // r1 = 5
//! b.label("loop");
//! b.addq_imm(IntReg::R2, IntReg::R2, 3); // r2 += 3
//! b.subq_imm(IntReg::R1, IntReg::R1, 1); // r1 -= 1
//! b.bne(IntReg::R1, "loop");
//! b.halt();
//! let program = b.build().expect("all labels resolved");
//! assert_eq!(program.len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod builder;
pub mod exec;
pub mod inst;
pub mod opcode;
pub mod program;
pub mod reg;

pub use builder::ProgramBuilder;
pub use inst::Inst;
pub use opcode::{OpClass, Opcode};
pub use program::Program;
pub use reg::{FpReg, IntReg, Reg};
