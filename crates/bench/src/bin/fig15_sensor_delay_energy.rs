//! Figure 15: impact of sensor delay on energy (ideal actuator).
//!
//! Energy overhead comes from two sides: stall-induced longer execution
//! (undershoot gating) and phantom-firing power (overshoot response).
//! SPEC stays near zero; the stressmark pays more as delay grows.

use voltctl_bench::{budget, pct, sweep_point, tuned_stressmark, variable_eight, TextTable};
use voltctl_core::prelude::ActuationScope;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig15_sensor_delay_energy");
    let cycles = budget(100_000);
    let workloads = variable_eight();
    let stress = tuned_stressmark();
    println!("== Figure 15: sensor delay vs energy (ideal actuator, 200% impedance) ==\n");

    let mut t = TextTable::new([
        "delay",
        "SPEC-8 energy increase",
        "stressmark energy increase",
    ]);
    for delay in 0..=6u32 {
        let rows = sweep_point(
            &workloads,
            &stress,
            ActuationScope::Ideal,
            delay,
            0.0,
            2.0,
            cycles,
        );
        let spec = rows
            .iter()
            .find(|r| r.label == "SPEC mean")
            .expect("aggregate present");
        let sm = rows
            .iter()
            .find(|r| r.label == "stressmark")
            .expect("stressmark present");
        t.row([
            delay.to_string(),
            pct(spec.energy_increase),
            pct(sm.energy_increase),
        ]);
    }
    println!("{}", t.render());
    println!("(expected shape: SPEC column <1%, stressmark grows with delay)");
}
