//! Deprecated shim: forwards to the `fig15_sensor_delay_energy` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig15_sensor_delay_energy`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig15_sensor_delay_energy");
}
