//! Deprecated shim: forwards to the `fig04_wide_spike` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig04_wide_spike`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig04_wide_spike");
}
