//! Figure 4: a wide (10-cycle) spike of the same height causes an
//! undervoltage emergency — duration, not just magnitude, matters.

use voltctl_bench::{ascii_chart, delta_i, pdn_at};
use voltctl_pdn::{waveform, VoltageMonitor};

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig04_wide_spike");
    let pdn = pdn_at(3.0);
    let trace = waveform::spike(0.0, delta_i(), 20, 10, 360);
    let mut state = pdn.discretize();
    let volts = state.run(&trace);
    let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
    monitor.observe_all(&volts);
    let r = monitor.report();

    println!(
        "== Figure 4: response to a wide (10-cycle, {:.1} A) current spike ==",
        delta_i()
    );
    println!("   (300% of target impedance)\n");
    println!("{}", ascii_chart(&volts, 10, 72));
    println!(
        "min voltage {:.1} mV below nominal; emergency cycles: {}",
        (pdn.v_nominal() - r.min_v) * 1e3,
        r.emergency_cycles
    );
    assert!(
        r.any(),
        "narrative check: wide spike must cross the 5% band"
    );
}
