//! Deprecated shim: forwards to the `fig16_sensor_error` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig16_sensor_error`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig16_sensor_error");
}
