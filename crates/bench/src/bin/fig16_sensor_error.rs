//! Figure 16: impact of sensor error on performance and energy.
//!
//! Error is compensated by tightening the thresholds (§4.5), shrinking the
//! operating window: small errors (<15 mV) are nearly free; larger errors
//! cost increasingly more performance and energy.

use voltctl_bench::{budget, pct, sweep_point, tuned_stressmark, variable_eight, TextTable};
use voltctl_core::prelude::ActuationScope;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig16_sensor_error");
    let cycles = budget(100_000);
    let delay = 1u32;
    let workloads = variable_eight();
    let stress = tuned_stressmark();
    println!("== Figure 16: sensor error vs performance and energy ==");
    println!("   (ideal actuator, sensor delay {delay}, 200% impedance)\n");

    let mut t = TextTable::new([
        "error (mV)",
        "SPEC-8 perf loss",
        "SPEC-8 energy",
        "stressmark perf loss",
        "stressmark energy",
    ]);
    for error_mv in [0.0, 10.0, 15.0, 20.0, 25.0] {
        let rows = sweep_point(
            &workloads,
            &stress,
            ActuationScope::Ideal,
            delay,
            error_mv,
            2.0,
            cycles,
        );
        let spec = rows
            .iter()
            .find(|r| r.label == "SPEC mean")
            .expect("aggregate");
        let sm = rows
            .iter()
            .find(|r| r.label == "stressmark")
            .expect("stressmark");
        t.row([
            format!("{error_mv:.0}"),
            pct(spec.perf_loss),
            pct(spec.energy_increase),
            pct(sm.perf_loss),
            pct(sm.energy_increase),
        ]);
    }
    println!("{}", t.render());
    println!("(expected shape: negligible below ~15 mV, rising beyond)");
}
