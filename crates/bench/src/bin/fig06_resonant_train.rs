//! Deprecated shim: forwards to the `fig06_resonant_train` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig06_resonant_train`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig06_resonant_train");
}
