//! Figure 6: pulses at the package resonant frequency build up — each
//! successive pulse rides the echo of the last, producing the worst-case
//! voltage swing (the analytic target the dI/dt stressmark imitates).

use voltctl_bench::{ascii_chart, delta_i, pdn_at};
use voltctl_pdn::{waveform, VoltageMonitor};

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig06_resonant_train");
    let pdn = pdn_at(3.0);
    let period = pdn.resonant_period_cycles();
    let trace = waveform::pulse_train(0.0, delta_i(), 10, period / 2, period, 6, 600);
    let mut state = pdn.discretize();
    let volts = state.run(&trace);
    let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
    monitor.observe_all(&volts);
    let r = monitor.report();

    println!("== Figure 6: pulse train at the resonant frequency ==");
    println!(
        "   ({} pulses, {}-cycle period = {:.0} MHz at 3 GHz; 300% of target impedance)\n",
        6,
        period,
        3.0e9 / period as f64 / 1e6
    );
    println!("{}", ascii_chart(&volts, 12, 72));

    // Per-pulse minimum: demonstrate resonance build-up.
    for pulse in 0..3 {
        let start = 10 + pulse * period;
        let end = (start + period).min(volts.len());
        let min = volts[start..end].iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "pulse {}: min voltage {:.1} mV below nominal",
            pulse + 1,
            (pdn.v_nominal() - min) * 1e3
        );
    }
    println!("emergency cycles: {}", r.emergency_cycles);
    let first = volts[10..10 + period]
        .iter()
        .cloned()
        .fold(f64::MAX, f64::min);
    let second = volts[10 + period..10 + 2 * period]
        .iter()
        .cloned()
        .fold(f64::MAX, f64::min);
    assert!(
        second < first,
        "narrative check: the second pulse digs deeper"
    );
    assert!(r.any(), "narrative check: resonance causes emergencies");
}
