//! Deprecated shim: forwards to the `table3_thresholds` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run table3_thresholds`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("table3_thresholds");
}
