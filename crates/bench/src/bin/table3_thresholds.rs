//! Table 3: voltage thresholds under sensor delay at 200% impedance.
//!
//! Solved with the worst-case plant and an ideal actuator, as in the
//! paper's Simulink flow. Shape targets: the low threshold rises with
//! delay, and the safe window shrinks monotonically (94 mV-class at
//! delay 0 down to the 40 mV class at delay 6).

use voltctl_bench::{solve_for, TextTable};
use voltctl_core::prelude::ActuationScope;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("table3_thresholds");
    println!("== Table 3: voltage thresholds under sensor delay (200% impedance) ==\n");
    let mut t = TextTable::new([
        "delay (cycles)",
        "low threshold (V)",
        "high threshold (V)",
        "safe window (mV)",
    ]);
    let mut prev_window = f64::INFINITY;
    for delay in 0..=6u32 {
        match solve_for(ActuationScope::Ideal, delay, 2.0) {
            Ok(th) => {
                assert!(
                    th.window_mv() <= prev_window + 1e-6,
                    "window must shrink with delay"
                );
                prev_window = th.window_mv();
                t.row([
                    delay.to_string(),
                    format!("{:.3}", th.v_low),
                    format!("{:.3}", th.v_high),
                    format!("{:.0}", th.window_mv()),
                ]);
            }
            Err(e) => {
                t.row([delay.to_string(), "-".into(), "-".into(), format!("{e}")]);
            }
        }
    }
    println!("{}", t.render());
    println!("(high side is unconstrained in our worst-case plant — the regulator");
    println!(" reference sits at the minimum-power point, so overshoot never binds");
    println!(" before the undershoot controller engages; see EXPERIMENTS.md)");
}
