//! Deprecated shim: forwards to the `fig10_voltage_distributions` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig10_voltage_distributions`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig10_voltage_distributions");
}
