//! Figure 10: voltage distributions across SPEC2000 (plus the stressmark)
//! at 100% of target impedance.
//!
//! At the target impedance no benchmark leaves specification (Table 2's
//! leftmost column), but the *width* of each distribution varies wildly:
//! ammp is famously stable, galgel and swim spread across the band.

use voltctl_bench::{
    budget, current_trace, pdn_at, spec_suite, telemetry, tuned_stressmark, TextTable,
};
use voltctl_pdn::{VoltageHistogram, VoltageMonitor};
use voltctl_telemetry::MemoryRecorder;

fn sparkline(hist: &VoltageHistogram) -> String {
    // Collapse the 100 bins into 25 buckets rendered by density.
    let counts = hist.counts();
    let glyphs = [' ', '.', ':', '+', '*', '#'];
    let bucket = counts.len() / 25;
    let maxc = counts.iter().copied().max().unwrap_or(1).max(1);
    (0..25)
        .map(|b| {
            let sum: u64 = counts[b * bucket..(b + 1) * bucket].iter().sum();
            let mean = sum / bucket as u64;
            let idx = ((mean as f64 / maxc as f64) * (glyphs.len() - 1) as f64).ceil() as usize;
            glyphs[idx.min(glyphs.len() - 1)]
        })
        .collect()
}

fn main() {
    let _telemetry = telemetry::init("fig10_voltage_distributions");
    let mut rec = MemoryRecorder::new();
    let pdn = pdn_at(1.0);
    let cycles = budget(200_000) as usize;
    println!("== Figure 10: voltage distributions at 100% of target impedance ==");
    println!("   ({cycles} cycles per benchmark; sparkline spans 0.90 V .. 1.10 V)\n");

    let mut t = TextTable::new([
        "benchmark",
        "min (V)",
        "max (V)",
        "spread (mV)",
        "emerg",
        "0.90V [distribution] 1.10V",
    ]);

    let mut workloads = spec_suite();
    workloads.push(tuned_stressmark());
    for wl in &workloads {
        let trace = current_trace(wl, cycles);
        let mut state = pdn.discretize();
        state.set_reference_current(trace.iter().cloned().fold(f64::MAX, f64::min));
        let mut hist = VoltageHistogram::for_nominal_1v();
        let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
        for &i in &trace {
            let v = state.step(i);
            hist.record(v);
            monitor.observe(v);
        }
        let r = monitor.report();
        if telemetry::enabled() {
            // Suite-wide aggregate: histograms merge bin-wise, reports sum.
            r.record_telemetry(&mut rec);
            hist.record_telemetry(&mut rec, "pdn.voltage_hist");
        }
        t.row([
            wl.name.clone(),
            format!("{:.4}", r.min_v),
            format!("{:.4}", r.max_v),
            format!("{:.2}", hist.spread() * 1e3),
            r.emergency_cycles.to_string(),
            format!("[{}]", sparkline(&hist)),
        ]);
    }
    if telemetry::enabled() {
        telemetry::record(&rec);
    }
    println!("{}", t.render());
    println!("(spread = standard deviation of the distribution; paper highlights");
    println!(" ammp as exceptionally stable and galgel/swim as wide)");
}
