//! Deprecated shim: forwards to the `fig02_response` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig02_response`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig02_response");
}
