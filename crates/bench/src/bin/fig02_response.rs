//! Figure 2: frequency and transient response of the second-order model.
//!
//! Left panel: |Z| vs frequency with the peak at the package resonance.
//! Right panel: the underdamped step response — overshoot and ringing at
//! the resonant period.

use voltctl_bench::{ascii_chart, delta_i, pdn_at, TextTable};
use voltctl_pdn::{FrequencyResponse, StepResponse};

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig02_response");
    let pdn = pdn_at(2.0);
    println!("== Figure 2: second-order model responses (200% of target impedance) ==\n");
    println!(
        "model: R_dc {:.2} mOhm, f0 {:.0} MHz ({} cycles @ 3 GHz), Z_pk {:.3} mOhm, Q {:.2}, zeta {:.3}\n",
        pdn.r_dc() * 1e3,
        pdn.resonant_freq_hz() / 1e6,
        pdn.resonant_period_cycles(),
        pdn.peak_impedance() * 1e3,
        pdn.q_factor(),
        pdn.damping_ratio()
    );

    println!("-- impedance vs frequency --");
    let sweep = FrequencyResponse::sweep(&pdn, 1.0e6, 1.0e9, 240);
    let mags: Vec<f64> = sweep.points().iter().map(|(_, z)| z * 1e3).collect();
    println!("{}", ascii_chart(&mags, 10, 72));
    println!("           (log-frequency 1 MHz .. 1 GHz; y in mOhm)\n");
    let (f_pk, z_pk) = sweep.peak();
    println!(
        "sampled peak: {:.3} mOhm at {:.1} MHz\n",
        z_pk * 1e3,
        f_pk / 1e6
    );

    let mut t = TextTable::new(["f (MHz)", "|Z| (mOhm)"]);
    for &f in &[1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 200.0, 500.0] {
        t.row([
            format!("{f:.0}"),
            format!("{:.4}", pdn.impedance_at(f * 1e6) * 1e3),
        ]);
    }
    println!("{}", t.render());

    println!(
        "-- step response (current step = full machine swing {:.1} A) --",
        delta_i()
    );
    let sr = StepResponse::simulate(&pdn, delta_i(), 400);
    println!("{}", ascii_chart(sr.volts(), 10, 72));
    let m = sr.metrics();
    println!(
        "peak deviation {:.1} mV at cycle {}, overshoot ratio {:.2}, settles by cycle {}, ringing period {} cycles",
        m.peak_deviation * 1e3,
        m.peak_cycle,
        m.overshoot_ratio,
        m.settling_cycle.map_or("n/a".into(), |c| c.to_string()),
        m.ringing_period.map_or("n/a".into(), |p| p.to_string()),
    );
}
