//! Figure 11: a threshold controller in action.
//!
//! Runs the stressmark closed-loop at 200% impedance with the FU/DL1/IL1
//! actuator and prints the voltage/current trace around the controller's
//! interventions: the supply dives toward the low threshold, the actuator
//! gates, the network recovers, execution resumes.

use voltctl_bench::{
    ascii_chart, budget, pdn_at, power_model, solve_for, telemetry, tuned_stressmark,
};
use voltctl_core::prelude::*;
use voltctl_telemetry::{export, MemoryRecorder};

fn main() {
    let _telemetry = telemetry::init("fig11_controller_trace");
    let scope = ActuationScope::FuDl1Il1;
    let delay = 2;
    let thresholds = solve_for(scope, delay, 2.0).expect("stable configuration");
    let stress = tuned_stressmark();

    let mut sim = ControlLoop::builder(stress.program.clone())
        .power(power_model())
        .pdn(pdn_at(2.0))
        .thresholds(thresholds)
        .scope(scope)
        .sensor(SensorConfig {
            delay_cycles: delay,
            noise_mv: 0.0,
            seed: 1,
        })
        .record_trace(true)
        .recorder(MemoryRecorder::new())
        .build()
        .expect("loop builds");
    sim.run(stress.warmup_cycles + budget(6_000));
    sim.finish_telemetry();
    let trace = sim.take_trace();
    let report = sim.report();
    if telemetry::enabled() {
        telemetry::record(sim.recorder());
        // This figure is about the per-cycle trace, so export it whole.
        let rows = trace.iter().enumerate().map(|(k, s)| {
            vec![
                k as f64,
                s.voltage,
                s.current,
                if s.reducing { 1.0 } else { 0.0 },
                if s.increasing { 1.0 } else { 0.0 },
            ]
        });
        match export::write_trace_csv(
            &telemetry::out_dir(),
            "fig11_controller_trace",
            "trace",
            &["cycle", "voltage_v", "current_a", "reducing", "increasing"],
            rows,
        ) {
            Ok(path) => eprintln!("telemetry trace: {}", path.display()),
            Err(e) => eprintln!("voltctl[warn] telemetry.export: trace write failed: {e}"),
        }
    }

    println!("== Figure 11: threshold controller in action ==");
    println!(
        "   (stressmark, 200% impedance, {} actuator, sensor delay {delay}, thresholds [{:.3}, {:.3}])\n",
        scope.name(),
        thresholds.v_low,
        thresholds.v_high
    );

    // Show a 300-cycle window that contains actuation.
    let start = trace
        .iter()
        .position(|s| s.reducing)
        .map(|p| p.saturating_sub(60))
        .unwrap_or(0);
    let window: Vec<_> = trace[start..(start + 300).min(trace.len())].to_vec();
    let volts: Vec<f64> = window.iter().map(|s| s.voltage).collect();
    let amps: Vec<f64> = window.iter().map(|s| s.current).collect();
    println!("-- supply voltage (V), 300 cycles --");
    println!("{}", ascii_chart(&volts, 10, 75));
    println!("-- load current (A), same window --");
    println!("{}", ascii_chart(&amps, 8, 75));
    let gate_marks: String = window
        .iter()
        .step_by(4)
        .map(|s| {
            if s.reducing {
                'G'
            } else if s.increasing {
                'F'
            } else {
                '.'
            }
        })
        .collect();
    println!("actuation (per 4 cycles, G=gated F=fired): {gate_marks}\n");

    println!(
        "run summary: {} interventions, {} gated cycles, {} fired cycles, {} emergency cycles",
        report.interventions,
        report.reduce_cycles,
        report.increase_cycles,
        report.emergencies.emergency_cycles
    );
    assert!(
        report.interventions > 0,
        "controller must act on the stressmark"
    );
}
