//! Deprecated shim: forwards to the `fig11_controller_trace` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig11_controller_trace`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig11_controller_trace");
}
