//! Deprecated shim: forwards to the `fig01_itrs` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig01_itrs`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig01_itrs");
}
