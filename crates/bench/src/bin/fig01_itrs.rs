//! Figure 1: relative power-supply impedance trends from ITRS-2001 data.
//!
//! Reproduces the paper's two observations: target impedance falls ~2x
//! every 3–5 years, and the gap between the cost-performance and
//! high-performance segments narrows.

use voltctl_bench::TextTable;
use voltctl_pdn::itrs::{self, Segment};

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig01_itrs");
    println!("== Figure 1: relative impedance trends (ITRS 2001) ==\n");
    let cp = itrs::relative_impedance(Segment::CostPerformance);
    let hp = itrs::relative_impedance(Segment::HighPerformance);
    let gap = itrs::segment_gap();

    let mut t = TextTable::new(["year", "cost-perf (rel)", "high-perf (rel)", "cp/hp gap"]);
    for ((cp, hp), gap) in cp.iter().zip(&hp).zip(&gap) {
        assert_eq!(cp.0, hp.0);
        t.row([
            cp.0.to_string(),
            format!("{:.3}", cp.1),
            format!("{:.3}", hp.1),
            format!("{:.2}", gap.1),
        ]);
    }
    println!("{}", t.render());

    let half_cp = cp.iter().find(|(_, z)| *z < 0.5).map(|(y, _)| *y);
    let half_hp = hp.iter().find(|(_, z)| *z < 0.5).map(|(y, _)| *y);
    println!(
        "impedance halves by: cost-perf {} / high-perf {} (paper: ~2x every 3-5 years)",
        half_cp.map_or("n/a".into(), |y| y.to_string()),
        half_hp.map_or("n/a".into(), |y| y.to_string()),
    );
    println!(
        "segment gap: {:.2}x (2001) -> {:.2}x (2016)  — converging, as the paper observes",
        gap.first().expect("nonempty").1,
        gap.last().expect("nonempty").1
    );
}
