//! Deprecated shim: forwards to the `ablation_ladder` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run ablation_ladder`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("ablation_ladder");
}
