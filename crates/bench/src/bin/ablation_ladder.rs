//! Ablation (paper §6): validating the second-order abstraction against a
//! detailed multi-stage ladder network.
//!
//! The paper models the supply with a second-order system and acknowledges
//! that packaging engineers use far more detailed circuit models, calling
//! cross-level validation "important long-term". This experiment runs the
//! paper's characteristic current inputs through both a three-stage ladder
//! (board bulk caps → package → die) and the second-order model fitted to
//! the ladder's mid-frequency peak, then checks that thresholds solved on
//! the *abstraction* still protect the *detailed* plant.

use voltctl_bench::TextTable;
use voltctl_core::prelude::*;
use voltctl_pdn::ladder::LadderModel;
use voltctl_pdn::waveform;
use voltctl_power::{PowerModel, PowerParams};

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("ablation_ladder");
    let ladder = LadderModel::typical_three_stage();
    let fit = ladder
        .fit_second_order(10.0e6, 300.0e6)
        .expect("ladder peak exceeds DC resistance");
    let period = fit.resonant_period_cycles();

    println!("== Ablation: second-order abstraction vs 3-stage ladder network ==\n");
    println!(
        "ladder: R_dc {:.2} mOhm, die peak {:.2} mOhm at {:.0} MHz",
        ladder.r_dc() * 1e3,
        fit.peak_impedance() * 1e3,
        fit.resonant_freq_hz() / 1e6
    );
    println!(
        "fitted 2nd-order: Q {:.2}, resonant period {period} cycles\n",
        fit.q_factor()
    );

    // Characteristic inputs (Figs. 3-6 shapes) at a 40 A swing.
    let amp = 40.0;
    let len = 30 * period;
    let inputs: [(&str, Vec<f64>); 4] = [
        ("narrow spike (5 cy)", waveform::spike(0.0, amp, 20, 5, len)),
        ("wide spike (10 cy)", waveform::spike(0.0, amp, 20, 10, len)),
        (
            "notched spike",
            waveform::notched_spike(0.0, amp, 20, 20, 7, 7, len),
        ),
        (
            "resonant train",
            waveform::pulse_train(0.0, amp, 10, period / 2, period, 8, len),
        ),
    ];

    let mut t = TextTable::new([
        "input",
        "ladder max |dV| (mV)",
        "2nd-order max |dV| (mV)",
        "abstraction error",
    ]);
    for (label, trace) in &inputs {
        let mut ls = ladder.discretize();
        let mut fs = fit.discretize();
        let mut dl = 0.0f64;
        let mut df = 0.0f64;
        for &i in trace {
            dl = dl.max((ls.step(i) - ladder.v_nominal()).abs());
            df = df.max((fs.step(i) - fit.v_nominal()).abs());
        }
        t.row([
            label.to_string(),
            format!("{:.1}", dl * 1e3),
            format!("{:.1}", df * 1e3),
            format!("{:+.0}%", (df / dl - 1.0) * 100.0),
        ]);
    }
    println!("{}", t.render());

    // The real test: thresholds designed on the abstraction must protect
    // the detailed plant. Solve on the fit, then run the worst-case train
    // against the LADDER with the solved controller emulated.
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let scope = ActuationScope::FuDl1Il1;
    let setup = SolveSetup::new(
        &fit,
        power.min_current(),
        power.achievable_peak_current(),
        scope.leverage(&power),
        2,
    );
    match solve_thresholds(&setup) {
        Err(e) => println!("(solve failed on the fitted model: {e})"),
        Ok(th) => {
            let i_min = power.min_current();
            let i_max = power.achievable_peak_current();
            let mut supply = ladder.discretize();
            supply.set_reference_current(i_min);
            let demand = voltctl_pdn::waveform::square_wave(i_min, i_max, period, 20 * period);
            let out = voltctl_core::replay(
                &mut supply,
                demand,
                &voltctl_core::ReplayConfig {
                    thresholds: Some(th),
                    leverage: scope.leverage(&power),
                    delay_cycles: 2,
                    slew_limit: None,
                    i_max,
                    i_min,
                },
            );
            println!(
                "worst-case train on the LADDER with thresholds [{:.3}, {:.3}] solved on the fit:",
                th.v_low, th.v_high
            );
            println!(
                "  min die voltage {:.4} V — {} the 0.95 V specification ({} clamped cycles)",
                out.min_v,
                if out.min_v >= 0.95 {
                    "WITHIN"
                } else {
                    "VIOLATES"
                },
                out.reduce_cycles
            );
        }
    }
    println!("\n(the paper's early-design-stage claim: the second-order model is a");
    println!(" faithful stand-in for the detailed network at the frequencies that");
    println!(" matter for microarchitectural dI/dt control)");
}
