//! Figure 14: impact of sensor delay on performance (ideal actuator).
//!
//! The paper's claim: SPEC barely notices the controller at any delay,
//! while the stressmark — contrived to live at the controller's worst case
//! — degrades visibly as delay grows.

use voltctl_bench::{budget, pct, sweep_point, tuned_stressmark, variable_eight, TextTable};
use voltctl_core::prelude::ActuationScope;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig14_sensor_delay_perf");
    let cycles = budget(100_000);
    let workloads = variable_eight();
    let stress = tuned_stressmark();
    println!("== Figure 14: sensor delay vs performance (ideal actuator, 200% impedance) ==");
    println!("   (SPEC subset: the paper's eight variable benchmarks; {cycles} cycles each)\n");

    let mut t = TextTable::new(["delay", "SPEC-8 perf loss", "stressmark perf loss"]);
    for delay in 0..=6u32 {
        let rows = sweep_point(
            &workloads,
            &stress,
            ActuationScope::Ideal,
            delay,
            0.0,
            2.0,
            cycles,
        );
        let spec = rows
            .iter()
            .find(|r| r.label == "SPEC mean")
            .expect("aggregate present");
        let sm = rows
            .iter()
            .find(|r| r.label == "stressmark")
            .expect("stressmark present");
        t.row([delay.to_string(), pct(spec.perf_loss), pct(sm.perf_loss)]);
    }
    println!("{}", t.render());
    println!("(expected shape: SPEC column ~0%, stressmark grows with delay)");
}
