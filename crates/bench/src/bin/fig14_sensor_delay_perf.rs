//! Deprecated shim: forwards to the `fig14_sensor_delay_perf` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig14_sensor_delay_perf`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig14_sensor_delay_perf");
}
