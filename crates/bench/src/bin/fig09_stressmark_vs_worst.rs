//! Figure 9: the software stressmark vs the analytic worst case.
//!
//! The tuned stressmark's measured current trace is fed through the PDN;
//! its voltage swing approaches — but does not reach — the swing of the
//! ideal maximum-height resonant pulse train (the paper's observation that
//! real software cannot quite achieve the theoretical worst case).

use voltctl_bench::{budget, current_trace, delta_i, pdn_at, tuned_stressmark};
use voltctl_pdn::waveform;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig09_stressmark_vs_worst");
    let pdn = pdn_at(2.0);
    let period = pdn.resonant_period_cycles();
    let cycles = budget(60_000) as usize;

    // Analytic worst case: full-swing square train at resonance.
    let ideal_train = waveform::square_wave(0.0, delta_i(), period, cycles);
    let mut state = pdn.discretize();
    let ideal_volts = state.run(&ideal_train);
    let ideal_dev = ideal_volts
        .iter()
        .map(|v| (v - pdn.v_nominal()).abs())
        .fold(0.0f64, f64::max);

    // The stressmark, measured on the real pipeline.
    let stress = tuned_stressmark();
    let trace = current_trace(&stress, cycles);
    let swing = waveform::stats(&trace).expect("nonempty trace");
    let mut state = pdn.discretize();
    state.set_reference_current(trace.iter().cloned().fold(f64::MAX, f64::min));
    let stress_volts = state.run(&trace);
    let stress_dev = stress_volts
        .iter()
        .map(|v| (v - pdn.v_nominal()).abs())
        .fold(0.0f64, f64::max);

    println!("== Figure 9: stressmark vs maximum-height resonant pulse train ==");
    println!("   (200% of target impedance, {cycles} measured cycles)\n");
    println!(
        "analytic worst case: swing {:.1} A, max |dV| {:.1} mV",
        delta_i(),
        ideal_dev * 1e3
    );
    println!(
        "stressmark:          swing {:.1} A (min {:.1} / max {:.1}), max |dV| {:.1} mV",
        swing.max - swing.min,
        swing.min,
        swing.max,
        stress_dev * 1e3
    );
    println!(
        "\nstressmark achieves {:.0}% of the theoretical worst-case swing",
        100.0 * stress_dev / ideal_dev
    );
    assert!(
        stress_dev < ideal_dev,
        "software cannot beat the analytic bound"
    );
    assert!(
        stress_dev > 0.4 * ideal_dev,
        "but it must be severe enough to stress the controller"
    );
    let tol = pdn.tolerance_volts();
    println!(
        "emergency threshold is {:.0} mV: stressmark {} it at this impedance",
        tol * 1e3,
        if stress_dev > tol {
            "CROSSES"
        } else {
            "stays within"
        }
    );
}
