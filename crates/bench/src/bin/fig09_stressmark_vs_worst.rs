//! Deprecated shim: forwards to the `fig09_stressmark_vs_worst` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig09_stressmark_vs_worst`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig09_stressmark_vs_worst");
}
