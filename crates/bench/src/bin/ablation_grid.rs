//! Ablation (paper §6 future work): localized, per-quadrant dI/dt.
//!
//! A global (lumped) PDN model averages the chip's current over the die; a
//! quadrant whose local units burst can droop its own supply harder than
//! the chip-wide model predicts. This experiment drives the 2x2 grid
//! extension with a burst concentrated in one quadrant and compares
//! worst-quadrant droop against the global model.

use voltctl_bench::{delta_i, pdn_at, TextTable};
use voltctl_pdn::grid::GridPdn;
use voltctl_pdn::waveform;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("ablation_grid");
    let pdn = pdn_at(2.0);
    let period = pdn.resonant_period_cycles();
    let swing = delta_i();
    println!("== Ablation: localized (2x2-quadrant) vs global PDN model ==");
    println!("   (resonant square train, total swing {swing:.1} A, 200% impedance)\n");

    let train = waveform::square_wave(0.0, swing, period, 20 * period);

    // Global model: the whole swing spread over the lumped network.
    let mut global = pdn.discretize();
    let mut global_min = f64::MAX;
    for &i in &train {
        global_min = global_min.min(global.step(i));
    }

    let mut t = TextTable::new(["scenario", "worst local droop (mV)", "vs global (mV)"]);
    t.row([
        "global lumped model".to_string(),
        format!("{:.1}", (pdn.v_nominal() - global_min) * 1e3),
        "-".to_string(),
    ]);

    for (label, share) in [
        ("uniform across quadrants", 0.25),
        ("60% in one quadrant", 0.6),
        ("90% in one quadrant", 0.9),
    ] {
        let mut grid = GridPdn::new(&pdn, 2.0e-3);
        let mut min_v = f64::MAX;
        for &i in &train {
            let rest = i * (1.0 - share) / 3.0;
            let v = grid.step([i * share, rest, rest, rest]);
            min_v = min_v.min(v.iter().cloned().fold(f64::MAX, f64::min));
        }
        t.row([
            label.to_string(),
            format!("{:.1}", (pdn.v_nominal() - min_v) * 1e3),
            format!("{:+.1}", (global_min - min_v) * 1e3),
        ]);
    }
    println!("{}", t.render());
    println!("(localized bursts droop the afflicted quadrant harder than any global");
    println!(" model can see — the paper's motivation for future per-quadrant control)");
}
