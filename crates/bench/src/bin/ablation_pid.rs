//! Ablation (paper §6): PID control vs threshold control.
//!
//! The paper considered and rejected PID controllers for dI/dt: they need
//! magnitude voltage readings and a multiply-accumulate pipeline, adding
//! latency exactly where none is affordable. This ablation runs a
//! PID-actuated loop against the threshold controller on the stressmark
//! and reports emergencies and performance as the PID's compute latency
//! grows.

use std::collections::VecDeque;
use voltctl_bench::{budget, pct, pdn_at, power_model, solve_for, tuned_stressmark, TextTable};
use voltctl_core::pid::PidController;
use voltctl_core::prelude::*;
use voltctl_cpu::Cpu;
use voltctl_pdn::VoltageMonitor;
use voltctl_power::EnergyAccumulator;

/// A hand-rolled PID closed loop (the threshold loop lives in
/// `voltctl_core::loopsim`; PID needs magnitude readings, so it gets its
/// own wiring here).
fn run_pid(compute_delay: u32, cycles: u64) -> (f64, u64, f64) {
    let stress = tuned_stressmark();
    let power = power_model();
    let pdn = pdn_at(2.0);
    let scope = ActuationScope::FuDl1Il1;
    let mut cpu = Cpu::new(voltctl_bench::cpu_config(), &stress.program).expect("valid config");
    let mut state = pdn.discretize();
    state.set_reference_current(power.min_current());
    let mut pid = PidController::default_tuning(pdn.v_nominal(), compute_delay);
    let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
    let mut energy = EnergyAccumulator::new(pdn.clock_hz());
    // Sensor transport delay of 1 cycle on top of the PID compute delay.
    let mut transport: VecDeque<f64> = VecDeque::from(vec![pdn.v_nominal()]);

    for _ in 0..stress.warmup_cycles + cycles {
        let gating = cpu.gating();
        let act = cpu.step();
        let watts = power.cycle_power(&act, &gating).total();
        let v = state.step(watts / power.params().vdd);
        monitor.observe(v);
        energy.add_cycle(watts);
        transport.push_back(v);
        let seen = transport.pop_front().expect("transport primed");
        let action = pid.decide(seen);
        scope.apply(action, cpu.gating_mut());
    }
    let ipc = cpu.stats().ipc();
    (ipc, monitor.report().emergency_cycles, energy.joules())
}

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("ablation_pid");
    let cycles = budget(120_000);
    println!("== Ablation: PID vs threshold control (stressmark, 200% impedance) ==\n");

    // Threshold baseline at sensor delay 1 (comparable transport).
    let thresholds = solve_for(ActuationScope::FuDl1Il1, 1, 2.0).expect("stable");
    let stress = tuned_stressmark();
    let eval = voltctl_bench::evaluate(
        &stress,
        ActuationScope::FuDl1Il1,
        thresholds,
        SensorConfig {
            delay_cycles: 1,
            noise_mv: 0.0,
            seed: 1,
        },
        2.0,
        cycles,
    )
    .expect("threshold eval runs");

    let mut t = TextTable::new([
        "controller",
        "emergency cycles",
        "perf loss vs uncontrolled",
    ]);
    t.row([
        "threshold (delay 1)".to_string(),
        eval.controlled.emergencies.emergency_cycles.to_string(),
        pct(eval.perf_loss()),
    ]);

    let base_ipc = eval.baseline.ipc;
    for compute_delay in [0u32, 1, 2, 3, 4] {
        let (ipc, emergencies, _) = run_pid(compute_delay, cycles);
        t.row([
            format!("PID (+{compute_delay} MAC cycles)"),
            emergencies.to_string(),
            pct(1.0 - ipc / base_ipc),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper's §6 argument: a PID needs magnitude voltage readings and a");
    println!(" multiply-accumulate pipeline, and its output still has to be quantized");
    println!(" into gate/none/fire — here it protects only at several times the");
    println!(" threshold controller's performance cost, at every compute latency)");
}
