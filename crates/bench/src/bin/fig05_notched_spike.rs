//! Figure 5: notching a wide spike — momentarily throttling current midway
//! through a sustained burst — lets the network recover and avoids the
//! emergency. This is the waveform a dI/dt actuator carves.

use voltctl_bench::{ascii_chart, delta_i, pdn_at};
use voltctl_pdn::{waveform, VoltageMonitor};

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig05_notched_spike");
    let pdn = pdn_at(3.0);
    let wide = waveform::spike(0.0, delta_i(), 20, 20, 360);
    let notched = waveform::notched_spike(0.0, delta_i(), 20, 20, 7, 7, 360);

    let run = |trace: &[f64]| {
        let mut state = pdn.discretize();
        let volts = state.run(trace);
        let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
        monitor.observe_all(&volts);
        (volts, monitor.report())
    };
    let (_, wide_report) = run(&wide);
    let (volts, notched_report) = run(&notched);

    println!("== Figure 5: notched wide spike (controller back-off mid-burst) ==");
    println!("   (300% of target impedance)\n");
    println!("{}", ascii_chart(&volts, 10, 72));
    println!(
        "un-notched 20-cycle spike: {:.1} mV droop, emergency cycles {}",
        (pdn.v_nominal() - wide_report.min_v) * 1e3,
        wide_report.emergency_cycles
    );
    println!(
        "   notched 20-cycle spike: {:.1} mV droop, emergency cycles {}",
        (pdn.v_nominal() - notched_report.min_v) * 1e3,
        notched_report.emergency_cycles
    );
    assert!(
        wide_report.any(),
        "narrative check: unnotched spike crosses spec"
    );
    assert!(!notched_report.any(), "narrative check: the notch saves it");
}
