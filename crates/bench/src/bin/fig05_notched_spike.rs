//! Deprecated shim: forwards to the `fig05_notched_spike` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig05_notched_spike`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig05_notched_spike");
}
