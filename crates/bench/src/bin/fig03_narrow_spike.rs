//! Figure 3: the supply tolerates a narrow (5-cycle) current spike.
//!
//! Even at 300% of target impedance, a full-swing spike that is over
//! quickly does not pull the supply out of specification — the basis for
//! the paper's "greedy initial response" observation.

use voltctl_bench::{ascii_chart, delta_i, pdn_at};
use voltctl_pdn::{waveform, VoltageMonitor};

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig03_narrow_spike");
    let pdn = pdn_at(3.0);
    let trace = waveform::spike(0.0, delta_i(), 20, 5, 360);
    let mut state = pdn.discretize();
    let volts = state.run(&trace);
    let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
    monitor.observe_all(&volts);
    let r = monitor.report();

    println!(
        "== Figure 3: response to a narrow (5-cycle, {:.1} A) current spike ==",
        delta_i()
    );
    println!("   (300% of target impedance)\n");
    println!("{}", ascii_chart(&volts, 10, 72));
    println!(
        "min voltage {:.1} mV below nominal; emergencies: {}",
        (pdn.v_nominal() - r.min_v) * 1e3,
        if r.any() { "YES" } else { "none" }
    );
    assert!(!r.any(), "narrative check: narrow spike must stay in spec");
}
