//! Deprecated shim: forwards to the `fig03_narrow_spike` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig03_narrow_spike`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig03_narrow_spike");
}
