//! Figure 18: actuation granularity vs energy under controller delay.
//!
//! SPEC energy overhead stays under ~1%; the stressmark's grows from the
//! ~5% class at delay 0 toward ~20%+ at delay 5 (paper's §5.3).

use voltctl_bench::{budget, pct, sweep_point, tuned_stressmark, variable_eight, TextTable};
use voltctl_core::prelude::ActuationScope;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig18_actuator_energy");
    let cycles = budget(100_000);
    let workloads = variable_eight();
    let stress = tuned_stressmark();
    println!("== Figure 18: actuator granularity vs energy (200% impedance) ==\n");

    for scope in [
        ActuationScope::Fu,
        ActuationScope::FuDl1,
        ActuationScope::FuDl1Il1,
    ] {
        println!("-- actuator: {} --", scope.name());
        let mut t = TextTable::new([
            "delay",
            "SPEC-8 energy increase",
            "stressmark energy increase",
        ]);
        for delay in 0..=5u32 {
            let rows = sweep_point(&workloads, &stress, scope, delay, 0.0, 2.0, cycles);
            let spec = rows
                .iter()
                .find(|r| r.label == "SPEC mean")
                .expect("aggregate");
            let sm = rows
                .iter()
                .find(|r| r.label == "stressmark")
                .expect("stressmark");
            if spec.unstable {
                t.row([delay.to_string(), "UNSTABLE".into(), "UNSTABLE".into()]);
            } else {
                t.row([
                    delay.to_string(),
                    pct(spec.energy_increase),
                    pct(sm.energy_increase),
                ]);
            }
        }
        println!("{}", t.render());
    }
}
