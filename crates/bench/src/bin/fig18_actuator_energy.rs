//! Deprecated shim: forwards to the `fig18_actuator_energy` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig18_actuator_energy`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig18_actuator_energy");
}
