//! Deprecated shim: forwards to the `ablation_asymmetric` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run ablation_asymmetric`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("ablation_asymmetric");
}
