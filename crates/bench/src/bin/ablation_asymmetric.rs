//! Ablation (paper §6): asymmetric actuation.
//!
//! The paper suggests exploiting the asymmetry between the two responses:
//! clock-gating is cheap on any unit, but phantom-firing a cache burns
//! real array energy for no work. This experiment compares symmetric
//! FU/DL1/IL1 actuation against an asymmetric actuator that gates
//! FU/DL1/IL1 on undershoot but fires only the functional units on
//! overshoot, on a workload with genuine overshoot events (the stressmark
//! at elevated impedance, where gating rebounds cross the high
//! threshold).

use voltctl_bench::{budget, pct, pdn_at, power_model, telemetry, tuned_stressmark, TextTable};
use voltctl_core::prelude::*;
use voltctl_telemetry::MemoryRecorder;

fn run(
    actuator: AsymmetricActuator,
    thresholds: Thresholds,
    cycles: u64,
) -> (LoopReport, LoopReport) {
    let stress = tuned_stressmark();
    let power = power_model();
    let pdn = pdn_at(3.0);
    let mut baseline = ControlLoop::builder(stress.program.clone())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()
        .expect("baseline builds");
    baseline.run(stress.warmup_cycles + cycles);

    let mut controlled = ControlLoop::builder(stress.program.clone())
        .power(power)
        .pdn(pdn)
        .thresholds(thresholds)
        .actuator(actuator)
        .sensor(SensorConfig {
            delay_cycles: 1,
            noise_mv: 0.0,
            seed: 5,
        })
        .build()
        .expect("controlled builds");
    controlled.run(stress.warmup_cycles + cycles);
    (baseline.report(), controlled.report())
}

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("ablation_asymmetric");
    let cycles = budget(120_000);
    println!("== Ablation: asymmetric actuation (stressmark, 300% impedance) ==\n");

    // Solve thresholds against the weakest side of each candidate.
    let power = power_model();
    let pdn = pdn_at(3.0);
    let candidates: [(&str, AsymmetricActuator); 3] = [
        (
            "symmetric FU/DL1/IL1",
            AsymmetricActuator::symmetric(ActuationScope::FuDl1Il1),
        ),
        (
            "gate FU/DL1/IL1, fire FU",
            AsymmetricActuator {
                reduce: ActuationScope::FuDl1Il1,
                increase: ActuationScope::Fu,
            },
        ),
        (
            "gate FU/DL1/IL1, fire FU/DL1",
            AsymmetricActuator {
                reduce: ActuationScope::FuDl1Il1,
                increase: ActuationScope::FuDl1,
            },
        ),
    ];

    let mut t = TextTable::new([
        "actuator",
        "emergencies",
        "perf loss",
        "energy increase",
        "fired cycles",
    ]);
    for (label, actuator) in candidates {
        let setup = SolveSetup::new(
            &pdn,
            power.min_current(),
            power.achievable_peak_current(),
            actuator.leverage(&power),
            1,
        );
        let Ok(solved) = solve_thresholds(&setup) else {
            t.row([
                label.into(),
                "UNSTABLE".to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        // The solved high threshold is unconstrained (1.05 V) in this
        // plant; deploy a symmetric window instead, as a designer guarding
        // high-side margins (oxide stress, aging) would — this is what
        // makes the overshoot response fire at all.
        let thresholds = Thresholds {
            v_low: solved.v_low,
            v_high: 2.0 - solved.v_low,
        };
        let (base, ctrl) = run(actuator, thresholds, cycles);
        if telemetry::enabled() {
            let mut rec = MemoryRecorder::new();
            ctrl.emergencies.record_telemetry(&mut rec);
            telemetry::record(&rec);
        }
        let perf = 1.0 - ctrl.ipc / base.ipc;
        let energy = (ctrl.energy_joules / ctrl.committed.max(1) as f64)
            / (base.energy_joules / base.committed.max(1) as f64)
            - 1.0;
        t.row([
            label.to_string(),
            ctrl.emergencies.emergency_cycles.to_string(),
            pct(perf),
            pct(energy),
            ctrl.increase_cycles.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(firing a smaller scope on overshoot spends less phantom energy while");
    println!(" the coarse gating scope still guarantees the undershoot response)");
}
