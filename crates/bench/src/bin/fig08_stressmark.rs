//! Deprecated shim: forwards to the `fig08_stressmark` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig08_stressmark`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig08_stressmark");
}
