//! Figure 8: the generated dI/dt stressmark loop body.
//!
//! Prints the spectrum-tuned parameters and the disassembly of the loop —
//! the analogue of the paper's hand-crafted Alpha listing (load, dependent
//! divides, store/reload handoff to the integer side, store burst, and the
//! loop-carried memory dependence).

use voltctl_bench::{cpu_config, pdn_at, power_model};
use voltctl_workloads::stressmark;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig08_stressmark");
    let config = cpu_config();
    let power = power_model();
    let period = pdn_at(2.0).resonant_period_cycles();
    let (params, wl) = stressmark::tune(period, &config, &power);

    println!("== Figure 8: dI/dt stressmark (auto-tuned) ==\n");
    println!(
        "target period: {period} cycles ({:.0} MHz at 3 GHz)",
        3.0e9 / period as f64 / 1e6
    );
    println!(
        "tuned parameters: divide chain {}, burst ops {}\n",
        params.divide_chain, params.burst_ops
    );

    let listing = voltctl_isa::asm::disassemble(&wl.program);
    let lines: Vec<&str> = listing.lines().collect();
    // Head of the loop (through the cmov handoff) plus the closing ops.
    for line in lines.iter().take(14) {
        println!("{line}");
    }
    println!(
        "    ; ... {} burst instructions elided ...",
        params.burst_ops.saturating_sub(12)
    );
    for line in lines.iter().rev().take(4).collect::<Vec<_>>().iter().rev() {
        println!("{line}");
    }
    println!("\ntotal loop body: {} instructions", wl.program.len());
}
