//! Deprecated shim: forwards to the `table2_emergencies` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run table2_emergencies`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("table2_emergencies");
}
