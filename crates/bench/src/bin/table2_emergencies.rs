//! Table 2: voltage emergencies across SPEC2000 at 100%–400% of target
//! impedance.
//!
//! Each benchmark's uncontrolled current trace is recorded once on the
//! cycle-level simulator, then replayed through the supply network at each
//! impedance (the trace does not depend on the network). Shape targets:
//! zero emergencies at 100% (by calibration) and at 200%; a marginal
//! benchmark count at 300%; many benchmarks with rare emergencies at 400%.
//! The stressmark, by contrast, crosses already at 200%.

use voltctl_bench::{
    budget, current_trace, pdn_at, spec_suite, telemetry, tuned_stressmark, TextTable,
};
use voltctl_pdn::VoltageMonitor;
use voltctl_telemetry::MemoryRecorder;

fn main() {
    let _telemetry = telemetry::init("table2_emergencies");
    // Aggregate emergency statistics across every (benchmark, impedance)
    // replay for the structured export.
    let mut rec = MemoryRecorder::new();
    let percents = [1.0, 2.0, 3.0, 4.0];
    let cycles = budget(300_000) as usize;
    println!("== Table 2: voltage emergencies on SPEC2000 ==");
    println!("   ({cycles} cycles per benchmark; emergencies = cycles beyond +/-5%)\n");

    let pdns: Vec<_> = percents.iter().map(|&p| pdn_at(p)).collect();
    let suite = spec_suite();

    // Per-percent aggregates.
    let mut with_emergencies = [0usize; 4];
    let mut freq_sum = [0.0f64; 4];
    let mut freq_max = [0.0f64; 4];
    let mut per_bench = TextTable::new(["benchmark", "100%", "200%", "300%", "400%"]);

    for wl in &suite {
        let trace = current_trace(wl, cycles);
        let i_min = trace.iter().cloned().fold(f64::MAX, f64::min);
        let mut cells = vec![wl.name.clone()];
        for (k, pdn) in pdns.iter().enumerate() {
            let mut state = pdn.discretize();
            state.set_reference_current(i_min);
            let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
            for &i in &trace {
                monitor.observe(state.step(i));
            }
            let r = monitor.report();
            if telemetry::enabled() {
                r.record_telemetry(&mut rec);
            }
            if r.any() {
                with_emergencies[k] += 1;
            }
            freq_sum[k] += r.frequency();
            freq_max[k] = freq_max[k].max(r.frequency());
            cells.push(format!("{:.5}%", r.frequency() * 100.0));
        }
        per_bench.row(cells);
    }

    let mut t = TextTable::new(["", "100%", "200%", "300%", "400%"]);
    t.row(
        std::iter::once("benchmarks w/ emergencies".to_string())
            .chain(with_emergencies.iter().map(|c| c.to_string())),
    );
    t.row(
        std::iter::once("emergency freq (average)".to_string()).chain(
            freq_sum
                .iter()
                .map(|s| format!("{:.5}%", s / suite.len() as f64 * 100.0)),
        ),
    );
    t.row(
        std::iter::once("emergency freq (maximum)".to_string())
            .chain(freq_max.iter().map(|m| format!("{:.5}%", m * 100.0))),
    );
    println!("{}", t.render());

    // The stressmark row the paper notes in prose.
    let stress = tuned_stressmark();
    let trace = current_trace(&stress, cycles.min(budget(120_000) as usize));
    let i_min = trace.iter().cloned().fold(f64::MAX, f64::min);
    print!("stressmark emergency frequency:");
    for (k, pdn) in pdns.iter().enumerate() {
        let mut state = pdn.discretize();
        state.set_reference_current(i_min);
        let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
        for &i in &trace {
            monitor.observe(state.step(i));
        }
        let r = monitor.report();
        if telemetry::enabled() {
            r.record_telemetry(&mut rec);
        }
        print!(
            "  {}%: {:.3}%",
            (percents[k] * 100.0) as u32,
            r.frequency() * 100.0
        );
    }
    if telemetry::enabled() {
        telemetry::record(&rec);
    }
    println!("\n\nper-benchmark emergency frequencies:");
    println!("{}", per_bench.render());
}
