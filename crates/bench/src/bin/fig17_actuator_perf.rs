//! Figure 17: actuation granularity vs performance under controller delay.
//!
//! FU-only control lacks the leverage to reshape the current quickly: the
//! threshold solver proves it unstable for delays >= 3 (matching §5.2).
//! FU/DL1 and FU/DL1/IL1 hold SPEC losses under ~2% through delay 4-5;
//! the stressmark pays ~6% at delay 0 growing to the ~25% class at 5.

use voltctl_bench::{budget, pct, sweep_point, tuned_stressmark, variable_eight, TextTable};
use voltctl_core::prelude::ActuationScope;

fn main() {
    let _telemetry = voltctl_bench::telemetry::init("fig17_actuator_perf");
    let cycles = budget(100_000);
    let workloads = variable_eight();
    let stress = tuned_stressmark();
    println!("== Figure 17: actuator granularity vs performance (200% impedance) ==\n");

    for scope in [
        ActuationScope::Fu,
        ActuationScope::FuDl1,
        ActuationScope::FuDl1Il1,
    ] {
        println!("-- actuator: {} --", scope.name());
        let mut t = TextTable::new([
            "delay",
            "SPEC-8 perf loss",
            "stressmark perf loss",
            "emergencies left (stressmark)",
        ]);
        for delay in 0..=5u32 {
            let rows = sweep_point(&workloads, &stress, scope, delay, 0.0, 2.0, cycles);
            let spec = rows
                .iter()
                .find(|r| r.label == "SPEC mean")
                .expect("aggregate");
            let sm = rows
                .iter()
                .find(|r| r.label == "stressmark")
                .expect("stressmark");
            if spec.unstable {
                t.row([
                    delay.to_string(),
                    "UNSTABLE".into(),
                    "UNSTABLE".into(),
                    "-".into(),
                ]);
            } else {
                t.row([
                    delay.to_string(),
                    pct(spec.perf_loss),
                    pct(sm.perf_loss),
                    sm.controlled_emergencies.to_string(),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!("(expected shape: FU unstable at delay >= 3; FU/DL1 and FU/DL1/IL1");
    println!(" keep SPEC under ~2% while eliminating the stressmark's emergencies)");
}
