//! Deprecated shim: forwards to the `fig17_actuator_perf` scenario in `voltctl-exp`.
//!
//! Prefer `cargo run --release -p voltctl-exp -- run fig17_actuator_perf`, which adds
//! `--jobs`, `--scale`, `--smoke`, and multi-scenario runs.

fn main() {
    voltctl_exp::shim::run("fig17_actuator_perf");
}
