use voltctl_cpu::CpuConfig;
use voltctl_power::{PowerModel, PowerParams};
use voltctl_workloads::{stressmark, trace};

fn main() {
    let wl = stressmark::build(&stressmark::StressmarkParams::default());
    let config = CpuConfig::table1();
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let t = trace::record_current(&wl, &config, &power, 600);
    for (i, chunk) in t.chunks(10).enumerate() {
        let avg: f64 = chunk.iter().sum::<f64>() / chunk.len() as f64;
        print!("{:5.1} ", avg);
        if i % 10 == 9 {
            println!();
        }
    }
    println!();
    let t2 = trace::record_current(&wl, &config, &power, 4096);
    println!("period: {:?}", stressmark::measured_period(&t2));
    let min = t2.iter().cloned().fold(f64::MAX, f64::min);
    let max = t2.iter().cloned().fold(f64::MIN, f64::max);
    println!("min {min:.1} max {max:.1}");
}
