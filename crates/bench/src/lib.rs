//! Deprecated facade over [`voltctl_exp`].
//!
//! The experiment harness that used to live here — the reference
//! machine, threshold solving, controlled-vs-baseline evaluation, sweep
//! helpers, and report rendering — moved to the `voltctl-exp` crate,
//! where every table and figure is a [`voltctl_exp::Scenario`] run by a
//! parallel engine. This crate keeps two things:
//!
//! * the per-figure binaries (`cargo run -p voltctl-bench --bin <id>`),
//!   now one-line shims over [`voltctl_exp::shim::run`] — prefer
//!   `voltctl-exp run <id>`, which adds `--jobs`, `--scale`, `--smoke`,
//!   and multi-scenario runs;
//! * the micro-benchmarks under `benches/` (`cargo bench --features
//!   bench`), which consume the re-exported harness below.

pub use voltctl_exp::{
    ascii_chart, cpu_config, current_trace, delta_i, evaluate, pct, pdn_at, power_model, solve_for,
    spec_suite, sweep_point, tuned_stressmark, variable_eight, SweepRow, TextTable,
};

/// Scales a default cycle budget by `VOLTCTL_SCALE` (legacy helper; the
/// engine's `Ctx::budget` is the canonical path). The environment
/// variable is parsed once per process — an unparseable value warns
/// exactly once.
pub fn budget(default_cycles: u64) -> u64 {
    voltctl_exp::scaled_budget(default_cycles, voltctl_exp::env_scale())
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_the_harness() {
        assert!(super::delta_i() > 0.0);
        assert_eq!(super::budget(10_000), 10_000);
    }
}
