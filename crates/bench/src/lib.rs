//! Shared harness for the experiment binaries.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure of the
//! HPCA 2003 paper (see `DESIGN.md` for the index and `EXPERIMENTS.md` for
//! paper-vs-measured results). This library centralizes:
//!
//! * the reference machine (power model + calibrated PDN at any percent of
//!   target impedance),
//! * workload construction (tuned stressmark, SPEC suite, the
//!   high-variation eight),
//! * threshold solving per actuation scope,
//! * controlled-vs-baseline evaluation at a standard cycle budget,
//! * plain-text table/series rendering.
//!
//! Cycle budgets scale with the `VOLTCTL_SCALE` environment variable
//! (default 1.0; e.g. `VOLTCTL_SCALE=0.2` for a quick pass,
//! `VOLTCTL_SCALE=10` for long runs).

use voltctl_core::analysis::{evaluate_program_recorded, EvalSetup, Evaluation};
use voltctl_core::prelude::*;
use voltctl_cpu::CpuConfig;
use voltctl_pdn::PdnModel;
use voltctl_power::{PowerModel, PowerParams};
use voltctl_telemetry::MemoryRecorder;
use voltctl_workloads::{spec, stressmark, trace, Workload};

/// Process-wide telemetry for the experiment binaries.
///
/// Every `fig*`/`table*` binary opens a [`Run`] guard first thing in
/// `main`; from then on each [`evaluate`] call streams its controlled
/// run's counters, timers, and histograms into a process-wide
/// [`MemoryRecorder`]. When the guard drops, the aggregate is exported
/// according to the `VOLTCTL_TELEMETRY` environment variable:
///
/// * unset / empty / `off` — telemetry is disabled; the control loop
///   runs with the zero-cost [`voltctl_telemetry::NullRecorder`].
/// * `summary` — a human-readable digest on stderr.
/// * `jsonl` — `<run>.counters.jsonl` under the output directory (one
///   self-describing JSON object per line), plus the stderr digest.
/// * `csv` — `<run>.counters.csv` (flat `kind,name,...` rows), plus the
///   stderr digest.
///
/// The output directory defaults to `results/telemetry/` and can be
/// overridden with a `--telemetry-out <dir>` (or `--telemetry-out=<dir>`)
/// command-line argument.
pub mod telemetry {
    use std::path::PathBuf;
    use std::sync::{Mutex, OnceLock};
    use voltctl_telemetry::{export, MemoryRecorder};

    /// Export format selected by `VOLTCTL_TELEMETRY`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        /// Telemetry disabled (the default).
        Off,
        /// Human-readable digest on stderr only.
        Summary,
        /// JSONL snapshot file + stderr digest.
        Jsonl,
        /// CSV snapshot file + stderr digest.
        Csv,
    }

    /// Parses a `VOLTCTL_TELEMETRY` value. Unknown values warn and
    /// disable telemetry rather than abort an expensive run.
    pub fn parse_mode(raw: &str) -> Mode {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "none" => Mode::Off,
            "summary" => Mode::Summary,
            "jsonl" | "json" => Mode::Jsonl,
            "csv" => Mode::Csv,
            other => {
                voltctl_telemetry::warn(
                    "telemetry.mode",
                    &format!(
                        "unknown VOLTCTL_TELEMETRY value {other:?} \
                         (expected off|summary|jsonl|csv); telemetry disabled"
                    ),
                );
                Mode::Off
            }
        }
    }

    /// The process-wide mode, read from `VOLTCTL_TELEMETRY` once.
    pub fn mode() -> Mode {
        static MODE: OnceLock<Mode> = OnceLock::new();
        *MODE.get_or_init(|| {
            std::env::var("VOLTCTL_TELEMETRY")
                .map(|raw| parse_mode(&raw))
                .unwrap_or(Mode::Off)
        })
    }

    /// Whether any telemetry collection is active.
    pub fn enabled() -> bool {
        mode() != Mode::Off
    }

    /// Extracts `--telemetry-out <dir>` / `--telemetry-out=<dir>` from an
    /// argument list; falls back to [`export::DEFAULT_OUT_DIR`].
    pub fn out_dir_from_args<I, S>(args: I) -> PathBuf
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            if let Some(dir) = arg.strip_prefix("--telemetry-out=") {
                return PathBuf::from(dir);
            }
            if arg == "--telemetry-out" {
                if let Some(dir) = args.next() {
                    return PathBuf::from(dir.as_ref());
                }
            }
        }
        PathBuf::from(export::DEFAULT_OUT_DIR)
    }

    fn collector() -> &'static Mutex<MemoryRecorder> {
        static COLLECTOR: OnceLock<Mutex<MemoryRecorder>> = OnceLock::new();
        COLLECTOR.get_or_init(|| Mutex::new(MemoryRecorder::new()))
    }

    /// Folds a finished run's recorder into the process-wide aggregate.
    pub fn record(rec: &MemoryRecorder) {
        collector()
            .lock()
            .expect("telemetry collector poisoned")
            .merge(rec);
    }

    /// The export destination: `--telemetry-out` from this process's
    /// arguments, or `results/telemetry/`.
    pub fn out_dir() -> PathBuf {
        out_dir_from_args(std::env::args().skip(1))
    }

    /// RAII guard for one experiment binary: collect while alive, export
    /// on drop. Create it first thing in `main` and keep it in scope.
    #[derive(Debug)]
    pub struct Run {
        name: &'static str,
    }

    impl Drop for Run {
        fn drop(&mut self) {
            export_now(self.name);
        }
    }

    /// Opens the collection scope for a named run (use the binary's name,
    /// e.g. `"fig08_stressmark"`).
    pub fn init(name: &'static str) -> Run {
        Run { name }
    }

    fn export_now(run: &str) {
        let mode = mode();
        if mode == Mode::Off {
            return;
        }
        let snap = collector()
            .lock()
            .expect("telemetry collector poisoned")
            .snapshot();
        eprint!("{}", export::to_summary(run, &snap));
        let csv = match mode {
            Mode::Summary | Mode::Off => return,
            Mode::Jsonl => false,
            Mode::Csv => true,
        };
        match export::write_snapshot(&out_dir(), run, &snap, csv) {
            Ok(path) => eprintln!("telemetry snapshot: {}", path.display()),
            Err(e) => voltctl_telemetry::warn("telemetry.export", &format!("write failed: {e}")),
        }
    }
}

/// The standard power model (paper's 3 GHz / 1.0 V budget).
pub fn power_model() -> PowerModel {
    PowerModel::new(PowerParams::paper_3ghz())
}

/// The standard machine configuration (Table 1).
pub fn cpu_config() -> CpuConfig {
    CpuConfig::table1()
}

/// The machine's current swing (amps) under the standard power model.
pub fn delta_i() -> f64 {
    let p = power_model();
    p.achievable_peak_current() - p.min_current()
}

/// The supply network at `percent` of target impedance (1.0 = 100%).
///
/// # Panics
///
/// Panics on calibration failure (cannot happen for the standard
/// parameters).
pub fn pdn_at(percent: f64) -> PdnModel {
    let power = power_model();
    calibrated_pdn(
        &PdnModel::paper_default().expect("paper parameters are valid"),
        &power,
        percent,
    )
    .expect("calibration succeeds for the standard machine")
}

/// Scales a default cycle budget by `VOLTCTL_SCALE`.
///
/// An unset variable means scale 1.0. A value that is set but does not
/// parse as a positive finite number also falls back to 1.0 — but warns
/// on stderr instead of silently ignoring the typo (`VOLTCTL_SCALE=O.2`
/// used to run the full-length experiment without a word).
pub fn budget(default_cycles: u64) -> u64 {
    let scale = match std::env::var("VOLTCTL_SCALE") {
        Err(std::env::VarError::NotPresent) => 1.0,
        Err(e) => {
            voltctl_telemetry::warn(
                "bench.budget",
                &format!("VOLTCTL_SCALE unreadable ({e}); using scale 1.0"),
            );
            1.0
        }
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(s) if s.is_finite() && s > 0.0 => s,
            _ => {
                voltctl_telemetry::warn(
                    "bench.budget",
                    &format!("VOLTCTL_SCALE={raw:?} is not a positive number; using scale 1.0"),
                );
                1.0
            }
        },
    };
    ((default_cycles as f64) * scale).max(1_000.0) as u64
}

/// The stressmark tuned to the standard package resonance (60 cycles).
pub fn tuned_stressmark() -> Workload {
    let config = cpu_config();
    let power = power_model();
    let period = pdn_at(2.0).resonant_period_cycles();
    let (_, wl) = stressmark::tune(period, &config, &power);
    wl
}

/// All 26 synthetic SPEC2000 kernels.
pub fn spec_suite() -> Vec<Workload> {
    spec::all()
}

/// The paper's high-variation eight-benchmark subset.
pub fn variable_eight() -> Vec<Workload> {
    spec::variable_eight()
}

/// Solves thresholds for a scope/delay at a given impedance percent.
///
/// # Errors
///
/// Propagates solver errors ([`ControlError::Unstable`] in particular).
pub fn solve_for(
    scope: ActuationScope,
    delay: u32,
    percent: f64,
) -> Result<Thresholds, ControlError> {
    let power = power_model();
    let pdn = pdn_at(percent);
    let setup = SolveSetup::new(
        &pdn,
        power.min_current(),
        power.achievable_peak_current(),
        scope.leverage(&power),
        delay,
    );
    solve_thresholds(&setup)
}

/// Evaluates one workload under control vs. baseline.
///
/// When telemetry is on ([`telemetry::enabled`]), the controlled run's
/// counters/timers/histograms stream into the process-wide collector for
/// export at the end of the binary; otherwise the loop runs with the
/// zero-cost [`voltctl_telemetry::NullRecorder`].
///
/// # Errors
///
/// Propagates construction/solver errors.
pub fn evaluate(
    workload: &Workload,
    scope: ActuationScope,
    thresholds: Thresholds,
    sensor: SensorConfig,
    percent: f64,
    cycles: u64,
) -> Result<Evaluation, ControlError> {
    let setup = EvalSetup {
        cpu_config: cpu_config(),
        power: power_model(),
        pdn: pdn_at(percent),
        thresholds,
        sensor,
        scope,
    };
    if telemetry::enabled() {
        let rec = MemoryRecorder::new().echo_warnings(true);
        let (evaluation, rec) = evaluate_program_recorded(
            &workload.program,
            &setup,
            workload.warmup_cycles,
            cycles,
            rec,
        )?;
        telemetry::record(&rec);
        Ok(evaluation)
    } else {
        let (evaluation, _) = evaluate_program_recorded(
            &workload.program,
            &setup,
            workload.warmup_cycles,
            cycles,
            voltctl_telemetry::NullRecorder,
        )?;
        Ok(evaluation)
    }
}

/// Records a workload's uncontrolled current trace at the standard
/// configuration.
pub fn current_trace(workload: &Workload, cycles: usize) -> Vec<f64> {
    trace::record_current(workload, &cpu_config(), &power_model(), cycles)
}

/// One point of a controller sweep (used by Figures 14–18).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Workload (or aggregate) label.
    pub label: String,
    /// Actuation scope.
    pub scope: ActuationScope,
    /// Sensor delay in cycles.
    pub delay: u32,
    /// Sensor error in millivolts.
    pub error_mv: f64,
    /// Fractional IPC loss vs. the uncontrolled baseline.
    pub perf_loss: f64,
    /// Fractional per-instruction energy increase vs. baseline.
    pub energy_increase: f64,
    /// Emergency cycles remaining under control.
    pub controlled_emergencies: u64,
    /// Emergency cycles in the baseline.
    pub baseline_emergencies: u64,
    /// Whether the threshold solver declared this point unstable.
    pub unstable: bool,
}

/// Evaluates `workloads` (plus the stressmark) at one controller
/// configuration, returning one row per workload plus a `"SPEC mean"`
/// aggregate over `workloads`.
///
/// Unstable points (no safe thresholds) produce rows flagged `unstable`
/// with NaN metrics.
pub fn sweep_point(
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    percent: f64,
    cycles: u64,
) -> Vec<SweepRow> {
    let make_row =
        |label: &str, perf: f64, energy: f64, ce: u64, be: u64, unstable: bool| SweepRow {
            label: label.to_string(),
            scope,
            delay,
            error_mv,
            perf_loss: perf,
            energy_increase: energy,
            controlled_emergencies: ce,
            baseline_emergencies: be,
            unstable,
        };

    // Per the paper's methodology, the deployed thresholds come from the
    // Table 3 analysis (ideal actuation); the scope-specific solve is used
    // to *flag* configurations whose actuation leverage cannot guarantee
    // safety (FU-only at delay >= 3).
    let thresholds = match solve_for(scope, delay, percent)
        .and_then(|_| solve_for(ActuationScope::Ideal, delay, percent))
    {
        Ok(t) => t,
        Err(_) => {
            let mut rows: Vec<SweepRow> = workloads
                .iter()
                .map(|w| make_row(&w.name, f64::NAN, f64::NAN, 0, 0, true))
                .collect();
            rows.push(make_row("SPEC mean", f64::NAN, f64::NAN, 0, 0, true));
            rows.push(make_row(&stress.name, f64::NAN, f64::NAN, 0, 0, true));
            return rows;
        }
    };
    let sensor = SensorConfig {
        delay_cycles: delay,
        noise_mv: error_mv,
        seed: 0xd1d7,
    };

    let mut rows = Vec::new();
    let mut sum_perf = 0.0;
    let mut sum_energy = 0.0;
    for w in workloads {
        let e = evaluate(w, scope, thresholds, sensor, percent, cycles)
            .expect("evaluation constructs for solved thresholds");
        sum_perf += e.perf_loss();
        sum_energy += e.energy_increase();
        rows.push(make_row(
            &w.name,
            e.perf_loss(),
            e.energy_increase(),
            e.controlled.emergencies.emergency_cycles,
            e.baseline.emergencies.emergency_cycles,
            false,
        ));
    }
    let n = workloads.len().max(1) as f64;
    rows.push(make_row(
        "SPEC mean",
        sum_perf / n,
        sum_energy / n,
        0,
        0,
        false,
    ));
    let e = evaluate(stress, scope, thresholds, sensor, percent, cycles)
        .expect("stressmark evaluation constructs");
    rows.push(make_row(
        &stress.name,
        e.perf_loss(),
        e.energy_increase(),
        e.controlled.emergencies.emergency_cycles,
        e.baseline.emergencies.emergency_cycles,
        false,
    ));
    rows
}

/// Renders an aligned plain-text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Renders a numeric series as a fixed-height ASCII chart (for the
/// "figure" experiments).
pub fn ascii_chart(values: &[f64], height: usize, width: usize) -> String {
    if values.is_empty() || height == 0 || width == 0 {
        return String::new();
    }
    // Downsample to `width` columns by averaging.
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * values.len() / width;
            let hi = (((c + 1) * values.len()) / width)
                .max(lo + 1)
                .min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let min = cols.iter().cloned().fold(f64::MAX, f64::min);
    let max = cols.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        let r = ((v - min) / span * (height - 1) as f64).round() as usize;
        grid[height - 1 - r][c] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("{max:10.4} ┐\n"));
    for row in grid {
        out.push_str("           │");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("{min:10.4} ┘\n"));
    out
}

/// Formats a fraction as a signed percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn chart_handles_series() {
        let values: Vec<f64> = (0..100).map(|k| (k as f64 / 10.0).sin()).collect();
        let chart = ascii_chart(&values, 8, 40);
        assert_eq!(chart.lines().count(), 10);
        assert!(chart.contains('*'));
        assert!(ascii_chart(&[], 8, 40).is_empty());
    }

    #[test]
    fn budget_scales() {
        // All VOLTCTL_SCALE mutation stays in this one test: env vars are
        // process-global and the test harness runs tests in parallel.
        std::env::remove_var("VOLTCTL_SCALE");
        assert_eq!(budget(100_000), 100_000);
        std::env::set_var("VOLTCTL_SCALE", "0.5");
        assert_eq!(budget(100_000), 50_000);
        for bad in ["O.2", "", "-3", "nan", "inf"] {
            std::env::set_var("VOLTCTL_SCALE", bad);
            assert_eq!(
                budget(100_000),
                100_000,
                "bad value {bad:?} falls back to 1.0"
            );
        }
        std::env::set_var("VOLTCTL_SCALE", "2");
        assert_eq!(budget(100), 1_000, "floor of 1000 cycles");
        std::env::remove_var("VOLTCTL_SCALE");
    }

    #[test]
    fn telemetry_mode_parses() {
        use telemetry::{parse_mode, Mode};
        assert_eq!(parse_mode(""), Mode::Off);
        assert_eq!(parse_mode("off"), Mode::Off);
        assert_eq!(parse_mode("SUMMARY"), Mode::Summary);
        assert_eq!(parse_mode(" jsonl "), Mode::Jsonl);
        assert_eq!(parse_mode("csv"), Mode::Csv);
        assert_eq!(parse_mode("bogus"), Mode::Off, "unknown values disable");
    }

    #[test]
    fn telemetry_out_dir_parses_args() {
        use std::path::PathBuf;
        use telemetry::out_dir_from_args;
        use voltctl_telemetry::export::DEFAULT_OUT_DIR;
        let none: [&str; 0] = [];
        assert_eq!(out_dir_from_args(none), PathBuf::from(DEFAULT_OUT_DIR));
        assert_eq!(
            out_dir_from_args(["--telemetry-out", "/tmp/t"]),
            PathBuf::from("/tmp/t")
        );
        assert_eq!(
            out_dir_from_args(["x", "--telemetry-out=/tmp/u", "y"]),
            PathBuf::from("/tmp/u")
        );
        assert_eq!(
            out_dir_from_args(["--telemetry-out"]),
            PathBuf::from(DEFAULT_OUT_DIR),
            "dangling flag falls back"
        );
    }

    #[test]
    fn harness_constructs() {
        let pdn = pdn_at(2.0);
        assert!(pdn.peak_impedance() > 0.0);
        assert!(delta_i() > 30.0);
        assert_eq!(spec_suite().len(), 26);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.5), "-50.00%");
    }
}
