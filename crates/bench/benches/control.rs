//! Criterion benchmarks for the control layer: closed-loop simulation
//! throughput (the cost of attaching the controller to the simulator) and
//! the offline worst-case threshold solver.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use voltctl_bench::{pdn_at, power_model, solve_for};
use voltctl_core::prelude::*;
use voltctl_workloads::spec;

const CYCLES: u64 = 20_000;

fn bench_closed_loop(c: &mut Criterion) {
    let wl = spec::by_name("gcc").expect("suite kernel");
    let power = power_model();
    let pdn = pdn_at(2.0);
    let thresholds = solve_for(ActuationScope::FuDl1, 2, 2.0).expect("stable");

    let mut g = c.benchmark_group("control/closed_loop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("uncontrolled", |b| {
        b.iter_batched(
            || {
                ControlLoop::builder(wl.program.clone())
                    .power(power.clone())
                    .pdn(pdn.clone())
                    .build()
                    .expect("loop builds")
            },
            |mut sim| {
                sim.run(CYCLES);
                black_box(sim.report().committed)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("controlled", |b| {
        b.iter_batched(
            || {
                ControlLoop::builder(wl.program.clone())
                    .power(power.clone())
                    .pdn(pdn.clone())
                    .thresholds(thresholds)
                    .scope(ActuationScope::FuDl1)
                    .sensor(SensorConfig {
                        delay_cycles: 2,
                        noise_mv: 10.0,
                        seed: 3,
                    })
                    .build()
                    .expect("loop builds")
            },
            |mut sim| {
                sim.run(CYCLES);
                black_box(sim.report().committed)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_solver(c: &mut Criterion) {
    let power = power_model();
    let pdn = pdn_at(2.0);
    let mut g = c.benchmark_group("control/solver");
    g.sample_size(10);
    for delay in [0u32, 4] {
        g.bench_function(format!("solve_thresholds_delay{delay}"), |b| {
            let setup = SolveSetup::new(
                &pdn,
                power.min_current(),
                power.achievable_peak_current(),
                ActuationScope::FuDl1Il1.leverage(&power),
                delay,
            );
            b.iter(|| black_box(solve_thresholds(&setup).expect("stable")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_closed_loop, bench_solver);
criterion_main!(benches);
