//! Micro-benchmarks for the control layer: closed-loop simulation
//! throughput (the cost of attaching the controller to the simulator) and
//! the offline worst-case threshold solver.
//!
//! The uncontrolled/controlled pair doubles as the overhead check for the
//! telemetry layer: both run with the default `NullRecorder`, whose
//! instrumentation compiles away, so `controlled` minus `uncontrolled` is
//! the controller's own cost.
//!
//! Runs on the in-tree harness (`voltctl_telemetry::stopwatch::bench`);
//! invoke with `cargo bench --features bench`.

use std::hint::black_box;
use voltctl_bench::{pdn_at, power_model, solve_for};
use voltctl_core::prelude::*;
use voltctl_telemetry::stopwatch::bench;
use voltctl_workloads::spec;

const CYCLES: u64 = 20_000;

fn bench_closed_loop() {
    let wl = spec::by_name("gcc").expect("suite kernel");
    let power = power_model();
    let pdn = pdn_at(2.0);
    let thresholds = solve_for(ActuationScope::FuDl1, 2, 2.0).expect("stable");

    bench("control/closed_loop/uncontrolled_20k", 10, 1, || {
        let mut sim = ControlLoop::builder(wl.program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .build()
            .expect("loop builds");
        sim.run(CYCLES);
        black_box(sim.report().committed)
    });
    bench("control/closed_loop/controlled_20k", 10, 1, || {
        let mut sim = ControlLoop::builder(wl.program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .thresholds(thresholds)
            .scope(ActuationScope::FuDl1)
            .sensor(SensorConfig {
                delay_cycles: 2,
                noise_mv: 10.0,
                seed: 3,
            })
            .build()
            .expect("loop builds");
        sim.run(CYCLES);
        black_box(sim.report().committed)
    });
    bench("control/closed_loop/controlled_recorded_20k", 10, 1, || {
        let mut sim = ControlLoop::builder(wl.program.clone())
            .power(power.clone())
            .pdn(pdn.clone())
            .thresholds(thresholds)
            .scope(ActuationScope::FuDl1)
            .sensor(SensorConfig {
                delay_cycles: 2,
                noise_mv: 10.0,
                seed: 3,
            })
            .recorder(voltctl_telemetry::MemoryRecorder::new())
            .build()
            .expect("loop builds");
        sim.run(CYCLES);
        sim.finish_telemetry();
        black_box(sim.report().committed)
    });
}

fn bench_solver() {
    let power = power_model();
    let pdn = pdn_at(2.0);
    for delay in [0u32, 4] {
        let setup = SolveSetup::new(
            &pdn,
            power.min_current(),
            power.achievable_peak_current(),
            ActuationScope::FuDl1Il1.leverage(&power),
            delay,
        );
        bench(
            &format!("control/solver/solve_thresholds_delay{delay}"),
            10,
            2,
            || black_box(solve_thresholds(&setup).expect("stable")),
        );
    }
}

fn main() {
    bench_closed_loop();
    bench_solver();
}
