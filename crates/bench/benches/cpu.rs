//! Micro-benchmarks for the cycle-level simulator: simulation throughput
//! per workload class (cycles/second is the figure of merit for every
//! experiment's wall time), plus the hot microarchitectural structures in
//! isolation.
//!
//! Runs on the in-tree harness (`voltctl_telemetry::stopwatch::bench`);
//! invoke with `cargo bench --features bench`.

use std::hint::black_box;
use voltctl_cpu::{bpred::BranchPredictor, cache::Cache, Cpu, CpuConfig};
use voltctl_telemetry::stopwatch::bench;
use voltctl_workloads::spec;

const CYCLES: u64 = 20_000;

fn bench_simulation_throughput() {
    for name in ["gcc", "swim", "mcf", "wupwise"] {
        let wl = spec::by_name(name).expect("suite kernel");
        bench(&format!("cpu/simulate/{name}_20k_cycles"), 10, 1, || {
            let mut cpu = Cpu::new(CpuConfig::table1(), &wl.program).expect("valid config");
            cpu.run(CYCLES);
            black_box(cpu.stats().committed)
        });
    }
}

fn bench_cache() {
    let config = CpuConfig::table1();
    bench("cpu/cache/l1d_hits_10k", 20, 3, || {
        let mut cache = Cache::new(&config.l1d);
        let mut hits = 0u32;
        for k in 0..10_000u64 {
            if cache.access((k % 64) * 64, false).hit {
                hits += 1;
            }
        }
        black_box(hits)
    });
    bench("cpu/cache/l1d_streaming_misses_10k", 20, 3, || {
        let mut cache = Cache::new(&config.l1d);
        let mut misses = 0u32;
        for k in 0..10_000u64 {
            if !cache.access(k * 64, false).hit {
                misses += 1;
            }
        }
        black_box(misses)
    });
}

fn bench_bpred() {
    let config = CpuConfig::table1();
    bench("cpu/bpred/predict_update_10k", 20, 3, || {
        let mut bp = BranchPredictor::new(&config.bpred);
        for k in 0..10_000u64 {
            let pc = (k % 97) * 4;
            let taken = (k * 2654435761) % 3 != 0;
            let pred = bp.predict(pc);
            bp.update(pc, taken, (k % 31) as u32, &pred);
        }
        black_box(bp.mispredicts())
    });
}

fn main() {
    bench_simulation_throughput();
    bench_cache();
    bench_bpred();
}
