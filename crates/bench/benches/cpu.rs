//! Criterion benchmarks for the cycle-level simulator: simulation
//! throughput per workload class (cycles/second is the figure of merit
//! for every experiment's wall time), plus the hot microarchitectural
//! structures in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use voltctl_cpu::{bpred::BranchPredictor, cache::Cache, Cpu, CpuConfig};
use voltctl_workloads::spec;

const CYCLES: u64 = 20_000;

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu/simulate");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CYCLES));
    for name in ["gcc", "swim", "mcf", "wupwise"] {
        let wl = spec::by_name(name).expect("suite kernel");
        g.bench_function(name, |b| {
            b.iter_batched(
                || Cpu::new(CpuConfig::table1(), &wl.program).expect("valid config"),
                |mut cpu| {
                    cpu.run(CYCLES);
                    black_box(cpu.stats().committed)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let config = CpuConfig::table1();
    let mut g = c.benchmark_group("cpu/cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l1d_hits_10k", |b| {
        b.iter_batched(
            || Cache::new(&config.l1d),
            |mut cache| {
                let mut hits = 0u32;
                for k in 0..10_000u64 {
                    if cache.access((k % 64) * 64, false).hit {
                        hits += 1;
                    }
                }
                black_box(hits)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("l1d_streaming_misses_10k", |b| {
        b.iter_batched(
            || Cache::new(&config.l1d),
            |mut cache| {
                let mut misses = 0u32;
                for k in 0..10_000u64 {
                    if !cache.access(k * 64, false).hit {
                        misses += 1;
                    }
                }
                black_box(misses)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let config = CpuConfig::table1();
    let mut g = c.benchmark_group("cpu/bpred");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("predict_update_10k", |b| {
        b.iter_batched(
            || BranchPredictor::new(&config.bpred),
            |mut bp| {
                for k in 0..10_000u64 {
                    let pc = (k % 97) * 4;
                    let taken = (k * 2654435761) % 3 != 0;
                    let pred = bp.predict(pc);
                    bp.update(pc, taken, (k % 31) as u32, &pred);
                }
                black_box(bp.mispredicts())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_simulation_throughput, bench_cache, bench_bpred);
criterion_main!(benches);
