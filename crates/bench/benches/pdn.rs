//! Micro-benchmarks for the PDN substrate: the per-cycle voltage
//! stepping cost dominates every experiment, so its throughput is tracked
//! here alongside the reference convolution path and the offline solvers.
//!
//! Runs on the in-tree harness (`voltctl_telemetry::stopwatch::bench`);
//! invoke with `cargo bench --features bench`.

use std::hint::black_box;
use voltctl_pdn::{convolve, waveform, PdnModel};
use voltctl_telemetry::stopwatch::bench;

fn model() -> PdnModel {
    PdnModel::paper_default().unwrap()
}

fn bench_state_space() {
    let m = model();
    let trace = waveform::square_wave(12.0, 55.0, 60, 10_000);
    bench("pdn/state_space/step_10k_cycles", 20, 5, || {
        let mut state = m.discretize();
        let mut acc = 0.0;
        for &i in &trace {
            acc += state.step(i);
        }
        black_box(acc)
    });
}

fn bench_convolution() {
    let m = model();
    let trace = waveform::square_wave(12.0, 55.0, 60, 2_000);
    for tol in [1e-3, 1e-6] {
        let kernel = convolve::kernel_for(&m, tol);
        let name = format!("pdn/convolution/kernel_{}_taps", kernel.len());
        bench(&name, 20, 5, || {
            black_box(convolve::convolve_full(&kernel, &trace, 1.0))
        });
    }
}

fn bench_analysis() {
    let m = model();
    bench("pdn/analysis/worst_case_deviation", 20, 10, || {
        black_box(m.worst_case_deviation(45.0))
    });
    // calibrated_target runs a full solver pass (~0.5 s); keep it light.
    bench("pdn/analysis/calibrated_target", 5, 1, || {
        black_box(m.calibrated_target(45.0).unwrap())
    });
    bench("pdn/analysis/fit_from_spec", 20, 10, || {
        black_box(PdnModel::builder().peak_impedance(2.5e-3).build().unwrap())
    });
}

fn bench_spectrum() {
    let trace = waveform::square_wave(12.0, 55.0, 60, 4096);
    bench("pdn/spectrum/power_spectrum_4096", 20, 5, || {
        black_box(voltctl_pdn::spectrum::power_spectrum(&trace))
    });
    bench("pdn/spectrum/goertzel_4096", 20, 20, || {
        black_box(voltctl_pdn::spectrum::goertzel(&trace, 1.0 / 60.0))
    });
}

fn main() {
    bench_state_space();
    bench_convolution();
    bench_analysis();
    bench_spectrum();
}
