//! Criterion benchmarks for the PDN substrate: the per-cycle voltage
//! stepping cost dominates every experiment, so its throughput is tracked
//! here alongside the reference convolution path and the offline solvers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use voltctl_pdn::{convolve, waveform, PdnModel};

fn model() -> PdnModel {
    PdnModel::paper_default().unwrap()
}

fn bench_state_space(c: &mut Criterion) {
    let m = model();
    let trace = waveform::square_wave(12.0, 55.0, 60, 10_000);
    let mut g = c.benchmark_group("pdn/state_space");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("step_10k_cycles", |b| {
        b.iter_batched(
            || m.discretize(),
            |mut state| {
                let mut acc = 0.0;
                for &i in &trace {
                    acc += state.step(i);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_convolution(c: &mut Criterion) {
    let m = model();
    let trace = waveform::square_wave(12.0, 55.0, 60, 2_000);
    let mut g = c.benchmark_group("pdn/convolution");
    for tol in [1e-3, 1e-6] {
        let kernel = convolve::kernel_for(&m, tol);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_function(format!("kernel_{}_taps", kernel.len()), |b| {
            b.iter(|| black_box(convolve::convolve_full(&kernel, &trace, 1.0)))
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let m = model();
    let mut g = c.benchmark_group("pdn/analysis");
    g.sample_size(20);
    g.bench_function("worst_case_deviation", |b| {
        b.iter(|| black_box(m.worst_case_deviation(45.0)))
    });
    g.bench_function("calibrated_target", |b| {
        b.iter(|| black_box(m.calibrated_target(45.0).unwrap()))
    });
    g.bench_function("fit_from_spec", |b| {
        b.iter(|| {
            black_box(
                PdnModel::builder()
                    .peak_impedance(2.5e-3)
                    .build()
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_spectrum(c: &mut Criterion) {
    let trace = waveform::square_wave(12.0, 55.0, 60, 4096);
    let mut g = c.benchmark_group("pdn/spectrum");
    g.bench_function("power_spectrum_4096", |b| {
        b.iter(|| black_box(voltctl_pdn::spectrum::power_spectrum(&trace)))
    });
    g.bench_function("goertzel_4096", |b| {
        b.iter(|| black_box(voltctl_pdn::spectrum::goertzel(&trace, 1.0 / 60.0)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_state_space,
    bench_convolution,
    bench_analysis,
    bench_spectrum
);
criterion_main!(benches);
