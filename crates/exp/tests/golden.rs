//! End-to-end tests for the golden-snapshot harness: bless → clean
//! compare → detect a perturbed snapshot with a line-level diff.

use voltctl_exp::golden::{run, GoldenOpts};
use voltctl_exp::Verdict;

/// A throwaway snapshot directory unique to this test.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("voltctl-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: std::path::PathBuf, bless: bool, ids: &[&str]) -> GoldenOpts {
    GoldenOpts {
        bless,
        dir,
        ids: ids.iter().map(|s| s.to_string()).collect(),
        ..GoldenOpts::default()
    }
}

#[test]
fn bless_then_compare_round_trips() {
    let dir = temp_dir("roundtrip");

    // Before blessing, every requested snapshot is missing.
    let out = run(&opts(dir.clone(), false, &["fig01_itrs"])).unwrap();
    assert_eq!(out.verdicts, vec![("fig01_itrs", Verdict::Missing)]);
    assert!(!out.is_clean());
    assert!(out.render().contains("MISSING"));

    // Bless writes the snapshot and reports it.
    let out = run(&opts(dir.clone(), true, &["fig01_itrs"])).unwrap();
    assert_eq!(out.verdicts, vec![("fig01_itrs", Verdict::Blessed)]);
    assert!(out.is_clean());
    assert!(dir.join("fig01_itrs.txt").is_file());

    // An immediate unblessed run matches byte-for-byte.
    let out = run(&opts(dir.clone(), false, &["fig01_itrs"])).unwrap();
    assert_eq!(out.verdicts, vec![("fig01_itrs", Verdict::Match)]);
    assert!(out.is_clean());
    assert!(out.render().contains("1 clean, 0 failing"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn perturbed_snapshot_yields_a_line_diff() {
    let dir = temp_dir("perturb");
    run(&opts(dir.clone(), true, &["fig01_itrs"])).unwrap();

    // Corrupt one line of the committed snapshot.
    let path = dir.join("fig01_itrs.txt");
    let committed = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = committed.lines().collect();
    let victim = lines.len() / 2;
    lines[victim] = "CORRUPTED LINE";
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

    let out = run(&opts(dir.clone(), false, &["fig01_itrs"])).unwrap();
    assert!(!out.is_clean());
    match &out.verdicts[0].1 {
        Verdict::Differs(diff) => {
            assert!(
                diff.lines().any(|l| l == "-CORRUPTED LINE"),
                "diff should delete the corrupted line:\n{diff}"
            );
            assert!(
                diff.lines().any(|l| l.starts_with('+')),
                "diff should restore the real line:\n{diff}"
            );
        }
        v => panic!("expected Differs, got {v:?}"),
    }
    let rendered = out.render();
    assert!(rendered.contains("MISMATCH"));
    assert!(rendered.contains("0 clean, 1 failing"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_id_is_an_error_not_a_verdict() {
    let err = run(&opts(temp_dir("unknown"), false, &["not_a_scenario"])).unwrap_err();
    assert!(err.contains("not_a_scenario"), "{err}");
}
