//! Registry-consistency checks: the deprecated shim binaries under
//! `crates/bench/src/bin/` and the scenario registry must stay a 1:1
//! mapping, and the `voltctl-exp list` rows must be sorted and
//! duplicate-free.

use std::collections::BTreeSet;
use std::path::PathBuf;

use voltctl_exp::engine::Ctx;
use voltctl_exp::{find, listing, registry};

/// The shim-binary directory, located relative to this crate's manifest.
fn shim_bin_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("bench")
        .join("src")
        .join("bin")
}

/// The scenario id a shim source dispatches to: the string literal in
/// its `voltctl_exp::shim::run("<id>")` call.
fn shim_target(source: &str) -> Option<String> {
    let tail = source.split("shim::run(\"").nth(1)?;
    Some(tail.split('"').next()?.to_string())
}

#[test]
fn every_shim_resolves_to_exactly_one_registered_scenario() {
    let dir = shim_bin_dir();
    let mut targets = BTreeSet::new();
    let mut shims = 0;
    for entry in std::fs::read_dir(&dir).expect("bench bin dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        shims += 1;
        let source = std::fs::read_to_string(&path).unwrap();
        let id = shim_target(&source)
            .unwrap_or_else(|| panic!("{} has no shim::run call", path.display()));
        assert!(
            find(&id).is_some(),
            "{} dispatches to unregistered scenario {id:?}",
            path.display()
        );
        assert!(
            targets.insert(id.clone()),
            "two shims dispatch to {id:?} — the mapping must be 1:1"
        );
    }
    // 1:1 both ways: every registered scenario has its shim.
    assert_eq!(shims, registry().len(), "shim count != registry size");
    for s in registry() {
        assert!(
            targets.contains(s.id()),
            "scenario {:?} has no shim binary",
            s.id()
        );
    }
}

#[test]
fn listing_is_sorted_and_duplicate_free() {
    let rows = listing(&Ctx::default());
    assert_eq!(rows.len(), registry().len());
    let ids: Vec<&String> = rows.iter().map(|r| &r[0]).collect();
    let mut sorted = ids.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(ids, sorted, "listing must be sorted and duplicate-free");
    for row in &rows {
        assert!(
            row[2].parse::<usize>().map(|n| n > 0).unwrap_or(false),
            "{} has a bad cell count {:?}",
            row[0],
            row[2]
        );
        assert!(
            row[3] == "yes" || row[3] == "-",
            "{} has a bad trace marker {:?}",
            row[0],
            row[3]
        );
        assert!(!row[4].is_empty(), "{} has no title", row[0]);
    }
}
