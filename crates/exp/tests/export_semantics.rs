//! Export-layer contracts for the SoA recorder pipeline:
//!
//! * the never-overwrite writer's `-N` suffix semantics hold for every
//!   snapshot format (JSONL, CSV, summary text);
//! * a merged run's exported bytes are identical for any `--jobs` value
//!   once wall-clock timers are excluded (the byte-level form of the
//!   engine's determinism contract — structure equality is necessary
//!   but not sufficient when the exporters format floats).

use std::path::PathBuf;

use voltctl_exp::engine::{run_scenario, Ctx};
use voltctl_exp::scenarios::find;
use voltctl_telemetry::export;
use voltctl_telemetry::{MemoryRecorder, Recorder, Snapshot};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("voltctl-export-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_snapshot() -> Snapshot {
    let mut rec = MemoryRecorder::new();
    rec.counter("loop.cycles", 123);
    rec.value("loop.voltage", 0.987);
    rec.snapshot()
}

#[test]
fn every_format_suffixes_instead_of_overwriting() {
    let dir = temp_dir("suffix");
    let snap = sample_snapshot();

    // (writer, first file, suffixed file) per format.
    let jsonl = |run: &str| export::write_snapshot(&dir, run, &snap, false).unwrap();
    let csv = |run: &str| export::write_snapshot(&dir, run, &snap, true).unwrap();
    let summary = |run: &str| export::write_summary(&dir, run, &snap).unwrap();

    type WriteFn<'a> = &'a dyn Fn(&str) -> PathBuf;
    let cases: [(&str, WriteFn, &str, &str); 3] = [
        ("j", &jsonl, "j.counters.jsonl", "j.counters-1.jsonl"),
        ("c", &csv, "c.counters.csv", "c.counters-1.csv"),
        ("s", &summary, "s.summary.txt", "s.summary-1.txt"),
    ];
    for (run, write, first, second) in cases {
        let a = write(run);
        assert_eq!(a.file_name().and_then(|f| f.to_str()), Some(first));
        let b = write(run);
        assert_eq!(
            b.file_name().and_then(|f| f.to_str()),
            Some(second),
            "{run}: rerun must suffix, not overwrite"
        );
        let c = write(run);
        assert!(
            c.file_name()
                .and_then(|f| f.to_str())
                .unwrap()
                .contains("-2"),
            "{run}: third write keeps counting ({c:?})"
        );
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
            "{run}: same snapshot, same bytes"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exported bytes — not just snapshot structure — must be identical
/// across worker counts for a real scenario on the SoA recorder.
/// Wall-clock timers are cleared first: their *values* are wall clock.
#[test]
fn merged_export_bytes_are_jobs_invariant() {
    let ctx = Ctx {
        smoke: true,
        telemetry: true,
        ..Ctx::default()
    };
    let scenario = find("fig16_sensor_error").expect("registered scenario");

    let render = |jobs: usize| -> (String, String, String) {
        let out = run_scenario(scenario, &ctx, jobs);
        let mut snap = out.telemetry.snapshot();
        snap.timers.clear();
        (
            export::to_jsonl(&snap),
            export::to_csv(&snap),
            export::to_summary(scenario.id(), &snap),
        )
    };

    let (jsonl1, csv1, summary1) = render(1);
    assert!(!jsonl1.is_empty(), "smoke run records telemetry");
    for jobs in [2, 8] {
        let (jsonl, csv, summary) = render(jobs);
        assert_eq!(jsonl, jsonl1, "JSONL bytes differ at --jobs {jobs}");
        assert_eq!(csv, csv1, "CSV bytes differ at --jobs {jobs}");
        assert_eq!(summary, summary1, "summary bytes differ at --jobs {jobs}");
    }
}
