//! Concurrency oracle for the bounded threshold-solution memo.
//!
//! `solve_for` now sits behind the same sharded-LRU structure as the
//! kernel cache, shared by every daemon worker. Under an 8-thread
//! hammer over a mixed configuration set, every returned solution —
//! thresholds *and* cached infeasibility errors — must equal the
//! single-threaded result for that configuration, and re-solving after
//! churn must reproduce the original solution exactly (the solver is
//! deterministic, so eviction may cost time but never changes answers).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use voltctl_core::prelude::ActuationScope;
use voltctl_exp::{harness, solve_for};

#[test]
fn eight_thread_hammer_agrees_with_single_threaded_solutions() {
    let configs: Vec<(ActuationScope, u32, f64)> = vec![
        (ActuationScope::Ideal, 2, 2.0),
        (ActuationScope::Ideal, 4, 2.0),
        (ActuationScope::FuDl1, 2, 2.0),
        (ActuationScope::FuDl1Il1, 2, 3.0),
        (ActuationScope::Fu, 2, 2.0),
    ];
    // Single-threaded oracle, solved before any contention.
    let oracle: BTreeMap<usize, _> = configs
        .iter()
        .enumerate()
        .map(|(i, &(scope, delay, percent))| (i, solve_for(scope, delay, percent)))
        .collect();
    let configs = Arc::new(configs);
    let oracle = Arc::new(oracle);

    let mismatches = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope_| {
        for thread in 0..8usize {
            let configs = Arc::clone(&configs);
            let oracle = Arc::clone(&oracle);
            let mismatches = Arc::clone(&mismatches);
            scope_.spawn(move || {
                for round in 0..16 {
                    let i = (thread + round) % configs.len();
                    let (scope, delay, percent) = configs[i];
                    if solve_for(scope, delay, percent) != oracle[&i] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "concurrent solves must match the single-threaded oracle"
    );
}

#[test]
fn solutions_survive_eviction_churn_bitwise() {
    let probe = solve_for(ActuationScope::Ideal, 3, 2.0);
    // Push more distinct configurations through than the memo's bound
    // (delays spread across percents), forcing eviction somewhere.
    let percents = [2.0, 2.5, 3.0, 3.5];
    let mut pushed = 0usize;
    'outer: for &percent in &percents {
        for delay in 1..=40u32 {
            let _ = solve_for(ActuationScope::Ideal, delay, percent);
            pushed += 1;
            if pushed > harness::solve_cache_capacity() {
                break 'outer;
            }
        }
    }
    assert_eq!(
        solve_for(ActuationScope::Ideal, 3, 2.0),
        probe,
        "a re-solved configuration must reproduce its original solution"
    );
}
