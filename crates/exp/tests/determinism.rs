//! The engine's determinism contract: for any `--jobs` value, a
//! scenario's report is byte-identical and its merged telemetry is
//! structurally identical (wall-clock timer values aside).
//!
//! Real scenarios run here in smoke mode, so the whole matrix stays
//! test-suite cheap while still exercising solver calls, the pipeline
//! simulator, and per-cell recorders end to end.

use voltctl_exp::engine::{run_scenario, CellResult, Ctx, Scenario};
use voltctl_exp::scenarios::find;
use voltctl_telemetry::Recorder;

fn smoke_ctx() -> Ctx {
    Ctx {
        smoke: true,
        telemetry: true,
        ..Ctx::default()
    }
}

/// Reports and telemetry (timers excluded — they hold wall-clock values)
/// must match across worker counts.
fn assert_jobs_invariant(id: &str) {
    let ctx = smoke_ctx();
    let scenario = find(id).expect("registered scenario");
    let reference = run_scenario(scenario, &ctx, 1);
    let ref_snap = reference.telemetry.snapshot();
    for jobs in [2, 8] {
        let out = run_scenario(scenario, &ctx, jobs);
        assert_eq!(
            out.report, reference.report,
            "{id}: report differs between --jobs 1 and --jobs {jobs}"
        );
        let snap = out.telemetry.snapshot();
        assert_eq!(snap.counters, ref_snap.counters, "{id} counters @ {jobs}");
        assert_eq!(snap.values, ref_snap.values, "{id} values @ {jobs}");
        assert_eq!(
            snap.histograms, ref_snap.histograms,
            "{id} histograms @ {jobs}"
        );
    }
}

#[test]
fn table3_report_is_jobs_invariant() {
    assert_jobs_invariant("table3_thresholds");
}

#[test]
fn fig05_report_is_jobs_invariant() {
    assert_jobs_invariant("fig05_notched_spike");
}

#[test]
fn ablation_grid_report_is_jobs_invariant() {
    assert_jobs_invariant("ablation_grid");
}

#[test]
fn fig16_report_is_jobs_invariant() {
    assert_jobs_invariant("fig16_sensor_error");
}

/// A wide synthetic grid with per-cell telemetry: stresses the
/// work-stealing path with far more cells than workers.
struct Synthetic;

impl Scenario for Synthetic {
    fn id(&self) -> &'static str {
        "synthetic"
    }
    fn title(&self) -> &'static str {
        "synthetic determinism grid"
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        (0..61).map(|k| format!("cell{k:02}")).collect()
    }
    fn run_cell(&self, _ctx: &Ctx, cell: usize) -> CellResult {
        let mut out = CellResult::new(format!("cell{cell:02}"));
        // Unequal work per cell so completion order scrambles under
        // parallel scheduling.
        let mut acc = 0u64;
        for i in 0..(cell as u64 % 7) * 50_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        out.value("acc", (acc % 1000) as f64);
        out.recorder.counter("synthetic.cells", 1);
        out.recorder.value("synthetic.index", cell as f64);
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells
            .iter()
            .map(|c| format!("{}={}", c.label, c.require("acc")))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[test]
fn synthetic_grid_is_jobs_invariant() {
    let ctx = smoke_ctx();
    let reference = run_scenario(&Synthetic, &ctx, 1);
    for jobs in [2, 3, 8, 61] {
        let out = run_scenario(&Synthetic, &ctx, jobs);
        assert_eq!(out.report, reference.report);
        assert_eq!(out.telemetry.snapshot(), reference.telemetry.snapshot());
    }
}
