//! End-to-end tests for the trace pipeline: flight-recorder captures on
//! the traced scenarios, byte-identical forensics across worker counts,
//! Perfetto export validity, and the golden forensics snapshot entry.

use voltctl_exp::engine::{run_scenario, Ctx, TraceSpec};
use voltctl_exp::golden::{self, GoldenOpts, TRACE_GOLDEN_ID};
use voltctl_exp::scenarios::find;
use voltctl_exp::trace::{export, forensics};
use voltctl_exp::Verdict;

fn traced_smoke_ctx() -> Ctx {
    Ctx {
        smoke: true,
        trace: Some(TraceSpec::default()),
        ..Ctx::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("voltctl-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Backs the CI gate: a smoke-mode trace of the stressmark scenario must
/// record at least one emergency capture, and attribution must assign
/// every capture exactly one cause.
#[test]
fn smoke_stressmark_trace_captures_an_emergency() {
    let scenario = find("fig08_stressmark").unwrap();
    let out = run_scenario(scenario, &traced_smoke_ctx(), 2);
    assert!(!out.trace.is_empty(), "trace cells must attach recorders");
    assert!(
        out.trace.total_captures() >= 1,
        "smoke budgets must still reach the first emergency"
    );
    let f = forensics(&out.trace);
    assert_eq!(
        f.counts.total() as usize,
        f.captures.len(),
        "every capture gets exactly one cause"
    );
    assert_eq!(f.captures.len(), out.trace.total_captures());
}

/// The engine's determinism contract extends to traces: forensics text
/// and Perfetto JSON are byte-identical for any worker count.
#[test]
fn trace_artifacts_are_jobs_invariant() {
    let scenario = find("fig08_stressmark").unwrap();
    let ctx = traced_smoke_ctx();
    let reference = run_scenario(scenario, &ctx, 1);
    let ref_report = forensics(&reference.trace).render(scenario.id());
    let ref_json = voltctl_trace::to_chrome_trace(scenario.id(), &reference.trace);
    for jobs in [2, 8] {
        let out = run_scenario(scenario, &ctx, jobs);
        assert_eq!(
            forensics(&out.trace).render(scenario.id()),
            ref_report,
            "forensics differ between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            voltctl_trace::to_chrome_trace(scenario.id(), &out.trace),
            ref_json,
            "Perfetto JSON differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

/// Exported artifacts exist, the JSON parses with the workspace's own
/// reader, and a second export never overwrites the first.
#[test]
fn export_writes_fresh_validated_artifacts() {
    let dir = temp_dir("export");
    let scenario = find("fig08_stressmark").unwrap();
    let out = run_scenario(scenario, &traced_smoke_ctx(), 2);

    let first = export(&dir, scenario.id(), &out.trace).unwrap();
    let json = std::fs::read_to_string(&first.json).unwrap();
    let parsed = voltctl_check::Json::parse(&json).unwrap();
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert!(
        json.contains("\"emergency:under\"") || json.contains("\"emergency:over\""),
        "at least one emergency instant in the export"
    );
    assert!(std::fs::read_to_string(&first.forensics)
        .unwrap()
        .starts_with("== forensics: fig08_stressmark =="));

    let second = export(&dir, scenario.id(), &out.trace).unwrap();
    assert_ne!(first.json, second.json, "re-export must not overwrite");
    assert_ne!(first.forensics, second.forensics);
    assert!(first.json.exists() && second.json.exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The golden harness carries the forensics snapshot alongside the
/// scenario reports: bless writes it, an immediate compare matches.
#[test]
fn golden_forensics_entry_round_trips() {
    let dir = temp_dir("golden");
    let opts = |bless| GoldenOpts {
        bless,
        dir: dir.clone(),
        ids: vec![TRACE_GOLDEN_ID.to_string()],
        ..GoldenOpts::default()
    };
    let out = golden::run(&opts(true)).unwrap();
    assert_eq!(out.verdicts, vec![(TRACE_GOLDEN_ID, Verdict::Blessed)]);
    let path = dir.join(format!("{TRACE_GOLDEN_ID}.txt"));
    assert!(path.is_file());
    assert!(std::fs::read_to_string(&path)
        .unwrap()
        .contains("cause ranking:"));

    let out = golden::run(&opts(false)).unwrap();
    assert_eq!(out.verdicts, vec![(TRACE_GOLDEN_ID, Verdict::Match)]);

    std::fs::remove_dir_all(&dir).unwrap();
}
