//! The lane executor's identity contract: a batchable scenario's report
//! is byte-identical whether its cells run on the scalar path or are
//! gathered into SoA lane groups — at any worker count, so chunk
//! boundaries are covered too.
//!
//! `ForceScalar` pins a scenario to the scalar path by masking
//! `batchable`; the unwrapped scenario takes the lane path whenever
//! telemetry and tracing are off (as here).

use voltctl_exp::engine::{run_scenario, CellResult, Ctx, Runtime, Scenario};
use voltctl_exp::scenarios::find;

/// Delegates everything but `batchable`, forcing the scalar path.
struct ForceScalar<'a>(&'a dyn Scenario);

impl Scenario for ForceScalar<'_> {
    fn id(&self) -> &'static str {
        self.0.id()
    }
    fn title(&self) -> &'static str {
        self.0.title()
    }
    fn runtime(&self) -> Runtime {
        self.0.runtime()
    }
    fn cells(&self, ctx: &Ctx) -> Vec<String> {
        self.0.cells(ctx)
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        self.0.run_cell(ctx, cell)
    }
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String {
        self.0.render(ctx, cells)
    }
}

fn assert_lane_path_matches_scalar(id: &str) {
    let ctx = Ctx {
        smoke: true,
        ..Ctx::default()
    };
    let scenario = find(id).expect("registered scenario");
    assert!(scenario.batchable(), "{id} must opt into the lane executor");
    let scalar = run_scenario(&ForceScalar(scenario), &ctx, 1);
    for jobs in [1, 8] {
        let lanes = run_scenario(scenario, &ctx, jobs);
        assert_eq!(
            lanes.report, scalar.report,
            "{id}: lane-batched report differs from scalar at --jobs {jobs}"
        );
    }
}

#[test]
fn fig14_lane_report_matches_scalar() {
    assert_lane_path_matches_scalar("fig14_sensor_delay_perf");
}

#[test]
fn fig16_lane_report_matches_scalar() {
    assert_lane_path_matches_scalar("fig16_sensor_error");
}

/// Figure 17's grid mixes batchable cells with unstable ones the lane
/// path declines (FU-only at delay >= 3), so this covers the scalar
/// fallback inside lane chunks.
#[test]
fn fig17_mixed_grid_lane_report_matches_scalar() {
    assert_lane_path_matches_scalar("fig17_actuator_perf");
}
