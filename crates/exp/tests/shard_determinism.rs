//! The sharding determinism contract (the acceptance bar for
//! `run --shards`): for K ∈ {1, 3, 8} shards and J ∈ {1, 8} workers,
//! shard-then-merge output is **byte-identical** to a single-shot run —
//! the rendered report, the telemetry exports (wall-clock timer values
//! excluded, as everywhere else in the suite), and the trace artifacts
//! (Perfetto JSON + forensics report). A checkpoint resume must land on
//! the same bytes as well.

use std::path::{Path, PathBuf};

use voltctl_exp::engine::{run_scenario, Ctx, RunOutput, TraceSpec};
use voltctl_exp::profile::NullProfiler;
use voltctl_exp::scenarios::find;
use voltctl_exp::shard::{checkpoint_file, run_sharded, ShardOpts};
use voltctl_telemetry::export;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("voltctl-shard-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The telemetry export bytes of a run, timers cleared (their values
/// are wall clock; everything else must be byte-stable).
fn telemetry_bytes(out: &RunOutput, id: &str) -> (String, String, String) {
    let mut snap = out.telemetry.snapshot();
    snap.timers.clear();
    (
        export::to_jsonl(&snap),
        export::to_csv(&snap),
        export::to_summary(id, &snap),
    )
}

fn sharded(id: &str, ctx: &Ctx, shards: usize, jobs: usize, dir: &Path) -> RunOutput {
    let scenario = find(id).expect("registered scenario");
    let opts = ShardOpts {
        shards: Some(shards),
        resume: None,
        dir: dir.to_path_buf(),
    };
    run_sharded(scenario, ctx, jobs, &opts, &NullProfiler)
        .expect("sharded run succeeds")
        .output
}

#[test]
fn report_and_telemetry_are_byte_identical_across_k_and_jobs() {
    let id = "fig16_sensor_error";
    let ctx = Ctx {
        smoke: true,
        telemetry: true,
        ..Ctx::default()
    };
    let scenario = find(id).expect("registered scenario");
    let single = run_scenario(scenario, &ctx, 1);
    let reference = telemetry_bytes(&single, id);
    assert!(!reference.0.is_empty(), "smoke run records telemetry");

    for k in [1usize, 3, 8] {
        for jobs in [1usize, 8] {
            let dir = temp_dir(&format!("k{k}j{jobs}"));
            let out = sharded(id, &ctx, k, jobs, &dir);
            assert_eq!(
                out.report, single.report,
                "report differs at --shards {k} --jobs {jobs}"
            );
            let (jsonl, csv, summary) = telemetry_bytes(&out, id);
            assert_eq!(jsonl, reference.0, "JSONL @ --shards {k} --jobs {jobs}");
            assert_eq!(csv, reference.1, "CSV @ --shards {k} --jobs {jobs}");
            assert_eq!(summary, reference.2, "summary @ --shards {k} --jobs {jobs}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn trace_artifacts_are_byte_identical_when_sharded() {
    let id = "fig08_stressmark";
    let ctx = Ctx {
        smoke: true,
        trace: Some(TraceSpec::default()),
        ..Ctx::default()
    };
    let scenario = find(id).expect("registered scenario");
    let single = run_scenario(scenario, &ctx, 2);
    let ref_json = voltctl_trace::to_chrome_trace(id, &single.trace);
    let ref_forensics = voltctl_exp::trace::forensics(&single.trace).render(id);

    for (k, jobs) in [(3usize, 8usize), (8, 1)] {
        let dir = temp_dir(&format!("trace-k{k}j{jobs}"));
        let out = sharded(id, &ctx, k, jobs, &dir);
        assert_eq!(
            voltctl_trace::to_chrome_trace(id, &out.trace),
            ref_json,
            "trace JSON @ --shards {k} --jobs {jobs}"
        );
        assert_eq!(
            voltctl_exp::trace::forensics(&out.trace).render(id),
            ref_forensics,
            "forensics @ --shards {k} --jobs {jobs}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn resume_reaches_the_same_bytes_without_recomputing() {
    let id = "fig16_sensor_error";
    let ctx = Ctx {
        smoke: true,
        telemetry: true,
        ..Ctx::default()
    };
    let scenario = find(id).expect("registered scenario");
    let dir = temp_dir("resume");

    let first = run_sharded(
        scenario,
        &ctx,
        8,
        &ShardOpts {
            shards: Some(3),
            resume: None,
            dir: dir.clone(),
        },
        &NullProfiler,
    )
    .unwrap();
    assert_eq!(first.written.len(), 3);
    for i in 0..3 {
        assert!(
            dir.join(checkpoint_file(id, i, 3)).is_file(),
            "canonical checkpoint {i} exists"
        );
    }

    // Resume on a different worker count: everything loads, nothing is
    // recomputed, and the merged bytes are identical.
    let resumed = run_sharded(
        scenario,
        &ctx,
        1,
        &ShardOpts {
            shards: Some(3),
            resume: Some(dir.clone()),
            dir: dir.clone(),
        },
        &NullProfiler,
    )
    .unwrap();
    assert_eq!(resumed.loaded, 3);
    assert!(resumed.written.is_empty());
    assert_eq!(resumed.output.report, first.output.report);
    assert_eq!(
        telemetry_bytes(&resumed.output, id),
        telemetry_bytes(&first.output, id)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
