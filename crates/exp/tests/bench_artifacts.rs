//! Shape checks for the `voltctl-exp bench --smoke` artifacts: both
//! `BENCH_*.json` files must parse, carry no NaN/null measurements, and
//! report strictly positive throughput.

use voltctl_check::Json;
use voltctl_exp::{bench, BenchOpts};

#[test]
fn smoke_bench_artifacts_parse_and_are_sane() {
    let dir = std::env::temp_dir().join(format!("voltctl-bench-shape-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = BenchOpts {
        smoke: true,
        out: dir.clone(),
        ..BenchOpts::default()
    };
    let paths = bench::run(&opts).expect("smoke bench must pass its own sanity gate");
    assert_eq!(
        paths.len(),
        2,
        "expected BENCH_pdn.json and BENCH_loop.json"
    );

    for (path, name) in paths.iter().zip(["pdn", "loop"]) {
        assert_eq!(
            path.file_name().and_then(|f| f.to_str()),
            Some(format!("BENCH_{name}.json").as_str())
        );
        let raw = std::fs::read_to_string(path).unwrap();
        let doc = Json::parse(&raw).unwrap_or_else(|e| panic!("{}: {e}", path.display()));

        assert_eq!(doc.get("bench").and_then(Json::as_str), Some(name));
        assert_eq!(
            doc.get("schema").and_then(Json::as_f64),
            Some(bench::BENCH_SCHEMA as f64)
        );
        assert_eq!(doc.get("smoke").and_then(Json::as_bool), Some(true));

        let points = doc
            .get("points")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{}: points must be an array", path.display()));
        assert!(!points.is_empty(), "{}: no points", path.display());
        for p in points {
            let label = format!(
                "{}/{}",
                p.get("path").and_then(Json::as_str).unwrap_or("?"),
                p.get("kernel_taps").and_then(Json::as_f64).unwrap_or(-1.0)
            );
            for field in ["wall_ns", "best_ns", "cycles_per_sec", "ns_per_cycle"] {
                let v = p.get(field);
                assert!(
                    !v.map(Json::is_null).unwrap_or(true),
                    "{label}: {field} is null/missing (NaN leaked into the artifact)"
                );
                let x = v.and_then(Json::as_f64).unwrap();
                assert!(
                    x.is_finite() && x > 0.0,
                    "{label}: {field} = {x} is not positive-finite"
                );
            }
            let cycles = p.get("cycles").and_then(Json::as_f64).unwrap_or(0.0);
            assert!(cycles > 0.0, "{label}: zero simulated cycles");
        }
    }

    // The loop suite covers all five stepping variants, the batched
    // lane points, and the two snapshot (checkpoint write/read) paths.
    let loop_raw = std::fs::read_to_string(&paths[1]).unwrap();
    let loop_doc = Json::parse(&loop_raw).unwrap();
    let variants: Vec<&str> = loop_doc
        .get("points")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|p| p.get("path").and_then(Json::as_str))
        .collect();
    assert_eq!(
        variants,
        [
            "uncontrolled",
            "controlled",
            "lane_w4",
            "lane_w8",
            "recorded",
            "traced",
            "recorded_trace",
            "snapshot_save",
            "snapshot_restore"
        ]
    );

    // The baseline directory carries a parseable provenance manifest
    // naming both artifacts.
    let manifest_raw = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    let manifest = Json::parse(&manifest_raw).expect("manifest.json parses");
    for key in ["command", "git", "host", "seeds", "schema_versions"] {
        assert!(manifest.get(key).is_some(), "manifest missing {key:?}");
    }
    let artifacts = manifest
        .get("artifacts")
        .and_then(Json::as_arr)
        .expect("artifacts array");
    assert_eq!(artifacts.len(), 2);
    for a in artifacts {
        let bytes = a.get("bytes").and_then(Json::as_f64).unwrap_or(0.0);
        assert!(bytes > 0.0, "artifact sizes are captured");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
