//! The `voltctl-exp trace` command: run a trace-aware scenario with the
//! flight recorder attached, attribute every captured emergency to a
//! root cause, and export the evidence.
//!
//! Two artifacts land under the output directory (default
//! `results/trace/`), both through the never-overwrite writer
//! ([`write_file_fresh`](voltctl_telemetry::export::write_file_fresh)):
//!
//! * `<id>.trace.json` — Chrome trace-event JSON, loadable in Perfetto
//!   (`ui.perfetto.dev`) or `chrome://tracing`; one process per grid
//!   cell with counter tracks for voltage/current/sensor band/actuator
//!   duty and instant events for emergencies and interventions.
//! * `<id>.forensics.txt` — the human-readable root-cause report:
//!   cause ranking plus one line per capture.
//!
//! The per-cell flight recorders are merged in grid order by the engine,
//! so both artifacts are byte-identical for any `--jobs` value.

use std::path::{Path, PathBuf};

use crate::engine::{default_jobs, run_scenario, Ctx, TraceSpec};
use crate::harness::pdn_at;
use crate::scenarios::find;
use voltctl_trace::{AttributionConfig, Forensics, MergedTrace};

/// The default trace-artifact directory: `<workspace root>/results/trace`.
pub fn default_out_dir() -> PathBuf {
    voltctl_check::persist::workspace_root()
        .join("results")
        .join("trace")
}

/// The attribution configuration used by every exported report: the
/// resonant period comes from the 200%-impedance supply network — the
/// operating point the paper's stressmark narrative (and our traced
/// scenarios) are built around.
pub fn attribution_config() -> AttributionConfig {
    AttributionConfig::new(pdn_at(2.0).resonant_period_cycles())
}

/// Expands the CLI conveniences: `stressmark` is an alias for the
/// scenario that tunes and runs it.
pub fn resolve_alias(id: &str) -> &str {
    match id {
        "stressmark" => "fig08_stressmark",
        other => other,
    }
}

/// Analyzes a merged trace with the standard [`attribution_config`].
pub fn forensics(merged: &MergedTrace) -> Forensics {
    Forensics::analyze(merged, &attribution_config())
}

/// Paths of one exported trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceArtifacts {
    /// The Perfetto-loadable trace-event JSON.
    pub json: PathBuf,
    /// The plain-text forensics report.
    pub forensics: PathBuf,
}

/// Exports a merged trace as `<id>.trace.json` + `<id>.forensics.txt`
/// under `out_dir`, validating the JSON through the workspace's own
/// parser before anything touches disk.
///
/// # Errors
///
/// Returns `Err` when the generated JSON fails to parse (a bug in the
/// exporter, caught here rather than in the Perfetto UI) or when a file
/// cannot be written.
pub fn export(out_dir: &Path, id: &str, merged: &MergedTrace) -> Result<TraceArtifacts, String> {
    let json = voltctl_trace::to_chrome_trace(id, merged);
    voltctl_check::Json::parse(&json)
        .map_err(|e| format!("generated trace JSON for {id} does not parse: {e}"))?;
    let report = forensics(merged).render(id);

    let export = |file: String, contents: &str| {
        voltctl_telemetry::export::write_file_fresh(out_dir, &file, contents)
            .map_err(|e| format!("cannot write {file} under {}: {e}", out_dir.display()))
    };
    Ok(TraceArtifacts {
        json: export(format!("{id}.trace.json"), &json)?,
        forensics: export(format!("{id}.forensics.txt"), &report)?,
    })
}

/// Options for `voltctl-exp trace`.
#[derive(Debug, Clone)]
pub struct TraceOpts {
    /// Scenario ids to trace (aliases accepted; see [`resolve_alias`]).
    pub ids: Vec<String>,
    /// Flight-recorder window (cycles kept either side of a crossing).
    pub window: usize,
    /// Artifact directory.
    pub out: PathBuf,
    /// Worker threads per scenario grid.
    pub jobs: usize,
    /// Cycle-budget scale factor.
    pub scale: f64,
    /// Smoke mode: tiny budgets, for plumbing checks.
    pub smoke: bool,
    /// Fail (exit nonzero) unless at least this many emergencies were
    /// captured across all traced scenarios. CI uses `1` to prove the
    /// recorder actually fired.
    pub min_captures: usize,
}

impl Default for TraceOpts {
    fn default() -> TraceOpts {
        TraceOpts {
            ids: Vec::new(),
            window: voltctl_trace::DEFAULT_WINDOW,
            out: default_out_dir(),
            jobs: default_jobs(),
            scale: 1.0,
            smoke: false,
            min_captures: 0,
        }
    }
}

/// Runs each requested scenario with tracing on, prints the forensics
/// report, and exports both artifacts per scenario.
///
/// # Errors
///
/// Returns `Err` for unknown ids, export failures, scenarios that
/// produced no trace (not trace-aware), or an unmet `--min-captures`.
pub fn run(opts: &TraceOpts) -> Result<(), String> {
    if opts.ids.is_empty() {
        return Err("trace needs at least one scenario id (try `trace stressmark`)".to_string());
    }
    let scenarios: Vec<_> = opts
        .ids
        .iter()
        .map(|id| {
            let id = resolve_alias(id);
            find(id).ok_or_else(|| format!("unknown scenario {id:?} (see `voltctl-exp list`)"))
        })
        .collect::<Result<_, _>>()?;

    let ctx = Ctx {
        scale: opts.scale,
        smoke: opts.smoke,
        trace: Some(TraceSpec {
            window: opts.window.max(1),
        }),
        ..Ctx::default()
    };

    let started = std::time::Instant::now();
    let mut manifest = crate::manifest::Manifest::new(format!("trace --window {}", opts.window));
    manifest.ctx(&ctx, opts.jobs);
    let mut total_captures = 0usize;
    for (k, scenario) in scenarios.iter().enumerate() {
        if k > 0 {
            println!();
        }
        let out = run_scenario(*scenario, &ctx, opts.jobs);
        if out.trace.is_empty() {
            return Err(format!(
                "scenario {} is not trace-aware (no cell attached a flight recorder)",
                scenario.id()
            ));
        }
        total_captures += out.trace.total_captures();
        print!("{}", forensics(&out.trace).render(scenario.id()));
        let artifacts = export(&opts.out, scenario.id(), &out.trace)?;
        eprintln!(
            "[voltctl-exp] trace {}: {} capture(s); wrote {} and {}",
            scenario.id(),
            out.trace.total_captures(),
            artifacts.json.display(),
            artifacts.forensics.display()
        );
        manifest.scenario(scenario.id());
        manifest
            .artifact(&artifacts.json)
            .artifact(&artifacts.forensics);
    }
    manifest.wall(started.elapsed());
    let manifest_path = manifest
        .write(&opts.out)
        .map_err(|e| format!("cannot write manifest under {}: {e}", opts.out.display()))?;
    eprintln!("[voltctl-exp] wrote {}", manifest_path.display());

    if total_captures < opts.min_captures {
        return Err(format!(
            "captured {total_captures} emergenc{} across {} scenario(s), below --min-captures {}",
            if total_captures == 1 { "y" } else { "ies" },
            scenarios.len(),
            opts.min_captures
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve() {
        assert_eq!(resolve_alias("stressmark"), "fig08_stressmark");
        assert_eq!(
            resolve_alias("fig11_controller_trace"),
            "fig11_controller_trace"
        );
    }

    #[test]
    fn attribution_config_targets_the_resonance() {
        let cfg = attribution_config();
        assert_eq!(cfg.resonant_period, pdn_at(2.0).resonant_period_cycles());
        assert!(cfg.resonant_period >= 2);
    }

    #[test]
    fn empty_id_list_is_an_error() {
        let err = run(&TraceOpts::default()).unwrap_err();
        assert!(err.contains("at least one"), "{err}");
    }

    #[test]
    fn unknown_id_is_an_error() {
        let opts = TraceOpts {
            ids: vec!["nope".into()],
            ..TraceOpts::default()
        };
        assert!(run(&opts).unwrap_err().contains("unknown scenario"));
    }

    #[test]
    fn untraced_scenario_is_an_error() {
        // fig01_itrs never attaches a flight recorder.
        let opts = TraceOpts {
            ids: vec!["fig01_itrs".into()],
            smoke: true,
            out: std::env::temp_dir().join("voltctl-trace-none"),
            ..TraceOpts::default()
        };
        assert!(run(&opts).unwrap_err().contains("not trace-aware"));
    }
}
